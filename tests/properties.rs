//! Property-based tests over the core data structures and invariants.

use fpcore::{expr_to_string, parse_expr, Expr};
use fpvm::{compile_core, Machine, SourceLoc};
use herbgrind::errsum::ErrorBitsSum;
use herbgrind::records::OpRecord;
use herbgrind::trace::ConcreteExpr;
use herbgrind::AnalysisConfig;
use proptest::prelude::*;
use shadowreal::{bits_error, ordinal, ulps_between, BigFloat, DoubleDouble, Real, RealOp};
use std::sync::Arc;

/// Finite, not-too-extreme doubles for arithmetic properties.
fn reasonable_f64() -> impl Strategy<Value = f64> {
    prop_oneof![
        -1e12f64..1e12,
        -1e3f64..1e3,
        -1.0f64..1.0,
        Just(0.0),
        Just(1.0),
        Just(-1.0),
    ]
}

proptest! {
    /// BigFloat round-trips every double exactly.
    #[test]
    fn bigfloat_roundtrips_doubles(x in any::<f64>()) {
        let b = BigFloat::from_f64(x);
        if x.is_nan() {
            prop_assert!(b.to_f64().is_nan());
        } else {
            prop_assert_eq!(b.to_f64().to_bits(), x.to_bits());
        }
    }

    /// BigFloat addition/multiplication agree with f64 to within an ulp of
    /// the f64 result (the f64 result is correctly rounded, the BigFloat
    /// result is far more precise, so rounding it back must land within one
    /// ulp).
    #[test]
    fn bigfloat_arithmetic_is_consistent_with_f64(a in reasonable_f64(), b in reasonable_f64()) {
        for op in [RealOp::Add, RealOp::Sub, RealOp::Mul] {
            let exact = BigFloat::apply(op, &[BigFloat::from_f64(a), BigFloat::from_f64(b)]);
            let float = f64::apply(op, &[a, b]);
            prop_assert!(ulps_between(exact.to_f64(), float) <= 1,
                "{op} {a} {b}: {} vs {float}", exact.to_f64());
        }
    }

    /// Division and square root are faithful too (where defined).
    #[test]
    fn bigfloat_div_sqrt_consistent(a in reasonable_f64(), b in reasonable_f64()) {
        if b != 0.0 {
            let exact = BigFloat::from_f64(a).div(&BigFloat::from_f64(b));
            prop_assert!(ulps_between(exact.to_f64(), a / b) <= 1);
        }
        if a >= 0.0 {
            let exact = BigFloat::from_f64(a).sqrt();
            prop_assert!(ulps_between(exact.to_f64(), a.sqrt()) <= 1);
        }
    }

    /// The double-double shadow agrees with f64 on basic arithmetic.
    #[test]
    fn doubledouble_consistent_with_f64(a in reasonable_f64(), b in reasonable_f64()) {
        for op in [RealOp::Add, RealOp::Sub, RealOp::Mul] {
            let dd = DoubleDouble::apply(op, &[DoubleDouble::from_f64(a), DoubleDouble::from_f64(b)]);
            let float = f64::apply(op, &[a, b]);
            prop_assert!(ulps_between(dd.to_f64(), float) <= 1);
        }
    }

    /// Bits-of-error is symmetric, non-negative, bounded, and zero iff the
    /// values are numerically identical.
    #[test]
    fn bits_error_metric_properties(a in any::<f64>(), b in any::<f64>()) {
        let e = bits_error(a, b);
        prop_assert!((0.0..=shadowreal::MAX_ERROR_BITS).contains(&e));
        prop_assert_eq!(e.to_bits(), bits_error(b, a).to_bits());
        if !a.is_nan() && !b.is_nan() {
            prop_assert_eq!(e == 0.0, a == b || (a == 0.0 && b == 0.0));
        }
    }

    /// The ordinal mapping is monotone over non-NaN doubles.
    #[test]
    fn ordinal_is_monotone(a in any::<f64>(), b in any::<f64>()) {
        prop_assume!(!a.is_nan() && !b.is_nan());
        if a < b {
            prop_assert!(ordinal(a) <= ordinal(b));
        }
    }

    /// Printing and re-parsing an arbitrary generated expression is the
    /// identity (up to structural equality).
    #[test]
    fn printer_parser_roundtrip(expr in arb_expr(3)) {
        let printed = expr_to_string(&expr);
        let reparsed = parse_expr(&printed).expect("printed expressions parse");
        prop_assert_eq!(expr, reparsed, "printed: {}", printed);
    }

    /// The abstract machine computes the same result as the reference FPCore
    /// evaluator on arbitrary straight-line expressions.
    #[test]
    fn machine_matches_reference_on_random_expressions(
        expr in arb_expr(3),
        a in reasonable_f64(),
        b in reasonable_f64(),
    ) {
        let core = fpcore::FPCore {
            arguments: vec!["a".to_string(), "b".to_string()],
            name: None,
            pre: None,
            properties: Default::default(),
            body: expr,
        };
        let program = compile_core(&core, Default::default()).expect("compiles");
        let reference = fpcore::eval::eval_f64(&core, &[a, b]).expect("evaluates");
        let machine = Machine::new(&program).run(&[a, b]).expect("runs").outputs[0];
        if reference.is_nan() {
            prop_assert!(machine.is_nan());
        } else {
            prop_assert_eq!(machine, reference);
        }
    }

    /// Exact error-bit sums are invariant under sharding: any way of
    /// splitting the measurements into contiguous chunks and merging the
    /// partial sums gives the same total, bit for bit. (This is the property
    /// the parallel analysis leans on for its average-error fields.)
    #[test]
    fn error_sums_are_shard_invariant(ulps in proptest::collection::vec(any::<u64>(), 1..64), chunk in 1usize..16) {
        let values: Vec<f64> = ulps
            .iter()
            .map(|&u| bits_error(1.0, f64::from_bits(1.0f64.to_bits().wrapping_add(u % (1 << 20)))))
            .collect();
        let mut serial = ErrorBitsSum::new();
        for &v in &values {
            serial.add(v);
        }
        let mut merged = ErrorBitsSum::new();
        for part in values.chunks(chunk) {
            let mut partial = ErrorBitsSum::new();
            for &v in part {
                partial.add(v);
            }
            merged.merge(&partial);
        }
        prop_assert_eq!(serial, merged);
        prop_assert_eq!(serial.total_bits().to_bits(), merged.total_bits().to_bits());
    }

    /// `OpRecord::merge` is associative: merging three shard records in
    /// either grouping yields the same report-visible state.
    #[test]
    fn op_record_merge_is_associative(obs in observations(), cut in (0usize..100, 0usize..100)) {
        let (i, j) = split_points(obs.len(), cut);
        let config = AnalysisConfig::default();
        let (a, b, c) = (
            build_record(&obs[..i], &config),
            build_record(&obs[i..j], &config),
            build_record(&obs[j..], &config),
        );

        let mut left_first = a.clone();
        left_first.merge(&b, &config);
        left_first.merge(&c, &config);

        let mut right_first_tail = b.clone();
        right_first_tail.merge(&c, &config);
        let mut right_first = a;
        right_first.merge(&right_first_tail, &config);

        prop_assert_eq!(projection(&left_first), projection(&right_first));
    }

    /// `OpRecord::merge` is commutative up to report ordering: every
    /// order-independent report quantity (counts, maxima, exact sums, the
    /// symbolic expression, range endpoints) matches; only the example
    /// values, which deliberately prefer the earlier shard, may differ.
    #[test]
    fn op_record_merge_is_commutative_up_to_examples(obs in observations(), cut in 0usize..100) {
        let (i, _) = split_points(obs.len(), (cut, cut));
        let config = AnalysisConfig::default();
        let (a, b) = (build_record(&obs[..i], &config), build_record(&obs[i..], &config));

        let mut ab = a.clone();
        ab.merge(&b, &config);
        let mut ba = b;
        ba.merge(&a, &config);

        prop_assert_eq!(symmetric_projection(&ab), symmetric_projection(&ba));
    }

    /// Merging with a freshly created (empty) record is the identity, in
    /// both directions.
    #[test]
    fn op_record_merge_with_empty_is_identity(obs in observations()) {
        let config = AnalysisConfig::default();
        let record = build_record(&obs, &config);
        let empty = || OpRecord::new(RealOp::Add, SourceLoc::default(), &config);

        let mut extended = record.clone();
        extended.merge(&empty(), &config);
        prop_assert_eq!(projection(&extended), projection(&record));

        let mut adopted = empty();
        adopted.merge(&record, &config);
        prop_assert_eq!(projection(&adopted), projection(&record));
    }

    /// For observations with a fixed trace shape (the common case: one
    /// static statement produces structurally identical traces), shard-and-
    /// merge reproduces serial accumulation exactly — the record-level
    /// statement of the determinism guarantee the integration suite checks
    /// at the report level.
    #[test]
    fn op_record_merge_matches_serial_accumulation(
        values in proptest::collection::vec((grid_value(), grid_value(), local_error_value()), 1..14),
        shape in 0u8..3,
        cut in 0usize..100,
    ) {
        let obs: Vec<Observation> = values
            .into_iter()
            .map(|(a, b, err)| Observation { a, b, err, shape })
            .collect();
        let (i, _) = split_points(obs.len(), (cut, cut));
        let config = AnalysisConfig::default();

        let serial = build_record(&obs, &config);
        let mut merged = build_record(&obs[..i], &config);
        merged.merge(&build_record(&obs[i..], &config), &config);

        prop_assert_eq!(projection(&merged), projection(&serial));
    }

    /// The analysis never reports *more* erroneous spot evaluations than
    /// total evaluations, and flagged operations never exceed total
    /// operations.
    #[test]
    fn analysis_counts_are_consistent(exponent in 0i32..15, count in 1usize..8) {
        let core = fpcore::parse_core(
            "(FPCore (x) (- (sqrt (+ x 1)) (sqrt x)))",
        ).expect("parses");
        let program = compile_core(&core, Default::default()).expect("compiles");
        let inputs: Vec<Vec<f64>> = (0..count).map(|i| vec![10f64.powi(exponent) + i as f64]).collect();
        let report = herbgrind::analyze(&program, &inputs, &herbgrind::AnalysisConfig::default())
            .expect("analysis");
        prop_assert!(report.flagged_operations <= report.total_operations);
        for spot in &report.spots {
            prop_assert!(spot.erroneous <= spot.total);
            prop_assert!(spot.average_error_bits <= spot.max_error_bits + 1e-9);
        }
    }
}

/// One synthetic execution of a traced operation: leaf values, a local
/// error, and which of three trace shapes the execution produced.
#[derive(Clone, Debug)]
struct Observation {
    a: f64,
    b: f64,
    err: f64,
    shape: u8,
}

/// Leaf values drawn from a coarse grid so repeated values (constant
/// positions) occur often, exercising the const-generalization paths of the
/// merge.
fn grid_value() -> impl Strategy<Value = f64> {
    (-16i32..17).prop_map(|n| n as f64 / 4.0)
}

/// Local errors on the representable bits grid, straddling the default
/// 5-bit threshold.
fn local_error_value() -> impl Strategy<Value = f64> {
    prop_oneof![
        Just(0.0),
        Just(bits_error(1.0, 1.5)),
        Just(bits_error(1.0, 1e6))
    ]
}

fn observations() -> impl Strategy<Value = Vec<Observation>> {
    proptest::collection::vec(
        (grid_value(), grid_value(), local_error_value(), 0u8..3)
            .prop_map(|(a, b, err, shape)| Observation { a, b, err, shape }),
        1..14,
    )
}

/// Turns fractions of the list length into two ordered split points.
fn split_points(len: usize, cut: (usize, usize)) -> (usize, usize) {
    let i = cut.0 * (len + 1) / 100;
    let j = cut.1 * (len + 1) / 100;
    (i.min(j).min(len), i.max(j).min(len))
}

fn trace_for(obs: &Observation) -> Arc<ConcreteExpr> {
    let loc = SourceLoc::default();
    let leaf_a = ConcreteExpr::leaf(obs.a);
    let leaf_b = ConcreteExpr::leaf(obs.b);
    match obs.shape {
        0 => ConcreteExpr::node(RealOp::Add, obs.a + obs.b, vec![leaf_a, leaf_b], 0, loc),
        1 => {
            let sqrt = ConcreteExpr::node(
                RealOp::Sqrt,
                obs.b.abs().sqrt(),
                vec![ConcreteExpr::leaf(obs.b.abs())],
                1,
                loc.clone(),
            );
            ConcreteExpr::node(
                RealOp::Add,
                obs.a + obs.b.abs().sqrt(),
                vec![leaf_a, sqrt],
                0,
                loc,
            )
        }
        _ => {
            let square = ConcreteExpr::node(
                RealOp::Mul,
                obs.a * obs.a,
                vec![leaf_a.clone(), leaf_a],
                1,
                loc.clone(),
            );
            ConcreteExpr::node(
                RealOp::Add,
                obs.a * obs.a + obs.b,
                vec![square, leaf_b],
                0,
                loc,
            )
        }
    }
}

/// Accumulates a shard's observations into one record, the way the analysis
/// does at a single program counter.
fn build_record(observations: &[Observation], config: &AnalysisConfig) -> OpRecord {
    let mut record = OpRecord::new(RealOp::Add, SourceLoc::default(), config);
    for obs in observations {
        let erroneous = obs.err > config.local_error_threshold;
        record.record(&trace_for(obs), obs.err, erroneous, config);
    }
    record
}

/// The report-visible state of a record: everything the `Report` derives
/// from it. Variable-summary `count` fields are deliberately excluded — they
/// are not reported, and const-position multiplicities are not preserved by
/// merging (nor do they need to be).
fn projection(record: &OpRecord) -> String {
    format!(
        "{:?}|{}|{}|{}|{:?}|{:?}|example {:?}|{:?}|{:?}",
        record.op,
        record.total,
        record.erroneous,
        record.max_local_error,
        record.total_local_error,
        record.generalizer.current(),
        record.example_problematic.as_ref().map(|e| e.value()),
        summary_projection(record, true, true),
        summary_projection(record, false, true),
    )
}

/// Like [`projection`] but without the fields that intentionally prefer the
/// earlier shard (example values, the example problematic trace), which are
/// the only asymmetry of the merge.
fn symmetric_projection(record: &OpRecord) -> String {
    format!(
        "{:?}|{}|{}|{}|{:?}|{:?}|{:?}|{:?}",
        record.op,
        record.total,
        record.erroneous,
        record.max_local_error,
        record.total_local_error,
        record.generalizer.current(),
        summary_projection(record, true, false),
        summary_projection(record, false, false),
    )
}

#[allow(clippy::type_complexity)]
fn summary_projection(
    record: &OpRecord,
    total: bool,
    with_example: bool,
) -> Vec<(usize, [Option<u64>; 7])> {
    let map = if total {
        &record.characteristics.total
    } else {
        &record.characteristics.problematic
    };
    map.iter()
        .map(|(&var, s)| {
            let bits = |v: Option<f64>| v.map(f64::to_bits);
            (
                var,
                [
                    bits(s.min),
                    bits(s.max),
                    bits(s.neg_min),
                    bits(s.neg_max),
                    bits(s.pos_min),
                    bits(s.pos_max),
                    bits(if with_example { s.example } else { None }),
                ],
            )
        })
        .collect()
}

/// A strategy producing well-formed numeric expressions over variables `a`
/// and `b`.
fn arb_expr(depth: u32) -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-100.0f64..100.0).prop_map(|v| Expr::Number((v * 8.0).round() / 8.0)),
        Just(Expr::var("a")),
        Just(Expr::var("b")),
    ];
    leaf.prop_recursive(depth, 32, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(x, y)| Expr::op(RealOp::Add, vec![x, y])),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| Expr::op(RealOp::Sub, vec![x, y])),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| Expr::op(RealOp::Mul, vec![x, y])),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| Expr::op(RealOp::Div, vec![x, y])),
            inner.clone().prop_map(|x| Expr::op(RealOp::Sqrt, vec![x])),
            inner.clone().prop_map(|x| Expr::op(RealOp::Fabs, vec![x])),
            (inner.clone(), inner.clone(), inner)
                .prop_map(|(x, y, z)| Expr::op(RealOp::Fma, vec![x, y, z])),
        ]
    })
}

//! Property-based tests over the core data structures and invariants.

use fpcore::{expr_to_string, parse_expr, Expr};
use fpvm::{compile_core, Machine};
use proptest::prelude::*;
use shadowreal::{bits_error, ordinal, ulps_between, BigFloat, DoubleDouble, Real, RealOp};

/// Finite, not-too-extreme doubles for arithmetic properties.
fn reasonable_f64() -> impl Strategy<Value = f64> {
    prop_oneof![
        -1e12f64..1e12,
        -1e3f64..1e3,
        -1.0f64..1.0,
        Just(0.0),
        Just(1.0),
        Just(-1.0),
    ]
}

proptest! {
    /// BigFloat round-trips every double exactly.
    #[test]
    fn bigfloat_roundtrips_doubles(x in any::<f64>()) {
        let b = BigFloat::from_f64(x);
        if x.is_nan() {
            prop_assert!(b.to_f64().is_nan());
        } else {
            prop_assert_eq!(b.to_f64().to_bits(), x.to_bits());
        }
    }

    /// BigFloat addition/multiplication agree with f64 to within an ulp of
    /// the f64 result (the f64 result is correctly rounded, the BigFloat
    /// result is far more precise, so rounding it back must land within one
    /// ulp).
    #[test]
    fn bigfloat_arithmetic_is_consistent_with_f64(a in reasonable_f64(), b in reasonable_f64()) {
        for op in [RealOp::Add, RealOp::Sub, RealOp::Mul] {
            let exact = BigFloat::apply(op, &[BigFloat::from_f64(a), BigFloat::from_f64(b)]);
            let float = f64::apply(op, &[a, b]);
            prop_assert!(ulps_between(exact.to_f64(), float) <= 1,
                "{op} {a} {b}: {} vs {float}", exact.to_f64());
        }
    }

    /// Division and square root are faithful too (where defined).
    #[test]
    fn bigfloat_div_sqrt_consistent(a in reasonable_f64(), b in reasonable_f64()) {
        if b != 0.0 {
            let exact = BigFloat::from_f64(a).div(&BigFloat::from_f64(b));
            prop_assert!(ulps_between(exact.to_f64(), a / b) <= 1);
        }
        if a >= 0.0 {
            let exact = BigFloat::from_f64(a).sqrt();
            prop_assert!(ulps_between(exact.to_f64(), a.sqrt()) <= 1);
        }
    }

    /// The double-double shadow agrees with f64 on basic arithmetic.
    #[test]
    fn doubledouble_consistent_with_f64(a in reasonable_f64(), b in reasonable_f64()) {
        for op in [RealOp::Add, RealOp::Sub, RealOp::Mul] {
            let dd = DoubleDouble::apply(op, &[DoubleDouble::from_f64(a), DoubleDouble::from_f64(b)]);
            let float = f64::apply(op, &[a, b]);
            prop_assert!(ulps_between(dd.to_f64(), float) <= 1);
        }
    }

    /// Bits-of-error is symmetric, non-negative, bounded, and zero iff the
    /// values are numerically identical.
    #[test]
    fn bits_error_metric_properties(a in any::<f64>(), b in any::<f64>()) {
        let e = bits_error(a, b);
        prop_assert!(e >= 0.0 && e <= shadowreal::MAX_ERROR_BITS);
        prop_assert_eq!(e.to_bits(), bits_error(b, a).to_bits());
        if !a.is_nan() && !b.is_nan() {
            prop_assert_eq!(e == 0.0, a == b || (a == 0.0 && b == 0.0));
        }
    }

    /// The ordinal mapping is monotone over non-NaN doubles.
    #[test]
    fn ordinal_is_monotone(a in any::<f64>(), b in any::<f64>()) {
        prop_assume!(!a.is_nan() && !b.is_nan());
        if a < b {
            prop_assert!(ordinal(a) <= ordinal(b));
        }
    }

    /// Printing and re-parsing an arbitrary generated expression is the
    /// identity (up to structural equality).
    #[test]
    fn printer_parser_roundtrip(expr in arb_expr(3)) {
        let printed = expr_to_string(&expr);
        let reparsed = parse_expr(&printed).expect("printed expressions parse");
        prop_assert_eq!(expr, reparsed, "printed: {}", printed);
    }

    /// The abstract machine computes the same result as the reference FPCore
    /// evaluator on arbitrary straight-line expressions.
    #[test]
    fn machine_matches_reference_on_random_expressions(
        expr in arb_expr(3),
        a in reasonable_f64(),
        b in reasonable_f64(),
    ) {
        let core = fpcore::FPCore {
            arguments: vec!["a".to_string(), "b".to_string()],
            name: None,
            pre: None,
            properties: Default::default(),
            body: expr,
        };
        let program = compile_core(&core, Default::default()).expect("compiles");
        let reference = fpcore::eval::eval_f64(&core, &[a, b]).expect("evaluates");
        let machine = Machine::new(&program).run(&[a, b]).expect("runs").outputs[0];
        if reference.is_nan() {
            prop_assert!(machine.is_nan());
        } else {
            prop_assert_eq!(machine, reference);
        }
    }

    /// The analysis never reports *more* erroneous spot evaluations than
    /// total evaluations, and flagged operations never exceed total
    /// operations.
    #[test]
    fn analysis_counts_are_consistent(exponent in 0i32..15, count in 1usize..8) {
        let core = fpcore::parse_core(
            "(FPCore (x) (- (sqrt (+ x 1)) (sqrt x)))",
        ).expect("parses");
        let program = compile_core(&core, Default::default()).expect("compiles");
        let inputs: Vec<Vec<f64>> = (0..count).map(|i| vec![10f64.powi(exponent) + i as f64]).collect();
        let report = herbgrind::analyze(&program, &inputs, &herbgrind::AnalysisConfig::default())
            .expect("analysis");
        prop_assert!(report.flagged_operations <= report.total_operations);
        for spot in &report.spots {
            prop_assert!(spot.erroneous <= spot.total);
            prop_assert!(spot.average_error_bits <= spot.max_error_bits + 1e-9);
        }
    }
}

/// A strategy producing well-formed numeric expressions over variables `a`
/// and `b`.
fn arb_expr(depth: u32) -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-100.0f64..100.0).prop_map(|v| Expr::Number((v * 8.0).round() / 8.0)),
        Just(Expr::var("a")),
        Just(Expr::var("b")),
    ];
    leaf.prop_recursive(depth, 32, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(x, y)| Expr::op(RealOp::Add, vec![x, y])),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| Expr::op(RealOp::Sub, vec![x, y])),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| Expr::op(RealOp::Mul, vec![x, y])),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| Expr::op(RealOp::Div, vec![x, y])),
            inner.clone().prop_map(|x| Expr::op(RealOp::Sqrt, vec![x])),
            inner.clone().prop_map(|x| Expr::op(RealOp::Fabs, vec![x])),
            (inner.clone(), inner.clone(), inner).prop_map(|(x, y, z)| Expr::op(RealOp::Fma, vec![x, y, z])),
        ]
    })
}

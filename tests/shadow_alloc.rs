//! Zero-allocation guarantee for steady-state shadow arithmetic.
//!
//! The shadow hot path re-executes every client operation in high precision;
//! PR 2 made the default-precision (256-bit) representation fully inline —
//! mantissas live in the value, kernels work on stack scratch windows. This
//! test pins that property with a counting global allocator: steady-state
//! 256-bit add/sub/mul/round must perform **zero** heap allocations, while
//! the heap fallback above 256 bits must still engage (which also proves the
//! counter is live).
//!
//! Everything is asserted from one `#[test]` function: the allocation counter
//! is process-global, and concurrent tests in the same binary would see each
//! other's allocations.

use shadowreal::{BigFloat, DoubleDouble, Real, RealOp};
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every allocation (alloc, alloc_zeroed, realloc) made through the
/// global allocator.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::SeqCst)
}

/// Runs `work` and returns how many heap allocations it performed.
fn allocations_during<R>(work: impl FnOnce() -> R) -> u64 {
    let before = allocations();
    black_box(work());
    allocations() - before
}

#[test]
fn steady_state_shadow_arithmetic_does_not_allocate() {
    // Operands at the default 256-bit precision, plus dense-mantissa values
    // (division results) so rounding paths are exercised, not just exact
    // short mantissas.
    let a = BigFloat::from_f64(std::f64::consts::PI);
    let b = BigFloat::from_f64(std::f64::consts::E * 1.5e-3);
    let dense = BigFloat::one().div(&BigFloat::from_i64(3));
    assert_eq!(a.precision(), 256, "default precision changed; update test");

    // Warm up every measured path once (lazily initialized statics, lookup
    // tables) before snapshotting the counter.
    black_box(
        a.add(&b)
            .mul(&dense)
            .sub(&a)
            .with_precision(256)
            .round_nearest(),
    );

    // Steady-state 256-bit add/sub/mul/round: zero heap allocations.
    let ops = allocations_during(|| {
        let mut acc = a.clone();
        for _ in 0..256 {
            acc = acc.add(&b);
            acc = acc.mul(&dense);
            acc = acc.sub(&b);
            acc = acc.with_precision(256);
            acc = acc.round_nearest();
        }
        acc
    });
    assert_eq!(ops, 0, "steady-state 256-bit shadow arithmetic allocated");

    // The Newton/reciprocal kernels run on stack scratch windows: 256-bit
    // division, square root, and the exp series (including its staged
    // working precision and cached-constant lookups) must stay
    // allocation-free after the constant caches are warm.
    black_box(a.div(&dense).abs().sqrt().exp());
    let kernels = allocations_during(|| {
        let mut acc = a.clone();
        for _ in 0..64 {
            acc = acc.div(&dense);
            acc = acc.abs().sqrt();
            acc = acc.add(&b);
        }
        acc
    });
    assert_eq!(kernels, 0, "steady-state 256-bit div/sqrt allocated");
    let series = allocations_during(|| {
        let mut acc = b.clone();
        for _ in 0..8 {
            acc = acc.exp().with_precision(256).sub(&BigFloat::one());
        }
        acc
    });
    assert_eq!(series, 0, "steady-state 256-bit exp allocated");

    // Comparisons, truncation, sign operations and f64 conversion ride the
    // same guarantee.
    let auxiliary = allocations_during(|| {
        let mut observed = 0u32;
        for _ in 0..64 {
            observed += (a.partial_cmp(&b) == Some(std::cmp::Ordering::Greater)) as u32;
            observed += a.trunc().is_integer() as u32;
            observed += (a.neg().abs().to_f64() == a.to_f64()) as u32;
        }
        observed
    });
    assert_eq!(auxiliary, 0, "auxiliary 256-bit operations allocated");

    // The double-double fast shadow is a pair of f64s and must not allocate
    // either.
    let dd = allocations_during(|| {
        let x = DoubleDouble::from_f64(1.0e16);
        let y = DoubleDouble::from_f64(1.0);
        let mut acc = x;
        for _ in 0..128 {
            acc = DoubleDouble::apply(RealOp::Add, &[acc, y]);
            acc = DoubleDouble::apply(RealOp::Mul, &[acc, y]);
        }
        acc
    });
    assert_eq!(dd, 0, "DoubleDouble arithmetic allocated");

    // Sanity: the counter is live, and precisions beyond four limbs take the
    // heap fallback as designed.
    let wide = allocations_during(|| {
        let w = BigFloat::from_f64_prec(std::f64::consts::PI, 1024);
        w.add(&BigFloat::from_f64_prec(1.0, 1024))
    });
    assert!(
        wide > 0,
        "1024-bit arithmetic should engage the heap fallback"
    );
}

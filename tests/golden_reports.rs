//! Golden-file regression tests: the rendered `Report` text for four suite
//! benchmarks under a fixed sampling seed, snapshotted in `tests/golden/`.
//!
//! These pin the *entire* user-visible analysis output — spot ordering,
//! error-bit figures, symbolic expressions, preconditions, example inputs —
//! so a refactor that silently changes analysis behaviour fails here even if
//! every structural assertion elsewhere still passes.
//!
//! To regenerate after an *intentional* output change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p herbgrind-repro --test golden_reports
//! ```
//!
//! and review the diff like any other code change.

use herbgrind::AnalysisConfig;
use std::path::PathBuf;

const SAMPLES: usize = 40;
const SEED: u64 = 2024;

/// Benchmarks chosen to cover the report surface: two cancellation kernels
/// with root causes and preconditions, a mixed polynomial, and a clean
/// benchmark whose report is the "no significant error" form.
const GOLDEN_BENCHMARKS: [(&str, &str); 4] = [
    ("NMSE example 3.1", "nmse_example_3_1.txt"),
    ("NMSE section 3.5", "nmse_section_3_5.txt"),
    ("NMSE problem 3.3.6", "nmse_problem_3_3_6.txt"),
    ("verhulst", "verhulst.txt"),
];

fn golden_path(file: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(file)
}

fn rendered_report(benchmark: &str) -> String {
    let core = fpbench::by_name(benchmark)
        .unwrap_or_else(|| panic!("benchmark {benchmark} not in the suite"));
    let prepared = fpbench::prepare(&core, SAMPLES, SEED)
        .unwrap_or_else(|e| panic!("{benchmark}: prepare failed: {e}"));
    let report = prepared
        .run_herbgrind(&AnalysisConfig::default())
        .unwrap_or_else(|e| panic!("{benchmark}: analysis failed: {e}"));
    report.to_text()
}

#[test]
fn reports_match_golden_files() {
    let update = std::env::var_os("UPDATE_GOLDEN").is_some();
    let mut mismatches = Vec::new();
    for (benchmark, file) in GOLDEN_BENCHMARKS {
        let rendered = rendered_report(benchmark);
        let path = golden_path(file);
        if update {
            std::fs::write(&path, &rendered)
                .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
            continue;
        }
        let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden file {} ({e}); run with UPDATE_GOLDEN=1 to create it",
                path.display()
            )
        });
        if rendered != expected {
            mismatches.push(format!(
                "--- {benchmark} ({file}) ---\nexpected:\n{expected}\ngot:\n{rendered}"
            ));
        }
    }
    assert!(
        mismatches.is_empty(),
        "golden report mismatch; if the change is intentional, regenerate with \
         UPDATE_GOLDEN=1 and review the diff\n\n{}",
        mismatches.join("\n")
    );
}

#[test]
fn golden_reports_are_independent_of_thread_count() {
    // The same four benchmarks through an explicitly multi-threaded run:
    // parallelism must not be able to invalidate the golden files.
    for (benchmark, _) in GOLDEN_BENCHMARKS {
        let core = fpbench::by_name(benchmark).unwrap();
        let prepared = fpbench::prepare(&core, SAMPLES, SEED).unwrap();
        let serial = prepared
            .run_herbgrind(&AnalysisConfig::default().with_threads(1))
            .unwrap();
        let parallel = prepared
            .run_herbgrind(&AnalysisConfig::default().with_threads(6))
            .unwrap();
        assert_eq!(serial.to_text(), parallel.to_text(), "{benchmark}");
    }
}

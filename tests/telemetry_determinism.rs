//! Determinism contracts of the sweep telemetry layer:
//!
//! 1. **Order-independent metrics are execution-plan-invariant** — every
//!    counter the registry marks *stable* (machine steps, shadow op counts
//!    by kind, `BigFloat` division dispatch, tier verdicts and escalation
//!    causes, quarantine totals) is identical across thread counts and
//!    batch widths. Width-dependent metrics (pass counts, divergence
//!    events, interner traffic, cache hits) are deliberately excluded from
//!    the stable set.
//! 2. **Telemetry never feeds back into analysis** — the report is
//!    bit-identical with telemetry on and off, for all four driver
//!    families, and the `*_telemetry` wrappers return the same report as
//!    the plain drivers.
//! 3. **The JSON rendering is schema-stable** — fixed schema name and
//!    version, every registered metric present.

use herbgrind::{
    analyze, analyze_batched, analyze_batched_telemetry, analyze_parallel_telemetry,
    analyze_telemetry, analyze_tiered, analyze_tiered_isolated_telemetry, analyze_tiered_telemetry,
    telemetry_to_json, AnalysisConfig, Report, SweepTelemetry, TelemetryMode,
};

fn assert_reports_identical(a: &Report, b: &Report, context: &str) {
    assert_eq!(
        format!("{a:?}"),
        format!("{b:?}"),
        "structural mismatch: {context}"
    );
    assert_eq!(a.to_text(), b.to_text(), "rendered mismatch: {context}");
}

fn assert_stable_counters_match(a: &SweepTelemetry, b: &SweepTelemetry, context: &str) {
    assert_eq!(
        a.stable_counters(),
        b.stable_counters(),
        "stable counters diverge: {context}"
    );
}

#[test]
fn stable_counters_are_thread_count_invariant() {
    let core = fpbench::by_name("NMSE example 3.1").expect("benchmark present");
    let prepared = fpbench::prepare(&core, 32, 2026).expect("prepare");
    let baseline_config = AnalysisConfig::default()
        .with_threads(1)
        .with_telemetry(TelemetryMode::On);
    let (_, baseline) =
        analyze_parallel_telemetry(&prepared.program, &prepared.inputs, &baseline_config)
            .expect("threads=1");
    assert!(baseline.counter("fpvm.steps") > 0);
    for threads in [2usize, 4] {
        let config = AnalysisConfig::default()
            .with_threads(threads)
            .with_telemetry(TelemetryMode::On);
        let (_, tel) = analyze_parallel_telemetry(&prepared.program, &prepared.inputs, &config)
            .unwrap_or_else(|e| panic!("threads={threads}: {e:?}"));
        assert_stable_counters_match(&baseline, &tel, &format!("{threads} threads vs 1"));
    }
}

#[test]
fn stable_counters_are_batch_width_invariant() {
    let core = fpbench::by_name("NMSE example 3.1").expect("benchmark present");
    let prepared = fpbench::prepare(&core, 32, 2026).expect("prepare");
    let baseline_config = AnalysisConfig::default()
        .with_batch_width(1)
        .with_telemetry(TelemetryMode::On);
    let (_, baseline) =
        analyze_batched_telemetry(&prepared.program, &prepared.inputs, &baseline_config)
            .expect("width=1");
    assert!(baseline.counter("fpvm.steps") > 0);
    for width in [4usize, 8] {
        let config = AnalysisConfig::default()
            .with_batch_width(width)
            .with_telemetry(TelemetryMode::On);
        let (_, tel) = analyze_batched_telemetry(&prepared.program, &prepared.inputs, &config)
            .unwrap_or_else(|e| panic!("width={width}: {e:?}"));
        assert_stable_counters_match(&baseline, &tel, &format!("width {width} vs 1"));
    }
}

#[test]
fn tiered_stable_counters_are_batch_width_invariant() {
    let core = fpbench::by_name("NMSE example 3.1").expect("benchmark present");
    let prepared = fpbench::prepare(&core, 32, 2026).expect("prepare");
    let mut snapshots = Vec::new();
    for width in [1usize, 4, 8] {
        let config = AnalysisConfig::default()
            .with_batch_width(width)
            .with_telemetry(TelemetryMode::On);
        let (_, tel) = analyze_tiered_telemetry(&prepared.program, &prepared.inputs, &config)
            .unwrap_or_else(|e| panic!("width={width}: {e:?}"));
        snapshots.push((width, tel));
    }
    let (_, baseline) = &snapshots[0];
    let total =
        baseline.counter("tiered.inputs_certified") + baseline.counter("tiered.inputs_escalated");
    assert_eq!(total, prepared.inputs.len() as u64, "tier verdict totals");
    for (width, tel) in &snapshots[1..] {
        assert_stable_counters_match(baseline, tel, &format!("tiered width {width} vs 1"));
    }
}

#[test]
fn reports_are_bit_identical_with_telemetry_on_and_off() {
    let core = fpbench::by_name("NMSE example 3.1").expect("benchmark present");
    let prepared = fpbench::prepare(&core, 24, 7).expect("prepare");
    let off = AnalysisConfig::default();
    let on = AnalysisConfig::default().with_telemetry(TelemetryMode::On);

    let plain = analyze(&prepared.program, &prepared.inputs, &off).expect("serial");
    let (serial_off, tel_off) =
        analyze_telemetry(&prepared.program, &prepared.inputs, &off).expect("serial off");
    let (serial_on, tel_on) =
        analyze_telemetry(&prepared.program, &prepared.inputs, &on).expect("serial on");
    assert!(!tel_off.enabled);
    assert!(tel_on.enabled);
    assert_reports_identical(&plain, &serial_off, "serial wrapper vs plain");
    assert_reports_identical(&serial_off, &serial_on, "serial on vs off");

    let (parallel_off, _) =
        analyze_parallel_telemetry(&prepared.program, &prepared.inputs, &off).expect("par off");
    let (parallel_on, _) =
        analyze_parallel_telemetry(&prepared.program, &prepared.inputs, &on).expect("par on");
    assert_reports_identical(&parallel_off, &parallel_on, "parallel on vs off");
    assert_reports_identical(&plain, &parallel_on, "parallel vs serial");

    let plain_batched =
        analyze_batched(&prepared.program, &prepared.inputs, &off).expect("batched");
    let (batched_off, _) =
        analyze_batched_telemetry(&prepared.program, &prepared.inputs, &off).expect("batched off");
    let (batched_on, _) =
        analyze_batched_telemetry(&prepared.program, &prepared.inputs, &on).expect("batched on");
    assert_reports_identical(&plain_batched, &batched_off, "batched wrapper vs plain");
    assert_reports_identical(&batched_off, &batched_on, "batched on vs off");

    let plain_tiered = analyze_tiered(&prepared.program, &prepared.inputs, &off).expect("tiered");
    let (tiered_off, _) =
        analyze_tiered_telemetry(&prepared.program, &prepared.inputs, &off).expect("tiered off");
    let (tiered_on, _) =
        analyze_tiered_telemetry(&prepared.program, &prepared.inputs, &on).expect("tiered on");
    assert_reports_identical(&plain_tiered, &tiered_off, "tiered wrapper vs plain");
    assert_reports_identical(&tiered_off, &tiered_on, "tiered on vs off");
}

#[test]
fn isolated_driver_reports_are_bit_identical_with_telemetry_on_and_off() {
    let core = fpbench::by_name("NMSE example 3.1").expect("benchmark present");
    let prepared = fpbench::prepare(&core, 24, 7).expect("prepare");
    let off = AnalysisConfig::default();
    let on = AnalysisConfig::default().with_telemetry(TelemetryMode::On);
    let (report_off, tel_off) =
        analyze_tiered_isolated_telemetry(&prepared.program, &prepared.inputs, &off);
    let (report_on, tel_on) =
        analyze_tiered_isolated_telemetry(&prepared.program, &prepared.inputs, &on);
    assert!(!tel_off.enabled);
    assert!(tel_on.enabled);
    assert_reports_identical(&report_off, &report_on, "tiered isolated on vs off");
    assert_eq!(
        tel_on.counter("tiered.inputs_certified") + tel_on.counter("tiered.inputs_escalated"),
        prepared.inputs.len() as u64
    );
}

#[test]
fn json_rendering_is_schema_stable() {
    let core = fpbench::by_name("NMSE example 3.1").expect("benchmark present");
    let prepared = fpbench::prepare(&core, 16, 7).expect("prepare");
    let config = AnalysisConfig::default().with_telemetry(TelemetryMode::On);
    let (_, tel) =
        analyze_tiered_telemetry(&prepared.program, &prepared.inputs, &config).expect("tiered");
    let json = telemetry_to_json(&tel);
    assert!(
        json.contains("\"schema\": \"herbgrind-sweep-telemetry\""),
        "{json}"
    );
    assert!(json.contains("\"version\": 1"), "{json}");
    assert!(json.contains("\"enabled\": true"), "{json}");
    for (name, _) in tel.counters() {
        assert!(
            json.contains(&format!("\"{name}\"")),
            "missing counter {name}"
        );
    }
    for name in ["sweep", "certify", "tier_dd", "tier_bigfloat", "report"] {
        assert!(
            json.contains(&format!("\"{name}\"")),
            "missing phase {name}"
        );
    }
    // A disabled snapshot renders the same schema with enabled: false.
    let disabled = telemetry_to_json(&SweepTelemetry::disabled());
    assert!(disabled.contains("\"schema\": \"herbgrind-sweep-telemetry\""));
    assert!(disabled.contains("\"enabled\": false"));
}

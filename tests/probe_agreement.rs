//! Probe/analysis agreement: the lane-vectorized [`DdErrorProbe`] counts
//! local error in integer ulps, while the full analysis compares rounded
//! bits (`bits_error(float, exact) > T`). The probe's threshold conversion
//! (`bits > T ⟺ ulps > 2^T − 1`, taken from the analysis's own rounded
//! formula rather than the exact identity) must make the two decisions agree
//! on every execution — fractional thresholds, NaN lanes, and infinity
//! lanes included — so that probe-first triage never disagrees with the
//! analysis it gates.

use fpvm::Machine;
use herbgrind::{analyze_tiered_with_stats, probe_local_error, AnalysisConfig, Herbgrind};
use shadowreal::{BigFloat, DoubleDouble};

fn program(src: &str) -> fpvm::Program {
    fpvm::compile_core(&fpcore::parse_core(src).unwrap(), Default::default()).unwrap()
}

/// Runs the full `DoubleDouble` analysis serially and asserts the probe's
/// per-statement execution and erroneous counts (and maximum error) match
/// the analysis's operation records exactly.
fn assert_probe_matches_analysis(src: &str, inputs: &[Vec<f64>], threshold: f64) {
    let p = program(src);
    // Compensation detection suppresses record updates for detected
    // compensations, which the probe (by design) does not model — disable it
    // so both sides count every execution.
    let config = AnalysisConfig {
        local_error_threshold: threshold,
        detect_compensation: false,
        ..AnalysisConfig::default()
    };
    let mut analysis = Herbgrind::<DoubleDouble>::new(config);
    let machine = Machine::new(&p);
    for input in inputs {
        machine.run_traced(input, &mut analysis).unwrap();
    }
    let records = analysis.op_records();
    let summary = probe_local_error::<4>(&p, inputs, threshold).unwrap();

    let context = |pc: usize| format!("{src} @ pc {pc}, threshold {threshold}");
    assert_eq!(
        summary.statements.len(),
        records.len(),
        "{src}, threshold {threshold}: statement sets differ"
    );
    let mut total_ops = 0;
    for row in &summary.statements {
        let record = records
            .get(&row.pc)
            .unwrap_or_else(|| panic!("no analysis record: {}", context(row.pc)));
        assert_eq!(row.executions, record.total, "{}", context(row.pc));
        assert_eq!(row.erroneous, record.erroneous, "{}", context(row.pc));
        assert_eq!(
            row.max_error_bits,
            record.max_local_error,
            "{}",
            context(row.pc)
        );
        total_ops += row.executions;
    }
    assert_eq!(summary.total_ops, total_ops);
}

const THRESHOLDS: [f64; 8] = [-1.0, 0.0, 0.3, 4.5, 5.0, 20.0, 63.5, 64.0];

#[test]
fn probe_agrees_on_catastrophic_cancellation() {
    let inputs: Vec<Vec<f64>> = (0..26).map(|i| vec![10f64.powi(i)]).collect();
    for threshold in THRESHOLDS {
        assert_probe_matches_analysis(
            "(FPCore (x) (- (sqrt (+ x 1)) (sqrt x)))",
            &inputs,
            threshold,
        );
    }
}

#[test]
fn probe_agrees_on_nan_and_infinity_lanes() {
    // sqrt of negatives (NaN in both the float and the shadow), division by
    // zero (infinities), and 0 · ∞ (a NaN appearing mid-expression): the
    // ulps counters saturate and must still land on the analysis's side of
    // the threshold, including at the 64-bit clamp.
    let inputs: Vec<Vec<f64>> = vec![
        vec![-1.0],
        vec![4.0],
        vec![0.0],
        vec![-9.0],
        vec![1e-300],
        vec![f64::INFINITY],
        vec![2.5],
    ];
    for threshold in THRESHOLDS {
        assert_probe_matches_analysis("(FPCore (x) (sqrt x))", &inputs, threshold);
        assert_probe_matches_analysis("(FPCore (x) (* x (/ 1 x)))", &inputs, threshold);
    }
}

/// Conservativeness of the certify probe: whenever the tiered driver
/// certifies an input for the `DoubleDouble` tier, the full single-input
/// `DoubleDouble` analysis must be bit-identical to the single-input
/// `BigFloat` analysis. This checks the certificate's superset property
/// input by input — not just that the merged tiered report comes out right,
/// but that no certified input *individually* depends on escalation.
fn assert_certification_is_conservative(src: &str, inputs: &[Vec<f64>], config: &AnalysisConfig) {
    use herbgrind::analyze_with_shadow;
    let p = program(src);
    let mut certified = 0usize;
    for (i, input) in inputs.iter().enumerate() {
        let single = std::slice::from_ref(input);
        let Ok((_, stats)) = analyze_tiered_with_stats(&p, single, config) else {
            continue;
        };
        if stats.certified_inputs == 0 {
            continue;
        }
        certified += 1;
        let dd = analyze_with_shadow::<DoubleDouble>(&p, single, config).unwrap();
        let big = analyze_with_shadow::<BigFloat>(&p, single, config).unwrap();
        assert_eq!(
            format!("{dd:?}"),
            format!("{big:?}"),
            "{src}: input {i} ({input:?}) was certified but the DoubleDouble \
             analysis diverges from BigFloat"
        );
    }
    assert!(certified > 0, "{src}: no input certified — vacuous check");
}

#[test]
fn certified_inputs_never_need_the_bigfloat_tier() {
    let cancel: Vec<Vec<f64>> = (0..26).map(|i| vec![10f64.powi(i)]).collect();
    let mixed: Vec<Vec<f64>> = vec![
        vec![-1.0],
        vec![4.0],
        vec![0.0],
        vec![1e-300],
        vec![f64::INFINITY],
        vec![2.5],
    ];
    let loops: Vec<Vec<f64>> = (1..11).map(|i| vec![f64::from(i * 6)]).collect();
    for threshold in [0.5, 5.0, 40.0] {
        let config = AnalysisConfig {
            local_error_threshold: threshold,
            ..AnalysisConfig::default()
        };
        assert_certification_is_conservative(
            "(FPCore (x) (- (sqrt (+ x 1)) (sqrt x)))",
            &cancel,
            &config,
        );
        assert_certification_is_conservative("(FPCore (x) (* x (/ 1 x)))", &mixed, &config);
        assert_certification_is_conservative(
            "(FPCore (n) (while (< i n) ((s 0 (+ s (/ 1 i))) (i 1 (+ i 1))) s))",
            &loops,
            &config,
        );
    }
    // Compensation detection adds its own certified decisions (§5.3
    // pass-through equality); exercise it on a compensated sum.
    assert_certification_is_conservative(
        "(FPCore (a b) (- b (- (- (+ a b) a) b)))",
        &(1..16)
            .map(|i| vec![f64::from(i) * 1e9, 1.0 / f64::from(i)])
            .collect::<Vec<_>>(),
        &AnalysisConfig::default(),
    );
}

#[test]
fn probe_agrees_on_divergent_loops() {
    // Per-lane trip counts differ, so lane groups split and reconverge while
    // the counters accumulate.
    let inputs: Vec<Vec<f64>> = (1..11).map(|i| vec![(i * 6) as f64]).collect();
    for threshold in [0.3, 4.5, 5.0] {
        assert_probe_matches_analysis(
            "(FPCore (n) (while (< i n) ((s 0 (+ s (/ 1 i))) (i 1 (+ i 1))) s))",
            &inputs,
            threshold,
        );
    }
}

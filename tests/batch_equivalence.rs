//! Batch-equivalence suite: `analyze_batched` must be interchangeable with
//! serial `analyze` — **bit-identical reports** — for every batch width,
//! every shadow representation, divergent control flow included.
//!
//! The batched engine replays each lane's serial statement sequence (the
//! lane-mask scheduler only changes the interleaving *between* lanes), each
//! lane owns a full analysis shard, and lane shards merge in contiguous
//! input order — so equivalence reduces to the same merge theorem the
//! parallel engine relies on, plus the bit-identity contract of the
//! lane-vectorized shadow kernels. This suite pins all of it end to end:
//! fixed programs chosen for divergence and special cases, the benchmark
//! suite, random programs over random sweeps, every configuration knob, and
//! the vectorized `DoubleDouble` kernels against their scalar versions.

use fpcore::Expr;
use fpvm::compile_core;
use herbgrind::{analyze, analyze_batched, analyze_batched_with_shadow, analyze_parallel};
use herbgrind::{analyze_with_shadow, AnalysisConfig, RangeKind};
use proptest::prelude::*;
use shadowreal::{dd_batch, DdLanes, DoubleDouble, Real, RealOp};

/// The widths the acceptance contract calls out: every supported power of
/// two (16 included — the widest compiled engine, which stresses the
/// group-shared trace layer's stack buffers and mask handling hardest),
/// plus a prime width whose uneven chunking exercises remainder lanes.
const WIDTHS: [usize; 6] = [1, 2, 4, 8, 13, 16];

fn assert_batched_matches_serial(
    program: &fpvm::Program,
    inputs: &[Vec<f64>],
    config: &AnalysisConfig,
    context: &str,
) {
    let serial = analyze(program, inputs, &config.clone().with_threads(1));
    for width in WIDTHS {
        let batched = analyze_batched(
            program,
            inputs,
            &config.clone().with_threads(1).with_batch_width(width),
        );
        match (&serial, &batched) {
            (Ok(serial), Ok(batched)) => {
                assert_eq!(
                    format!("{serial:?}"),
                    format!("{batched:?}"),
                    "reports diverged: {context}, width {width}"
                );
                assert_eq!(
                    serial.to_text(),
                    batched.to_text(),
                    "rendered reports diverged: {context}, width {width}"
                );
            }
            (serial, batched) => {
                assert_eq!(
                    format!("{:?}", serial.as_ref().err()),
                    format!("{:?}", batched.as_ref().err()),
                    "errors diverged: {context}, width {width}"
                );
            }
        }
    }
}

fn compile(src: &str) -> fpvm::Program {
    compile_core(&fpcore::parse_core(src).unwrap(), Default::default()).unwrap()
}

#[test]
fn batched_matches_serial_on_divergence_heavy_programs() {
    // Loop trip counts that differ per lane, data-dependent if/else arms,
    // branch divergence between float and shadow control flow, NaN
    // outputs, and Kahan-style compensation — the cases where per-lane
    // state could plausibly bleed across lanes.
    let cases: &[(&str, Vec<Vec<f64>>)] = &[
        (
            "(FPCore (x) (- (sqrt (+ x 1)) (sqrt x)))",
            (0..30).map(|i| vec![10f64.powi(i)]).collect(),
        ),
        (
            "(FPCore (n) (while (< i n) ((s 0 (+ s (/ 1 i))) (i 1 (+ i 1))) s))",
            (0..17).map(|i| vec![(i * 7 % 40) as f64]).collect(),
        ),
        (
            "(FPCore (x) (if (< x 0) (sqrt (- 0 x)) (- (sqrt (+ x 1)) (sqrt x))))",
            (-12..12i32)
                .map(|i| vec![f64::from(i) * 10f64.powi(i.abs())])
                .collect(),
        ),
        (
            // The PID-controller pattern: the shadow disagrees with the
            // float loop exit, so branch divergences must accumulate
            // identically per lane.
            "(FPCore (n) (while (< t n) ((t 0 (+ t 0.2)) (c 0 (+ c 1))) c))",
            (1..9).map(|i| vec![i as f64 * 2.5]).collect(),
        ),
        (
            "(FPCore (x) (sqrt x))",
            vec![vec![-1.0], vec![4.0], vec![-9.0], vec![2.0], vec![0.0]],
        ),
        (
            // Fast2Sum compensation: detection must fire in the same lanes.
            "(FPCore (a b)
               (let* ((s (+ a b)) (t (- s a)) (e (- b t)) (r (+ s e))
                      (bad (- (+ a 1) a)))
                 (* r bad)))",
            (0..20)
                .map(|i| vec![10f64.powi(i), 1.0 + (i as f64) * 0.125])
                .collect(),
        ),
    ];
    for (src, inputs) in cases {
        let program = compile(src);
        assert_batched_matches_serial(&program, inputs, &AnalysisConfig::default(), src);
        let sensitive = AnalysisConfig::default().with_local_error_threshold(1.0);
        assert_batched_matches_serial(&program, inputs, &sensitive, src);
    }
}

#[test]
fn batched_matches_serial_for_every_shadow_representation() {
    let program = compile("(FPCore (x) (- (+ x 1) x))");
    let inputs: Vec<Vec<f64>> = (0..20).map(|i| vec![10f64.powi(i)]).collect();
    for width in WIDTHS {
        let config = AnalysisConfig::default()
            .with_threads(1)
            .with_batch_width(width);
        let dd_serial = analyze_with_shadow::<DoubleDouble>(&program, &inputs, &config).unwrap();
        let dd_batched =
            analyze_batched_with_shadow::<DoubleDouble>(&program, &inputs, &config).unwrap();
        assert_eq!(
            format!("{dd_serial:?}"),
            format!("{dd_batched:?}"),
            "DoubleDouble, width {width}"
        );
        let f_serial = analyze_with_shadow::<f64>(&program, &inputs, &config).unwrap();
        let f_batched = analyze_batched_with_shadow::<f64>(&program, &inputs, &config).unwrap();
        assert_eq!(
            format!("{f_serial:?}"),
            format!("{f_batched:?}"),
            "f64, width {width}"
        );
    }
}

#[test]
fn batched_matches_serial_for_every_configuration_knob() {
    let program = compile("(FPCore (x) (- (sqrt (+ x 1)) (sqrt x)))");
    let inputs: Vec<Vec<f64>> = (0..20).map(|i| vec![10f64.powi(i)]).collect();
    let configs = [
        AnalysisConfig::fpdebug_like(),
        AnalysisConfig::default().with_local_error_threshold(1.0),
        AnalysisConfig::default().with_max_expression_depth(1),
        AnalysisConfig::default().with_max_expression_depth(3),
        AnalysisConfig::default().with_range_kind(RangeKind::Single),
        AnalysisConfig::default().with_range_kind(RangeKind::None),
        AnalysisConfig::default().with_compensation_detection(false),
        AnalysisConfig {
            shadow_precision: 64,
            ..AnalysisConfig::default()
        },
    ];
    for (i, config) in configs.into_iter().enumerate() {
        assert_batched_matches_serial(&program, &inputs, &config, &format!("config {i}"));
    }
}

#[test]
fn batched_matches_serial_on_the_benchmark_suite() {
    for core in fpbench::subset(8) {
        let name = core.display_name().to_string();
        let prepared = fpbench::prepare(&core, 26, 2024).expect("prepare");
        let config = AnalysisConfig::default().with_threads(1);
        let serial = analyze(&prepared.program, &prepared.inputs, &config).unwrap();
        for width in [4usize, 13] {
            let batched = analyze_batched(
                &prepared.program,
                &prepared.inputs,
                &config.clone().with_batch_width(width),
            )
            .unwrap();
            assert_eq!(
                format!("{serial:?}"),
                format!("{batched:?}"),
                "{name}, width {width}"
            );
        }
    }
}

#[test]
fn all_three_drivers_are_interchangeable() {
    // analyze / analyze_parallel / analyze_batched on the same sweep, with
    // threads and lanes composed, all bit-identical.
    let program = compile("(FPCore (x y) (- (sqrt (+ (* x x) (* y y))) x))");
    let inputs: Vec<Vec<f64>> = (1..50)
        .map(|i| vec![0.25 / i as f64, 1e-9 / i as f64])
        .collect();
    let serial = analyze(
        &program,
        &inputs,
        &AnalysisConfig::default().with_threads(1),
    )
    .unwrap();
    let parallel = analyze_parallel(
        &program,
        &inputs,
        &AnalysisConfig::default().with_threads(4),
    )
    .unwrap();
    let batched_threaded = analyze_batched(
        &program,
        &inputs,
        &AnalysisConfig::default()
            .with_threads(4)
            .with_batch_width(8),
    )
    .unwrap();
    assert_eq!(format!("{serial:?}"), format!("{parallel:?}"));
    assert_eq!(format!("{serial:?}"), format!("{batched_threaded:?}"));
}

#[test]
fn width_plus_one_sweeps_stay_bit_identical_and_fill_lanes() {
    // Chunking regression: a sweep of W+1 inputs used to ceil-chunk into
    // fewer chunks than lanes (idling some entirely); the balanced partition
    // must keep the report bit-identical while giving every lane work. The
    // divergent-loop program makes per-lane state (and any cross-lane bleed)
    // visible in the report.
    let program = compile("(FPCore (n) (while (< i n) ((s 0 (+ s (/ 1 i))) (i 1 (+ i 1))) s))");
    for width in WIDTHS {
        let inputs: Vec<Vec<f64>> = (0..=width as i32)
            .map(|i| vec![f64::from(i * 7 % 23)])
            .collect();
        assert_batched_matches_serial(
            &program,
            &inputs,
            &AnalysisConfig::default(),
            &format!("{} inputs at width {width}", width + 1),
        );
    }
    // Threads hit the same partition: 9 inputs over 8 threads composed with
    // 4-wide lanes.
    let inputs: Vec<Vec<f64>> = (0..9).map(|i| vec![f64::from(i * 5 % 17)]).collect();
    let serial = analyze(
        &program,
        &inputs,
        &AnalysisConfig::default().with_threads(1),
    )
    .unwrap();
    let sharded = analyze_batched(
        &program,
        &inputs,
        &AnalysisConfig::default()
            .with_threads(8)
            .with_batch_width(4),
    )
    .unwrap();
    assert_eq!(format!("{serial:?}"), format!("{sharded:?}"));
}

#[test]
fn unsupported_widths_fall_back_without_changing_reports() {
    let program = compile("(FPCore (x) (- (sqrt (+ x 1)) (sqrt x)))");
    let inputs: Vec<Vec<f64>> = (0..15).map(|i| vec![10f64.powi(i)]).collect();
    let serial = analyze(
        &program,
        &inputs,
        &AnalysisConfig::default().with_threads(1),
    )
    .unwrap();
    for width in [0usize, 3, 5, 11, 12, 64, 1000] {
        let batched = analyze_batched(
            &program,
            &inputs,
            &AnalysisConfig::default()
                .with_threads(1)
                .with_batch_width(width),
        )
        .unwrap();
        assert_eq!(
            format!("{serial:?}"),
            format!("{batched:?}"),
            "width {width}"
        );
    }
}

/// A strategy producing well-formed numeric expressions over variables `a`
/// and `b`, including data-dependent branches so lane groups split.
fn arb_expr(depth: u32) -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-100.0f64..100.0).prop_map(|v| Expr::Number((v * 8.0).round() / 8.0)),
        Just(Expr::Number(0.0)),
        Just(Expr::Number(1.0)),
        Just(Expr::var("a")),
        Just(Expr::var("b")),
    ];
    leaf.prop_recursive(depth, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(x, y)| Expr::op(RealOp::Add, vec![x, y])),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| Expr::op(RealOp::Sub, vec![x, y])),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| Expr::op(RealOp::Mul, vec![x, y])),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| Expr::op(RealOp::Div, vec![x, y])),
            inner.clone().prop_map(|x| Expr::op(RealOp::Sqrt, vec![x])),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(c, t, e)| Expr::If {
                cond: Box::new(Expr::Cmp(fpcore::CmpOp::Lt, vec![Expr::var("a"), c])),
                then: Box::new(t),
                otherwise: Box::new(e),
            }),
        ]
    })
}

fn input_value() -> impl Strategy<Value = f64> {
    prop_oneof![
        -1e12f64..1e12,
        -1.0f64..1.0,
        Just(0.0),
        Just(1.0),
        Just(1e16),
        Just(-1e-300),
    ]
}

proptest! {
    /// Batched and serial analyses produce bit-identical reports on random
    /// (possibly branching) programs over random input sweeps, at a random
    /// supported or unsupported width.
    #[test]
    fn batched_matches_serial_on_random_programs(
        expr in arb_expr(3),
        inputs in proptest::collection::vec((input_value(), input_value()), 1..10),
        width in prop_oneof![Just(1usize), Just(2), Just(4), Just(7), Just(8), Just(13)],
    ) {
        let core = fpcore::FPCore {
            arguments: vec!["a".to_string(), "b".to_string()],
            name: None,
            pre: None,
            properties: Default::default(),
            body: expr,
        };
        let program = compile_core(&core, Default::default()).expect("compiles");
        let sweep: Vec<Vec<f64>> = inputs.iter().map(|&(a, b)| vec![a, b]).collect();
        let config = AnalysisConfig::default().with_threads(1).with_batch_width(width);
        let serial = analyze(&program, &sweep, &config).expect("serial analysis");
        let batched = analyze_batched(&program, &sweep, &config).expect("batched analysis");
        prop_assert_eq!(format!("{serial:?}"), format!("{batched:?}"), "width {}", width);
    }

    /// The lane-vectorized `DoubleDouble` kernels agree bit for bit with the
    /// scalar operations on random (including denormal/huge) operands.
    #[test]
    fn dd_batch_kernels_match_scalar_on_random_lanes(
        values in proptest::collection::vec((any::<f64>(), any::<f64>(), any::<f64>()), 4..5),
    ) {
        const W: usize = 4;
        let lanes: Vec<[DoubleDouble; W]> = (0..3)
            .map(|k| {
                std::array::from_fn(|l| {
                    let (a, b, c) = values[l];
                    match k {
                        0 => DoubleDouble::from_f64(a),
                        1 => DoubleDouble::from_f64(b).add(&DoubleDouble::from_f64(c * 1e-20)),
                        _ => DoubleDouble::from_f64(c),
                    }
                })
            })
            .collect();
        for &op in RealOp::all() {
            let args: Vec<DdLanes<W>> = lanes[..op.arity()]
                .iter()
                .map(DdLanes::from_scalars)
                .collect();
            let batch = dd_batch::apply(op, &args);
            for l in 0..W {
                let scalar_args: Vec<DoubleDouble> =
                    lanes[..op.arity()].iter().map(|lane| lane[l]).collect();
                let scalar = DoubleDouble::apply(op, &scalar_args);
                if scalar.is_nan() {
                    prop_assert!(batch.get(l).is_nan(), "{} lane {}", op, l);
                } else {
                    prop_assert_eq!(
                        (scalar.hi().to_bits(), scalar.lo().to_bits()),
                        (batch.get(l).hi().to_bits(), batch.get(l).lo().to_bits()),
                        "{} lane {}: {:?} vs {:?}",
                        op, l, scalar, batch.get(l)
                    );
                }
            }
        }
    }
}

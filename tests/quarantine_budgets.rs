//! Budget exhaustion mid-sweep under the fault-isolated drivers: an input
//! that exhausts its per-run budget (steps, wall-clock, or trace memory) is
//! quarantined while the other inputs' records survive untouched, the
//! degraded report is bit-identical to analyzing the survivors alone, and
//! the quarantine list is deterministic across thread counts and batch
//! widths.
//!
//! These tests exercise *real* budget faults (a runaway loop, a heavy
//! branch) with no injection; the `fault-injection` suite in
//! `tests/fault_isolation.rs` covers the forced-failure matrix.

use fpcore::parse_core;
use fpvm::{compile_core, MachineError, Program};
use herbgrind::{
    analyze, analyze_batched_isolated, analyze_isolated, analyze_parallel_isolated,
    analyze_tiered_isolated, AnalysisConfig, QuarantinedInput, Report, SweepFault, SweepStage,
};

/// `n` iterations of a compensated product — cost proportional to the
/// input, so one input can blow a step budget the rest stay far under.
const LOOP_SRC: &str = "(FPCore (n)
  (while (< i n) ([i 0 (+ i 1)] [acc 1 (* acc 1.0000001)]) acc))";

fn loop_program() -> Program {
    let core = parse_core(LOOP_SRC).expect("loop benchmark parses");
    compile_core(&core, Default::default()).expect("loop benchmark compiles")
}

/// Negative inputs evaluate a deep Horner chain whose many distinct
/// constants intern far more trace nodes than the two-op positive branch —
/// a per-input-deterministic trace-memory workload.
fn branchy_program() -> Program {
    let mut big = "x".to_string();
    for k in 0..80 {
        big = format!("(+ {}.5 (* x {big}))", k + 1);
    }
    let src = format!("(FPCore (x) (if (< x 0) {big} (+ x 1)))");
    let core = parse_core(&src).expect("branchy benchmark parses");
    compile_core(&core, Default::default()).expect("branchy benchmark compiles")
}

/// The degraded report must equal the plain serial analysis of the
/// survivors, bit for bit, once its quarantine list (which the plain driver
/// cannot produce) is set aside.
fn assert_degraded_matches_survivors(degraded: &Report, survivors: &Report, context: &str) {
    let mut cleared = degraded.clone();
    cleared.quarantined.clear();
    assert_eq!(
        format!("{cleared:?}"),
        format!("{survivors:?}"),
        "structural mismatch: {context}"
    );
    assert_eq!(
        cleared.to_text(),
        survivors.to_text(),
        "rendered mismatch: {context}"
    );
}

fn surviving_inputs(inputs: &[Vec<f64>], quarantined: &[QuarantinedInput]) -> Vec<Vec<f64>> {
    inputs
        .iter()
        .enumerate()
        .filter(|(i, _)| !quarantined.iter().any(|q| q.input_index == *i))
        .map(|(_, input)| input.clone())
        .collect()
}

#[test]
fn step_budget_mid_sweep_quarantines_only_the_runaway_input() {
    let program = loop_program();
    // Input 5 of 12 exhausts the step budget; everything else is tiny.
    let iters = [
        5.0, 8.0, 3.0, 6.0, 2.0, 10_000.0, 4.0, 7.0, 1.0, 9.0, 2.0, 5.0,
    ];
    let inputs: Vec<Vec<f64>> = iters.iter().map(|&n| vec![n]).collect();
    let config = AnalysisConfig::default().with_step_limit(500);
    let expected_error = SweepFault::Machine(MachineError::StepBudgetExceeded { limit: 500 });

    // The plain driver aborts the whole sweep on the same fault.
    assert_eq!(
        analyze(&program, &inputs, &config).err(),
        Some(MachineError::StepBudgetExceeded { limit: 500 })
    );

    let reference = analyze_isolated(&program, &inputs, &config);
    assert_eq!(
        reference.quarantined,
        vec![QuarantinedInput {
            input_index: 5,
            stage: SweepStage::Serial,
            error: expected_error.clone(),
        }]
    );
    let survivors = analyze(
        &program,
        &surviving_inputs(&inputs, &reference.quarantined),
        &config,
    )
    .expect("survivors analyze cleanly");
    assert_eq!(survivors.total_runs, 11);
    assert_degraded_matches_survivors(&reference, &survivors, "serial isolated");

    for threads in [1usize, 2, 5, 8] {
        let config = config.clone().with_threads(threads);
        let report = analyze_parallel_isolated(&program, &inputs, &config);
        assert_eq!(
            report.quarantined,
            vec![QuarantinedInput {
                input_index: 5,
                stage: SweepStage::ParallelShard,
                error: expected_error.clone(),
            }],
            "parallel threads={threads}"
        );
        assert_degraded_matches_survivors(&report, &survivors, &format!("parallel t={threads}"));
    }

    for width in [1usize, 2, 8] {
        for threads in [1usize, 2] {
            let config = config.clone().with_batch_width(width).with_threads(threads);
            let report = analyze_batched_isolated(&program, &inputs, &config);
            assert_eq!(
                report.quarantined,
                vec![QuarantinedInput {
                    input_index: 5,
                    stage: SweepStage::BatchedLane,
                    error: expected_error.clone(),
                }],
                "batched width={width} threads={threads}"
            );
            assert_degraded_matches_survivors(
                &report,
                &survivors,
                &format!("batched w={width} t={threads}"),
            );
        }
    }

    for width in [1usize, 8] {
        let config = config.clone().with_batch_width(width);
        let report = analyze_tiered_isolated(&program, &inputs, &config);
        // The certify probe fails on the runaway too, so it lands in the
        // BigFloat tier, whose probe — the ladder's last rung — decides.
        assert_eq!(
            report.quarantined,
            vec![QuarantinedInput {
                input_index: 5,
                stage: SweepStage::TieredBigFloat,
                error: expected_error.clone(),
            }],
            "tiered width={width}"
        );
        assert_degraded_matches_survivors(&report, &survivors, &format!("tiered w={width}"));
    }
}

#[test]
fn deadline_mid_sweep_quarantines_the_runaway_input() {
    let program = loop_program();
    // Input 3 of 6 loops effectively forever: the interpreter's coarse
    // deadline check (every 1024 steps) is the only thing that stops it
    // before the (large) step-budget backstop, while the tiny inputs halt
    // in well under 1024 steps and therefore can never observe the
    // deadline at all.
    let iters = [4.0, 7.0, 2.0, 1.0e15, 5.0, 3.0];
    let inputs: Vec<Vec<f64>> = iters.iter().map(|&n| vec![n]).collect();
    let config = AnalysisConfig::default()
        .with_step_limit(100_000_000)
        .with_deadline_millis(100);
    let expected = QuarantinedInput {
        input_index: 3,
        stage: SweepStage::Serial,
        error: SweepFault::Machine(MachineError::DeadlineExceeded { millis: 100 }),
    };

    let reference = analyze_isolated(&program, &inputs, &config);
    assert_eq!(reference.quarantined, vec![expected.clone()]);
    let survivors = analyze(
        &program,
        &surviving_inputs(&inputs, &reference.quarantined),
        &config,
    )
    .expect("survivors analyze cleanly");
    assert_eq!(survivors.total_runs, 5);
    assert_degraded_matches_survivors(&reference, &survivors, "serial isolated, deadline");

    let parallel = analyze_parallel_isolated(&program, &inputs, &config.clone().with_threads(2));
    assert_eq!(
        parallel.quarantined,
        vec![QuarantinedInput {
            stage: SweepStage::ParallelShard,
            ..expected.clone()
        }]
    );
    assert_degraded_matches_survivors(&parallel, &survivors, "parallel isolated, deadline");

    // In a batched pass the deadline faults every still-running lane of the
    // pass; the serial retry probes heal the innocent lanes, so only the
    // runaway input is quarantined regardless of lane grouping.
    let batched = analyze_batched_isolated(
        &program,
        &inputs,
        &config.clone().with_batch_width(4).with_threads(1),
    );
    assert_eq!(
        batched.quarantined,
        vec![QuarantinedInput {
            stage: SweepStage::BatchedLane,
            ..expected
        }]
    );
    assert_degraded_matches_survivors(&batched, &survivors, "batched isolated, deadline");
}

#[test]
fn trace_budget_mid_sweep_quarantines_heavy_trace_inputs_across_widths() {
    let program = branchy_program();
    // Inputs 1 and 4 take the deep branch (~50+ interned nodes); the rest
    // stay under 20. Budget 40 separates them deterministically.
    let points = [2.0, -2.0, 3.0, 1.5, -1.0, 4.0];
    let inputs: Vec<Vec<f64>> = points.iter().map(|&x| vec![x]).collect();
    let config = AnalysisConfig::default().with_trace_node_budget(40);
    let expected_error = SweepFault::Machine(MachineError::TraceBudgetExceeded { limit: 40 });
    let expect_for = |stage: SweepStage| {
        vec![
            QuarantinedInput {
                input_index: 1,
                stage,
                error: expected_error.clone(),
            },
            QuarantinedInput {
                input_index: 4,
                stage,
                error: expected_error.clone(),
            },
        ]
    };

    assert_eq!(
        analyze(&program, &inputs, &config).err(),
        Some(MachineError::TraceBudgetExceeded { limit: 40 })
    );

    let reference = analyze_isolated(&program, &inputs, &config);
    assert_eq!(reference.quarantined, expect_for(SweepStage::Serial));
    let survivors = analyze(
        &program,
        &surviving_inputs(&inputs, &reference.quarantined),
        &config,
    )
    .expect("survivors analyze cleanly");
    assert_eq!(survivors.total_runs, 4);
    assert_degraded_matches_survivors(&reference, &survivors, "serial isolated, trace budget");

    for threads in [1usize, 2, 4] {
        let report =
            analyze_parallel_isolated(&program, &inputs, &config.clone().with_threads(threads));
        assert_eq!(
            report.quarantined,
            expect_for(SweepStage::ParallelShard),
            "parallel threads={threads}"
        );
        assert_degraded_matches_survivors(&report, &survivors, &format!("parallel t={threads}"));
    }

    // The batched group interner is shared by a whole lane group, so at
    // wide widths the budget faults the *group* — the serial retry probes
    // then heal the light-trace inputs, leaving a quarantine list
    // independent of the width the fault surfaced at.
    for width in [1usize, 2, 8] {
        let report = analyze_batched_isolated(
            &program,
            &inputs,
            &config.clone().with_batch_width(width).with_threads(1),
        );
        assert_eq!(
            report.quarantined,
            expect_for(SweepStage::BatchedLane),
            "batched width={width}"
        );
        assert_degraded_matches_survivors(&report, &survivors, &format!("batched w={width}"));
    }

    for width in [1usize, 8] {
        let report = analyze_tiered_isolated(
            &program,
            &inputs,
            &config.clone().with_batch_width(width).with_threads(1),
        );
        assert_eq!(
            report.quarantined,
            expect_for(SweepStage::TieredBigFloat),
            "tiered width={width}"
        );
        assert_degraded_matches_survivors(&report, &survivors, &format!("tiered w={width}"));
    }
}

#[test]
fn quarantine_section_is_rendered_in_the_text_report() {
    let program = loop_program();
    let inputs = vec![vec![3.0], vec![50_000.0], vec![4.0]];
    let config = AnalysisConfig::default().with_step_limit(500);
    let report = analyze_isolated(&program, &inputs, &config);
    let text = report.to_text();
    assert!(
        text.contains("1 input(s) quarantined"),
        "missing quarantine header in:\n{text}"
    );
    assert!(
        text.contains("input 1 (serial sweep): execution exceeded the 500-step budget"),
        "missing quarantine line in:\n{text}"
    );
    // The summary footer counts the survivors the report covers plus the
    // quarantined inputs.
    assert!(
        text.contains("summary: 2 input(s) analyzed, 1 quarantined"),
        "missing summary footer in:\n{text}"
    );
    // A clean sweep renders no quarantine section at all (only the "0
    // quarantined" summary footer), keeping golden reports stable.
    let clean = analyze_isolated(&program, &[vec![3.0]], &config);
    let clean_text = clean.to_text();
    assert!(!clean_text.contains("quarantined; the report covers the survivors"));
    assert!(
        clean_text.contains("summary: 1 input(s) analyzed, 0 quarantined"),
        "missing summary footer in:\n{clean_text}"
    );
}

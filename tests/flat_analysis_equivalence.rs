//! Equivalence of the flat slot-table analysis and the retained map-based
//! reference implementation.
//!
//! The flat [`herbgrind::Herbgrind`] replaces hash-map shadow memory,
//! ordered record maps, per-operand clones, and per-operation truncation
//! with slot tables, generation stamps, borrowed operands, and
//! depth-budgeted observation. None of that may change a single bit of any
//! report: this suite pins the two implementations together across random
//! programs, random input sweeps, the benchmark suite (loops included), and
//! every configuration knob, and checks that sweep-level buffer reuse in
//! the flat path cannot leak state between inputs.

use fpcore::Expr;
use fpvm::compile_core;
use herbgrind::reference::analyze_with_shadow_reference;
use herbgrind::{analyze_with_shadow, AnalysisConfig, RangeKind};
use proptest::prelude::*;
use shadowreal::{BigFloat, RealOp};

fn assert_same_report(
    program: &fpvm::Program,
    inputs: &[Vec<f64>],
    config: &AnalysisConfig,
    context: &str,
) {
    let flat = analyze_with_shadow::<BigFloat>(program, inputs, config);
    let reference = analyze_with_shadow_reference::<BigFloat>(program, inputs, config);
    match (flat, reference) {
        (Ok(flat), Ok(reference)) => {
            assert_eq!(
                format!("{flat:?}"),
                format!("{reference:?}"),
                "reports diverged: {context}"
            );
            assert_eq!(
                flat.to_text(),
                reference.to_text(),
                "rendered reports diverged: {context}"
            );
        }
        (flat, reference) => {
            assert_eq!(
                format!("{:?}", flat.err()),
                format!("{:?}", reference.err()),
                "errors diverged: {context}"
            );
        }
    }
}

/// A strategy producing well-formed numeric expressions over variables `a`
/// and `b`, biased toward the operations whose records differ structurally
/// (compensation candidates, multi-arg ops, sqrt NaNs).
fn arb_expr(depth: u32) -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-100.0f64..100.0).prop_map(|v| Expr::Number((v * 8.0).round() / 8.0)),
        Just(Expr::Number(0.0)),
        Just(Expr::Number(1.0)),
        Just(Expr::var("a")),
        Just(Expr::var("b")),
    ];
    leaf.prop_recursive(depth, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(x, y)| Expr::op(RealOp::Add, vec![x, y])),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| Expr::op(RealOp::Sub, vec![x, y])),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| Expr::op(RealOp::Mul, vec![x, y])),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| Expr::op(RealOp::Div, vec![x, y])),
            inner.clone().prop_map(|x| Expr::op(RealOp::Sqrt, vec![x])),
            (inner.clone(), inner.clone(), inner)
                .prop_map(|(x, y, z)| Expr::op(RealOp::Fma, vec![x, y, z])),
        ]
    })
}

fn input_value() -> impl Strategy<Value = f64> {
    prop_oneof![
        -1e12f64..1e12,
        -1.0f64..1.0,
        Just(0.0),
        Just(1.0),
        Just(1e16),
        Just(-1e-300),
    ]
}

proptest! {
    /// Flat and reference analyses produce bit-identical reports on random
    /// straight-line programs over random input sweeps.
    #[test]
    fn flat_matches_reference_on_random_programs(
        expr in arb_expr(4),
        inputs in proptest::collection::vec((input_value(), input_value()), 1..6),
    ) {
        let core = fpcore::FPCore {
            arguments: vec!["a".to_string(), "b".to_string()],
            name: None,
            pre: None,
            properties: Default::default(),
            body: expr,
        };
        let program = compile_core(&core, Default::default()).expect("compiles");
        let sweep: Vec<Vec<f64>> = inputs.iter().map(|&(a, b)| vec![a, b]).collect();
        assert_same_report(&program, &sweep, &AnalysisConfig::default(), "default config");
        // A shallow depth bound exercises the budgeted-observation cut and
        // the hysteresis truncation path on every nontrivial trace.
        let shallow = AnalysisConfig::default().with_max_expression_depth(2);
        assert_same_report(&program, &sweep, &shallow, "depth 2");
    }
}

#[test]
fn flat_matches_reference_on_the_benchmark_suite() {
    // The suite includes loop benchmarks, whose deep loop-carried traces
    // exercise the hysteresis storage bound and the amortized truncation.
    for core in fpbench::subset(12) {
        let name = core.display_name().to_string();
        let prepared = fpbench::prepare(&core, 24, 2024).expect("prepare");
        assert_same_report(
            &prepared.program,
            &prepared.inputs,
            &AnalysisConfig::default(),
            &name,
        );
    }
}

#[test]
fn flat_matches_reference_for_every_configuration_knob() {
    let core = fpcore::parse_core("(FPCore (x) (- (sqrt (+ x 1)) (sqrt x)))").unwrap();
    let program = compile_core(&core, Default::default()).unwrap();
    let inputs: Vec<Vec<f64>> = (0..20).map(|i| vec![10f64.powi(i)]).collect();
    let configs = [
        AnalysisConfig::fpdebug_like(),
        AnalysisConfig::default().with_local_error_threshold(1.0),
        AnalysisConfig::default().with_max_expression_depth(1),
        AnalysisConfig::default().with_max_expression_depth(3),
        AnalysisConfig::default().with_range_kind(RangeKind::Single),
        AnalysisConfig::default().with_range_kind(RangeKind::None),
        AnalysisConfig::default().with_compensation_detection(false),
        AnalysisConfig {
            shadow_precision: 64,
            ..AnalysisConfig::default()
        },
    ];
    for (i, config) in configs.into_iter().enumerate() {
        assert_same_report(&program, &inputs, &config, &format!("config {i}"));
    }
}

#[test]
fn sweep_buffer_reuse_does_not_leak_state_between_inputs() {
    // The flat analysis reuses its shadow slot table (via generation
    // stamps), the machine memory buffer, and the interner allocation
    // across a sweep. A leak would make a multi-input report differ from
    // the same inputs analyzed with per-input fresh state — which is
    // exactly what the reference path (fresh hash maps per run) computes.
    // The loop program makes leakage observable: every run writes a
    // different number of addresses and leaves stale deep traces behind.
    let core =
        fpcore::parse_core("(FPCore (n) (while (< i n) ((s 0 (+ s (/ 1 i))) (i 1 (+ i 1))) s))")
            .unwrap();
    let program = compile_core(&core, Default::default()).unwrap();
    // Descending loop bounds: later (shorter) runs re-read addresses the
    // earlier (longer) runs wrote deep shadows into; with a leak the stale
    // generation's traces would bleed into the later runs' records.
    let inputs: Vec<Vec<f64>> = vec![vec![200.0], vec![37.0], vec![3.0], vec![0.0], vec![120.0]];
    assert_same_report(
        &program,
        &inputs,
        &AnalysisConfig::default(),
        "descending loop sweep",
    );

    // Order independence of the leak check: analyzing a permuted sweep with
    // one shared analysis must match analyzing each input in isolation and
    // summing the run counts (fresh-per-input reports cannot see leaks).
    let whole = analyze_with_shadow::<BigFloat>(&program, &inputs, &AnalysisConfig::default())
        .expect("sweep analyzes");
    let fresh_runs: u64 = inputs
        .iter()
        .map(|input| {
            analyze_with_shadow::<BigFloat>(
                &program,
                std::slice::from_ref(input),
                &AnalysisConfig::default(),
            )
            .expect("single input analyzes")
            .total_runs
        })
        .sum();
    assert_eq!(whole.total_runs, fresh_runs);
}

#[test]
fn record_bounded_matches_record_of_truncated_trace() {
    use fpvm::SourceLoc;
    use herbgrind::records::OpRecord;
    use herbgrind::trace::ConcreteExpr;
    use std::sync::Arc;

    // A deep loop-carried chain: s_k = s_{k-1} + (1 / i_k).
    let config = AnalysisConfig::default();
    let loc = SourceLoc::default();
    let mut bounded = OpRecord::new(RealOp::Add, loc.clone(), &config);
    let mut truncating = OpRecord::new(RealOp::Add, loc.clone(), &config);
    for max_depth in [1usize, 2, 5] {
        let mut s: Arc<ConcreteExpr> = ConcreteExpr::leaf(0.0);
        for k in 1..40u32 {
            let i_val = k as f64;
            let div = ConcreteExpr::node(
                RealOp::Div,
                1.0 / i_val,
                vec![ConcreteExpr::leaf(1.0), ConcreteExpr::leaf(i_val)],
                10,
                loc.clone(),
            );
            let sum_val = (1..=k).map(|j| 1.0 / j as f64).sum::<f64>();
            let sum =
                ConcreteExpr::node(RealOp::Add, sum_val, vec![s.clone(), div], 11, loc.clone());
            let erroneous = k % 7 == 0;
            bounded.record_bounded(&sum, max_depth, 0.25 * k as f64, erroneous, &config);
            truncating.record(
                &sum.truncate_to_depth(max_depth),
                0.25 * k as f64,
                erroneous,
                &config,
            );
            assert_eq!(
                format!("{bounded:?}"),
                format!("{truncating:?}"),
                "diverged at k={k}, max_depth={max_depth}"
            );
            // Keep the stored trace deeper than the budget, like the flat
            // analysis's hysteresis storage does.
            s = if sum.depth() > 4 * max_depth {
                sum.truncate_to_depth(max_depth)
            } else {
                sum
            };
        }
    }
}

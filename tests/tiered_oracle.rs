//! Differential oracle for the tiered adaptive-precision driver: over the
//! embedded FPBench suite, [`herbgrind::analyze_tiered`] must produce
//! reports **bit-identical** to the all-`BigFloat` analyses — the flat
//! driver and the retained map-based reference implementation — while
//! actually exercising both tiers. The oracle compares reports, not
//! certificates: a probe bug that over-certifies would surface here as a
//! report divergence, not hide behind its own machinery.

use herbgrind::reference::analyze_with_shadow_reference;
use herbgrind::{analyze, analyze_tiered_with_stats, AnalysisConfig, TierStats};
use shadowreal::BigFloat;

fn assert_tiered_matches_oracles(
    program: &fpvm::Program,
    inputs: &[Vec<f64>],
    config: &AnalysisConfig,
    context: &str,
) -> TierStats {
    let tiered = analyze_tiered_with_stats(program, inputs, config);
    let flat = analyze(program, inputs, config);
    let reference = analyze_with_shadow_reference::<BigFloat>(program, inputs, config);
    match (tiered, flat, reference) {
        (Ok((tiered, stats)), Ok(flat), Ok(reference)) => {
            assert_eq!(
                format!("{tiered:?}"),
                format!("{flat:?}"),
                "tiered vs flat diverged: {context}"
            );
            assert_eq!(
                format!("{tiered:?}"),
                format!("{reference:?}"),
                "tiered vs reference diverged: {context}"
            );
            assert_eq!(
                tiered.to_text(),
                reference.to_text(),
                "rendered reports diverged: {context}"
            );
            assert_eq!(stats.total_inputs, inputs.len(), "{context}");
            stats
        }
        (tiered, flat, _) => {
            assert_eq!(
                format!("{:?}", tiered.as_ref().err()),
                format!("{:?}", flat.err()),
                "errors diverged: {context}"
            );
            TierStats::default()
        }
    }
}

#[test]
fn tiered_matches_the_reference_on_the_benchmark_suite() {
    let mut totals = TierStats::default();
    for core in fpbench::suite() {
        let name = core.display_name().to_string();
        let prepared = fpbench::prepare(&core, 12, 2024).expect("prepare");
        let stats = assert_tiered_matches_oracles(
            &prepared.program,
            &prepared.inputs,
            &AnalysisConfig::default(),
            &name,
        );
        totals.total_inputs += stats.total_inputs;
        totals.certified_inputs += stats.certified_inputs;
    }
    // Both tiers must actually run across the suite: a probe that certifies
    // nothing degenerates to the plain analysis, one that certifies
    // everything is not being conservative about specials and domain edges.
    // (The whole suite is the honest denominator here — the NMSE kernels at
    // the front are cancellation stress tests where escalation is the
    // *correct* verdict, and a subset-only rate would hide a probe that
    // stopped certifying the accumulation and polynomial benchmarks.)
    assert!(
        totals.certified_inputs * 2 > totals.total_inputs,
        "suite should be mostly certified: {totals:?}"
    );
    assert!(
        totals.certified_inputs < totals.total_inputs,
        "suite should escalate somewhere: {totals:?}"
    );
}

#[test]
fn tier0_armed_tiered_matches_the_oracles_on_the_whole_suite() {
    // Tier 0: arming the static prune mask via the benchmark's declared
    // sampling region must leave every report bit-identical to the unpruned
    // tiered run AND to the flat/reference analyses, while actually pruning
    // a meaningful share of the suite's shadow work.
    let capture = herbgrind::SweepCapture::begin(herbgrind::TelemetryMode::On);
    for core in fpbench::suite() {
        let name = core.display_name().to_string();
        let prepared = fpbench::prepare(&core, 12, 2024).expect("prepare");
        let region = fpbench::sampling_region(&core);
        let config = AnalysisConfig::default().with_input_ranges(region);
        // The oracle helper runs flat + reference with the same config:
        // input_ranges must be inert everywhere except the tiered driver.
        assert_tiered_matches_oracles(&prepared.program, &prepared.inputs, &config, &name);
    }
    let telemetry = capture.finish();
    assert!(
        telemetry.counter("tier0.statements_pruned") > 0,
        "tier 0 never pruned anything across the whole suite"
    );
    assert!(
        telemetry.counter("tier0.pruned_executions") > 0,
        "tier 0 masks exist but no execution ever skipped shadowing"
    );
}

#[test]
fn tiered_matches_on_lowered_library_calls() {
    // The lowered programs (§8.2) replace library calls with polynomial
    // kernels: long add/mul chains with different certificate profiles.
    for core in fpbench::subset(6) {
        let name = core.display_name().to_string();
        let prepared = fpbench::prepare(&core, 12, 2024).expect("prepare");
        assert_tiered_matches_oracles(
            &prepared.program_lowered,
            &prepared.inputs,
            &AnalysisConfig::default(),
            &format!("{name} (lowered)"),
        );
    }
}

#[test]
fn tiered_matches_across_configuration_knobs() {
    let core = fpcore::parse_core("(FPCore (x) (- (sqrt (+ x 1)) (sqrt x)))").unwrap();
    let program = fpvm::compile_core(&core, Default::default()).unwrap();
    let inputs: Vec<Vec<f64>> = (0..20).map(|i| vec![10f64.powi(i)]).collect();
    let configs = [
        AnalysisConfig::fpdebug_like(),
        AnalysisConfig::default().with_local_error_threshold(1.0),
        AnalysisConfig::default().with_compensation_detection(false),
        AnalysisConfig::default()
            .with_threads(3)
            .with_batch_width(4),
        // Below the tier threshold: the precision gate escalates everything.
        AnalysisConfig {
            shadow_precision: 64,
            ..AnalysisConfig::default()
        },
        // Above the default: certificates retune to the wider rounding.
        AnalysisConfig {
            shadow_precision: 512,
            ..AnalysisConfig::default()
        },
    ];
    for (i, config) in configs.into_iter().enumerate() {
        assert_tiered_matches_oracles(&program, &inputs, &config, &format!("config {i}"));
    }
}

//! Soundness oracle for the tier-0 static error-dataflow pass.
//!
//! Two properties over random FPBench-style programs and in-range inputs:
//!
//! 1. **Interval soundness** — every exact (high-precision shadow) value a
//!    dynamic execution computes lies within the static interval the
//!    abstract interpretation derived for that statement.
//! 2. **Verdict soundness** — no statement the dynamic analysis flags as
//!    erroneous (a root cause with erroneous executions, or a spot with
//!    erroneous evaluations) ever carries the `CertifiedStable` verdict.
//!    This holds across batch widths and thread counts, like the existing
//!    determinism oracles.
//!
//! The tier-0 prune mask only skips work for `CertifiedStable` statements,
//! so these two properties are exactly what the bit-identical-pruning
//! argument rests on.

use fpcore::{Expr, FPCore};
use fpvm::{compile_core, Addr, Machine, Program, Tracer, Value};
use herbgrind::staticerr::{analyze_program, StaticAnalysis, StaticParams, StaticVerdict};
use herbgrind::AnalysisConfig;
use proptest::prelude::*;
use shadowreal::{BigFloat, Real, RealOp};

/// One ulp below, saturating: the outward tolerance for comparing a
/// round-to-nearest `f64` image of an exact value against an interval
/// endpoint.
fn nudge_down(x: f64) -> f64 {
    if x.is_nan() || x == f64::NEG_INFINITY {
        return x;
    }
    if x == 0.0 {
        return -f64::MIN_POSITIVE;
    }
    let bits = x.to_bits();
    f64::from_bits(if x > 0.0 { bits - 1 } else { bits + 1 })
}

fn nudge_up(x: f64) -> f64 {
    -nudge_down(-x)
}

/// A tracer that recomputes every statement in high-precision BigFloat
/// arithmetic (the "exact" values of the paper's shadow semantics) and
/// checks each compute result against the static interval for its pc.
struct IntervalOracle<'a> {
    analysis: &'a StaticAnalysis,
    shadows: Vec<Option<BigFloat>>,
    violations: Vec<String>,
}

impl<'a> IntervalOracle<'a> {
    fn new(analysis: &'a StaticAnalysis) -> Self {
        IntervalOracle {
            analysis,
            shadows: Vec::new(),
            violations: Vec::new(),
        }
    }
}

impl Tracer for IntervalOracle<'_> {
    fn on_start(&mut self, program: &Program, args: &[f64]) {
        self.shadows = vec![None; program.num_addrs];
        for (&addr, &v) in program.arg_addrs.iter().zip(args) {
            self.shadows[addr] = Some(BigFloat::from_f64(v));
        }
    }

    fn on_const_f(&mut self, _pc: usize, dest: Addr, value: f64) {
        self.shadows[dest] = Some(BigFloat::from_f64(value));
    }

    fn on_copy(&mut self, _pc: usize, dest: Addr, src: Addr, _value: Value) {
        self.shadows[dest] = self.shadows[src].clone();
    }

    fn on_compute(
        &mut self,
        pc: usize,
        op: RealOp,
        dest: Addr,
        args: &[Addr],
        arg_values: &[f64],
        _result: f64,
    ) {
        let shadow_args: Vec<BigFloat> = args
            .iter()
            .zip(arg_values)
            .map(|(&a, &v)| {
                self.shadows[a]
                    .clone()
                    .unwrap_or_else(|| BigFloat::from_f64(v))
            })
            .collect();
        let exact = BigFloat::apply(op, &shadow_args);
        if let Some(out) = self.analysis.statements[pc].out {
            let x = exact.to_f64();
            if x.is_nan() {
                if !out.may_nan {
                    self.violations.push(format!(
                        "pc {pc} {op}: exact value is NaN but may_nan=false"
                    ));
                }
            } else if x < nudge_down(out.lo) || x > nudge_up(out.hi) {
                self.violations.push(format!(
                    "pc {pc} {op}: exact value {x:e} outside static interval [{:e}, {:e}]",
                    out.lo, out.hi
                ));
            }
        }
        self.shadows[dest] = Some(exact);
    }
}

/// A random well-formed straight-line expression over `a` and `b`, mixing
/// the smooth ops with cancellation- and domain-edge-prone ones.
fn arb_expr(depth: u32) -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-50.0f64..50.0).prop_map(|v| Expr::Number((v * 4.0).round() / 4.0)),
        Just(Expr::var("a")),
        Just(Expr::var("b")),
    ];
    leaf.prop_recursive(depth, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(x, y)| Expr::op(RealOp::Add, vec![x, y])),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| Expr::op(RealOp::Sub, vec![x, y])),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| Expr::op(RealOp::Mul, vec![x, y])),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| Expr::op(RealOp::Div, vec![x, y])),
            inner.clone().prop_map(|x| Expr::op(RealOp::Sqrt, vec![x])),
            inner.clone().prop_map(|x| Expr::op(RealOp::Fabs, vec![x])),
            inner.clone().prop_map(|x| Expr::op(RealOp::Exp, vec![x])),
            inner.clone().prop_map(|x| Expr::op(RealOp::Log, vec![x])),
            inner.clone().prop_map(|x| Expr::op(RealOp::Sin, vec![x])),
            inner.clone().prop_map(|x| Expr::op(RealOp::Cos, vec![x])),
        ]
    })
}

/// Declared ranges: ordered pairs that may be sign-definite or span zero.
fn arb_range() -> impl Strategy<Value = (f64, f64)> {
    prop_oneof![
        (0.5f64..10.0, 0.0f64..100.0).prop_map(|(lo, w)| (lo, lo + w)),
        (-100.0f64..-0.5, 0.0f64..100.0).prop_map(|(lo, w)| (lo, lo + w)),
        (-10.0f64..0.0, 0.0f64..20.0).prop_map(|(lo, w)| (lo, lo + w)),
        (1e-6f64..1e-3, 0.0f64..1.0).prop_map(|(lo, w)| (lo, lo + w)),
    ]
}

/// In-range inputs: fractions of the declared ranges.
fn inputs_for(ranges: &[(f64, f64)], fracs: &[(f64, f64)]) -> Vec<Vec<f64>> {
    fracs
        .iter()
        .map(|&(fa, fb)| {
            vec![
                ranges[0].0 + fa * (ranges[0].1 - ranges[0].0),
                ranges[1].0 + fb * (ranges[1].1 - ranges[1].0),
            ]
        })
        .collect()
}

fn program_for(expr: &Expr) -> Option<Program> {
    let core = FPCore {
        arguments: vec!["a".to_string(), "b".to_string()],
        name: None,
        pre: None,
        properties: Default::default(),
        body: expr.clone(),
    };
    compile_core(&core, Default::default()).ok()
}

proptest! {
    /// Interval soundness: every exact value computed dynamically from
    /// in-range inputs lies within the static interval for its statement.
    #[test]
    fn exact_values_lie_within_static_intervals(
        expr in arb_expr(3),
        ra in arb_range(),
        rb in arb_range(),
        fracs in proptest::collection::vec((0.0f64..=1.0, 0.0f64..=1.0), 1..8),
    ) {
        let Some(program) = program_for(&expr) else { return; };
        let ranges = [ra, rb];
        let analysis = analyze_program(&program, &ranges, &StaticParams::default());
        let machine = Machine::new(&program);
        let mut oracle = IntervalOracle::new(&analysis);
        for input in inputs_for(&ranges, &fracs) {
            let _ = machine.run_traced(&input, &mut oracle);
        }
        prop_assert!(
            oracle.violations.is_empty(),
            "interval violations for {}:\n{}",
            fpcore::expr_to_string(&expr),
            oracle.violations.join("\n")
        );
    }

    /// Verdict soundness: statements the dynamic analysis flags as
    /// erroneous are never statically certified — across batch widths and
    /// thread counts.
    #[test]
    fn dynamically_erroneous_statements_are_never_certified(
        expr in arb_expr(3),
        ra in arb_range(),
        rb in arb_range(),
        fracs in proptest::collection::vec((0.0f64..=1.0, 0.0f64..=1.0), 1..6),
    ) {
        let Some(program) = program_for(&expr) else { return; };
        let ranges = [ra, rb];
        let analysis = analyze_program(&program, &ranges, &StaticParams::default());
        let inputs = inputs_for(&ranges, &fracs);
        for (threads, width) in [(1usize, 1usize), (1, 8), (3, 4)] {
            let config = AnalysisConfig::default()
                .with_threads(threads)
                .with_batch_width(width);
            let Ok(report) = herbgrind::analyze_parallel(&program, &inputs, &config) else {
                continue;
            };
            let mut flagged: Vec<usize> = Vec::new();
            for spot in &report.spots {
                if spot.erroneous > 0 {
                    flagged.push(spot.pc);
                }
                for cause in &spot.root_causes {
                    if cause.erroneous_count > 0 {
                        flagged.push(cause.pc);
                    }
                }
            }
            for pc in flagged {
                prop_assert!(
                    analysis.verdict(pc) != StaticVerdict::CertifiedStable,
                    "pc {pc} dynamically erroneous but CertifiedStable \
                     (threads={threads}, width={width}) in {}",
                    fpcore::expr_to_string(&expr)
                );
            }
        }
    }
}

//! Property tests for the small-limb BigFloat representation: the inline
//! (≤ 256-bit) and heap-fallback storage paths must agree bit for bit, and
//! behaviour must be continuous across the precision boundary
//! (64 / 256 / 320 / 1024 bits).
//!
//! In debug builds the `set_force_heap_limbs` test hook reruns the exact
//! same computation with every buffer forced onto the heap, which pins the
//! two storage paths to each other directly; the cross-precision properties
//! run in every build.

use proptest::prelude::*;
use shadowreal::{BigFloat, Real, RealOp};

/// The precisions the representation must agree across: both inline sizes,
/// the first heap size, and a deep heap size.
const PRECISIONS: [u32; 4] = [64, 256, 320, 1024];

/// Finite, not-too-extreme doubles for arithmetic properties.
fn reasonable_f64() -> impl Strategy<Value = f64> {
    prop_oneof![
        -1e12f64..1e12,
        -1e3f64..1e3,
        -1.0f64..1.0,
        Just(0.0),
        Just(1.0),
        Just(-1.0),
        Just(1.0 + f64::EPSILON),
    ]
}

/// Asserts that two same-precision BigFloats are bit-identical: equal as
/// values, with equal exponents, precisions, and f64 roundings (for
/// normalized finite values of one precision, value equality is mantissa
/// equality).
fn assert_bit_identical(a: &BigFloat, b: &BigFloat, context: &str) {
    assert_eq!(a.precision(), b.precision(), "precision: {context}");
    if a.is_nan() || b.is_nan() {
        assert_eq!(a.is_nan(), b.is_nan(), "NaN-ness: {context}");
        return;
    }
    assert!(a.eq_value(b), "value: {context}");
    assert_eq!(a.exponent(), b.exponent(), "exponent: {context}");
    assert_eq!(a.is_negative(), b.is_negative(), "sign: {context}");
    assert_eq!(
        a.to_f64().to_bits(),
        b.to_f64().to_bits(),
        "f64 rounding: {context}"
    );
}

/// One mixed workload at a given precision: leaves, arithmetic, rounding.
/// Returns every intermediate so representation comparisons see more than
/// the final value.
fn workload(x: f64, y: f64, prec: u32) -> Vec<BigFloat> {
    let a = BigFloat::from_f64_prec(x, prec);
    let b = BigFloat::from_f64_prec(y, prec);
    let sum = a.add(&b);
    let diff = a.sub(&b);
    let prod = a.mul(&b);
    let quot = if b.is_zero() { b.clone() } else { a.div(&b) };
    let root = a.abs().sqrt();
    let rounded = prod.round_nearest();
    let rere = sum.with_precision(prec);
    vec![a, b, sum, diff, prod, quot, root, rounded, rere]
}

proptest! {
    /// Exact roundtrip at every precision: 64-bit mantissas already hold any
    /// double exactly, so the boundary cannot change constructed values.
    #[test]
    fn doubles_roundtrip_at_every_precision(x in any::<f64>()) {
        for prec in PRECISIONS {
            let b = BigFloat::from_f64_prec(x, prec);
            if x.is_nan() {
                prop_assert!(b.to_f64().is_nan());
            } else {
                prop_assert_eq!(b.to_f64().to_bits(), x.to_bits(), "prec {}", prec);
            }
        }
    }

    /// Operations on exactly representable operands are exact at every
    /// precision, so all four precisions must produce the same double — the
    /// inline and heap paths cannot disagree on them.
    #[test]
    fn exact_arithmetic_agrees_across_the_boundary(
        a in -1_000_000i64..1_000_000,
        b in -1_000_000i64..1_000_000,
    ) {
        let expect_sum = (a + b) as f64;
        let expect_prod = (a as f64) * (b as f64);
        for prec in PRECISIONS {
            let ba = BigFloat::from_f64_prec(a as f64, prec);
            let bb = BigFloat::from_f64_prec(b as f64, prec);
            prop_assert_eq!(ba.add(&bb).to_f64(), expect_sum, "add at {}", prec);
            prop_assert_eq!(ba.mul(&bb).to_f64(), expect_prod, "mul at {}", prec);
        }
    }

    /// Widening is exact and narrowing a widened value is the identity, in
    /// both directions across the inline/heap boundary.
    #[test]
    fn widening_roundtrips_across_the_boundary(x in reasonable_f64()) {
        for (lo, hi) in [(64u32, 320u32), (256, 320), (256, 1024), (64, 1024)] {
            let narrow = BigFloat::from_f64_prec(x, lo);
            let widened = narrow.with_precision(hi);
            prop_assert!(narrow.eq_value(&widened), "widening {} -> {} changed the value", lo, hi);
            let back = widened.with_precision(lo);
            assert_bit_identical(&narrow, &back, &format!("roundtrip {lo} -> {hi} -> {lo} of {x}"));
        }
    }

    /// The inline and forced-heap storage paths produce bit-identical
    /// results for the same workload at the same precision (debug builds;
    /// the hook is compiled out of release builds).
    #[test]
    fn inline_and_heap_paths_agree_bit_for_bit(
        x in reasonable_f64(),
        y in reasonable_f64(),
    ) {
        #[cfg(debug_assertions)]
        {
            for prec in PRECISIONS {
                let inline = workload(x, y, prec);
                shadowreal::bigfloat::set_force_heap_limbs(true);
                let heap = workload(x, y, prec);
                shadowreal::bigfloat::set_force_heap_limbs(false);
                for (i, (a, b)) in inline.iter().zip(&heap).enumerate() {
                    assert_bit_identical(
                        a,
                        b,
                        &format!("workload step {i} at {prec} bits on ({x}, {y})"),
                    );
                }
            }
        }
        #[cfg(not(debug_assertions))]
        {
            let _ = (x, y);
        }
    }

    /// The unrolled 256-bit add/mul fast paths are bit-identical to the
    /// general kernels on the same inputs (debug builds; the kill switch is
    /// compiled out of release builds). Dense mantissas and a wide exponent
    /// spread exercise alignment, sticky collection, rounding carries, and
    /// the cancellation paths.
    #[test]
    fn fast_paths_match_general_kernels(
        x in reasonable_f64(),
        y in reasonable_f64(),
        scale in -80i32..80,
    ) {
        #[cfg(debug_assertions)]
        {
            prop_assume!(x != 0.0 && y != 0.0);
            let a = BigFloat::from_f64(x).div(&BigFloat::from_f64(7.0));
            let b = BigFloat::from_f64(y * 2f64.powi(scale)).div(&BigFloat::from_f64(3.0));
            let fast = [a.add(&b), a.sub(&b), a.mul(&b), b.sub(&a)];
            shadowreal::bigfloat::set_disable_fast_paths(true);
            let general = [a.add(&b), a.sub(&b), a.mul(&b), b.sub(&a)];
            shadowreal::bigfloat::set_disable_fast_paths(false);
            for (i, (f, g)) in fast.iter().zip(&general).enumerate() {
                if f.is_zero() && g.is_zero() {
                    assert_eq!(f.is_negative(), g.is_negative(), "zero sign at step {i}");
                    continue;
                }
                assert_bit_identical(f, g, &format!("fast-path step {i} on ({x}, {y}, {scale})"));
            }
        }
        #[cfg(not(debug_assertions))]
        {
            let _ = (x, y, scale);
        }
    }

    /// Elementary functions agree with libm at every precision — the
    /// boundary introduces no accuracy cliff.
    #[test]
    fn functions_stay_faithful_across_the_boundary(x in 0.01f64..100.0) {
        for prec in PRECISIONS {
            let b = BigFloat::from_f64_prec(x, prec);
            for (name, got, expect) in [
                ("exp", b.exp().to_f64(), x.exp()),
                ("ln", b.ln().to_f64(), x.ln()),
                ("sin", b.sin().to_f64(), x.sin()),
                ("sqrt", b.sqrt().to_f64(), x.sqrt()),
            ] {
                if expect.is_infinite() {
                    prop_assert!(got.is_infinite(), "{} at {}", name, prec);
                } else {
                    let scale = expect.abs().max(1e-300);
                    prop_assert!(
                        ((got - expect) / scale).abs() < 1e-12,
                        "{}({}) at {} bits: {} vs {}",
                        name, x, prec, got, expect
                    );
                }
            }
        }
    }

    /// The shadow-precision parameter threads through the `Real` trait: each
    /// precision stands alone, and mixed-precision operations resolve to the
    /// wider operand exactly as documented.
    #[test]
    fn trait_level_precision_is_per_value(x in reasonable_f64()) {
        // Zeros (and infinities/NaN) carry no mantissa, so they report the
        // process default precision; the property is about finite values.
        prop_assume!(x != 0.0);
        let narrow = <BigFloat as Real>::from_f64_prec(x, 64);
        let wide = <BigFloat as Real>::from_f64_prec(x, 1024);
        prop_assert_eq!(narrow.precision(), 64);
        prop_assert_eq!(wide.precision(), 1024);
        let mixed = BigFloat::apply(RealOp::Add, &[narrow, wide]);
        prop_assert_eq!(mixed.precision(), 1024);
    }
}

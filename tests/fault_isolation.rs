//! Deterministic fault injection against the fault-isolated drivers
//! (enabled with `--features fault-injection`).
//!
//! The contract under test, over real FPBench benchmarks:
//!
//! 1. **No loss** — no fault configuration loses a non-faulted input's
//!    records: the degraded report is bit-identical to the plain serial
//!    analysis of the surviving inputs alone.
//! 2. **Determinism** — quarantine lists are identical across thread
//!    counts and batch widths, and the `(input, error)` pairs are identical
//!    across all four drivers.
//! 3. **Typed faults** — injected budget faults surface as the same typed
//!    [`MachineError`] the real budget produces.
//! 4. **Retry ladder** — tier-scoped faults heal through the ladder
//!    (`DoubleDouble` probe, then `BigFloat` probe); faults that survive
//!    the whole ladder quarantine with the last rung's stage.
#![cfg(feature = "fault-injection")]

use fpvm::MachineError;
use herbgrind::faultinject::{self, FaultPlan, FaultSpec, InjectKind, InjectStage, SeededFaults};
use herbgrind::{
    analyze, analyze_batched_isolated, analyze_isolated, analyze_parallel_isolated,
    analyze_tiered_isolated, AnalysisConfig, QuarantinedInput, Report, SweepStage,
};

fn assert_degraded_matches_survivors(degraded: &Report, survivors: &Report, context: &str) {
    let mut cleared = degraded.clone();
    cleared.quarantined.clear();
    assert_eq!(
        format!("{cleared:?}"),
        format!("{survivors:?}"),
        "structural mismatch: {context}"
    );
    assert_eq!(
        cleared.to_text(),
        survivors.to_text(),
        "rendered mismatch: {context}"
    );
}

fn surviving_inputs(inputs: &[Vec<f64>], quarantined: &[QuarantinedInput]) -> Vec<Vec<f64>> {
    inputs
        .iter()
        .enumerate()
        .filter(|(i, _)| !quarantined.iter().any(|q| q.input_index == *i))
        .map(|(_, input)| input.clone())
        .collect()
}

/// Runs every isolated driver (serial; parallel ×2 thread counts; batched
/// ×3 widths; tiered ×2 widths) and asserts the full contract: expected
/// quarantine indices, per-driver deterministic stages, cross-driver
/// identical `(index, error)` pairs, and survivor bit-identity.
fn assert_isolation_contract(
    program: &fpvm::Program,
    inputs: &[Vec<f64>],
    config: &AnalysisConfig,
    expected_indices: &[usize],
    context: &str,
) {
    let reference = analyze_isolated(program, inputs, config);
    let got: Vec<usize> = reference
        .quarantined
        .iter()
        .map(|q| q.input_index)
        .collect();
    assert_eq!(got, expected_indices, "serial quarantine set: {context}");
    assert!(
        reference
            .quarantined
            .iter()
            .all(|q| q.stage == SweepStage::Serial),
        "serial stages: {context}"
    );
    // The cross-driver invariant: same inputs quarantined for the same
    // faults; only the recorded pipeline stage differs by driver.
    let keys: Vec<(usize, herbgrind::SweepFault)> = reference
        .quarantined
        .iter()
        .map(|q| (q.input_index, q.error.clone()))
        .collect();
    // The plain drivers never consult the plan, so the survivors oracle is
    // uninjected even while the plan is installed.
    let survivors = analyze(
        program,
        &surviving_inputs(inputs, &reference.quarantined),
        config,
    )
    .unwrap_or_else(|e| panic!("survivors oracle failed ({context}): {e:?}"));
    assert_eq!(
        survivors.total_runs as usize,
        inputs.len() - expected_indices.len()
    );
    assert_degraded_matches_survivors(&reference, &survivors, &format!("serial: {context}"));

    for threads in [2usize, 8] {
        let report =
            analyze_parallel_isolated(program, inputs, &config.clone().with_threads(threads));
        let pairs: Vec<_> = report
            .quarantined
            .iter()
            .map(|q| (q.input_index, q.error.clone()))
            .collect();
        assert_eq!(pairs, keys, "parallel t={threads}: {context}");
        assert!(report
            .quarantined
            .iter()
            .all(|q| q.stage == SweepStage::ParallelShard));
        assert_degraded_matches_survivors(
            &report,
            &survivors,
            &format!("parallel t={threads}: {context}"),
        );
    }

    for width in [1usize, 4, 8] {
        let report = analyze_batched_isolated(
            program,
            inputs,
            &config.clone().with_batch_width(width).with_threads(2),
        );
        let pairs: Vec<_> = report
            .quarantined
            .iter()
            .map(|q| (q.input_index, q.error.clone()))
            .collect();
        assert_eq!(pairs, keys, "batched w={width}: {context}");
        assert!(report
            .quarantined
            .iter()
            .all(|q| q.stage == SweepStage::BatchedLane));
        assert_degraded_matches_survivors(
            &report,
            &survivors,
            &format!("batched w={width}: {context}"),
        );
    }

    for width in [1usize, 8] {
        let report =
            analyze_tiered_isolated(program, inputs, &config.clone().with_batch_width(width));
        let pairs: Vec<_> = report
            .quarantined
            .iter()
            .map(|q| (q.input_index, q.error.clone()))
            .collect();
        assert_eq!(pairs, keys, "tiered w={width}: {context}");
        assert_degraded_matches_survivors(
            &report,
            &survivors,
            &format!("tiered w={width}: {context}"),
        );
    }
}

#[test]
fn injected_panic_quarantines_only_that_input_across_drivers() {
    // A stage-agnostic panic at input 7: every driver (and every retry
    // probe) re-observes it, so exactly input 7 is quarantined everywhere.
    let _guard = faultinject::install(FaultPlan::sites(vec![FaultSpec::input(
        7,
        InjectKind::Panic,
    )]));
    for core in fpbench::subset(4) {
        let name = core.display_name().to_string();
        let prepared = fpbench::prepare(&core, 20, 2026).expect("prepare");
        assert_isolation_contract(
            &prepared.program,
            &prepared.inputs,
            &AnalysisConfig::default(),
            &[7],
            &format!("panic at 7, {name}"),
        );
    }
}

#[test]
fn injected_budget_faults_are_typed_and_deterministic() {
    // Step-budget fault at input 3, trace-budget fault at input 11: the
    // quarantine records carry the same typed errors the real budgets
    // produce, with the configured limits.
    let _guard = faultinject::install(FaultPlan::sites(vec![
        FaultSpec::input(3, InjectKind::StepBudget),
        FaultSpec::input(11, InjectKind::TraceBudget),
    ]));
    let core = fpbench::by_name("NMSE example 3.1").expect("benchmark present");
    let prepared = fpbench::prepare(&core, 18, 7).expect("prepare");
    let config = AnalysisConfig::default()
        .with_step_limit(123_456)
        .with_trace_node_budget(777);
    assert_isolation_contract(
        &prepared.program,
        &prepared.inputs,
        &config,
        &[3, 11],
        "injected budgets",
    );
    let report = analyze_isolated(&prepared.program, &prepared.inputs, &config);
    assert_eq!(
        report.quarantined[0].error,
        herbgrind::SweepFault::Machine(MachineError::StepBudgetExceeded { limit: 123_456 })
    );
    assert_eq!(
        report.quarantined[1].error,
        herbgrind::SweepFault::Machine(MachineError::TraceBudgetExceeded { limit: 777 })
    );
}

#[test]
fn seeded_background_faults_lose_no_surviving_records() {
    // Pseudo-random panics keyed only on (input, pc): the same fault set
    // reproduces on every driver, thread count, and width, and the
    // survivors' records are never lost.
    let _guard = faultinject::install(FaultPlan {
        specs: vec![],
        seeded: Some(SeededFaults {
            seed: 0xA5A5,
            one_in: 40,
            kind: InjectKind::Panic,
            stage: None,
        }),
    });
    for core in fpbench::subset(3) {
        let name = core.display_name().to_string();
        let prepared = fpbench::prepare(&core, 16, 99).expect("prepare");
        let config = AnalysisConfig::default();
        // Discover the seeded quarantine set from the serial driver, then
        // hold every other driver to exactly that set.
        let reference = analyze_isolated(&prepared.program, &prepared.inputs, &config);
        let expected: Vec<usize> = reference
            .quarantined
            .iter()
            .map(|q| q.input_index)
            .collect();
        assert!(
            expected.len() < prepared.inputs.len(),
            "seeded plan must leave survivors ({name})"
        );
        assert_isolation_contract(
            &prepared.program,
            &prepared.inputs,
            &config,
            &expected,
            &format!("seeded faults, {name}"),
        );
    }
}

#[test]
fn tier_escalation_exercises_the_full_retry_ladder() {
    // A TierEscalation fault at input 5: the certify probe forces it out of
    // the certified tier, the BigFloat tier's pass panics on it, and the
    // BigFloat retry probe — the ladder's last rung — panics again, so it
    // is quarantined with the TieredBigFloat stage. Every other input's
    // records survive.
    let _guard = faultinject::install(FaultPlan::sites(vec![FaultSpec::input(
        5,
        InjectKind::TierEscalation,
    )]));
    let core = fpbench::by_name("NMSE example 3.1").expect("benchmark present");
    let prepared = fpbench::prepare(&core, 14, 3).expect("prepare");
    let config = AnalysisConfig::default();
    let survivors_inputs: Vec<Vec<f64>> = prepared
        .inputs
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != 5)
        .map(|(_, input)| input.clone())
        .collect();
    let survivors = analyze(&prepared.program, &survivors_inputs, &config).expect("oracle");
    for width in [1usize, 4, 8] {
        let report = analyze_tiered_isolated(
            &prepared.program,
            &prepared.inputs,
            &config.clone().with_batch_width(width),
        );
        assert_eq!(
            report
                .quarantined
                .iter()
                .map(|q| (q.input_index, q.stage))
                .collect::<Vec<_>>(),
            vec![(5, SweepStage::TieredBigFloat)],
            "width={width}"
        );
        assert!(matches!(
            report.quarantined[0].error,
            herbgrind::SweepFault::Panic(_)
        ));
        assert_degraded_matches_survivors(&report, &survivors, &format!("escalation w={width}"));
    }
    // The other drivers never reach a tier stage, so the same plan is a
    // no-op for them: nothing quarantined, full report.
    let serial = analyze_isolated(&prepared.program, &prepared.inputs, &config);
    assert!(serial.quarantined.is_empty());
    let full = analyze(&prepared.program, &prepared.inputs, &config).expect("full oracle");
    assert_degraded_matches_survivors(&serial, &full, "escalation is tier-scoped");
}

#[test]
fn stage_scoped_faults_heal_through_the_retry_ladder() {
    // A panic scoped to the DoubleDouble tier only: the tier pass and the
    // DoubleDouble probe both fail, but the BigFloat probe rung runs clean,
    // so the input *heals* — nothing is quarantined, and the report equals
    // the plain analysis of every input (sound because certified inputs
    // have identical DoubleDouble and BigFloat records).
    let _guard = faultinject::install(FaultPlan::sites(vec![FaultSpec::input(
        2,
        InjectKind::Panic,
    )
    .in_stage(InjectStage::TieredDoubleDouble)]));
    let core = fpbench::by_name("NMSE example 3.1").expect("benchmark present");
    let prepared = fpbench::prepare(&core, 12, 5).expect("prepare");
    let config = AnalysisConfig::default();
    let full = analyze(&prepared.program, &prepared.inputs, &config).expect("full oracle");
    for width in [1usize, 8] {
        let report = analyze_tiered_isolated(
            &prepared.program,
            &prepared.inputs,
            &config.clone().with_batch_width(width),
        );
        assert!(
            report.quarantined.is_empty(),
            "dd-scoped fault must heal at the BigFloat rung (width={width}): {:?}",
            report.quarantined
        );
        assert_degraded_matches_survivors(&report, &full, &format!("healed ladder w={width}"));
    }
}

#[test]
fn nan_poison_is_absorbed_without_quarantine() {
    // NaN poisoning models a corrupted shadow value rather than a crashed
    // run: the analysis must absorb it (fail-closed error kernels) without
    // quarantining or panicking, and every input must still be analyzed.
    let _guard = faultinject::install(FaultPlan::sites(vec![FaultSpec::input(
        4,
        InjectKind::NanPoison,
    )
    .in_stage(InjectStage::Serial)]));
    let core = fpbench::by_name("NMSE example 3.1").expect("benchmark present");
    let prepared = fpbench::prepare(&core, 10, 13).expect("prepare");
    let config = AnalysisConfig::default();
    let report = analyze_isolated(&prepared.program, &prepared.inputs, &config);
    assert!(report.quarantined.is_empty());
    assert_eq!(report.total_runs, 10);
    // The poisoned input's error is pinned to the fail-closed maximum, so
    // the report must flag significant error somewhere.
    assert!(report.has_significant_error());
}

#[test]
fn fired_sites_match_the_installed_plan() {
    // The harness audits which faults actually landed: the distinct fired
    // inputs must be exactly the planned inputs, each with the planned
    // kind, and the telemetry fire counter must cover every distinct site.
    let _guard = faultinject::install(FaultPlan::sites(vec![
        FaultSpec::input(3, InjectKind::Panic),
        FaultSpec::input(5, InjectKind::StepBudget),
    ]));
    let core = fpbench::by_name("NMSE example 3.1").expect("benchmark present");
    let prepared = fpbench::prepare(&core, 12, 7).expect("prepare");
    let config = AnalysisConfig::default().with_telemetry(herbgrind::TelemetryMode::On);
    let (report, tel) =
        herbgrind::analyze_isolated_telemetry(&prepared.program, &prepared.inputs, &config);
    let indices: Vec<usize> = report.quarantined.iter().map(|q| q.input_index).collect();
    assert_eq!(indices, vec![3, 5]);

    let sites = faultinject::fired_sites();
    assert!(!sites.is_empty());
    for site in &sites {
        match site.input_index {
            3 => assert_eq!(site.kind, InjectKind::Panic, "site {site:?}"),
            5 => assert_eq!(site.kind, InjectKind::StepBudget, "site {site:?}"),
            other => panic!("fault fired at unplanned input {other}: {site:?}"),
        }
    }
    let fired_inputs: std::collections::BTreeSet<usize> =
        sites.iter().map(|s| s.input_index).collect();
    assert_eq!(fired_inputs.into_iter().collect::<Vec<_>>(), vec![3, 5]);
    assert!(
        tel.counter("faultinject.fired") >= sites.len() as u64,
        "fire counter {} below distinct-site count {}",
        tel.counter("faultinject.fired"),
        sites.len()
    );
}

#[test]
fn stage_scoped_plan_fires_only_in_that_stage() {
    // A serial-stage-only fault plan must never fire while the batched or
    // tiered drivers run, and the fired-site audit proves it.
    let _guard = faultinject::install(FaultPlan::sites(vec![FaultSpec::input(
        2,
        InjectKind::Panic,
    )
    .in_stage(InjectStage::Serial)]));
    let core = fpbench::by_name("NMSE example 3.1").expect("benchmark present");
    let prepared = fpbench::prepare(&core, 8, 3).expect("prepare");
    let config = AnalysisConfig::default();
    let batched = analyze_batched_isolated(&prepared.program, &prepared.inputs, &config);
    assert!(batched.quarantined.is_empty());
    assert!(
        faultinject::fired_sites().is_empty(),
        "serial-stage plan fired during a batched sweep: {:?}",
        faultinject::fired_sites()
    );
}

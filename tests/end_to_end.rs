//! Cross-crate integration tests: the full pipeline from FPCore text through
//! the abstract machine, the Herbgrind analysis, and the improvement oracle.

use fpcore::parse_core;
use fpvm::{compile_core, Machine};
use herbgrind::{analyze, AnalysisConfig, RangeKind};
use herbie_lite::{improve, sample_inputs, ImprovementOptions};

/// The paper's headline workflow: detect, extract a root cause, improve it.
#[test]
fn detect_extract_improve_pipeline() {
    let core =
        parse_core("(FPCore (x) :name \"2sqrt\" :pre (<= 1 x 1e15) (- (sqrt (+ x 1)) (sqrt x)))")
            .unwrap();
    let program = compile_core(&core, Default::default()).unwrap();
    let inputs = sample_inputs(&core, 150, 7).unwrap();
    let report = analyze(&program, &inputs, &AnalysisConfig::default()).unwrap();
    assert!(report.has_significant_error());

    let causes = report.root_cause_cores();
    assert!(!causes.is_empty());
    let cause = &causes[0];
    let cause_inputs = sample_inputs(cause, 150, 8).unwrap();
    let improved = improve(cause, &cause_inputs, &ImprovementOptions::default()).unwrap();
    assert!(improved.original_error_bits > 5.0);
    assert!(improved.improved, "rules: {:?}", improved.rules_applied);
}

/// The machine agrees with the reference FPCore evaluator on the whole
/// embedded suite (one sampled input per benchmark).
#[test]
fn machine_matches_reference_evaluator_on_suite() {
    for core in fpbench::suite() {
        let program = compile_core(&core, Default::default()).unwrap();
        let inputs = sample_inputs(&core, 3, 99).unwrap();
        for input in &inputs {
            let expected = fpcore::eval::eval_f64(&core, input).unwrap();
            let got = Machine::new(&program).run(input).unwrap().outputs[0];
            if expected.is_nan() {
                assert!(got.is_nan(), "{}: {got} vs NaN", core.display_name());
            } else {
                assert_eq!(got, expected, "{} on {input:?}", core.display_name());
            }
        }
    }
}

/// The PID-controller case study: control-flow divergence is detected and
/// linked to the inaccurate increment.
#[test]
fn pid_controller_branch_divergence_is_detected() {
    let core = parse_core(
        "(FPCore (n) :pre (<= 1 n 20) (while (< t n) ((t 0 (+ t 0.2)) (c 0 (+ c 1))) c))",
    )
    .unwrap();
    let program = compile_core(&core, Default::default()).unwrap();
    let inputs: Vec<Vec<f64>> = (1..=20).map(|n| vec![n as f64]).collect();
    let config = AnalysisConfig::default().with_local_error_threshold(0.5);
    let report = analyze(&program, &inputs, &config).unwrap();
    assert!(report.branch_divergences > 0);
    let compare_spot = report
        .spots
        .iter()
        .find(|s| s.kind_label == "Compare")
        .unwrap();
    assert!(compare_spot.erroneous > 0);
    // When the accumulated 0.2 increment exhibits local error above the
    // threshold it is reported as the root cause of the divergence; the
    // divergence itself is always detected.
    if !compare_spot.root_causes.is_empty() {
        assert!(
            compare_spot
                .root_causes
                .iter()
                .any(|c| c.fpcore.contains("0.2") || c.fpcore.contains("2e-1")),
            "{}",
            report.to_text()
        );
    }
}

/// The Gram-Schmidt case study: a NaN produced by a degenerate input is
/// reported with maximal error.
#[test]
fn gram_schmidt_nan_is_maximal_error() {
    let core = parse_core(
        "(FPCore (ax ay bx by)
          (let* ((proj (/ (+ (* ax bx) (* ay by)) (+ (* ax ax) (* ay ay))))
                 (ux (- bx (* proj ax))) (uy (- by (* proj ay)))
                 (norm (sqrt (+ (* ux ux) (* uy uy)))))
            (/ ux norm)))",
    )
    .unwrap();
    let program = compile_core(&core, Default::default()).unwrap();
    // The second vector is parallel to the first: u is (numerically) zero and
    // the final normalization divides zero by zero.
    let inputs = vec![vec![1.0, 2.0, 2.0, 4.0], vec![1.0, 1.0, 2.0, 3.0]];
    let report = analyze(&program, &inputs, &AnalysisConfig::default()).unwrap();
    assert!(report.has_significant_error());
    assert!(
        report.spots[0].max_error_bits >= 60.0,
        "{}",
        report.to_text()
    );
}

/// Input characteristics narrow the reported ranges to the erroneous band.
#[test]
fn input_characteristics_identify_erroneous_region() {
    // baz from §2.1: only inputs near 113 are problematic.
    let core =
        parse_core("(FPCore (x) :pre (<= 0 x 300) (let ((z (/ 1 (- x 113)))) (- (+ z PI) z)))")
            .unwrap();
    let program = compile_core(&core, Default::default()).unwrap();
    let mut inputs: Vec<Vec<f64>> = (0..300).map(|i| vec![i as f64]).collect();
    // Include points extremely close to 113 where z blows up.
    for k in 1..20 {
        inputs.push(vec![113.0 + 10f64.powi(-k)]);
    }
    let config = AnalysisConfig::default().with_range_kind(RangeKind::Single);
    let report = analyze(&program, &inputs, &config).unwrap();
    assert!(report.has_significant_error(), "{}", report.to_text());
    let cause = &report.spots[0].root_causes[0];
    // The reported precondition reflects observed intermediate values, and an
    // example problematic input is present.
    assert!(cause.precondition.is_some());
    assert!(!cause.example_input.is_empty());
}

/// The three baseline detectors and Herbgrind agree on whether a benchmark
/// is problematic, but only Herbgrind produces an improvable fragment.
#[test]
fn baselines_detect_but_do_not_localize() {
    let core = parse_core("(FPCore (x) :pre (<= 1 x 1e25) (* (- (+ x 1) x) 3))").unwrap();
    let program = compile_core(&core, Default::default()).unwrap();
    let inputs: Vec<Vec<f64>> = (0..25).map(|i| vec![10f64.powi(i)]).collect();

    let fpdebug = baselines::FpDebugDetector::analyze(&program, &inputs).unwrap();
    assert!(!fpdebug.erroneous_operations(5.0).is_empty());

    let verrou = baselines::verrou_compare(&program, &inputs, 5, 3).unwrap();
    assert!(verrou.possibly_unstable(5.0));

    let herbgrind = analyze(&program, &inputs, &AnalysisConfig::default()).unwrap();
    assert!(herbgrind.has_significant_error());
    let cause = &herbgrind.spots[0].root_causes[0];
    // Only Herbgrind reports an abstracted code fragment with variables.
    assert!(cause.symbolic.variable_count() >= 1);
    assert!(cause.fpcore.contains("FPCore"));
}

/// Analysis with the fast double-double shadow and the BigFloat shadow agree
/// on detection for a clear-cut case.
#[test]
fn shadow_representations_agree_on_detection() {
    let core = parse_core("(FPCore (x) :pre (<= 1 x 1e15) (- (+ x 1) x))").unwrap();
    let program = compile_core(&core, Default::default()).unwrap();
    let inputs: Vec<Vec<f64>> = (0..20).map(|i| vec![10f64.powi(i)]).collect();
    let config = AnalysisConfig::default();
    let big = analyze(&program, &inputs, &config).unwrap();
    let dd = herbgrind::analyze_with_shadow::<shadowreal::DoubleDouble>(&program, &inputs, &config)
        .unwrap();
    assert_eq!(big.has_significant_error(), dd.has_significant_error());
}

/// The library-wrapping ablation produces larger expressions when disabled,
/// end to end through the fpbench driver.
#[test]
fn wrapping_ablation_end_to_end() {
    let benches = vec![fpbench::by_name("NMSE section 3.5").unwrap()];
    let cmp = fpbench::wrapping_comparison(&benches, 40, 5, &AnalysisConfig::default()).unwrap();
    assert!(cmp.unwrapped_max_ops > cmp.wrapped_max_ops);
    assert!(cmp.unwrapped_flagged >= cmp.wrapped_flagged);
}

//! Determinism of the sharded analysis: `analyze_parallel` must produce a
//! `Report` bit-identical to serial `analyze` for every shard count, on every
//! benchmark — same spots, root causes, error bits, influence sets, rendered
//! text.
//!
//! This is the contract that makes the parallel engine safe to use
//! everywhere (the fpbench driver and all experiment sweeps route through
//! it): parallelism may only change wall-clock time, never analysis output.

use herbgrind::{analyze, analyze_parallel, analyze_parallel_with_shadow, AnalysisConfig, Report};
use herbie_lite::sample_inputs;

/// Compares two reports bit for bit.
///
/// The `Debug` rendering covers every field of every spot and root cause
/// (counts, error bits, influence-derived orderings, symbolic expressions,
/// preconditions, example inputs) and prints floats exactly — including NaN,
/// which `==` on the raw floats would reject even when bit-identical.
fn assert_reports_identical(serial: &Report, parallel: &Report, context: &str) {
    assert_eq!(
        format!("{serial:?}"),
        format!("{parallel:?}"),
        "structural mismatch: {context}"
    );
    assert_eq!(
        serial.to_text(),
        parallel.to_text(),
        "rendered mismatch: {context}"
    );
}

#[test]
fn sharded_analysis_matches_serial_on_the_suite() {
    let shard_counts = [1usize, 2, 8];
    let mut benchmarks_with_error = 0;
    for core in fpbench::subset(12) {
        let name = core.display_name().to_string();
        let Ok(prepared) = fpbench::prepare(&core, 48, 2024) else {
            panic!("benchmark {name} failed to prepare");
        };
        let serial = analyze(
            &prepared.program,
            &prepared.inputs,
            &AnalysisConfig::default(),
        )
        .unwrap_or_else(|e| panic!("{name}: serial analysis failed: {e:?}"));
        if serial.has_significant_error() {
            benchmarks_with_error += 1;
        }
        for shards in shard_counts {
            let config = AnalysisConfig::default().with_threads(shards);
            let parallel = analyze_parallel(&prepared.program, &prepared.inputs, &config)
                .unwrap_or_else(|e| panic!("{name}: parallel analysis failed: {e:?}"));
            assert_reports_identical(&serial, &parallel, &format!("{name} with {shards} shards"));
        }
    }
    // The subset must actually exercise the analysis, not just clean kernels.
    assert!(
        benchmarks_with_error >= 4,
        "only {benchmarks_with_error} of 12 benchmarks had significant error"
    );
}

#[test]
fn sharded_analysis_matches_serial_with_nondefault_configuration() {
    // Thresholds, depth bounds, range kinds, and compensation detection all
    // feed the merged state; determinism must hold for every knob setting.
    let core = fpbench::by_name("NMSE example 3.1").expect("benchmark present");
    let prepared = fpbench::prepare(&core, 40, 7).expect("prepare");
    let configs = [
        AnalysisConfig::fpdebug_like(),
        AnalysisConfig::default().with_local_error_threshold(1.0),
        AnalysisConfig::default().with_max_expression_depth(3),
        AnalysisConfig::default().with_range_kind(herbgrind::RangeKind::Single),
        AnalysisConfig::default().with_range_kind(herbgrind::RangeKind::None),
        AnalysisConfig::default().with_compensation_detection(false),
    ];
    for (i, config) in configs.into_iter().enumerate() {
        let serial = analyze(&prepared.program, &prepared.inputs, &config).expect("serial");
        for shards in [2usize, 5] {
            let sharded = config.clone().with_threads(shards);
            let parallel =
                analyze_parallel(&prepared.program, &prepared.inputs, &sharded).expect("parallel");
            assert_reports_identical(&serial, &parallel, &format!("config {i}, {shards} shards"));
        }
    }
}

#[test]
fn sharded_analysis_matches_serial_for_alternate_shadows() {
    let core = fpbench::by_name("NMSE example 3.1").expect("benchmark present");
    let prepared = fpbench::prepare(&core, 30, 11).expect("prepare");
    let config = AnalysisConfig::default();
    let serial = herbgrind::analyze_with_shadow::<shadowreal::DoubleDouble>(
        &prepared.program,
        &prepared.inputs,
        &config,
    )
    .expect("serial");
    let parallel = analyze_parallel_with_shadow::<shadowreal::DoubleDouble>(
        &prepared.program,
        &prepared.inputs,
        &config.clone().with_threads(4),
    )
    .expect("parallel");
    assert_reports_identical(&serial, &parallel, "DoubleDouble shadow, 4 shards");
}

#[test]
fn sharded_analysis_handles_loops_and_branch_divergence() {
    // Control-flow benchmarks stress the merge differently: traces differ in
    // shape between runs, and branch spots accumulate divergences.
    let core = fpcore::parse_core(
        "(FPCore (n) :pre (<= 1 n 40) (while (< t n) ((t 0 (+ t 0.2)) (c 0 (+ c 1))) c))",
    )
    .unwrap();
    let program = fpvm::compile_core(&core, Default::default()).unwrap();
    let inputs: Vec<Vec<f64>> = (1..=40).map(|n| vec![n as f64]).collect();
    let config = AnalysisConfig::default().with_local_error_threshold(0.5);
    let serial = analyze(&program, &inputs, &config).expect("serial");
    assert!(serial.branch_divergences > 0);
    for shards in [2usize, 8] {
        let parallel = analyze_parallel(&program, &inputs, &config.clone().with_threads(shards))
            .expect("parallel");
        assert_reports_identical(
            &serial,
            &parallel,
            &format!("loop benchmark, {shards} shards"),
        );
    }
}

#[test]
fn multiple_failing_shards_surface_the_lowest_input_index_error() {
    // When several shards fail with *different* errors, the driver must
    // deterministically return the error of the lowest failing input — the
    // error serial analysis stops with — regardless of which thread
    // finishes (or fails) first. Input 2 fails instantly with an arity
    // mismatch; input 7 burns its whole step budget first, so a
    // first-failure-wins implementation would race toward the wrong error.
    let core = fpcore::parse_core(
        "(FPCore (n) (while (< i n) ((i 0 (+ i 1)) (acc 1 (* acc 1.0000001))) acc))",
    )
    .unwrap();
    let program = fpvm::compile_core(&core, Default::default()).unwrap();
    let mut inputs: Vec<Vec<f64>> = (0..10).map(|n| vec![n as f64]).collect();
    inputs[2] = vec![1.0, 2.0]; // arity mismatch
    inputs[7] = vec![1.0e9]; // step-budget exhaustion
    let config = AnalysisConfig::default().with_step_limit(10_000);
    let expected = fpvm::MachineError::ArityMismatch {
        expected: 1,
        actual: 2,
    };
    assert_eq!(
        analyze(&program, &inputs, &config).err(),
        Some(expected.clone())
    );
    for threads in [2usize, 3, 4, 8] {
        let got = analyze_parallel(&program, &inputs, &config.clone().with_threads(threads)).err();
        assert_eq!(
            got,
            Some(expected.clone()),
            "threads={threads} must surface the input-2 error, not the input-7 one"
        );
    }
}

#[test]
fn shard_counts_beyond_input_count_are_harmless() {
    let core = fpcore::parse_core("(FPCore (x) :pre (<= 1 x 1e15) (- (+ x 1) x))").unwrap();
    let program = fpvm::compile_core(&core, Default::default()).unwrap();
    let inputs = sample_inputs(&core, 3, 5).unwrap();
    let serial = analyze(&program, &inputs, &AnalysisConfig::default()).expect("serial");
    let parallel = analyze_parallel(
        &program,
        &inputs,
        &AnalysisConfig::default().with_threads(64),
    )
    .expect("parallel");
    assert_reports_identical(&serial, &parallel, "3 inputs, 64 requested shards");
    // Empty sweeps produce the same (empty) report too.
    let serial_empty = analyze(&program, &[], &AnalysisConfig::default()).expect("serial empty");
    let parallel_empty =
        analyze_parallel(&program, &[], &AnalysisConfig::default().with_threads(8))
            .expect("parallel empty");
    assert_reports_identical(&serial_empty, &parallel_empty, "empty input sweep");
}

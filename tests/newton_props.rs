//! Property tests pinning the Newton/reciprocal division and square-root
//! kernels to the retained digit-by-digit reference paths.
//!
//! The fast kernels (`div_core_mg` / `div_core_newton` / `div_core_word`
//! and the rsqrt-based square root) are required to be *bit-identical* to
//! restoring long division / restoring square root on every input: same
//! mantissa, same exponent, same sticky-driven rounding. In debug builds
//! the `set_disable_fast_paths` hook reruns each computation on the
//! reference path, and `set_force_heap_limbs` repeats the comparison with
//! every limb buffer forced onto the heap, covering the inline/heap
//! boundary. The directed generators aim at the spots where a
//! reciprocal-estimate pipeline would drift: exact power-of-two divisors,
//! quotients that land on rounding-boundary ties, and operands at
//! subnormal-adjacent f64 exponents.

#![cfg(debug_assertions)]

use proptest::prelude::*;
use shadowreal::BigFloat;

/// The precision spread from the issue: below the clamp floor (53 maps to
/// the 64-bit minimum), both inline widths, odd in-between widths that
/// leave partial top limbs, and a heap width.
const PRECISIONS: [u32; 6] = [53, 64, 106, 212, 256, 1024];

/// Asserts two same-precision BigFloats are bit-identical.
fn assert_bit_identical(a: &BigFloat, b: &BigFloat, context: &str) {
    assert_eq!(a.precision(), b.precision(), "precision: {context}");
    if a.is_nan() || b.is_nan() {
        assert_eq!(a.is_nan(), b.is_nan(), "NaN-ness: {context}");
        return;
    }
    if a.is_zero() && b.is_zero() {
        assert_eq!(a.is_negative(), b.is_negative(), "zero sign: {context}");
        return;
    }
    assert!(a.eq_value(b), "value: {context}");
    assert_eq!(a.exponent(), b.exponent(), "exponent: {context}");
    assert_eq!(a.is_negative(), b.is_negative(), "sign: {context}");
    assert_eq!(
        a.to_f64().to_bits(),
        b.to_f64().to_bits(),
        "f64 rounding: {context}"
    );
}

/// Runs `op` on the fast path, the reference path, and the reference path
/// with forced-heap limbs, and asserts all three agree bit for bit.
fn pin_to_reference(op: impl Fn() -> BigFloat, context: &str) {
    let fast = op();
    shadowreal::bigfloat::set_disable_fast_paths(true);
    let reference = op();
    shadowreal::bigfloat::set_force_heap_limbs(true);
    let heap_reference = op();
    shadowreal::bigfloat::set_force_heap_limbs(false);
    shadowreal::bigfloat::set_disable_fast_paths(false);
    shadowreal::bigfloat::set_force_heap_limbs(true);
    let heap_fast = op();
    shadowreal::bigfloat::set_force_heap_limbs(false);
    assert_bit_identical(&fast, &reference, &format!("fast vs reference: {context}"));
    assert_bit_identical(
        &fast,
        &heap_reference,
        &format!("fast vs heap ref: {context}"),
    );
    assert_bit_identical(
        &fast,
        &heap_fast,
        &format!("inline vs heap fast: {context}"),
    );
}

/// Dense mantissas: dividing small integers by 7/3 fills the fraction with
/// a repeating pattern at full precision.
fn dense(x: f64, prec: u32) -> BigFloat {
    BigFloat::from_f64_prec(x, prec).div(&BigFloat::from_f64_prec(7.0, prec))
}

proptest! {
    /// Division is bit-identical to restoring long division across the
    /// whole precision spread and the inline/heap boundary.
    #[test]
    fn division_matches_long_division(
        x in -1e9f64..1e9,
        y in -1e9f64..1e9,
        scale in -200i32..200,
    ) {
        prop_assume!(x != 0.0 && y != 0.0);
        for prec in PRECISIONS {
            let a = dense(x, prec);
            let b = dense(y * 2f64.powi(scale / 2), prec);
            pin_to_reference(
                || a.div(&b),
                &format!("{x} / {y} (scale {scale}) at {prec} bits"),
            );
        }
    }

    /// Square root is bit-identical to the restoring digit algorithm.
    #[test]
    fn sqrt_matches_digit_root(x in 1e-12f64..1e12, scale in -200i32..200) {
        for prec in PRECISIONS {
            let g = dense(x * 2f64.powi(scale / 2), prec).abs();
            pin_to_reference(|| g.sqrt(), &format!("sqrt({x}) scale {scale} at {prec} bits"));
        }
    }

    /// Exact power-of-two divisors take the single-word short-division
    /// path; the quotient must still match the reference bit for bit (the
    /// mantissa is unchanged, only the exponent moves).
    #[test]
    fn power_of_two_divisors(x in -1e9f64..1e9, k in -120i32..120) {
        prop_assume!(x != 0.0);
        for prec in PRECISIONS {
            let a = dense(x, prec);
            let b = BigFloat::from_f64_prec(2f64.powi(k), prec);
            pin_to_reference(|| a.div(&b), &format!("{x} / 2^{k} at {prec} bits"));
            let q = a.div(&b);
            prop_assert!(
                q.eq_value(&a.mul(&BigFloat::from_f64_prec(2f64.powi(-k), prec))),
                "power-of-two division must be an exact exponent shift"
            );
        }
    }

    /// Quotients constructed to land exactly on the rounding boundary: with
    /// `q` holding one bit more than the target precision and `a = q·b`
    /// computed exactly, `a/b` is a tie the sticky logic must break
    /// identically on both paths.
    #[test]
    fn rounding_boundary_ties(
        qbits in 1u64..(1 << 52),
        y in 1e-3f64..1e3,
        prec_idx in 0usize..PRECISIONS.len(),
    ) {
        let prec = PRECISIONS[prec_idx];
        let wide = (prec + 128).min(16384);
        // q = a dense value re-rounded to prec+1 bits: one bit beyond the
        // target precision, so dividing it back out rounds at a tie-adjacent
        // boundary whenever that trailing bit is set.
        let q = dense(qbits as f64, wide).with_precision((prec + 1).min(16384));
        let b = dense(y, wide);
        let a = q.with_precision(wide).mul(&b);
        prop_assume!(!a.is_zero() && !b.is_zero());
        let narrow_a = a.with_precision(prec);
        pin_to_reference(
            || narrow_a.div(&b.with_precision(prec)),
            &format!("tie quotient {qbits}/{y} at {prec} bits"),
        );
    }

    /// Subnormal-adjacent f64 exponents: operands built from the smallest
    /// positive doubles stress the exponent bookkeeping in the scaled
    /// dividend (BigFloat itself has no subnormals, so these are ordinary
    /// mantissas at extreme exponents).
    #[test]
    fn subnormal_adjacent_operands(mx in 1u64..4096, my in 1u64..4096) {
        let tiny_x = f64::MIN_POSITIVE * mx as f64;
        let tiny_y = f64::MIN_POSITIVE * my as f64;
        for prec in [64u32, 256, 1024] {
            let a = dense(tiny_x, prec);
            let b = dense(tiny_y, prec);
            pin_to_reference(|| a.div(&b), &format!("tiny/tiny ({mx}, {my}) at {prec} bits"));
            pin_to_reference(|| b.abs().sqrt(), &format!("sqrt(tiny {my}) at {prec} bits"));
        }
    }

    /// Large-argument trig goes through the Payne–Hanek window; the result
    /// must stay within a couple of ulps of the full-precision reduction
    /// (the two reductions are both faithful but not identical), and the
    /// Pythagorean identity must hold to the working precision.
    #[test]
    fn payne_hanek_reduction_is_faithful(x in 1.0f64..1e9, e in 340i32..1000) {
        let prec = 256u32;
        let big = BigFloat::from_f64_prec(x * 2f64.powi(e % 60), prec)
            .mul(&BigFloat::from_f64_prec(2f64.powi(e - e % 60), prec));
        let (s, c) = (big.sin(), big.cos());
        shadowreal::bigfloat::set_disable_fast_paths(true);
        let (s_ref, c_ref) = (big.sin(), big.cos());
        shadowreal::bigfloat::set_disable_fast_paths(false);
        for (fast, slow, what) in [(&s, &s_ref, "sin"), (&c, &c_ref, "cos")] {
            let diff = fast.sub(slow).abs();
            if !diff.is_zero() {
                let bound = fast.abs().exponent().unwrap_or(0) - (prec as i64 - 8);
                prop_assert!(
                    diff.exponent().unwrap_or(i64::MIN) <= bound,
                    "{what} diverged beyond faithful bounds at 2^{e}"
                );
            }
        }
        let one = BigFloat::from_f64_prec(1.0, prec);
        let pyth = s.mul(&s).add(&c.mul(&c)).sub(&one).abs();
        if !pyth.is_zero() {
            prop_assert!(
                pyth.exponent().unwrap_or(i64::MIN) < -(prec as i64 - 16),
                "sin² + cos² drifted from 1 at 2^{e}"
            );
        }
    }
}

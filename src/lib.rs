//! Umbrella crate for the Herbgrind reproduction.
//!
//! The actual functionality lives in the workspace crates; this crate exists
//! to host the runnable examples (`examples/`) and the cross-crate
//! integration tests (`tests/`), and re-exports the pieces they use so the
//! examples read like downstream user code.

#![forbid(unsafe_code)]

pub use baselines;
pub use fpbench;
pub use fpcore;
pub use fpvm;
pub use herbgrind;
pub use herbie_lite;
pub use shadowreal;
pub use telemetry;

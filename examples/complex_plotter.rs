//! The complex-function plotter case study from §3 / Figure 1 of the paper.
//!
//! The paper's plotter colors each pixel by `arg(f(x + iy))`, where
//! evaluating `f` requires a hand-written complex square root. The textbook
//! formula computes the imaginary component as `sqrt((sqrt(x² + y²) − x)/2)`,
//! and for points near the positive real axis the inner subtraction cancels
//! catastrophically — Herbgrind's report for the original program pins the
//! root cause to exactly that fragment, with inputs `x ∈ [−2.1e−9, 0.25]`,
//! `y ∈ [−2.6e−9, 2.6e−9]`.
//!
//! This example reproduces the experiment on that same input slice: it
//! renders `arg(csqrt(z))` over `[0, 1/4] × [−3e−9, 3e−9]` (the region the
//! kernel actually sees, per the report's input characterization) with the
//! naive formula, counts the pixels that disagree with a 256-bit reference
//! (the paper reports "231878 incorrect values of 477000" for the full
//! plot), runs Herbgrind on the kernel to recover the root cause, applies
//! the paper's fix (use the conjugate form on the well-conditioned side),
//! and counts again.
//!
//! Run with `cargo run --release --example complex_plotter`.

use fpcore::parse_core;
use fpvm::compile_core;
use herbgrind::{analyze, AnalysisConfig};
use shadowreal::{bits_error, BigFloat};

/// A complex number as a pair of doubles.
#[derive(Clone, Copy, Debug)]
struct Complex {
    re: f64,
    im: f64,
}

impl Complex {
    fn new(re: f64, im: f64) -> Complex {
        Complex { re, im }
    }
    fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }
}

/// The naive complex square root: both components via the textbook formula.
fn csqrt_naive(z: Complex) -> Complex {
    let r = (z.re * z.re + z.im * z.im).sqrt();
    let re = ((r + z.re) / 2.0).sqrt();
    let im = ((r - z.re) / 2.0).sqrt() * z.im.signum();
    Complex::new(re, im)
}

/// The repaired complex square root from §3: compute the well-conditioned
/// component directly and derive the other one from it, choosing by the sign
/// of the real part.
fn csqrt_fixed(z: Complex) -> Complex {
    let r = (z.re * z.re + z.im * z.im).sqrt();
    let (re, im_mag) = if z.re > 0.0 {
        let re = ((r + z.re) / 2.0).sqrt();
        (re, z.im.abs() / (2.0 * re))
    } else {
        let im = ((r - z.re) / 2.0).sqrt();
        (z.im.abs() / (2.0 * im), im)
    };
    Complex::new(re, im_mag * z.im.signum())
}

/// A reference complex square root computed with 256-bit shadow reals.
fn csqrt_reference(z: Complex) -> Complex {
    let x = BigFloat::from_f64(z.re);
    let y = BigFloat::from_f64(z.im);
    let r = x.mul(&x).add(&y.mul(&y)).sqrt();
    let two = BigFloat::from_f64(2.0);
    let re = r.add(&x).div(&two).sqrt();
    let im = r.sub(&x).div(&two).sqrt();
    let im = if z.im < 0.0 { im.neg() } else { im };
    Complex::new(re.to_f64(), im.to_f64())
}

fn render(csqrt: fn(Complex) -> Complex, width: usize, height: usize) -> Vec<f64> {
    let mut pixels = Vec::with_capacity(width * height);
    for j in 0..height {
        for i in 0..width {
            let x = 0.25 * (i as f64 + 0.5) / width as f64;
            let y = -3e-9 + 6e-9 * (j as f64 + 0.5) / height as f64;
            pixels.push(csqrt(Complex::new(x, y)).arg());
        }
    }
    pixels
}

fn count_incorrect(pixels: &[f64], reference: &[f64]) -> usize {
    pixels
        .iter()
        .zip(reference)
        .filter(|(a, b)| bits_error(**a, **b) > 5.0)
        .count()
}

fn main() {
    let (width, height) = (200, 200);
    let total = width * height;

    let reference = render(csqrt_reference, width, height);
    let naive = render(csqrt_naive, width, height);
    let fixed = render(csqrt_fixed, width, height);

    println!("plot slice [0, 1/4] x [-3e-9, 3e-9] at {width}x{height} ({total} pixels)");
    println!(
        "naive complex sqrt:    {} incorrect values of {}",
        count_incorrect(&naive, &reference),
        total
    );
    println!(
        "repaired complex sqrt: {} incorrect values of {}",
        count_incorrect(&fixed, &reference),
        total
    );

    // Now ask Herbgrind *why* the naive plot is wrong: analyze the kernel the
    // plotter uses for the imaginary component of the square root.
    let kernel = parse_core(
        "(FPCore (x y) :name \"complex sqrt imaginary part\"
           :pre (and (<= 1e-9 x 0.25) (<= 1e-12 y 3e-9))
           (sqrt (/ (- (sqrt (+ (* x x) (* y y))) x) 2)))",
    )
    .expect("valid kernel");
    let program = compile_core(&kernel, Default::default()).expect("compiles");
    let inputs: Vec<Vec<f64>> = (0..400)
        .map(|i| {
            let x = 0.25 * (i as f64 + 0.5) / 400.0;
            let y = 3e-9 * (i as f64 + 1.0) / 400.0;
            vec![x, y]
        })
        .collect();
    let report = analyze(&program, &inputs, &AnalysisConfig::default()).expect("analysis");
    println!();
    println!("{}", report.to_text());
}

//! The compensated-arithmetic experiment from §8.3 of the paper (Triangle).
//!
//! Shewchuk's Triangle computes geometric predicates with *compensated*
//! arithmetic: two-sum and two-product expansions whose correction terms are
//! exactly zero in the reals. A naive analysis flags every operation that
//! extracts a correction term (they all have huge local error) and reports
//! them as root causes; Herbgrind's compensation detection suppresses them.
//! The paper reports 225 compensating terms handled with 14 misses (the ones
//! that feed control flow).
//!
//! This example builds a Shewchuk-style robust 2-D orientation predicate out
//! of two-product/two-sum expansions, runs it on a mix of benign and nearly
//! degenerate triangles, and compares the analysis with compensation
//! detection on and off.
//!
//! Run with `cargo run --release --example triangle_compensation`.

use fpcore::parse_core;
use fpvm::compile_core;
use herbgrind::{analyze, AnalysisConfig};

/// The robust orientation predicate: the determinant
/// `(bx-ax)(cy-ay) - (by-ay)(cx-ax)` computed with an error-compensated
/// tail, in the style of Shewchuk's `orient2d`. The `fma`-based two-product
/// exposes the correction terms the compensation detector must recognize.
const ORIENT2D_SOURCE: &str = "(FPCore (ax ay bx by cx cy)
  :name \"compensated orient2d\"
  :pre (and (<= 0 ax 1) (<= 0 ay 1) (<= 0 bx 1) (<= 0 by 1) (<= 0 cx 1) (<= 0 cy 1))
  (let* ((acx (- ax cx)) (bcx (- bx cx)) (acy (- ay cy)) (bcy (- by cy))
         (det1 (* acx bcy))
         (err1 (fma acx bcy (- det1)))
         (det2 (* acy bcx))
         (err2 (fma acy bcx (- det2)))
         (det (- det1 det2))
         (errdet (- (- det1 det2) det))
         (tail (+ (- err1 err2) errdet)))
    (+ det tail)))";

fn workload() -> Vec<Vec<f64>> {
    let mut inputs = Vec::new();
    // Benign triangles.
    for i in 1..40 {
        let t = i as f64 / 40.0;
        inputs.push(vec![0.0, 0.0, 1.0, t, t, 1.0]);
    }
    // Nearly degenerate triangles: c almost exactly on the segment a-b, the
    // case the compensated determinant exists to decide correctly.
    for i in 1..40 {
        let eps = (i as f64) * 1e-17;
        inputs.push(vec![0.0, 0.0, 1.0, 1.0, 0.5, 0.5 + eps]);
    }
    inputs
}

fn main() {
    let core = parse_core(ORIENT2D_SOURCE).expect("valid FPCore");
    let program = compile_core(&core, Default::default()).expect("compiles");
    let inputs = workload();

    let with_detection = analyze(&program, &inputs, &AnalysisConfig::default()).expect("analysis");
    let without_detection = analyze(
        &program,
        &inputs,
        &AnalysisConfig::default().with_compensation_detection(false),
    )
    .expect("analysis");

    println!("compensated orient2d on {} triangles", inputs.len());
    println!(
        "compensating operations detected and suppressed: {}",
        with_detection.compensations_detected
    );
    let causes_with: usize = with_detection
        .spots
        .iter()
        .map(|s| s.root_causes.len())
        .sum();
    let causes_without: usize = without_detection
        .spots
        .iter()
        .map(|s| s.root_causes.len())
        .sum();
    println!(
        "root causes reported with detection:    {causes_with} (across {} spots)",
        with_detection.spots.len()
    );
    println!(
        "root causes reported without detection: {causes_without} (across {} spots)",
        without_detection.spots.len()
    );
    println!();
    println!("--- report with compensation detection (paper default) ---");
    println!("{}", with_detection.to_text());
    println!("--- report without compensation detection (naive) ---");
    println!("{}", without_detection.to_text());
    println!(
        "As in §8.3, the compensation machinery itself should not be presented to the user; \
         only genuinely improvable computations should appear above."
    );
}

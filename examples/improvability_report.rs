//! The §8.1 improvability experiment, printed as a per-benchmark table.
//!
//! Run with `cargo run --release --example improvability_report`.
//! Pass a number to limit the suite size, e.g.
//! `cargo run --release --example improvability_report 20`.

use fpbench::{improvability, subset, suite};
use herbgrind::AnalysisConfig;

fn main() {
    let limit: Option<usize> = std::env::args().nth(1).and_then(|a| a.parse().ok());
    let benchmarks = match limit {
        Some(n) => subset(n),
        None => suite(),
    };
    println!(
        "running the improvability experiment on {} benchmarks...",
        benchmarks.len()
    );
    let summary = improvability(&benchmarks, 120, 2024, &AnalysisConfig::default());

    println!();
    println!(
        "{:<34} {:>10} {:>9} {:>10} {:>11}",
        "benchmark", "oracle err", "detected", "candidate", "improvable"
    );
    for row in &summary.rows {
        println!(
            "{:<34} {:>10.1} {:>9} {:>10} {:>11}",
            truncate(&row.name, 34),
            row.oracle_error_bits,
            yesno(row.herbgrind_detected),
            yesno(row.herbgrind_has_candidate),
            yesno(row.root_cause_improvable),
        );
    }
    println!();
    println!("{}", summary.to_text());
    println!(
        "(paper, on FPBench v1: 86 benchmarks, 30 with >5 bits of error, 29 detected, 25 with \
         improvable root causes)"
    );
}

fn yesno(b: bool) -> &'static str {
    if b {
        "yes"
    } else {
        "-"
    }
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_string()
    } else {
        format!("{}…", &s[..n - 1])
    }
}

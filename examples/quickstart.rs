//! Quickstart: find the root cause of error in a small numerical kernel.
//!
//! Run with `cargo run --example quickstart`.

use fpcore::parse_core;
use fpvm::compile_core;
use herbgrind::{analyze_batched, AnalysisConfig};
use herbie_lite::{improve, sample_inputs, ImprovementOptions};

fn main() {
    // A kernel with a hidden numerical problem: for large x the subtraction
    // cancels catastrophically.
    let source = "(FPCore (x) :name \"quickstart\" :pre (<= 1 x 1e15)
                    (- (sqrt (+ x 1)) (sqrt x)))";
    let core = parse_core(source).expect("valid FPCore");

    // Compile it to the abstract float machine and sample inputs from the
    // precondition, exactly as the evaluation driver does.
    let program = compile_core(&core, Default::default()).expect("compiles");
    let inputs = sample_inputs(&core, 200, 42).expect("samples");

    // Run it under Herbgrind, on the batched lane-parallel engine (the
    // default 8-wide batch; `analyze` and `analyze_parallel` produce the
    // bit-identical report).
    let report = analyze_batched(&program, &inputs, &AnalysisConfig::default()).expect("analysis");
    println!("{}", report.to_text());

    // Feed the reported root cause to the improvement oracle, as the paper
    // does with Herbie.
    for cause in report.root_cause_cores() {
        let cause_inputs = sample_inputs(&cause, 200, 43).expect("samples");
        let result =
            improve(&cause, &cause_inputs, &ImprovementOptions::default()).expect("improve");
        println!(
            "root cause error {:.1} bits -> improved to {:.1} bits via {:?}",
            result.original_error_bits, result.improved_error_bits, result.rules_applied
        );
        println!(
            "improved expression: {}",
            fpcore::expr_to_string(&result.improved_body)
        );
    }
}

//! The Gromacs dihedral-angle case study from §7 of the paper.
//!
//! Gromacs computes the dihedral angle between the planes spanned by three
//! consecutive bond vectors. For near-flat configurations (four almost
//! colinear atoms) the normal vectors nearly vanish and the angle
//! computation suffers cancellation; the paper traced the error, across C
//! and Fortran and through vector data structures, to the determinant-style
//! expression inside the angle computation.
//!
//! This example writes the dihedral-angle kernel as FPCore (the three bond
//! vectors are the nine scalar arguments), drives it with a molecular-
//! dynamics-style workload that includes near-colinear configurations, and
//! lets Herbgrind attribute the output error.
//!
//! Run with `cargo run --release --example dihedral`.

use fpcore::parse_core;
use fpvm::compile_core;
use herbgrind::{analyze, AnalysisConfig};
use herbie_lite::{improve, sample_inputs, ImprovementOptions};

/// The dihedral angle via the normalized-normals formula: the angle between
/// n1 = b1 × b2 and n2 = b2 × b3, measured with acos of their dot product —
/// exactly the ill-conditioned variant for flat angles.
const DIHEDRAL_SOURCE: &str = "(FPCore (b1x b1y b1z b2x b2y b2z b3x b3y b3z)
  :name \"dihedral angle (acos form)\"
  :pre (and (<= -2 b1x 2) (<= -2 b1y 2) (<= -1e-4 b1z 1e-4)
            (<= -2 b2x 2) (<= -2 b2y 2) (<= -1e-4 b2z 1e-4)
            (<= -2 b3x 2) (<= -2 b3y 2) (<= -1e-4 b3z 1e-4))
  (let* ((n1x (- (* b1y b2z) (* b1z b2y)))
         (n1y (- (* b1z b2x) (* b1x b2z)))
         (n1z (- (* b1x b2y) (* b1y b2x)))
         (n2x (- (* b2y b3z) (* b2z b3y)))
         (n2y (- (* b2z b3x) (* b2x b3z)))
         (n2z (- (* b2x b3y) (* b2y b3x)))
         (dot (+ (+ (* n1x n2x) (* n1y n2y)) (* n1z n2z)))
         (len1 (sqrt (+ (+ (* n1x n1x) (* n1y n1y)) (* n1z n1z))))
         (len2 (sqrt (+ (+ (* n2x n2x) (* n2y n2y)) (* n2z n2z)))))
    (acos (/ dot (* len1 len2)))))";

fn main() {
    let core = parse_core(DIHEDRAL_SOURCE).expect("valid FPCore");
    let program = compile_core(&core, Default::default()).expect("compiles");

    // A workload of bond-vector triples: mostly generic geometry, plus a
    // batch of near-flat configurations like the triple-bonded organic
    // compounds the paper mentions (the three bonds almost colinear, tiny
    // out-of-plane components).
    let mut inputs: Vec<Vec<f64>> = Vec::new();
    for i in 1..60 {
        let t = i as f64 / 60.0;
        // Generic configuration: clearly non-colinear bonds.
        inputs.push(vec![1.0, t, 1e-5, -t, 1.0, -1e-5, 0.5, -1.0, 1e-5]);
        // Near-flat configuration: all three bonds almost along +x, with
        // progressively tinier transverse components.
        let eps = 1e-6 / i as f64;
        inputs.push(vec![
            1.0,
            eps,
            eps / 3.0,
            1.0,
            -eps,
            eps / 2.0,
            1.0,
            eps,
            -eps / 4.0,
        ]);
    }

    let report = analyze(&program, &inputs, &AnalysisConfig::default()).expect("analysis");
    println!("{}", report.to_text());

    // As in the paper, hand the extracted expressions to the improvement
    // oracle to check the root cause is actionable.
    for cause in report.root_cause_cores().into_iter().take(2) {
        if let Ok(cause_inputs) = sample_inputs(&cause, 150, 11) {
            if let Ok(result) = improve(&cause, &cause_inputs, &ImprovementOptions::default()) {
                println!(
                    "root cause with {:.1} bits of error; improvement oracle reaches {:.1} bits ({:?})",
                    result.original_error_bits, result.improved_error_bits, result.rules_applied
                );
            }
        }
    }
    println!(
        "The fix deployed upstream (and in the numerical-analysis literature) replaces the acos \
         form with an atan2 of the in-plane and out-of-plane components, which is well-conditioned \
         at flat angles."
    );
}

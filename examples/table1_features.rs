//! Table 1: the tool-comparison feature matrix plus a small overhead probe.
//!
//! The full overhead comparison is a Criterion bench
//! (`cargo bench -p herbgrind-bench --bench table1_overhead`); this example
//! prints the feature matrix and a quick single-benchmark overhead estimate
//! so the table can be regenerated without the bench harness.
//!
//! Run with `cargo run --release --example table1_features`.

use baselines::{render_feature_matrix, BzDetector, FpDebugDetector};
use fpbench::{by_name, prepare};
use herbgrind::AnalysisConfig;
use std::time::Instant;

fn main() {
    println!("{}", render_feature_matrix());

    let core = by_name("doppler1").expect("benchmark present");
    let prepared = prepare(&core, 200, 17).expect("prepare");

    let time = |label: &str, f: &mut dyn FnMut()| -> f64 {
        let start = Instant::now();
        f();
        let secs = start.elapsed().as_secs_f64();
        println!("{label:<28} {secs:>9.4} s");
        secs
    };

    println!("single-benchmark overhead probe (doppler1, 200 inputs):");
    let native = time("native interpretation", &mut || {
        prepared.run_native().expect("native run");
    });
    let fpdebug = time("FpDebug-style shadow", &mut || {
        FpDebugDetector::analyze(&prepared.program, &prepared.inputs).expect("fpdebug");
    });
    let verrou = time("Verrou-style perturbation", &mut || {
        baselines::verrou_compare(&prepared.program, &prepared.inputs, 3, 5).expect("verrou");
    });
    let bz = time("BZ-style discrete factors", &mut || {
        BzDetector::analyze(&prepared.program, &prepared.inputs).expect("bz");
    });
    // One analysis thread: the overhead row compares per-work cost against
    // the single-threaded baselines above.
    let herbgrind = time("Herbgrind full analysis", &mut || {
        prepared
            .run_herbgrind(&AnalysisConfig::default().with_threads(1))
            .expect("herbgrind");
    });

    println!();
    println!("overhead relative to native interpretation:");
    for (label, secs) in [
        ("FpDebug", fpdebug),
        ("BZ", bz),
        ("Verrou", verrou),
        ("Herbgrind", herbgrind),
    ] {
        println!("  {label:<10} {:>8.1}x", secs / native.max(1e-9));
    }
    println!(
        "(paper: FpDebug 395x, BZ 7.91x, Verrou 7x, Herbgrind 574x on native binaries; the shape \
         — shadow-value tools are orders of magnitude costlier than heuristic tools, and \
         Herbgrind is the costliest — is what this reproduces)"
    );
}

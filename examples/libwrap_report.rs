//! The §8.2 library-wrapping comparison.
//!
//! With wrapping enabled (the default), calls to math-library functions are
//! single operations in the extracted expressions; with wrapping disabled
//! the analysis sees the library's internal instruction sequences and the
//! reported expressions balloon (the paper: largest expression 31 ops
//! instead of 9, 133 expressions over 9 ops, 848 problematic expressions).
//!
//! Run with `cargo run --release --example libwrap_report`.

use fpbench::{suite, wrapping_comparison};
use herbgrind::AnalysisConfig;

fn main() {
    // Restrict to the benchmarks that actually call libm, which is where
    // wrapping matters.
    let benchmarks: Vec<_> = suite()
        .into_iter()
        .filter(|core| {
            let printed = fpcore::core_to_string(core);
            ["exp", "log", "sin", "cos", "tan", "pow"]
                .iter()
                .any(|f| printed.contains(f))
        })
        .collect();
    println!(
        "comparing library wrapping on {} libm-using benchmarks...",
        benchmarks.len()
    );
    let cmp =
        wrapping_comparison(&benchmarks, 60, 7, &AnalysisConfig::default()).expect("comparison");

    println!();
    println!("{:<44} {:>10} {:>12}", "", "wrapped", "unwrapped");
    println!(
        "{:<44} {:>10} {:>12}",
        "problematic (flagged) operations", cmp.wrapped_flagged, cmp.unwrapped_flagged
    );
    println!(
        "{:<44} {:>10} {:>12}",
        "largest reported expression (operations)", cmp.wrapped_max_ops, cmp.unwrapped_max_ops
    );
    println!(
        "{:<44} {:>10} {:>12}",
        "reported expressions larger than 9 operations", cmp.wrapped_over_9, cmp.unwrapped_over_9
    );
    println!();
    println!(
        "(paper: with wrapping disabled the largest expression grows from 9 to 31 operations, \
         133 expressions exceed 9 operations, and 848 problematic expressions appear — mostly \
         false positives inside the math library)"
    );
}

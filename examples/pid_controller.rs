//! The PID-controller case study from §7 of the paper.
//!
//! A proportional-integral-derivative controller runs in a loop for a fixed
//! number of simulated seconds. The loop counter `t` is a double incremented
//! by 0.2 each iteration and compared against the bound `N`; because 0.2 is
//! not representable, for some bounds the loop runs once too often (the
//! Patriot-missile bug class). Herbgrind finds the bug because every
//! control-flow comparison over floats is a spot: the branch diverges from
//! the shadow-real execution, and the divergence is linked back to the
//! inaccurate increment.
//!
//! Run with `cargo run --example pid_controller`.

use fpcore::parse_core;
use fpvm::{compile_core, Machine};
use herbgrind::{analyze, AnalysisConfig};

/// The controller: a simplified PID update run in a time loop, returning the
/// number of iterations taken together with the final control value.
const PID_SOURCE: &str = "(FPCore (setpoint measured N)
  :name \"pid controller\"
  :pre (and (<= 0 setpoint 10) (<= 0 measured 10) (<= 1 N 20))
  (while (< t N)
    ((t 0 (+ t 0.2))
     (integral 0 (+ integral (* (- setpoint measured) 0.2)))
     (iterations 0 (+ iterations 1)))
    iterations))";

fn main() {
    let core = parse_core(PID_SOURCE).expect("valid FPCore");
    let program = compile_core(&core, Default::default()).expect("compiles");

    // First, just run the controller for a range of loop bounds and compare
    // the iteration count with the mathematically expected one.
    println!("loop bound N -> iterations taken (expected N / 0.2):");
    let mut buggy_bounds = Vec::new();
    for n in 1..=20 {
        let bound = n as f64;
        let result = Machine::new(&program)
            .run(&[5.0, 4.0, bound])
            .expect("controller runs");
        let iterations = result.outputs[0];
        let expected = (bound / 0.2).round();
        let marker = if iterations != expected {
            buggy_bounds.push(bound);
            "  <-- one iteration too many"
        } else {
            ""
        };
        println!("  N = {bound:5.1}: {iterations:4.0} iterations, expected {expected:4.0}{marker}");
    }

    // Now run Herbgrind on the bounds we just exercised and show that the
    // loop-condition branch is reported as a spot influenced by the
    // inaccurate increment.
    let inputs: Vec<Vec<f64>> = (1..=20).map(|n| vec![5.0, 4.0, n as f64]).collect();
    let config = AnalysisConfig::default().with_local_error_threshold(1.0);
    let report = analyze(&program, &inputs, &config).expect("analysis");

    println!();
    println!(
        "Herbgrind observed {} control-flow divergences between the float and shadow executions.",
        report.branch_divergences
    );
    println!("{}", report.to_text());

    if buggy_bounds.is_empty() {
        println!("No off-by-one bounds found (unexpected on IEEE-754 doubles).");
    } else {
        println!(
            "Bounds with an extra iteration: {:?} — fix: count iterations in an integer and \
             compute t = count * 0.2, as the upstream authors did.",
            buggy_bounds
        );
    }
}

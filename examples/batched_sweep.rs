//! Batched lane-parallel analysis: the same sweep through all three
//! interchangeable drivers, plus the vectorized local-error probe.
//!
//! Run with `cargo run --release --example batched_sweep`.

use fpcore::parse_core;
use fpvm::compile_core;
use herbgrind::{
    analyze, analyze_batched, analyze_parallel, probe_local_error, AnalysisConfig,
    SUPPORTED_BATCH_WIDTHS,
};

fn main() {
    // The §3 complex-plotter kernel: sqrt(x² + y²) − x cancels for small y.
    let source = "(FPCore (x y) :name \"plotter\" (- (sqrt (+ (* x x) (* y y))) x))";
    let core = parse_core(source).expect("valid FPCore");
    let program = compile_core(&core, Default::default()).expect("compiles");
    let inputs: Vec<Vec<f64>> = (1..200)
        .map(|i| vec![0.25 / f64::from(i), 1e-9 / f64::from(i)])
        .collect();

    // The three drivers are interchangeable: serial, thread-sharded, and
    // lane-batched analyses produce bit-identical reports.
    let config = AnalysisConfig::default();
    let serial = analyze(&program, &inputs, &config).expect("serial");
    let parallel = analyze_parallel(&program, &inputs, &config).expect("parallel");
    println!("supported batch widths: {SUPPORTED_BATCH_WIDTHS:?}");
    for width in [1usize, 4, 8] {
        let batched = analyze_batched(&program, &inputs, &config.clone().with_batch_width(width))
            .expect("batched");
        assert_eq!(format!("{serial:?}"), format!("{batched:?}"));
        println!("batch width {width}: report identical to serial analyze");
    }
    assert_eq!(format!("{serial:?}"), format!("{parallel:?}"));
    println!("\n{}", serial.to_text());

    // The lane-vectorized DoubleDouble probe: FpDebug-style per-statement
    // local-error counters at engine speed (no traces or records).
    let summary =
        probe_local_error::<8>(&program, &inputs, config.local_error_threshold).expect("probe");
    println!(
        "probe: {} ops analyzed, per-statement local error:",
        summary.total_ops
    );
    for row in &summary.statements {
        println!(
            "  pc {:>2}: {:>6} executions, {:>5} erroneous, max {:>5.1} bits",
            row.pc, row.executions, row.erroneous, row.max_error_bits
        );
    }
}

//! The Gram-Schmidt orthonormalization case study from §7 of the paper.
//!
//! The Polybench `gramschmidt` kernel normalizes each column by its norm.
//! On the benchmark's original inputs one intermediate column turned out to
//! be (numerically) zero, so the normalization divides by zero and the NaN
//! propagates to the output. Herbgrind reported the output with maximal (64
//! bits) error and, crucially, its example problematic input was the zero
//! vector — pointing at the *invocation* rather than the procedure itself.
//!
//! This example reproduces that situation with a two-vector Gram-Schmidt
//! step written as FPCore: the second vector is orthogonalized against the
//! first and then normalized. When the two input vectors are parallel the
//! orthogonalized vector is zero and the normalization produces NaN.
//!
//! Run with `cargo run --example gram_schmidt`.

use fpcore::parse_core;
use fpvm::{compile_core, Machine};
use herbgrind::{analyze, AnalysisConfig};

/// One Gram-Schmidt step in 2-D: orthogonalize (bx, by) against (ax, ay) and
/// return the x component of the normalized result.
const GRAM_SCHMIDT_SOURCE: &str = "(FPCore (ax ay bx by)
  :name \"gram-schmidt step\"
  :pre (and (<= -10 ax 10) (<= -10 ay 10) (<= -10 bx 10) (<= -10 by 10))
  (let* ((norm_a (sqrt (+ (* ax ax) (* ay ay))))
         (qx (/ ax norm_a))
         (qy (/ ay norm_a))
         (proj (+ (* qx bx) (* qy by)))
         (ux (- bx (* proj qx)))
         (uy (- by (* proj qy)))
         (norm_u (sqrt (+ (* ux ux) (* uy uy)))))
    (/ ux norm_u)))";

fn main() {
    let core = parse_core(GRAM_SCHMIDT_SOURCE).expect("valid FPCore");
    let program = compile_core(&core, Default::default()).expect("compiles");

    // A workload in the spirit of Polybench's generator: mostly well-formed
    // vector pairs, plus a few degenerate ones where the second vector is
    // parallel to the first (the analogue of the zero column).
    let mut inputs: Vec<Vec<f64>> = Vec::new();
    for i in 1..40 {
        let a = i as f64 / 4.0;
        inputs.push(vec![a, 1.0, 0.5, a]); // generic, well-conditioned
    }
    for i in 1..5 {
        let a = i as f64;
        inputs.push(vec![a, 2.0 * a, 3.0 * a, 6.0 * a]); // parallel -> u = 0
    }

    println!(
        "running the Gram-Schmidt step on {} vector pairs...",
        inputs.len()
    );
    let mut nan_outputs = 0;
    for input in &inputs {
        let out = Machine::new(&program).run(input).expect("runs").outputs[0];
        if out.is_nan() {
            nan_outputs += 1;
        }
    }
    println!("{nan_outputs} of {} outputs are NaN", inputs.len());

    let report = analyze(&program, &inputs, &AnalysisConfig::default()).expect("analysis");
    println!();
    println!("{}", report.to_text());
    println!(
        "As in the paper, the problem is not the procedure but its invocation: the example \
         problematic inputs correspond to a degenerate (zero after orthogonalization) vector, \
         i.e. the caller violated Gram-Schmidt's precondition."
    );
}

//! Sweep telemetry snapshots from every driver family: the same golden
//! sweep run through the serial, parallel, batched, and tiered telemetry
//! drivers (plus the tiered fault-isolated driver), printing the
//! human-readable snapshot for the tiered sweep and the stable JSON
//! rendering for all of them between machine-parseable markers — CI runs
//! this example and schema-validates every JSON block.
//!
//! Run with `cargo run --release --example telemetry_snapshot`.

use fpcore::parse_core;
use fpvm::compile_core;
use herbgrind::{
    analyze_batched_telemetry, analyze_parallel_telemetry, analyze_telemetry,
    analyze_tiered_isolated_telemetry, analyze_tiered_telemetry, telemetry_to_json, AnalysisConfig,
    SweepTelemetry, TelemetryMode,
};

fn main() {
    // The §3 complex-plotter kernel: sqrt(x² + y²) − x cancels for small y.
    let source = "(FPCore (x y) :name \"plotter\" (- (sqrt (+ (* x x) (* y y))) x))";
    let core = parse_core(source).expect("valid FPCore");
    let program = compile_core(&core, Default::default()).expect("compiles");
    let inputs: Vec<Vec<f64>> = (1..200)
        .map(|i| vec![0.25 / f64::from(i), 1e-9 / f64::from(i)])
        .collect();
    let config = AnalysisConfig::default().with_telemetry(TelemetryMode::On);

    let mut snapshots: Vec<(&str, SweepTelemetry)> = Vec::new();

    let (serial_report, tel) = analyze_telemetry(&program, &inputs, &config).expect("serial");
    snapshots.push(("serial", tel));
    let (report, tel) = analyze_parallel_telemetry(&program, &inputs, &config).expect("parallel");
    assert_eq!(format!("{serial_report:?}"), format!("{report:?}"));
    snapshots.push(("parallel", tel));
    let (report, tel) = analyze_batched_telemetry(&program, &inputs, &config).expect("batched");
    assert_eq!(format!("{serial_report:?}"), format!("{report:?}"));
    snapshots.push(("batched", tel));
    let (report, tel) = analyze_tiered_telemetry(&program, &inputs, &config).expect("tiered");
    assert_eq!(format!("{serial_report:?}"), format!("{report:?}"));
    snapshots.push(("tiered", tel));
    let (report, tel) = analyze_tiered_isolated_telemetry(&program, &inputs, &config);
    assert!(report.quarantined.is_empty());
    snapshots.push(("tiered_isolated", tel));

    // Human-readable snapshot for one driver; the report's summary footer
    // rides along via the tier split captured in the snapshot.
    let tiered = &snapshots[3].1;
    println!("{}", tiered.to_text());
    println!(
        "lane utilization (batched driver): {:?}",
        snapshots[2].1.lane_utilization()
    );

    // Stable JSON between markers, one block per driver, for CI to extract
    // and schema-validate.
    for (driver, tel) in &snapshots {
        println!("--- TELEMETRY JSON BEGIN {driver} ---");
        println!("{}", telemetry_to_json(tel));
        println!("--- TELEMETRY JSON END {driver} ---");
    }
}

//! Running benchmarks under the analysis: the glue between the suite, the
//! machine, Herbgrind, and the improvement oracle.

use fpcore::FPCore;
use fpvm::{compile_core, CompileOptions, Machine, Program};
use herbgrind::{analyze_parallel, analyze_tiered, staticerr, AnalysisConfig, Report};
use herbie_lite::SampleError;
use std::fmt;

/// The declared per-argument input region of a benchmark, in
/// `core.arguments` order.
///
/// This is the same range extraction the input sampler uses
/// ([`herbie_lite::sampling::ranges_from_precondition`]), so every sampled
/// input lies inside the returned region — exactly the contract the tier-0
/// static pass needs from [`AnalysisConfig::input_ranges`].
pub fn sampling_region(core: &FPCore) -> Vec<(f64, f64)> {
    let ranges = herbie_lite::sampling::ranges_from_precondition(core);
    core.arguments
        .iter()
        .map(|name| {
            let r = ranges.get(name).copied().unwrap_or_default();
            (r.lo, r.hi)
        })
        .collect()
}

/// Errors produced while driving a benchmark through the pipeline.
#[derive(Clone, Debug)]
pub enum DriverError {
    /// The benchmark failed to compile to a machine program.
    Compile(String),
    /// Input sampling failed.
    Sampling(SampleError),
    /// The machine run failed (step budget, arity).
    Machine(String),
}

impl fmt::Display for DriverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DriverError::Compile(e) => write!(f, "compile error: {e}"),
            DriverError::Sampling(e) => write!(f, "sampling error: {e}"),
            DriverError::Machine(e) => write!(f, "machine error: {e}"),
        }
    }
}

impl std::error::Error for DriverError {}

/// A benchmark prepared for execution: the parsed core, the compiled
/// program, and sampled inputs.
#[derive(Clone, Debug)]
pub struct PreparedBenchmark {
    /// The source benchmark.
    pub core: FPCore,
    /// The compiled machine program (library calls wrapped).
    pub program: Program,
    /// The compiled machine program with library calls lowered (§8.2).
    pub program_lowered: Program,
    /// Sampled inputs satisfying the precondition.
    pub inputs: Vec<Vec<f64>>,
}

/// Compiles a benchmark and samples `samples` inputs for it.
///
/// # Errors
///
/// Returns a [`DriverError`] if compilation or sampling fails.
pub fn prepare(core: &FPCore, samples: usize, seed: u64) -> Result<PreparedBenchmark, DriverError> {
    let program = compile_core(core, CompileOptions::default())
        .map_err(|e| DriverError::Compile(e.to_string()))?;
    let program_lowered = compile_core(
        core,
        CompileOptions {
            lower_library_calls: true,
            source_file: None,
        },
    )
    .map_err(|e| DriverError::Compile(e.to_string()))?;
    let inputs = herbie_lite::sample_inputs(core, samples, seed).map_err(DriverError::Sampling)?;
    Ok(PreparedBenchmark {
        core: core.clone(),
        program,
        program_lowered,
        inputs,
    })
}

impl PreparedBenchmark {
    /// Runs the benchmark natively (no instrumentation) on all its inputs,
    /// returning the number of statements executed. Used as the baseline for
    /// overhead measurements (Table 1).
    ///
    /// # Errors
    ///
    /// Returns a [`DriverError::Machine`] error if any run fails.
    pub fn run_native(&self) -> Result<u64, DriverError> {
        let machine = Machine::new(&self.program);
        let mut steps = 0;
        for input in &self.inputs {
            steps += machine
                .run(input)
                .map_err(|e| DriverError::Machine(e.to_string()))?
                .steps;
        }
        Ok(steps)
    }

    /// Runs the benchmark under Herbgrind on all its inputs.
    ///
    /// The input sweep is sharded across [`AnalysisConfig::threads`] analysis
    /// threads; the report is bit-identical to a serial sweep regardless of
    /// the thread count.
    ///
    /// # Errors
    ///
    /// Returns a [`DriverError::Machine`] error if any run fails.
    pub fn run_herbgrind(&self, config: &AnalysisConfig) -> Result<Report, DriverError> {
        analyze_parallel(&self.program, &self.inputs, config)
            .map_err(|e| DriverError::Machine(e.to_string()))
    }

    /// Runs the benchmark under Herbgrind with library calls lowered into
    /// their internal instruction sequences (wrapping disabled, §8.2).
    ///
    /// # Errors
    ///
    /// Returns a [`DriverError::Machine`] error if any run fails.
    pub fn run_herbgrind_unwrapped(&self, config: &AnalysisConfig) -> Result<Report, DriverError> {
        analyze_parallel(&self.program_lowered, &self.inputs, config)
            .map_err(|e| DriverError::Machine(e.to_string()))
    }

    /// Runs the benchmark under the tiered analysis with tier 0 armed: the
    /// static error-dataflow pass certifies statements over the benchmark's
    /// declared [`sampling_region`], and certified statements skip dynamic
    /// shadowing. The report is bit-identical to the unpruned analysis.
    ///
    /// # Errors
    ///
    /// Returns a [`DriverError::Machine`] error if any run fails.
    pub fn run_herbgrind_tier0(&self, config: &AnalysisConfig) -> Result<Report, DriverError> {
        let config = config
            .clone()
            .with_input_ranges(sampling_region(&self.core));
        analyze_tiered(&self.program, &self.inputs, &config)
            .map_err(|e| DriverError::Machine(e.to_string()))
    }

    /// Runs the static error-dataflow pass alone over the benchmark's
    /// declared input region and returns the lint report.
    pub fn static_report(&self, params: &staticerr::StaticParams) -> staticerr::StaticReport {
        let region = sampling_region(&self.core);
        let analysis = staticerr::analyze_program(&self.program, &region, params);
        let mask = staticerr::prune_mask(&self.program, &analysis);
        staticerr::static_report(&self.program, &analysis, &mask)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::by_name;

    #[test]
    fn prepare_and_run_a_cancellation_benchmark() {
        let core = by_name("NMSE example 3.1").unwrap();
        let prepared = prepare(&core, 30, 7).unwrap();
        assert_eq!(prepared.inputs.len(), 30);
        let report = prepared.run_herbgrind(&AnalysisConfig::default()).unwrap();
        assert!(report.has_significant_error());
        let steps = prepared.run_native().unwrap();
        assert!(steps > 0);
    }

    #[test]
    fn lowered_programs_are_larger() {
        let core = by_name("NMSE section 3.5").unwrap();
        let prepared = prepare(&core, 5, 3).unwrap();
        assert!(prepared.program_lowered.compute_count() > prepared.program.compute_count());
    }

    #[test]
    fn sampling_region_matches_the_precondition_and_covers_samples() {
        let core = by_name("doppler1").unwrap();
        let region = sampling_region(&core);
        assert_eq!(
            region,
            vec![(-100.0, 100.0), (20.0, 20000.0), (-30.0, 50.0)]
        );
        let prepared = prepare(&core, 40, 11).unwrap();
        for input in &prepared.inputs {
            for (x, (lo, hi)) in input.iter().zip(&region) {
                assert!(lo <= x && x <= hi, "sample {x} outside [{lo}, {hi}]");
            }
        }
    }

    #[test]
    fn tier0_run_matches_the_untiered_report_and_prunes() {
        // A fully certifiable benchmark: tier 0 prunes every compute, and
        // the report still comes out bit-identical to the plain analysis.
        let core = by_name("rms of three").unwrap();
        let prepared = prepare(&core, 24, 9).unwrap();
        let config = AnalysisConfig::default();
        let plain = prepared.run_herbgrind(&config).unwrap();
        let (tier0, telemetry) = {
            let capture = herbgrind::SweepCapture::begin(herbgrind::TelemetryMode::On);
            let report = prepared.run_herbgrind_tier0(&config).unwrap();
            (report, capture.finish())
        };
        assert_eq!(format!("{plain:?}"), format!("{tier0:?}"));
        assert!(telemetry.counter("tier0.statements_pruned") > 0);
        assert!(telemetry.counter("tier0.pruned_executions") > 0);
    }

    #[test]
    fn static_report_flags_a_cancellation_benchmark() {
        let core = by_name("difference of squares").unwrap();
        let prepared = prepare(&core, 1, 3).unwrap();
        let report = prepared.static_report(&Default::default());
        assert!(!report.lints.is_empty());
        assert!(report.to_json().contains("difference-of-squares"));
    }
}

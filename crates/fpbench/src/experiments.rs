//! The paper's evaluation experiments (§8), as reusable drivers.
//!
//! Each function here regenerates the data behind one table or figure; the
//! Criterion benches in `crates/bench` and the runnable examples print the
//! results. The drivers take a benchmark list and a per-benchmark sample
//! count so that quick runs (tests) and full runs (benches) share the code.

use crate::driver::{prepare, sampling_region, DriverError};
use fpcore::FPCore;
use herbgrind::{staticerr, AnalysisConfig, RangeKind};
use herbie_lite::{improve, ImprovementOptions};
use std::fmt::Write as _;

/// The per-benchmark outcome of the improvability experiment (§8.1).
#[derive(Clone, Debug)]
pub struct ImprovabilityRow {
    /// Benchmark name.
    pub name: String,
    /// Average error of the benchmark itself (the oracle's view), in bits.
    pub oracle_error_bits: f64,
    /// Whether the oracle (Herbie-lite on the source expression) can improve
    /// the benchmark.
    pub oracle_improvable: bool,
    /// Whether Herbgrind reported significant error for the benchmark.
    pub herbgrind_detected: bool,
    /// Whether Herbgrind produced at least one candidate root cause.
    pub herbgrind_has_candidate: bool,
    /// Whether the improvement oracle found significant error in Herbgrind's
    /// reported root cause and could improve it (the "true root cause"
    /// criterion).
    pub root_cause_improvable: bool,
}

/// Aggregated results of the improvability experiment (§8.1).
#[derive(Clone, Debug, Default)]
pub struct ImprovabilitySummary {
    /// Per-benchmark rows.
    pub rows: Vec<ImprovabilityRow>,
    /// Number of benchmarks examined.
    pub total: usize,
    /// Benchmarks with significant oracle error (> 5 bits).
    pub significant: usize,
    /// Of those, how many the oracle can improve.
    pub oracle_improvable: usize,
    /// Of the significant ones, how many Herbgrind flags.
    pub detected_by_herbgrind: usize,
    /// Of the significant ones, how many have an improvable Herbgrind root
    /// cause.
    pub improvable_root_causes: usize,
}

/// Runs the improvability experiment (§8.1) over the given benchmarks.
///
/// Benchmarks that cannot be prepared (e.g. unsatisfiable preconditions) are
/// skipped, mirroring the paper's use of only the compilable subset.
pub fn improvability(
    benchmarks: &[FPCore],
    samples: usize,
    seed: u64,
    config: &AnalysisConfig,
) -> ImprovabilitySummary {
    let options = ImprovementOptions::default();
    let mut summary = ImprovabilitySummary::default();
    for core in benchmarks {
        let Ok(prepared) = prepare(core, samples, seed) else {
            continue;
        };
        // Oracle: improve the source expression directly.
        let Ok(oracle) = improve(core, &prepared.inputs, &options) else {
            continue;
        };
        let Ok(report) = prepared.run_herbgrind(config) else {
            continue;
        };
        // Herbgrind's candidates: feed each reported root cause back to the
        // improvement oracle on inputs sampled from the reported ranges.
        let mut root_cause_improvable = false;
        for cause_core in report.root_cause_cores() {
            let Ok(cause_inputs) = herbie_lite::sample_inputs(&cause_core, samples, seed) else {
                continue;
            };
            if let Ok(result) = improve(&cause_core, &cause_inputs, &options) {
                if result.had_significant_error(&options) && result.improved {
                    root_cause_improvable = true;
                    break;
                }
            }
        }
        let row = ImprovabilityRow {
            name: core.display_name().to_string(),
            oracle_error_bits: oracle.original_error_bits,
            oracle_improvable: oracle.improved,
            herbgrind_detected: report.has_significant_error(),
            herbgrind_has_candidate: !report.all_root_causes().is_empty(),
            root_cause_improvable,
        };
        summary.total += 1;
        if oracle.original_error_bits > options.significant_error_bits {
            summary.significant += 1;
            if row.oracle_improvable {
                summary.oracle_improvable += 1;
            }
            if row.herbgrind_detected {
                summary.detected_by_herbgrind += 1;
            }
            if row.root_cause_improvable {
                summary.improvable_root_causes += 1;
            }
        }
        summary.rows.push(row);
    }
    summary
}

impl ImprovabilitySummary {
    /// Renders the summary as the §8.1 prose numbers.
    pub fn to_text(&self) -> String {
        format!(
            "of {} benchmarks, {} have significant error (>5 bits); \
             Herbgrind detects {} of them; the oracle improves {}; \
             Herbgrind produces improvable root causes for {}",
            self.total,
            self.significant,
            self.detected_by_herbgrind,
            self.oracle_improvable,
            self.improvable_root_causes
        )
    }
}

/// One point of the Figure 5a sweep: a local-error threshold and how many
/// operations were flagged across the suite.
#[derive(Clone, Debug)]
pub struct ThresholdPoint {
    /// The local-error threshold in bits.
    pub threshold_bits: f64,
    /// Operations flagged as candidate root causes across all benchmarks.
    pub flagged_operations: usize,
    /// Spots with significant error across all benchmarks.
    pub erroneous_spots: usize,
}

/// Sweeps the local-error threshold (Figure 5a).
pub fn threshold_sweep(
    benchmarks: &[FPCore],
    samples: usize,
    seed: u64,
    thresholds: &[f64],
) -> Vec<ThresholdPoint> {
    thresholds
        .iter()
        .map(|&threshold_bits| {
            let config = AnalysisConfig::default().with_local_error_threshold(threshold_bits);
            let mut flagged = 0usize;
            let mut erroneous_spots = 0usize;
            for core in benchmarks {
                if let Ok(prepared) = prepare(core, samples, seed) {
                    if let Ok(report) = prepared.run_herbgrind(&config) {
                        flagged += report.flagged_operations;
                        erroneous_spots += report.spots.len();
                    }
                }
            }
            ThresholdPoint {
                threshold_bits,
                flagged_operations: flagged,
                erroneous_spots,
            }
        })
        .collect()
}

/// One point of the Figure 5b comparison: a range kind and how many
/// benchmarks end up with improvable root causes under it.
#[derive(Clone, Debug)]
pub struct RangeKindPoint {
    /// The configuration evaluated.
    pub kind: RangeKind,
    /// Benchmarks whose Herbgrind root cause the oracle could improve.
    pub improvable_root_causes: usize,
    /// Benchmarks with significant error (denominator).
    pub significant: usize,
}

/// Compares the three input-characteristic configurations (Figure 5b).
pub fn range_kind_sweep(benchmarks: &[FPCore], samples: usize, seed: u64) -> Vec<RangeKindPoint> {
    [RangeKind::None, RangeKind::Single, RangeKind::SignSplit]
        .into_iter()
        .map(|kind| {
            let config = AnalysisConfig::default().with_range_kind(kind);
            let summary = improvability(benchmarks, samples, seed, &config);
            RangeKindPoint {
                kind,
                improvable_root_causes: summary.improvable_root_causes,
                significant: summary.significant,
            }
        })
        .collect()
}

/// One point of the Figure 5c/5d sweep: a maximum expression depth, the
/// analysis runtime, and the number of improvable root causes.
#[derive(Clone, Debug)]
pub struct DepthPoint {
    /// The maximum expression depth.
    pub depth: usize,
    /// Wall-clock seconds spent in the analysis across the suite.
    pub analysis_seconds: f64,
    /// Benchmarks with improvable Herbgrind root causes.
    pub improvable_root_causes: usize,
    /// Benchmarks with significant error.
    pub significant: usize,
}

/// Sweeps the maximum expression depth (Figures 5c and 5d).
pub fn depth_sweep(
    benchmarks: &[FPCore],
    samples: usize,
    seed: u64,
    depths: &[usize],
) -> Vec<DepthPoint> {
    depths
        .iter()
        .map(|&depth| {
            let config = AnalysisConfig::default().with_max_expression_depth(depth);
            let start = std::time::Instant::now();
            let summary = improvability(benchmarks, samples, seed, &config);
            DepthPoint {
                depth,
                analysis_seconds: start.elapsed().as_secs_f64(),
                improvable_root_causes: summary.improvable_root_causes,
                significant: summary.significant,
            }
        })
        .collect()
}

/// The library-wrapping comparison (§8.2): expression sizes with wrapping on
/// and off.
#[derive(Clone, Debug, Default)]
pub struct WrappingComparison {
    /// Number of problematic (flagged) expressions with wrapping enabled.
    pub wrapped_flagged: usize,
    /// Number of problematic expressions with wrapping disabled.
    pub unwrapped_flagged: usize,
    /// Largest reported expression (operation count) with wrapping enabled.
    pub wrapped_max_ops: usize,
    /// Largest reported expression with wrapping disabled.
    pub unwrapped_max_ops: usize,
    /// Reported expressions larger than 9 operations, wrapping enabled.
    pub wrapped_over_9: usize,
    /// Reported expressions larger than 9 operations, wrapping disabled.
    pub unwrapped_over_9: usize,
}

/// Runs the library-wrapping ablation (§8.2) over the given benchmarks.
///
/// # Errors
///
/// Propagates driver errors only if *every* benchmark fails; individual
/// failures are skipped.
pub fn wrapping_comparison(
    benchmarks: &[FPCore],
    samples: usize,
    seed: u64,
    config: &AnalysisConfig,
) -> Result<WrappingComparison, DriverError> {
    let mut out = WrappingComparison::default();
    let mut any = false;
    for core in benchmarks {
        let Ok(prepared) = prepare(core, samples, seed) else {
            continue;
        };
        let (Ok(wrapped), Ok(unwrapped)) = (
            prepared.run_herbgrind(config),
            prepared.run_herbgrind_unwrapped(config),
        ) else {
            continue;
        };
        any = true;
        for (report, flagged, max_ops, over9) in [
            (
                &wrapped,
                &mut out.wrapped_flagged,
                &mut out.wrapped_max_ops,
                &mut out.wrapped_over_9,
            ),
            (
                &unwrapped,
                &mut out.unwrapped_flagged,
                &mut out.unwrapped_max_ops,
                &mut out.unwrapped_over_9,
            ),
        ] {
            *flagged += report.flagged_operations;
            for cause in report.all_root_causes() {
                let ops = cause.symbolic.operation_count();
                *max_ops = (*max_ops).max(ops);
                if ops > 9 {
                    *over9 += 1;
                }
            }
        }
    }
    if any {
        Ok(out)
    } else {
        Err(DriverError::Compile(
            "no benchmark could be prepared".to_string(),
        ))
    }
}

/// The per-benchmark outcome of the static prune survey (tier 0).
#[derive(Clone, Debug)]
pub struct StaticPruneRow {
    /// Benchmark name.
    pub name: String,
    /// Compute statements on the tape.
    pub total_computes: usize,
    /// Compute statements the static pass certified stable.
    pub certified_computes: usize,
    /// Compute statements in the tier-0 prune mask.
    pub pruned_computes: usize,
    /// Lints flagged by the static pass.
    pub lints: usize,
}

/// The suite-wide static prune survey: how much dynamic shadow work the
/// tier-0 static error-dataflow pass certifies away, before any input runs.
#[derive(Clone, Debug, Default)]
pub struct StaticPruneSurvey {
    /// Per-benchmark rows.
    pub rows: Vec<StaticPruneRow>,
    /// Total compute statements across the suite.
    pub total_computes: usize,
    /// Certified-stable compute statements across the suite.
    pub certified_computes: usize,
    /// Pruned compute statements across the suite.
    pub pruned_computes: usize,
    /// Total lints flagged across the suite.
    pub total_lints: usize,
    /// Benchmarks that failed to compile (skipped).
    pub skipped: usize,
}

/// Runs the tier-0 static error-dataflow pass over every benchmark, using
/// each benchmark's declared [`sampling_region`] as the input region.
///
/// No inputs are sampled and nothing executes dynamically — this measures
/// the static prune rate (the fraction of compute statements whose shadow
/// work tier 0 eliminates) and collects the static lints.
pub fn static_prune_survey(
    benchmarks: &[FPCore],
    params: &staticerr::StaticParams,
) -> StaticPruneSurvey {
    let mut survey = StaticPruneSurvey::default();
    for core in benchmarks {
        let Ok(program) = fpvm::compile_core(core, Default::default()) else {
            survey.skipped += 1;
            continue;
        };
        let region = sampling_region(core);
        let analysis = staticerr::analyze_program(&program, &region, params);
        let mask = staticerr::prune_mask(&program, &analysis);
        let report = staticerr::static_report(&program, &analysis, &mask);
        survey.total_computes += report.total_computes;
        survey.certified_computes += report.certified_computes;
        survey.pruned_computes += report.pruned_computes;
        survey.total_lints += report.lints.len();
        survey.rows.push(StaticPruneRow {
            name: core.display_name().to_string(),
            total_computes: report.total_computes,
            certified_computes: report.certified_computes,
            pruned_computes: report.pruned_computes,
            lints: report.lints.len(),
        });
    }
    survey
}

impl StaticPruneSurvey {
    /// Suite-wide prune rate over compute statements.
    pub fn prune_rate(&self) -> f64 {
        if self.total_computes == 0 {
            0.0
        } else {
            self.pruned_computes as f64 / self.total_computes as f64
        }
    }

    /// Suite-wide certification rate over compute statements.
    pub fn certified_rate(&self) -> f64 {
        if self.total_computes == 0 {
            0.0
        } else {
            self.certified_computes as f64 / self.total_computes as f64
        }
    }

    /// Renders the survey as schema-stable JSON (`herbgrind-static-prune`
    /// version 1), the format of the committed `BENCH_static_prune.json`
    /// artifact validated in CI.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": \"herbgrind-static-prune\",\n");
        out.push_str("  \"version\": 1,\n");
        let _ = writeln!(out, "  \"benchmarks\": {},", self.rows.len());
        let _ = writeln!(out, "  \"skipped\": {},", self.skipped);
        let _ = writeln!(out, "  \"total_computes\": {},", self.total_computes);
        let _ = writeln!(
            out,
            "  \"certified_computes\": {},",
            self.certified_computes
        );
        let _ = writeln!(out, "  \"pruned_computes\": {},", self.pruned_computes);
        let _ = writeln!(out, "  \"total_lints\": {},", self.total_lints);
        let _ = writeln!(out, "  \"prune_rate\": {:.6},", self.prune_rate());
        let _ = writeln!(out, "  \"certified_rate\": {:.6},", self.certified_rate());
        out.push_str("  \"rows\": [");
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"name\": \"{}\", \"computes\": {}, \"certified\": {}, \"pruned\": {}, \"lints\": {}}}",
                row.name.replace('\\', "\\\\").replace('"', "\\\""),
                row.total_computes,
                row.certified_computes,
                row.pruned_computes,
                row.lints
            );
        }
        if !self.rows.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// Renders the survey as a short text summary.
    pub fn to_text(&self) -> String {
        format!(
            "tier-0 static pass over {} benchmarks: {}/{} computes certified ({:.1}%), \
             {}/{} pruned ({:.1}%), {} lints",
            self.rows.len(),
            self.certified_computes,
            self.total_computes,
            100.0 * self.certified_rate(),
            self.pruned_computes,
            self.total_computes,
            100.0 * self.prune_rate(),
            self.total_lints
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::{by_name, subset};

    fn small_suite() -> Vec<FPCore> {
        // A handful of benchmarks that exercise both erroneous and clean
        // behaviour, kept small so tests stay fast.
        [
            "NMSE example 3.1",
            "NMSE section 3.5",
            "verhulst",
            "plotter complex sqrt",
            "sineOrder3",
        ]
        .iter()
        .map(|n| by_name(n).expect("benchmark present"))
        .collect()
    }

    #[test]
    fn improvability_experiment_produces_sensible_counts() {
        let summary = improvability(&small_suite(), 40, 3, &AnalysisConfig::default());
        assert_eq!(summary.total, 5);
        // The cancellation benchmarks are significant and detected; verhulst
        // and sineOrder3 are accurate.
        assert!(summary.significant >= 2, "{}", summary.to_text());
        assert!(summary.detected_by_herbgrind >= 2, "{}", summary.to_text());
        assert!(summary.improvable_root_causes >= 1, "{}", summary.to_text());
        assert!(summary.significant <= summary.total);
        assert!(summary.improvable_root_causes <= summary.significant);
    }

    #[test]
    fn threshold_sweep_is_monotone() {
        let points = threshold_sweep(&small_suite(), 25, 3, &[1.0, 16.0, 40.0]);
        assert_eq!(points.len(), 3);
        // Higher thresholds flag fewer (or equal) operations.
        assert!(points[0].flagged_operations >= points[1].flagged_operations);
        assert!(points[1].flagged_operations >= points[2].flagged_operations);
    }

    #[test]
    fn depth_sweep_reports_fewer_improvements_at_depth_one() {
        let benches = vec![
            by_name("NMSE example 3.1").unwrap(),
            by_name("plotter complex sqrt").unwrap(),
        ];
        let points = depth_sweep(&benches, 40, 3, &[1, 10]);
        assert_eq!(points.len(), 2);
        // Depth 1 (FpDebug-like) produces single-operation expressions which
        // the oracle cannot improve; full depth can.
        assert!(points[1].improvable_root_causes >= points[0].improvable_root_causes);
        assert!(points[1].improvable_root_causes >= 1);
        assert_eq!(points[0].improvable_root_causes, 0);
    }

    #[test]
    fn wrapping_comparison_shows_larger_expressions_unwrapped() {
        let benches = vec![
            by_name("NMSE section 3.5").unwrap(),
            by_name("NMSE problem 3.3.6").unwrap(),
        ];
        let cmp = wrapping_comparison(&benches, 25, 3, &AnalysisConfig::default()).unwrap();
        assert!(
            cmp.unwrapped_max_ops > cmp.wrapped_max_ops,
            "unwrapped {} vs wrapped {}",
            cmp.unwrapped_max_ops,
            cmp.wrapped_max_ops
        );
    }

    #[test]
    fn static_prune_survey_covers_the_suite_and_hits_the_target_rate() {
        let survey = static_prune_survey(&crate::suite::suite(), &Default::default());
        assert_eq!(survey.skipped, 0, "every suite benchmark must compile");
        assert_eq!(survey.rows.len(), crate::suite::suite().len());
        // The paper-level claim the committed artifact pins: more than a
        // fifth of the suite's compute statements need no dynamic shadowing.
        assert!(
            survey.prune_rate() > 0.20,
            "prune rate regressed: {}",
            survey.to_text()
        );
        assert!(survey.certified_rate() > survey.prune_rate());
        assert!(survey.total_lints > 0, "the lint pass went silent");
        let json = survey.to_json();
        assert!(json.contains("\"schema\": \"herbgrind-static-prune\""));
        assert!(json.contains("\"version\": 1"));
        assert!(json.contains("\"rows\": ["));
    }

    #[test]
    fn static_prune_survey_json_row_counts_are_consistent() {
        let survey = static_prune_survey(&subset(8), &Default::default());
        let sum: usize = survey.rows.iter().map(|r| r.pruned_computes).sum();
        assert_eq!(sum, survey.pruned_computes);
        let sum: usize = survey.rows.iter().map(|r| r.total_computes).sum();
        assert_eq!(sum, survey.total_computes);
        for row in &survey.rows {
            assert!(row.pruned_computes <= row.certified_computes);
            assert!(row.certified_computes <= row.total_computes);
        }
    }

    #[test]
    fn subset_of_full_suite_runs_through_improvability() {
        // A smoke test over the first few suite entries to make sure the
        // full-suite driver path works end to end.
        let summary = improvability(&subset(6), 15, 5, &AnalysisConfig::default());
        assert!(summary.total >= 5);
    }
}

//! The embedded FPCore benchmark corpus.
//!
//! The paper evaluates on the FPBench general-purpose suite (86 benchmarks
//! at the time). This module embeds a corpus in the same FPCore format,
//! drawn from the same well-known sources the public suite collects:
//! Hamming's *Numerical Methods for Scientists and Engineers* (the NMSE
//! problems), the Rosa/Daisy verification benchmarks, Herbie's example
//! suite, and a few loop kernels. The corpus is re-typed here rather than
//! vendored (no network access), so benchmark counts differ slightly from
//! the paper; the experiment index in `DESIGN.md` maps the benches that
//! report results against this corpus.

use fpcore::{parse_cores, FPCore};

/// The FPCore source text of the whole suite.
pub const SUITE_SOURCE: &str = r#"
;; ---- Hamming / NMSE style cancellation benchmarks ----
(FPCore (x) :name "NMSE example 3.1" :pre (<= 1 x 1e15) (- (sqrt (+ x 1)) (sqrt x)))
(FPCore (x eps) :name "NMSE example 3.3" :pre (and (<= 1e-3 x 1.5) (<= 1e-14 eps 1e-6)) (- (sin (+ x eps)) (sin x)))
(FPCore (x) :name "NMSE example 3.4" :pre (<= 1e-9 x 1e-3) (/ (- 1 (cos x)) (sin x)))
(FPCore (N) :name "NMSE example 3.5" :pre (<= 1 N 1e12) (- (atan (+ N 1)) (atan N)))
(FPCore (x) :name "NMSE example 3.6" :pre (<= 1 x 1e14) (- (/ 1 (sqrt x)) (/ 1 (sqrt (+ x 1)))))
(FPCore (x) :name "NMSE problem 3.3.1" :pre (<= 1 x 1e14) (- (/ 1 (+ x 1)) (/ 1 x)))
(FPCore (x eps) :name "NMSE problem 3.3.2" :pre (and (<= 1e-3 x 1.5) (<= 1e-14 eps 1e-6)) (- (tan (+ x eps)) (tan x)))
(FPCore (x) :name "NMSE problem 3.3.3" :pre (<= 1 x 1e12) (+ (- (/ 1 (+ x 1)) (/ 2 x)) (/ 1 (- x 1))))
(FPCore (x) :name "NMSE problem 3.3.4" :pre (<= 1 x 1e13) (- (pow (+ x 1) (/ 1 3)) (pow x (/ 1 3))))
(FPCore (x eps) :name "NMSE problem 3.3.5" :pre (and (<= 1e-3 x 1.5) (<= 1e-14 eps 1e-7)) (- (cos (+ x eps)) (cos x)))
(FPCore (N) :name "NMSE problem 3.3.6" :pre (<= 10 N 1e12) (- (log (+ N 1)) (log N)))
(FPCore (x) :name "NMSE problem 3.3.7" :pre (<= 1e-12 x 1e-5) (+ (- (exp x) 2) (exp (- x))))
(FPCore (x) :name "NMSE problem 3.4.1" :pre (<= 1e-9 x 1e-3) (/ (- 1 (cos x)) (* x x)))
(FPCore (a b eps) :name "NMSE problem 3.4.2" :pre (and (<= 1 a 10) (<= 1 b 10) (<= 1e-14 eps 1e-6)) (/ (* eps (- (exp (* (+ a b) eps)) 1)) (* (- (exp (* a eps)) 1) (- (exp (* b eps)) 1))))
(FPCore (eps) :name "NMSE problem 3.4.3" :pre (<= 1e-12 eps 1e-6) (log (/ (- 1 eps) (+ 1 eps))))
(FPCore (x) :name "NMSE problem 3.4.4" :pre (<= 1e-9 x 1) (sqrt (/ (- (exp (* 2 x)) 1) (- (exp x) 1))))
(FPCore (x) :name "NMSE problem 3.4.5" :pre (<= 1e-9 x 1e-2) (/ (- x (sin x)) (- x (tan x))))
(FPCore (x n) :name "NMSE problem 3.4.6" :pre (and (<= 1 x 1e8) (<= 1 n 40)) (- (pow (+ x 1) (/ 1 n)) (pow x (/ 1 n))))
(FPCore (x) :name "NMSE section 3.5" :pre (<= 1e-14 x 1e-6) (- (exp x) 1))
(FPCore (x) :name "NMSE section 3.11" :pre (<= 1e-14 x 1e-6) (/ (- (exp x) 1) x))
(FPCore (x) :name "expm1 over x squared" :pre (<= 1e-12 x 1e-6) (/ (- (exp x) 1) (* x x)))
(FPCore (x) :name "log of one plus" :pre (<= 1e-16 x 1e-8) (log (+ 1 x)))
(FPCore (x) :name "one minus cosine" :pre (<= 1e-9 x 1e-4) (- 1 (cos x)))
(FPCore (x y) :name "difference of squares" :pre (and (<= 1e3 x 1e8) (<= 1e3 y 1e8)) (- (* x x) (* y y)))

;; ---- Quadratic formula family (Herbie examples) ----
(FPCore (a b c) :name "quadratic root (positive)" :pre (and (<= 1e-3 a 1) (<= 1e3 b 1e8) (<= 1e-3 c 1)) (/ (+ (- b) (sqrt (- (* b b) (* 4 (* a c))))) (* 2 a)))
(FPCore (a b c) :name "quadratic root (negative)" :pre (and (<= 1e-3 a 1) (<= 1e3 b 1e8) (<= 1e-3 c 1)) (/ (- (- b) (sqrt (- (* b b) (* 4 (* a c))))) (* 2 a)))
(FPCore (a b2 c) :name "quadratic midpoint form" :pre (and (<= 1e-3 a 1) (<= 1e3 b2 1e7) (<= 1e-3 c 1)) (/ (+ (- b2) (sqrt (- (* b2 b2) (* a c)))) a))
(FPCore (x) :name "2sqrt" :pre (<= 1 x 1e15) (- (sqrt (+ x 1)) (sqrt x)))
(FPCore (x) :name "expq2" :pre (<= 1e-14 x 1e-7) (/ (- (exp x) 1) (- (exp x) (exp (- x)))))
(FPCore (x y) :name "plotter complex sqrt" :pre (and (<= 1e-9 x 0.25) (<= 1e-12 y 1e-8)) (- (sqrt (+ (* x x) (* y y))) x))
(FPCore (x y) :name "hypotenuse minus leg" :pre (and (<= 1 x 1e7) (<= 1e-8 y 1e-2)) (- (sqrt (+ (* x x) (* y y))) x))
(FPCore (a b) :name "asinh-like log form" :pre (and (<= 1e-8 a 1) (<= 1 b 1e8)) (log (+ b (sqrt (+ (* b b) a)))))

;; ---- Rosa / Daisy verification kernels ----
(FPCore (u v T) :name "doppler1" :pre (and (<= -100 u 100) (<= 20 v 20000) (<= -30 T 50))
  (let ((t1 (+ 331.4 (* 0.6 T)))) (/ (* (- t1) v) (* (+ t1 u) (+ t1 u)))))
(FPCore (u v T) :name "doppler2" :pre (and (<= -125 u 125) (<= 15 v 25000) (<= -40 T 60))
  (let ((t1 (+ 331.4 (* 0.6 T)))) (/ (* (- t1) v) (* (+ t1 u) (+ t1 u)))))
(FPCore (u v T) :name "doppler3" :pre (and (<= -30 u 120) (<= 320 v 20300) (<= -50 T 30))
  (let ((t1 (+ 331.4 (* 0.6 T)))) (/ (* (- t1) v) (* (+ t1 u) (+ t1 u)))))
(FPCore (x1 x2 x3) :name "rigidBody1" :pre (and (<= -15 x1 15) (<= -15 x2 15) (<= -15 x3 15))
  (- (- (+ (- (* x1 x2)) (* (* 2 x2) x3)) x1) x3))
(FPCore (x1 x2 x3) :name "rigidBody2" :pre (and (<= -15 x1 15) (<= -15 x2 15) (<= -15 x3 15))
  (- (+ (- (+ (* (* (* 2 x1) x2) x3) (* (* 3 x3) x3)) (* (* (* x2 x1) x2) x3)) (* (* 3 x3) x3)) x2))
(FPCore (v w r) :name "turbine1" :pre (and (<= -4.5 v -0.3) (<= 0.4 w 0.9) (<= 3.8 r 7.8))
  (- (- (+ 3 (/ 2 (* r r))) (/ (* (* 0.125 (- 3 (* 2 v))) (* (* w w) r)) (- 1 v))) 4.5))
(FPCore (v w r) :name "turbine2" :pre (and (<= -4.5 v -0.3) (<= 0.4 w 0.9) (<= 3.8 r 7.8))
  (- (- (* 6 v) (/ (* (* 0.5 v) (* (* w w) r)) (- 1 v))) 2.5))
(FPCore (v w r) :name "turbine3" :pre (and (<= -4.5 v -0.3) (<= 0.4 w 0.9) (<= 3.8 r 7.8))
  (- (- (- 3 (/ 2 (* r r))) (/ (* (* 0.125 (+ 1 (* 2 v))) (* (* w w) r)) (- 1 v))) 0.5))
(FPCore (x1 x2) :name "jetEngine" :pre (and (<= -5 x1 5) (<= -20 x2 5))
  (let ((t (/ (* (* 3 x1) x1) (+ (* x1 x1) 1))))
    (+ x1 (+ (* (* (* (* (* (* 2 x1) t) (- t 3)) (+ (* x1 x1) (* (* x1 t) (- t 6)))) (- t 3)) (/ 1 (+ (* x1 x1) 1))) (* (* 3 x1) x1)))))
(FPCore (T) :name "carbonGas" :pre (<= 300 T 400)
  (let ((p 3.5e7) (a 0.401) (b 42.7e-6) (N 1000) (V 0.5))
    (- (* (+ p (* (* a (/ N V)) (/ N V))) (- V (* N b))) (* (* 1.3806503e-23 N) T))))
(FPCore (x) :name "verhulst" :pre (<= 0.1 x 0.3)
  (let ((r 4.0) (K 1.11)) (/ (* r x) (+ 1 (/ x K)))))
(FPCore (x) :name "predatorPrey" :pre (<= 0.1 x 0.3)
  (let ((r 4.0) (K 1.11)) (/ (* (* r x) x) (+ 1 (* (/ x K) (/ x K))))))
(FPCore (v) :name "sine" :pre (<= -1.57 v 1.57)
  (+ (- v (/ (* (* v v) v) 6)) (- (/ (* (* (* (* v v) v) v) v) 120) (/ (pow v 7) 5040))))
(FPCore (x) :name "sineOrder3" :pre (<= -2 x 2)
  (- (* 0.954929658551372 x) (* 0.12900613773279798 (* (* x x) x))))
(FPCore (x) :name "sqroot" :pre (<= 0 x 1)
  (- (+ (- (+ 1 (* 0.5 x)) (* (* 0.125 x) x)) (* (* (* 0.0625 x) x) x)) (* (* (* (* 0.0390625 x) x) x) x)))
(FPCore (x1 x2) :name "kepler0-reduced" :pre (and (<= 4 x1 6.36) (<= 4 x2 6.36))
  (- (* x1 x2) (+ x1 x2)))
(FPCore (x1 x2 x3) :name "kepler1" :pre (and (<= 4 x1 6.36) (<= 4 x2 6.36) (<= 4 x3 6.36))
  (- (- (- (+ (* x1 x2) (* x2 x3)) (* x1 x3)) (* x2 x2)) 1))
(FPCore (x1 x2 x3) :name "himmilbeau" :pre (and (<= -5 x1 5) (<= -5 x2 5) (<= -5 x3 5))
  (+ (* (- (+ (* x1 x1) x2) 11) (- (+ (* x1 x1) x2) 11)) (* (- (+ x1 (* x2 x2)) 7) (- (+ x1 (* x2 x2)) 7))))

;; ---- Geometry and physics fragments ----
(FPCore (a b c) :name "triangle area (Heron)" :pre (and (<= 1 a 1e6) (<= 1 b 1e6) (<= 1e-6 c 1))
  (let ((s (/ (+ (+ a b) c) 2))) (sqrt (* (* (* s (- s a)) (- s b)) (- s c)))))
(FPCore (x y) :name "atan2 quotient" :pre (and (<= 1e-8 x 10) (<= 1e-8 y 10)) (atan2 y x))
(FPCore (x0 y0 x1 y1) :name "segment length" :pre (and (<= 0 x0 1) (<= 0 y0 1) (<= 0 x1 1) (<= 0 y1 1))
  (sqrt (+ (* (- x1 x0) (- x1 x0)) (* (- y1 y0) (- y1 y0)))))
(FPCore (x y z) :name "dot product near cancellation" :pre (and (<= 1e6 x 1e8) (<= -1e8 y -1e6) (<= 0 z 1))
  (+ (+ (* x 1.0) (* y 1.0)) z))
(FPCore (m1 m2 r) :name "gravitational force" :pre (and (<= 1 m1 1e10) (<= 1 m2 1e10) (<= 1e-3 r 1e3))
  (/ (* (* 6.674e-11 m1) m2) (* r r)))
(FPCore (v c) :name "lorentz factor" :pre (and (<= 1 v 1e6) (<= 2.9e8 c 3e8))
  (/ 1 (sqrt (- 1 (/ (* v v) (* c c))))))
(FPCore (theta) :name "haversine core" :pre (<= 1e-8 theta 1e-3)
  (* 2 (asin (sqrt (* (sin (/ theta 2)) (sin (/ theta 2)))))))
(FPCore (x) :name "logit" :pre (<= 1e-8 x 0.5) (log (/ x (- 1 x))))
(FPCore (x) :name "sigmoid tail" :pre (<= 20 x 700) (/ 1 (+ 1 (exp (- x)))))
(FPCore (p q) :name "relative difference" :pre (and (<= 1e6 p 1e9) (<= 1e6 q 1e9)) (/ (- p q) (+ p q)))
(FPCore (x) :name "tanh via exp" :pre (<= 1e-9 x 1e-3) (/ (- (exp x) (exp (- x))) (+ (exp x) (exp (- x)))))
(FPCore (x) :name "cosine distance tail" :pre (<= 1e-8 x 1e-3) (- 1 (* (cos x) (cos x))))
(FPCore (a x) :name "pow near one" :pre (and (<= 0.999999 a 1.000001) (<= 1e6 x 1e9)) (pow a x))
(FPCore (x) :name "cube root difference" :pre (<= 1 x 1e12) (- (cbrt (+ x 1)) (cbrt x)))
(FPCore (x y) :name "harmonic mean" :pre (and (<= 1e-6 x 1e6) (<= 1e-6 y 1e6)) (/ 2 (+ (/ 1 x) (/ 1 y))))
(FPCore (x) :name "softplus tail" :pre (<= 30 x 700) (log (+ 1 (exp x))))
(FPCore (x mu sigma) :name "gaussian exponent" :pre (and (<= -1 x 1) (<= -1 mu 1) (<= 1e-3 sigma 1))
  (exp (- (/ (* (- x mu) (- x mu)) (* (* 2 sigma) sigma)))))
(FPCore (x) :name "inverse sqrt difference" :pre (<= 1 x 1e13) (- (/ 1 (sqrt x)) (/ 1 (sqrt (+ x 2)))))
(FPCore (a b) :name "log sum exp (two)" :pre (and (<= 600 a 700) (<= 600 b 700)) (log (+ (exp a) (exp b))))
(FPCore (x) :name "compound interest error" :pre (<= 1e5 x 1e9) (- (pow (+ 1 (/ 1 x)) x) E))
(FPCore (r) :name "circle area delta" :pre (<= 1e3 r 1e8) (- (* PI (* (+ r 1e-6) (+ r 1e-6))) (* PI (* r r))))

;; ---- Polynomial / series kernels ----
(FPCore (x) :name "exp taylor 5" :pre (<= -1 x 1)
  (+ 1 (+ x (+ (/ (* x x) 2) (+ (/ (* (* x x) x) 6) (/ (* (* (* x x) x) x) 24))))))
(FPCore (x) :name "log1p series" :pre (<= -0.5 x 0.5)
  (- x (- (/ (* x x) 2) (/ (* (* x x) x) 3))))
(FPCore (x) :name "horner cubic" :pre (<= -10 x 10)
  (+ 1 (* x (+ 2 (* x (+ 3 (* x 4)))))))
(FPCore (x) :name "naive cubic" :pre (<= -10 x 10)
  (+ (+ (+ 1 (* 2 x)) (* 3 (* x x))) (* 4 (* (* x x) x))))
(FPCore (x) :name "wilkinson-ish product" :pre (<= 0.9999999 x 1.0000001)
  (* (* (* (- x 1) (- x 2)) (- x 3)) (- x 4)))
(FPCore (x) :name "catastrophic quadratic" :pre (<= 1e7 x 1e8)
  (+ (- (* x x) (* 2 x)) 1))

;; ---- Loop kernels (while) ----
(FPCore (N) :name "harmonic sum loop" :pre (<= 10 N 2000)
  (while (<= i N) ((i 1 (+ i 1)) (s 0 (+ s (/ 1 i)))) s))
(FPCore (N) :name "pid-style counter loop" :pre (<= 5 N 50)
  (while (< t N) ((t 0 (+ t 0.2)) (c 0 (+ c 1))) c))
(FPCore (N) :name "naive variance accumulation" :pre (<= 10 N 500)
  (while (<= i N) ((i 1 (+ i 1)) (s 0 (+ s (* (+ 1e8 i) (+ 1e8 i)))) (q 0 (+ q (+ 1e8 i))))
    (- (/ s N) (* (/ q N) (/ q N)))))
(FPCore (N) :name "alternating series" :pre (<= 10 N 1000)
  (while (<= i N) ((i 1 (+ i 1)) (sign 1 (- 0 sign)) (s 0 (+ s (/ sign i)))) s))
(FPCore (x0 N) :name "newton sqrt iteration" :pre (and (<= 1 x0 100) (<= 1 N 20))
  (while (<= i N) ((i 1 (+ i 1)) (g x0 (* 0.5 (+ g (/ x0 g))))) g))
(FPCore (N) :name "compensation-free running sum" :pre (<= 10 N 2000)
  (while (<= i N) ((i 1 (+ i 1)) (s 0 (+ s 0.1))) (- s (* 0.1 N))))

;; ---- Well-conditioned kernels (FPBench-style accurate baselines) ----
;; Products, quotients bounded away from zero, and same-sign accumulations:
;; the control group the paper's evaluation needs alongside the cancellation
;; stress tests, and the population the tier-0 static pass certifies.
(FPCore (x) :name "horner quartic positive" :pre (<= 1 x 2)
  (+ 5 (* x (+ 4 (* x (+ 3 (* x (+ 2 (* x 1)))))))))
(FPCore (x) :name "horner sextic positive" :pre (<= 0.5 x 3)
  (+ 7 (* x (+ 6 (* x (+ 5 (* x (+ 4 (* x (+ 3 (* x (+ 2 (* x 1)))))))))))))
(FPCore (x y z) :name "rms of three" :pre (and (<= 1 x 10) (<= 1 y 10) (<= 1 z 10))
  (sqrt (/ (+ (+ (* x x) (* y y)) (* z z)) 3)))
(FPCore (x y z w) :name "sum of squares (four)" :pre (and (<= 1 x 10) (<= 1 y 10) (<= 1 z 10) (<= 1 w 10))
  (+ (+ (* x x) (* y y)) (+ (* z z) (* w w))))
(FPCore (x y z) :name "geometric mean (three)" :pre (and (<= 0.5 x 2) (<= 0.5 y 2) (<= 0.5 z 2))
  (cbrt (* (* x y) z)))
(FPCore (r1 r2 r3) :name "parallel resistance (three)" :pre (and (<= 1 r1 100) (<= 1 r2 100) (<= 1 r3 100))
  (/ 1 (+ (+ (/ 1 r1) (/ 1 r2)) (/ 1 r3))))
(FPCore (q1 q2 r) :name "coulomb energy" :pre (and (<= 1e-6 q1 1e-3) (<= 1e-6 q2 1e-3) (<= 0.1 r 10))
  (/ (* (* 8.9875e9 q1) q2) r))
(FPCore (m v) :name "kinetic energy" :pre (and (<= 1 m 100) (<= 1 v 100))
  (* (* 0.5 m) (* v v)))
(FPCore (v theta) :name "projectile range" :pre (and (<= 1 v 50) (<= 0.3 theta 1.2))
  (/ (* (* v v) (sin (* 2 theta))) 9.81))
(FPCore (n T V) :name "ideal gas pressure" :pre (and (<= 1 n 10) (<= 250 T 400) (<= 0.1 V 1))
  (/ (* (* n 8.314462618) T) V))
(FPCore (A lambda t) :name "exponential decay" :pre (and (<= 1 A 10) (<= 0.01 lambda 1) (<= 0.1 t 10))
  (* A (exp (- (* lambda t)))))
(FPCore (x y) :name "log magnitude" :pre (and (<= 10 x 1000) (<= 10 y 1000))
  (log (* x y)))
(FPCore (x y z) :name "weighted average (three)" :pre (and (<= 1 x 100) (<= 1 y 100) (<= 1 z 100))
  (/ (+ (+ (* 2 x) (* 3 y)) (* 5 z)) 10))
(FPCore (x y z w) :name "one-norm (four)" :pre (and (<= 0.1 x 100) (<= 0.1 y 100) (<= 0.1 z 100) (<= 0.1 w 100))
  (+ (+ (+ x y) z) w))
(FPCore (x y z w) :name "arithmetic mean (four)" :pre (and (<= 1 x 100) (<= 1 y 100) (<= 1 z 100) (<= 1 w 100))
  (/ (+ (+ (+ x y) z) w) 4))
(FPCore (x) :name "rising cubic product" :pre (<= 0.5 x 10)
  (* (* (+ x 1) (+ x 2)) (+ x 3)))
(FPCore (x y z) :name "hypot3" :pre (and (<= 1 x 100) (<= 1 y 100) (<= 1 z 100))
  (sqrt (+ (+ (* x x) (* y y)) (* z z))))
(FPCore (r h) :name "cone volume" :pre (and (<= 0.1 r 10) (<= 0.1 h 10))
  (/ (* PI (* (* r r) h)) 3))
(FPCore (x) :name "logistic midrange" :pre (<= 1 x 5)
  (/ 1 (+ 1 (exp (- x)))))
(FPCore (k x m h) :name "energy sum" :pre (and (<= 1 k 100) (<= 0.1 x 1) (<= 1 m 10) (<= 0.1 h 10))
  (+ (* (* 0.5 k) (* x x)) (* (* m 9.81) h)))
(FPCore (a b c) :name "box surface area" :pre (and (<= 1 a 10) (<= 1 b 10) (<= 1 c 10))
  (* 2 (+ (+ (* a b) (* b c)) (* c a))))
(FPCore (I R V) :name "power dissipation" :pre (and (<= 0.1 I 10) (<= 1 R 100) (<= 1 V 100))
  (+ (* (* I I) R) (/ (* V V) R)))
(FPCore (x1 y1 x2 y2 x3 y3) :name "dot product (three)" :pre (and (<= 1 x1 10) (<= 1 y1 10) (<= 1 x2 10) (<= 1 y2 10) (<= 1 x3 10) (<= 1 y3 10))
  (+ (+ (* x1 y1) (* x2 y2)) (* x3 y3)))
(FPCore (r h) :name "cylinder volume" :pre (and (<= 0.1 r 10) (<= 0.1 h 10))
  (* (* PI (* r r)) h))
(FPCore (a b) :name "rectangle diagonal" :pre (and (<= 1 a 100) (<= 1 b 100))
  (sqrt (+ (* a a) (* b b))))
(FPCore (u v) :name "thin lens equation" :pre (and (<= 1 u 100) (<= 1 v 100))
  (/ 1 (+ (/ 1 u) (/ 1 v))))
(FPCore (m k) :name "spring period" :pre (and (<= 1 m 10) (<= 1 k 100))
  (* (* 2 PI) (sqrt (/ m k))))
(FPCore (V R1 R2) :name "resistor divider" :pre (and (<= 1 V 100) (<= 1 R1 100) (<= 1 R2 100))
  (/ (* V R2) (+ R1 R2)))
(FPCore (a b c) :name "triangle perimeter" :pre (and (<= 1 a 100) (<= 1 b 100) (<= 1 c 100))
  (+ (+ a b) c))
(FPCore (a b c) :name "cuboid volume" :pre (and (<= 0.5 a 20) (<= 0.5 b 20) (<= 0.5 c 20))
  (* (* a b) c))
(FPCore (P r t) :name "simple interest" :pre (and (<= 100 P 1e6) (<= 0.01 r 0.2) (<= 1 t 30))
  (* (* P r) t))
(FPCore (f1 f2) :name "beat frequency mean" :pre (and (<= 100 f1 1000) (<= 100 f2 1000))
  (/ (+ f1 f2) 2))
(FPCore (r) :name "circle circumference" :pre (<= 0.1 r 1000)
  (* (* 2 PI) r))
(FPCore (V R) :name "ohmic heating" :pre (and (<= 1 V 240) (<= 1 R 1000))
  (* (/ V R) V))
(FPCore (x) :name "fourth root" :pre (<= 1 x 1e8)
  (sqrt (sqrt x)))
(FPCore (x y) :name "log quotient" :pre (and (<= 10 x 1000) (<= 0.1 y 1))
  (log (/ x y)))
(FPCore (x y) :name "exp product" :pre (and (<= 0.1 x 2) (<= 0.1 y 2))
  (* (exp x) (exp y)))
(FPCore (a x) :name "scaled sqrt" :pre (and (<= 1 a 100) (<= 1 x 1e6))
  (* a (sqrt x)))
(FPCore (m c) :name "mass energy" :pre (and (<= 1e-3 m 10) (<= 2.99e8 c 3e8))
  (* m (* c c)))
(FPCore (R1 R2 R3) :name "wheatstone ratio" :pre (and (<= 1 R1 1000) (<= 1 R2 1000) (<= 1 R3 1000))
  (/ (* R1 R3) R2))
(FPCore (r) :name "sphere surface area" :pre (<= 0.1 r 100)
  (* (* 4 PI) (* r r)))
(FPCore (r) :name "sphere volume" :pre (<= 0.1 r 100)
  (/ (* (* 4 PI) (* (* r r) r)) 3))
(FPCore (x y) :name "geometric mean (two)" :pre (and (<= 0.5 x 100) (<= 0.5 y 100))
  (sqrt (* x y)))
(FPCore (C V) :name "capacitor energy" :pre (and (<= 1e-9 C 1e-3) (<= 1 V 400))
  (* (* 0.5 C) (* V V)))
(FPCore (L) :name "pendulum period" :pre (<= 0.1 L 10)
  (* (* 2 PI) (sqrt (/ L 9.81))))
"#;

/// Returns the parsed benchmark suite.
///
/// # Panics
///
/// Panics if the embedded suite fails to parse (a build-time invariant
/// guarded by tests).
pub fn suite() -> Vec<FPCore> {
    parse_cores(SUITE_SOURCE).expect("embedded FPBench suite parses")
}

/// Returns the benchmark with the given `:name`, if present.
pub fn by_name(name: &str) -> Option<FPCore> {
    suite().into_iter().find(|c| c.display_name() == name)
}

/// Returns a deterministic subset of the suite of at most `limit` benchmarks
/// (used by the quicker benchmark harnesses).
pub fn subset(limit: usize) -> Vec<FPCore> {
    let mut all = suite();
    all.truncate(limit);
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_parses_and_is_reasonably_large() {
        let cores = suite();
        assert!(cores.len() >= 60, "only {} benchmarks", cores.len());
    }

    #[test]
    fn every_benchmark_has_a_name_and_a_precondition_or_no_args() {
        for core in suite() {
            assert!(core.name.is_some(), "unnamed benchmark");
            assert!(
                core.pre.is_some() || core.arguments.is_empty(),
                "{} has arguments but no precondition",
                core.display_name()
            );
        }
    }

    #[test]
    fn names_are_unique() {
        let cores = suite();
        let mut names: Vec<&str> = cores.iter().map(|c| c.display_name()).collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(before, names.len(), "duplicate benchmark names");
    }

    #[test]
    fn every_benchmark_compiles_and_runs() {
        for core in suite() {
            let program = fpvm::compile_core(&core, Default::default())
                .unwrap_or_else(|e| panic!("{} fails to compile: {e}", core.display_name()));
            program
                .validate()
                .unwrap_or_else(|e| panic!("{} invalid: {e}", core.display_name()));
            // Run on one sampled input to make sure the program terminates.
            let inputs = herbie_lite::sample_inputs(&core, 1, 1)
                .unwrap_or_else(|e| panic!("{} unsampleable: {e}", core.display_name()));
            fpvm::Machine::new(&program)
                .run(&inputs[0])
                .unwrap_or_else(|e| panic!("{} failed to run: {e}", core.display_name()));
        }
    }

    #[test]
    fn lookup_by_name_works() {
        assert!(by_name("doppler1").is_some());
        assert!(by_name("no such benchmark").is_none());
    }

    #[test]
    fn subset_truncates_deterministically() {
        assert_eq!(subset(5).len(), 5);
        assert_eq!(subset(5)[0].display_name(), subset(10)[0].display_name());
    }
}

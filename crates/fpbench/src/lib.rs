//! The FPBench-style benchmark suite and the paper's evaluation experiments.
//!
//! This crate packages three things:
//!
//! * [`suite`] — an embedded corpus of FPCore benchmarks in the style of the
//!   FPBench general-purpose suite used by the paper's evaluation (§8),
//! * [`driver`] — helpers that compile a benchmark, sample inputs from its
//!   precondition, and run it natively or under Herbgrind,
//! * [`experiments`] — drivers that regenerate each evaluation artifact: the
//!   §8.1 improvability numbers, the Figure 5a–5d sweeps, and the §8.2
//!   library-wrapping comparison.
//!
//! The Criterion benches in `crates/bench` and the `examples/` binaries are
//! thin wrappers over these functions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod driver;
pub mod experiments;
pub mod suite;

pub use driver::{prepare, sampling_region, DriverError, PreparedBenchmark};
pub use experiments::{
    depth_sweep, improvability, range_kind_sweep, static_prune_survey, threshold_sweep,
    wrapping_comparison, DepthPoint, ImprovabilityRow, ImprovabilitySummary, RangeKindPoint,
    StaticPruneRow, StaticPruneSurvey, ThresholdPoint, WrappingComparison,
};
pub use suite::{by_name, subset, suite};

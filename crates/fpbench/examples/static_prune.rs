//! Prints the tier-0 static prune survey over the full embedded suite;
//! `--json` emits the survey as `herbgrind-static-prune` JSON, and
//! `--report <benchmark name>` prints one benchmark's full static
//! error-dataflow report (text + `herbgrind-static-report` JSON) instead.

use herbgrind::staticerr;

fn single_report(name: &str) {
    let core = fpbench::by_name(name).expect("benchmark name from the embedded suite");
    let program = fpvm::compile_core(&core, Default::default()).expect("compile");
    let region = fpbench::sampling_region(&core);
    let analysis = staticerr::analyze_program(&program, &region, &Default::default());
    let mask = staticerr::prune_mask(&program, &analysis);
    let report = staticerr::static_report(&program, &analysis, &mask);
    print!("{}", report.to_text());
    println!();
    print!("{}", report.to_json());
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--report") {
        let name = args.get(i + 1).expect("--report takes a benchmark name");
        single_report(name);
        return;
    }
    let survey = fpbench::static_prune_survey(&fpbench::suite(), &Default::default());
    if args.iter().any(|a| a == "--json") {
        print!("{}", survey.to_json());
    } else {
        println!("{}", survey.to_text());
        for row in &survey.rows {
            println!(
                "  {:40} {:>3} computes, {:>3} certified, {:>3} pruned, {:>2} lints",
                row.name,
                row.total_computes,
                row.certified_computes,
                row.pruned_computes,
                row.lints
            );
        }
    }
}

//! Input sampling for benchmarks, driven by their `:pre` conditions.
//!
//! This plays the role of the "driver code which exercises the benchmarks on
//! many inputs" from §8.1: inputs are drawn from the ranges named in the
//! precondition when one exists, and from a wide log-uniform distribution
//! over the doubles otherwise, then filtered through the precondition.

use fpcore::ast::{CmpOp, Expr, FPCore};
use fpcore::eval::precondition_holds;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::fmt;

/// Errors produced during sampling.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SampleError {
    /// Too few samples satisfied the precondition.
    PreconditionTooRestrictive {
        /// Samples requested.
        requested: usize,
        /// Samples found.
        found: usize,
    },
}

impl fmt::Display for SampleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SampleError::PreconditionTooRestrictive { requested, found } => write!(
                f,
                "only {found} of {requested} requested samples satisfied the precondition"
            ),
        }
    }
}

impl std::error::Error for SampleError {}

/// A per-variable sampling range extracted from a precondition.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct VarRange {
    /// Lower bound (inclusive).
    pub lo: f64,
    /// Upper bound (inclusive).
    pub hi: f64,
}

impl Default for VarRange {
    fn default() -> Self {
        VarRange {
            lo: -1e15,
            hi: 1e15,
        }
    }
}

/// Extracts simple per-variable ranges from a precondition expression.
///
/// Understands conjunctions of chained comparisons whose endpoints are
/// literals, e.g. `(and (<= 0 x 1) (< -10 y 10))`; anything else falls back
/// to the default wide range for the variables it mentions.
pub fn ranges_from_precondition(core: &FPCore) -> HashMap<String, VarRange> {
    let mut ranges: HashMap<String, VarRange> = HashMap::new();
    for arg in &core.arguments {
        ranges.insert(arg.clone(), VarRange::default());
    }
    if let Some(pre) = &core.pre {
        collect_ranges(pre, &mut ranges);
    }
    ranges
}

fn collect_ranges(expr: &Expr, ranges: &mut HashMap<String, VarRange>) {
    match expr {
        Expr::And(args) => {
            for a in args {
                collect_ranges(a, ranges);
            }
        }
        Expr::Cmp(op, args) if matches!(op, CmpOp::Le | CmpOp::Lt | CmpOp::Ge | CmpOp::Gt) => {
            // Patterns like (<= lo x hi), (<= lo x), (<= x hi) and their
            // mirror images with > / >=.
            let as_number = |e: &Expr| match e {
                Expr::Number(n) => Some(*n),
                Expr::Const(c) => Some(c.value()),
                Expr::Op(shadowreal::RealOp::Neg, inner) => match inner.as_slice() {
                    [Expr::Number(n)] => Some(-n),
                    _ => None,
                },
                _ => None,
            };
            let ascending = matches!(op, CmpOp::Le | CmpOp::Lt);
            for window in args.windows(2) {
                let (left, right) = (&window[0], &window[1]);
                match (left, right) {
                    (lit, Expr::Var(name)) if as_number(lit).is_some() => {
                        let bound = as_number(lit).expect("checked");
                        let entry = ranges.entry(name.clone()).or_default();
                        if ascending {
                            entry.lo = entry.lo.max(bound);
                        } else {
                            entry.hi = entry.hi.min(bound);
                        }
                    }
                    (Expr::Var(name), lit) if as_number(lit).is_some() => {
                        let bound = as_number(lit).expect("checked");
                        let entry = ranges.entry(name.clone()).or_default();
                        if ascending {
                            entry.hi = entry.hi.min(bound);
                        } else {
                            entry.lo = entry.lo.max(bound);
                        }
                    }
                    _ => {}
                }
            }
        }
        _ => {}
    }
}

fn sample_in_range(rng: &mut StdRng, range: VarRange) -> f64 {
    let VarRange { lo, hi } = range;
    if !(lo.is_finite() && hi.is_finite()) || lo >= hi {
        return lo;
    }
    // Mix uniform and log-uniform sampling so that both wide dynamic ranges
    // and narrow intervals are exercised (Herbie samples over the whole
    // float range; we bias toward the precondition's interval).
    if rng.gen_bool(0.5) || lo < 0.0 && hi > 0.0 {
        rng.gen_range(lo..=hi)
    } else {
        // Log-uniform over the positive part of the range (or the negative
        // part mirrored).
        let (a, b, sign) = if lo >= 0.0 {
            (lo.max(1e-30), hi.max(1e-30), 1.0)
        } else {
            (hi.abs().max(1e-30), lo.abs().max(1e-30), -1.0)
        };
        let (a, b) = (a.min(b), a.max(b));
        let exp = rng.gen_range(a.ln()..=b.ln());
        sign * exp.exp()
    }
}

/// Samples `count` input vectors for a benchmark, honouring its
/// precondition. The `seed` makes sampling reproducible.
///
/// # Errors
///
/// Returns [`SampleError::PreconditionTooRestrictive`] when fewer than a
/// quarter of the requested samples can be found within the rejection
/// budget.
pub fn sample_inputs(core: &FPCore, count: usize, seed: u64) -> Result<Vec<Vec<f64>>, SampleError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let ranges = ranges_from_precondition(core);
    let mut out = Vec::with_capacity(count);
    let budget = count.saturating_mul(200).max(1000);
    let mut attempts = 0usize;
    while out.len() < count && attempts < budget {
        attempts += 1;
        let candidate: Vec<f64> = core
            .arguments
            .iter()
            .map(|name| sample_in_range(&mut rng, ranges.get(name).copied().unwrap_or_default()))
            .collect();
        if precondition_holds(core, &candidate).unwrap_or(false) {
            out.push(candidate);
        }
    }
    if out.len() < count / 4 {
        return Err(SampleError::PreconditionTooRestrictive {
            requested: count,
            found: out.len(),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpcore::parse_core;

    #[test]
    fn ranges_are_extracted_from_preconditions() {
        let core = parse_core("(FPCore (x y) :pre (and (<= 0 x 1) (< -10 y 10)) (+ x y))").unwrap();
        let ranges = ranges_from_precondition(&core);
        assert_eq!(ranges["x"].lo, 0.0);
        assert_eq!(ranges["x"].hi, 1.0);
        assert_eq!(ranges["y"].lo, -10.0);
        assert_eq!(ranges["y"].hi, 10.0);
    }

    #[test]
    fn reversed_comparisons_are_understood() {
        let core = parse_core("(FPCore (x) :pre (>= 5 x 1) (* x 2))").unwrap();
        let ranges = ranges_from_precondition(&core);
        assert_eq!(ranges["x"].lo, 1.0);
        assert_eq!(ranges["x"].hi, 5.0);
    }

    #[test]
    fn samples_respect_preconditions() {
        let core = parse_core("(FPCore (x) :pre (< 1 x 2) (sqrt (- x 1)))").unwrap();
        let samples = sample_inputs(&core, 100, 7).unwrap();
        assert_eq!(samples.len(), 100);
        assert!(samples.iter().all(|s| s[0] > 1.0 && s[0] < 2.0));
    }

    #[test]
    fn sampling_is_reproducible_by_seed() {
        let core = parse_core("(FPCore (x y) (+ x y))").unwrap();
        let a = sample_inputs(&core, 20, 99).unwrap();
        let b = sample_inputs(&core, 20, 99).unwrap();
        let c = sample_inputs(&core, 20, 100).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn impossible_preconditions_are_reported() {
        let core = parse_core("(FPCore (x) :pre (and (< x 0) (< 1 x)) x)").unwrap();
        assert!(matches!(
            sample_inputs(&core, 50, 1),
            Err(SampleError::PreconditionTooRestrictive { .. })
        ));
    }

    #[test]
    fn zero_argument_cores_sample_empty_vectors() {
        let core = parse_core("(FPCore () (+ 1 2))").unwrap();
        let samples = sample_inputs(&core, 5, 3).unwrap();
        assert_eq!(samples.len(), 5);
        assert!(samples.iter().all(Vec::is_empty));
    }
}

//! The rewrite database: algebraic identities known to improve accuracy.
//!
//! Each rule matches a syntactic pattern and produces a mathematically
//! equivalent expression that avoids a specific floating-point failure mode
//! (catastrophic cancellation, inaccurate composition of `exp`/`log` with
//! nearby constants, etc.). The rules are a compact subset of Herbie's rule
//! database, chosen to cover the patterns that dominate the FPBench
//! general-purpose suite.

use fpcore::ast::Expr;
use shadowreal::RealOp;

/// A rewrite produced by the rule database: the rule's name and the rewritten
/// whole expression.
#[derive(Clone, Debug)]
pub struct Rewrite {
    /// The name of the rule that fired.
    pub rule: &'static str,
    /// The rewritten expression.
    pub expr: Expr,
}

/// Structural equality of expressions (used by cancellation rules).
pub fn structurally_equal(a: &Expr, b: &Expr) -> bool {
    match (a, b) {
        (Expr::Number(x), Expr::Number(y)) => x.to_bits() == y.to_bits(),
        (Expr::Const(x), Expr::Const(y)) => x == y,
        (Expr::Var(x), Expr::Var(y)) => x == y,
        (Expr::Op(op_a, args_a), Expr::Op(op_b, args_b)) => {
            op_a == op_b
                && args_a.len() == args_b.len()
                && args_a
                    .iter()
                    .zip(args_b)
                    .all(|(x, y)| structurally_equal(x, y))
        }
        _ => false,
    }
}

fn op(o: RealOp, args: Vec<Expr>) -> Expr {
    Expr::Op(o, args)
}

fn num(v: f64) -> Expr {
    Expr::Number(v)
}

fn is_number(e: &Expr, v: f64) -> bool {
    matches!(e, Expr::Number(n) if *n == v)
}

/// The square of an expression, simplified when the expression is itself a
/// square root.
fn square_of(e: &Expr) -> Expr {
    if let Expr::Op(RealOp::Sqrt, args) = e {
        args[0].clone()
    } else {
        op(RealOp::Mul, vec![e.clone(), e.clone()])
    }
}

/// All rewrites available at the *root* of the expression.
pub fn rewrites_at_root(expr: &Expr) -> Vec<Rewrite> {
    let mut out = Vec::new();
    let mut push = |rule: &'static str, e: Expr| out.push(Rewrite { rule, expr: e });

    if let Expr::Op(o, args) = expr {
        match (o, args.as_slice()) {
            // --- cancellation removal ---
            (RealOp::Sub, [a, b]) => {
                // (x + c) - x  =>  c     and     (c + x) - x  =>  c
                if let Expr::Op(RealOp::Add, inner) = a {
                    if structurally_equal(&inner[0], b) {
                        push("cancel-left-add", inner[1].clone());
                    }
                    if structurally_equal(&inner[1], b) {
                        push("cancel-right-add", inner[0].clone());
                    }
                }
                // (x - c) - x => -c
                if let Expr::Op(RealOp::Sub, inner) = a {
                    if structurally_equal(&inner[0], b) {
                        push("cancel-sub", op(RealOp::Neg, vec![inner[1].clone()]));
                    }
                }
                // exp(x) - 1  =>  expm1(x)
                if let Expr::Op(RealOp::Exp, inner) = a {
                    if is_number(b, 1.0) {
                        push("expm1", op(RealOp::Expm1, vec![inner[0].clone()]));
                    }
                }
                // 1 - cos(x)  =>  2 sin(x/2)^2
                if is_number(a, 1.0) {
                    if let Expr::Op(RealOp::Cos, inner) = b {
                        let half = op(RealOp::Div, vec![inner[0].clone(), num(2.0)]);
                        let s = op(RealOp::Sin, vec![half]);
                        push(
                            "one-minus-cos",
                            op(
                                RealOp::Mul,
                                vec![num(2.0), op(RealOp::Mul, vec![s.clone(), s])],
                            ),
                        );
                    }
                }
                // log(a) - log(b)  =>  log(a / b)
                if let (Expr::Op(RealOp::Log, la), Expr::Op(RealOp::Log, lb)) = (a, b) {
                    push(
                        "log-quotient",
                        op(
                            RealOp::Log,
                            vec![op(RealOp::Div, vec![la[0].clone(), lb[0].clone()])],
                        ),
                    );
                }
                // a² - b²  =>  (a + b)(a - b)
                if let (Expr::Op(RealOp::Mul, ma), Expr::Op(RealOp::Mul, mb)) = (a, b) {
                    if structurally_equal(&ma[0], &ma[1]) && structurally_equal(&mb[0], &mb[1]) {
                        push(
                            "difference-of-squares",
                            op(
                                RealOp::Mul,
                                vec![
                                    op(RealOp::Add, vec![ma[0].clone(), mb[0].clone()]),
                                    op(RealOp::Sub, vec![ma[0].clone(), mb[0].clone()]),
                                ],
                            ),
                        );
                    }
                }
                // Conjugate trick: when either side is a square root,
                //   a - b  =>  (a² - b²) / (a + b)
                let involves_sqrt = matches!(a, Expr::Op(RealOp::Sqrt, _))
                    || matches!(b, Expr::Op(RealOp::Sqrt, _));
                if involves_sqrt {
                    let numerator = op(RealOp::Sub, vec![square_of(a), square_of(b)]);
                    let denominator = op(RealOp::Add, vec![a.clone(), b.clone()]);
                    push("conjugate", op(RealOp::Div, vec![numerator, denominator]));
                }
                // a*b - c  =>  fma(a, b, -c)
                if let Expr::Op(RealOp::Mul, m) = a {
                    push(
                        "fma-sub",
                        op(
                            RealOp::Fma,
                            vec![m[0].clone(), m[1].clone(), op(RealOp::Neg, vec![b.clone()])],
                        ),
                    );
                }
                // (a + b) - b pattern handled above; also (a + b) - a.
            }
            (RealOp::Add, [a, b]) => {
                // (a - b) + b  =>  a
                if let Expr::Op(RealOp::Sub, inner) = a {
                    if structurally_equal(&inner[1], b) {
                        push("cancel-add-sub", inner[0].clone());
                    }
                }
                // a*b + c  =>  fma(a, b, c)
                if let Expr::Op(RealOp::Mul, m) = a {
                    push(
                        "fma-add",
                        op(RealOp::Fma, vec![m[0].clone(), m[1].clone(), b.clone()]),
                    );
                }
                if let Expr::Op(RealOp::Mul, m) = b {
                    push(
                        "fma-add-rev",
                        op(RealOp::Fma, vec![m[0].clone(), m[1].clone(), a.clone()]),
                    );
                }
            }
            (RealOp::Log, [Expr::Op(RealOp::Add, inner)]) => {
                // log(1 + x)  =>  log1p(x)
                if is_number(&inner[0], 1.0) {
                    push("log1p", op(RealOp::Log1p, vec![inner[1].clone()]));
                }
                if is_number(&inner[1], 1.0) {
                    push("log1p-rev", op(RealOp::Log1p, vec![inner[0].clone()]));
                }
            }
            (RealOp::Sqrt, [Expr::Op(RealOp::Add, inner)]) => {
                // sqrt(x² + y²)  =>  hypot(x, y)
                if let (Expr::Op(RealOp::Mul, x), Expr::Op(RealOp::Mul, y)) = (&inner[0], &inner[1])
                {
                    if structurally_equal(&x[0], &x[1]) && structurally_equal(&y[0], &y[1]) {
                        push("hypot", op(RealOp::Hypot, vec![x[0].clone(), y[0].clone()]));
                    }
                }
            }
            (RealOp::Div, [a, b]) => {
                // (x² - y²)-style numerators over a sum denominator are
                // already in good shape; the useful direction here is the
                // quadratic-formula flip:  (-b + sqrt(d)) / (2a)  =>
                // the same value computed as  (2c)/( -b - sqrt(d) ) requires
                // knowing c, so instead offer the algebraically safe
                // reciprocal-of-reciprocal cleanup: (1 / (1 / x)) => x.
                if is_number(a, 1.0) {
                    if let Expr::Op(RealOp::Div, inner) = b {
                        if is_number(&inner[0], 1.0) {
                            push("reciprocal-reciprocal", inner[1].clone());
                        }
                    }
                }
                // (a*c) / c  =>  a
                if let Expr::Op(RealOp::Mul, m) = a {
                    if structurally_equal(&m[1], b) {
                        push("cancel-div", m[0].clone());
                    }
                    if structurally_equal(&m[0], b) {
                        push("cancel-div-rev", m[1].clone());
                    }
                }
            }
            // (a / b) * b  =>  a
            (RealOp::Mul, [Expr::Op(RealOp::Div, d), b]) if structurally_equal(&d[1], b) => {
                push("cancel-mul-div", d[0].clone());
            }
            _ => {}
        }
    }
    out
}

/// All rewrites obtained by applying a rule at any position of the
/// expression. Each result is a complete rewritten expression.
pub fn all_rewrites(expr: &Expr) -> Vec<Rewrite> {
    let mut out = rewrites_at_root(expr);
    match expr {
        Expr::Op(o, args) => {
            for (i, arg) in args.iter().enumerate() {
                for rw in all_rewrites(arg) {
                    let mut new_args = args.clone();
                    new_args[i] = rw.expr;
                    out.push(Rewrite {
                        rule: rw.rule,
                        expr: Expr::Op(*o, new_args),
                    });
                }
            }
        }
        Expr::If {
            cond,
            then,
            otherwise,
        } => {
            for rw in all_rewrites(then) {
                out.push(Rewrite {
                    rule: rw.rule,
                    expr: Expr::If {
                        cond: cond.clone(),
                        then: Box::new(rw.expr),
                        otherwise: otherwise.clone(),
                    },
                });
            }
            for rw in all_rewrites(otherwise) {
                out.push(Rewrite {
                    rule: rw.rule,
                    expr: Expr::If {
                        cond: cond.clone(),
                        then: then.clone(),
                        otherwise: Box::new(rw.expr),
                    },
                });
            }
        }
        Expr::Let {
            sequential,
            bindings,
            body,
        } => {
            for (i, (name, bound)) in bindings.iter().enumerate() {
                for rw in all_rewrites(bound) {
                    let mut new_bindings = bindings.clone();
                    new_bindings[i] = (name.clone(), rw.expr);
                    out.push(Rewrite {
                        rule: rw.rule,
                        expr: Expr::Let {
                            sequential: *sequential,
                            bindings: new_bindings,
                            body: body.clone(),
                        },
                    });
                }
            }
            for rw in all_rewrites(body) {
                out.push(Rewrite {
                    rule: rw.rule,
                    expr: Expr::Let {
                        sequential: *sequential,
                        bindings: bindings.clone(),
                        body: Box::new(rw.expr),
                    },
                });
            }
        }
        _ => {}
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpcore::{expr_to_string, parse_expr};

    fn rewrites_of(src: &str) -> Vec<String> {
        let expr = parse_expr(src).unwrap();
        all_rewrites(&expr)
            .into_iter()
            .map(|rw| expr_to_string(&rw.expr))
            .collect()
    }

    #[test]
    fn conjugate_fires_on_sqrt_difference() {
        let results = rewrites_of("(- (sqrt (+ x 1)) (sqrt x))");
        assert!(
            results
                .iter()
                .any(|r| r == "(/ (- (+ x 1) x) (+ (sqrt (+ x 1)) (sqrt x)))"),
            "{results:?}"
        );
    }

    #[test]
    fn cancellation_rules_fire() {
        let results = rewrites_of("(- (+ x 1) x)");
        assert!(results.iter().any(|r| r == "1"), "{results:?}");
        let results = rewrites_of("(+ (- a b) b)");
        assert!(results.iter().any(|r| r == "a"), "{results:?}");
    }

    #[test]
    fn special_function_rules_fire() {
        assert!(rewrites_of("(- (exp x) 1)")
            .iter()
            .any(|r| r == "(expm1 x)"));
        assert!(rewrites_of("(log (+ 1 x))")
            .iter()
            .any(|r| r == "(log1p x)"));
        assert!(rewrites_of("(sqrt (+ (* x x) (* y y)))")
            .iter()
            .any(|r| r == "(hypot x y)"));
        assert!(rewrites_of("(- 1 (cos x))")
            .iter()
            .any(|r| r.contains("(sin (/ x 2))")));
    }

    #[test]
    fn fma_rules_fire() {
        assert!(rewrites_of("(+ (* a b) c)")
            .iter()
            .any(|r| r == "(fma a b c)"));
        assert!(rewrites_of("(- (* a b) c)")
            .iter()
            .any(|r| r == "(fma a b (neg c))"));
    }

    #[test]
    fn rewrites_apply_below_the_root() {
        // The expm1 opportunity is nested inside a division.
        let results = rewrites_of("(/ (- (exp x) 1) x)");
        assert!(
            results.iter().any(|r| r == "(/ (expm1 x) x)"),
            "{results:?}"
        );
    }

    #[test]
    fn rewrites_apply_inside_let_and_if() {
        let results = rewrites_of("(let ((t (- (exp x) 1))) (* t 2))");
        assert!(
            results.iter().any(|r| r.contains("(expm1 x)")),
            "{results:?}"
        );
        let results = rewrites_of("(if (< x 0) (- (exp x) 1) x)");
        assert!(
            results.iter().any(|r| r.contains("(expm1 x)")),
            "{results:?}"
        );
    }

    #[test]
    fn no_rules_fire_on_plain_expressions() {
        assert!(rewrites_of("(* x 3)").is_empty());
        assert!(rewrites_of("x").is_empty());
    }

    #[test]
    fn structural_equality_distinguishes_variables() {
        let a = parse_expr("(+ x y)").unwrap();
        let b = parse_expr("(+ x y)").unwrap();
        let c = parse_expr("(+ x z)").unwrap();
        assert!(structurally_equal(&a, &b));
        assert!(!structurally_equal(&a, &c));
    }
}

//! Sampled error estimation against a high-precision ground truth.
//!
//! Herbie evaluates candidate expressions on sampled points against an
//! MPFR-based ground truth and reports the average bits of error; this
//! module does the same with [`shadowreal::BigFloat`] as the ground truth.

use fpcore::ast::FPCore;
use fpcore::eval::{eval_core, eval_f64};
use shadowreal::{bits_error, BigFloat};

/// The bits of error of the double-precision evaluation of `core` on a
/// single input, against the high-precision ground truth.
///
/// Inputs on which evaluation fails (unbound variables, runaway loops) are
/// reported as `None` so callers can skip them.
pub fn pointwise_error_bits(core: &FPCore, input: &[f64]) -> Option<f64> {
    let client = eval_f64(core, input).ok()?;
    let shadow_args: Vec<BigFloat> = input.iter().map(|&x| BigFloat::from_f64(x)).collect();
    let exact = eval_core::<BigFloat>(core, &shadow_args).ok()?;
    Some(bits_error(client, exact.to_f64()))
}

/// The average bits of error of `core` over a set of sampled inputs.
///
/// Points whose evaluation fails are skipped; if every point fails, the
/// error is reported as the maximum (64 bits), which keeps such degenerate
/// candidates from winning the search.
pub fn average_error_bits(core: &FPCore, inputs: &[Vec<f64>]) -> f64 {
    let mut total = 0.0;
    let mut counted = 0usize;
    for input in inputs {
        if let Some(err) = pointwise_error_bits(core, input) {
            total += err;
            counted += 1;
        }
    }
    if counted == 0 {
        shadowreal::MAX_ERROR_BITS
    } else {
        total / counted as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpcore::parse_core;

    #[test]
    fn accurate_expressions_have_low_average_error() {
        let core = parse_core("(FPCore (x y) (sqrt (+ (* x x) (* y y))))").unwrap();
        let inputs: Vec<Vec<f64>> = (1..50).map(|i| vec![i as f64, (i * 2) as f64]).collect();
        assert!(average_error_bits(&core, &inputs) < 2.0);
    }

    #[test]
    fn cancellation_has_high_average_error() {
        let core = parse_core("(FPCore (x) (- (sqrt (+ x 1)) (sqrt x)))").unwrap();
        let inputs: Vec<Vec<f64>> = (1..40).map(|i| vec![10f64.powi(i % 16)]).collect();
        assert!(average_error_bits(&core, &inputs) > 5.0);
    }

    #[test]
    fn pointwise_error_identifies_the_bad_region() {
        let core = parse_core("(FPCore (x) (- (+ x 1) x))").unwrap();
        assert!(pointwise_error_bits(&core, &[1.0]).unwrap() < 1.0);
        assert!(pointwise_error_bits(&core, &[1e16]).unwrap() > 40.0);
    }

    #[test]
    fn unevaluable_points_are_skipped() {
        let core = parse_core("(FPCore (n) (while (< i n) ((i 0 (+ i 1))) i))").unwrap();
        // A loop bound of infinity exhausts the budget; the point is skipped
        // and the remaining point determines the average.
        let inputs = vec![vec![f64::INFINITY], vec![3.0]];
        let err = average_error_bits(&core, &inputs);
        assert!(err < 1.0, "got {err}");
    }
}

//! The greedy improvement search.
//!
//! Starting from the original expression, each round generates every rewrite
//! at every position, scores the candidates by sampled average error against
//! the high-precision ground truth, and keeps the best candidate if it is a
//! genuine improvement. A handful of rounds suffices for the compound
//! rewrites the benchmarks need (e.g. conjugate followed by cancellation).

use crate::error::average_error_bits;
use crate::rewrite::all_rewrites;
use fpcore::ast::{Expr, FPCore};

/// Options for the improvement search.
#[derive(Clone, Debug)]
pub struct ImprovementOptions {
    /// Maximum number of greedy rounds.
    pub rounds: usize,
    /// Minimum reduction in average error (bits) for a rewrite to count as an
    /// improvement.
    pub min_improvement_bits: f64,
    /// Threshold (bits of average error) above which an expression is
    /// considered significantly erroneous — the "> 5 bits" of §8.1.
    pub significant_error_bits: f64,
}

impl Default for ImprovementOptions {
    fn default() -> Self {
        ImprovementOptions {
            rounds: 4,
            min_improvement_bits: 1.0,
            significant_error_bits: 5.0,
        }
    }
}

/// The outcome of an improvement attempt.
#[derive(Clone, Debug)]
pub struct ImprovementResult {
    /// Average error of the original expression, in bits.
    pub original_error_bits: f64,
    /// Average error of the best expression found, in bits.
    pub improved_error_bits: f64,
    /// The best expression found (the original if nothing better was found).
    pub improved_body: Expr,
    /// Names of the rules applied, in order.
    pub rules_applied: Vec<&'static str>,
    /// True when the search found a rewriting at least
    /// [`ImprovementOptions::min_improvement_bits`] more accurate.
    pub improved: bool,
}

impl ImprovementResult {
    /// True when the original expression had significant error (the paper's
    /// "> 5 bits" criterion).
    pub fn had_significant_error(&self, options: &ImprovementOptions) -> bool {
        self.original_error_bits > options.significant_error_bits
    }
}

/// Errors produced by the improvement search.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ImproveError {
    /// No sample inputs were provided.
    NoInputs,
}

impl std::fmt::Display for ImproveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImproveError::NoInputs => write!(f, "no sample inputs provided"),
        }
    }
}

impl std::error::Error for ImproveError {}

fn with_body(core: &FPCore, body: Expr) -> FPCore {
    FPCore {
        arguments: core.arguments.clone(),
        name: core.name.clone(),
        pre: core.pre.clone(),
        properties: core.properties.clone(),
        body,
    }
}

/// Attempts to improve the accuracy of a benchmark on the given sample
/// inputs.
///
/// # Errors
///
/// Returns [`ImproveError::NoInputs`] when `inputs` is empty.
pub fn improve(
    core: &FPCore,
    inputs: &[Vec<f64>],
    options: &ImprovementOptions,
) -> Result<ImprovementResult, ImproveError> {
    if inputs.is_empty() {
        return Err(ImproveError::NoInputs);
    }
    let original_error = average_error_bits(core, inputs);

    // A small beam search: some improvements (e.g. the conjugate trick) only
    // pay off after a follow-up cancellation, so purely greedy hill climbing
    // would stall on the intermediate plateau.
    type Candidate = (f64, Expr, Vec<&'static str>);
    let beam_width = 4;
    let mut beam: Vec<Candidate> = vec![(original_error, core.body.clone(), Vec::new())];
    let mut best: Candidate = beam[0].clone();

    for _ in 0..options.rounds {
        let mut candidates: Vec<Candidate> = Vec::new();
        let mut seen: std::collections::HashSet<String> = std::collections::HashSet::new();
        for (_, body, rules) in &beam {
            for rw in all_rewrites(body) {
                let printed = fpcore::expr_to_string(&rw.expr);
                if !seen.insert(printed) {
                    continue;
                }
                let err = average_error_bits(&with_body(core, rw.expr.clone()), inputs);
                let mut applied = rules.clone();
                applied.push(rw.rule);
                candidates.push((err, rw.expr, applied));
            }
        }
        if candidates.is_empty() {
            break;
        }
        candidates.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        candidates.truncate(beam_width);
        if candidates[0].0 < best.0 {
            best = candidates[0].clone();
        }
        beam = candidates;
    }

    let (best_error, best_body, rules_applied) = best;
    let improved = best_error + options.min_improvement_bits <= original_error;
    Ok(ImprovementResult {
        original_error_bits: original_error,
        improved_error_bits: if improved { best_error } else { original_error },
        improved_body: if improved {
            best_body
        } else {
            core.body.clone()
        },
        rules_applied: if improved { rules_applied } else { Vec::new() },
        improved,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampling::sample_inputs;
    use fpcore::{expr_to_string, parse_core};

    fn improve_src(src: &str, seed: u64) -> ImprovementResult {
        let core = parse_core(src).unwrap();
        let inputs = sample_inputs(&core, 150, seed).unwrap();
        improve(&core, &inputs, &ImprovementOptions::default()).unwrap()
    }

    #[test]
    fn sqrt_difference_is_improved_by_conjugate() {
        let result = improve_src(
            "(FPCore (x) :pre (<= 1 x 1e15) (- (sqrt (+ x 1)) (sqrt x)))",
            11,
        );
        assert!(result.original_error_bits > 5.0);
        assert!(result.improved, "rules applied: {:?}", result.rules_applied);
        assert!(result.improved_error_bits < result.original_error_bits - 5.0);
    }

    #[test]
    fn plotter_expression_is_improved() {
        // The §3 complex-plotter root cause: sqrt(x² + y²) − x with tiny y.
        let result = improve_src(
            "(FPCore (x y) :pre (and (<= 1e-9 x 0.25) (<= 1e-12 y 1e-9)) (- (sqrt (+ (* x x) (* y y))) x))",
            7,
        );
        assert!(result.original_error_bits > 5.0);
        assert!(result.improved, "rules applied: {:?}", result.rules_applied);
    }

    #[test]
    fn expm1_pattern_is_improved() {
        let result = improve_src("(FPCore (x) :pre (<= 1e-18 x 1e-9) (/ (- (exp x) 1) x))", 3);
        assert!(result.original_error_bits > 5.0);
        assert!(result.improved);
        assert!(expr_to_string(&result.improved_body).contains("expm1"));
    }

    #[test]
    fn accurate_expressions_are_left_alone() {
        let result = improve_src(
            "(FPCore (x y) :pre (and (<= 1 x 100) (<= 1 y 100)) (* x y))",
            5,
        );
        assert!(result.original_error_bits < 1.0);
        assert!(!result.improved);
        assert_eq!(expr_to_string(&result.improved_body), "(* x y)");
    }

    #[test]
    fn empty_inputs_are_an_error() {
        let core = parse_core("(FPCore (x) (+ x 1))").unwrap();
        assert_eq!(
            improve(&core, &[], &ImprovementOptions::default()).unwrap_err(),
            ImproveError::NoInputs
        );
    }

    #[test]
    fn one_minus_cos_is_improved() {
        let result = improve_src(
            "(FPCore (x) :pre (<= 1e-9 x 1e-4) (/ (- 1 (cos x)) (* x x)))",
            13,
        );
        assert!(
            result.original_error_bits > 5.0,
            "{}",
            result.original_error_bits
        );
        assert!(result.improved, "rules: {:?}", result.rules_applied);
    }
}

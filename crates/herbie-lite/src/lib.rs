//! A small accuracy-improvement oracle in the spirit of Herbie.
//!
//! The paper's improvability experiment (§8.1) uses Herbie as a mechanical
//! proxy for a numerical expert: a candidate root cause is a *true* root
//! cause if Herbie can detect significant error in it and produce a more
//! accurate rewriting. This crate reproduces that role with the same overall
//! architecture as Herbie — sampled input points, an MPFR-style ground truth
//! (here [`shadowreal::BigFloat`]), a database of algebraic rewrites known to
//! improve accuracy, and a greedy search — at a much smaller scale.
//!
//! It is deliberately *not* a full Herbie: it supports the rewrites needed
//! for the classic catastrophic-cancellation patterns in the FPBench
//! general-purpose suite (conjugates, `expm1`/`log1p`, `fma`, `hypot`,
//! half-angle identities, quadratic-formula flips), which is what the
//! improvability definition requires.
//!
//! # Example
//!
//! ```
//! use fpcore::parse_core;
//! use herbie_lite::{improve, sample_inputs, ImprovementOptions};
//!
//! let core = parse_core("(FPCore (x) :pre (<= 1 x 1e15) (- (sqrt (+ x 1)) (sqrt x)))").unwrap();
//! let inputs = sample_inputs(&core, 200, 42).unwrap();
//! let result = improve(&core, &inputs, &ImprovementOptions::default()).unwrap();
//! assert!(result.original_error_bits > 5.0);
//! assert!(result.improved, "conjugate rewrite should fix the cancellation");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod rewrite;
pub mod sampling;
pub mod search;

pub use error::{average_error_bits, pointwise_error_bits};
pub use sampling::{sample_inputs, SampleError};
pub use search::{improve, ImprovementOptions, ImprovementResult};

//! The abstract shadow-real interface.
//!
//! Herbgrind's analysis is defined over an abstract real-number data type
//! (§5.1 of the paper: "Herbgrind treats real computation as an abstract data
//! type and alternate strategies could easily be substituted in"). The
//! [`Real`] trait captures that interface; the analysis is generic over it so
//! that the arbitrary-precision [`crate::BigFloat`], the fast
//! [`crate::DoubleDouble`] and the trivial `f64` shadow can all be used.

use crate::{BigFloat, DoubleDouble};
use std::cmp::Ordering;
use std::fmt::Debug;

/// The widest [`RealOp`] arity. Hot paths throughout the workspace size
/// their stack operand buffers with this constant (the interpreter's inline
/// argument arrays, the analysis's borrowed-operand arrays, trace-interner
/// keys); a wider operation must bump it, which
/// [`RealOp::all`]-based tests pin.
pub const MAX_ARITY: usize = 3;

/// Identifies a floating-point operation evaluated by the shadow execution.
///
/// The set matches the FPCore operator vocabulary (which is also the set of
/// operations Herbgrind's library wrapping recognizes).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum RealOp {
    // Arithmetic
    Add,
    Sub,
    Mul,
    Div,
    Neg,
    Fabs,
    Sqrt,
    Cbrt,
    Fma,
    // Exponential / logarithmic
    Exp,
    Exp2,
    Expm1,
    Log,
    Log2,
    Log10,
    Log1p,
    Pow,
    // Trigonometric
    Sin,
    Cos,
    Tan,
    Asin,
    Acos,
    Atan,
    Atan2,
    // Hyperbolic
    Sinh,
    Cosh,
    Tanh,
    Asinh,
    Acosh,
    Atanh,
    // Combining / rounding
    Hypot,
    Fmin,
    Fmax,
    Fdim,
    Fmod,
    Floor,
    Ceil,
    Trunc,
    Round,
    Copysign,
}

impl RealOp {
    /// The number of operands the operation takes.
    pub fn arity(self) -> usize {
        use RealOp::*;
        match self {
            Neg | Fabs | Sqrt | Cbrt | Exp | Exp2 | Expm1 | Log | Log2 | Log10 | Log1p | Sin
            | Cos | Tan | Asin | Acos | Atan | Sinh | Cosh | Tanh | Asinh | Acosh | Atanh
            | Floor | Ceil | Trunc | Round => 1,
            Add | Sub | Mul | Div | Pow | Atan2 | Hypot | Fmin | Fmax | Fdim | Fmod | Copysign => 2,
            Fma => 3,
        }
    }

    /// The FPCore / C name of the operation (used in reports).
    pub fn name(self) -> &'static str {
        use RealOp::*;
        match self {
            Add => "+",
            Sub => "-",
            Mul => "*",
            Div => "/",
            Neg => "neg",
            Fabs => "fabs",
            Sqrt => "sqrt",
            Cbrt => "cbrt",
            Fma => "fma",
            Exp => "exp",
            Exp2 => "exp2",
            Expm1 => "expm1",
            Log => "log",
            Log2 => "log2",
            Log10 => "log10",
            Log1p => "log1p",
            Pow => "pow",
            Sin => "sin",
            Cos => "cos",
            Tan => "tan",
            Asin => "asin",
            Acos => "acos",
            Atan => "atan",
            Atan2 => "atan2",
            Sinh => "sinh",
            Cosh => "cosh",
            Tanh => "tanh",
            Asinh => "asinh",
            Acosh => "acosh",
            Atanh => "atanh",
            Hypot => "hypot",
            Fmin => "fmin",
            Fmax => "fmax",
            Fdim => "fdim",
            Fmod => "fmod",
            Floor => "floor",
            Ceil => "ceil",
            Trunc => "trunc",
            Round => "round",
            Copysign => "copysign",
        }
    }

    /// True for operations normally provided by the math library rather than
    /// by a hardware instruction (these are the operations Herbgrind wraps,
    /// §5.3).
    pub fn is_library_call(self) -> bool {
        use RealOp::*;
        !matches!(self, Add | Sub | Mul | Div | Neg | Fabs | Sqrt | Fma)
    }

    /// All operations, useful for exhaustive testing.
    pub fn all() -> &'static [RealOp] {
        use RealOp::*;
        &[
            Add, Sub, Mul, Div, Neg, Fabs, Sqrt, Cbrt, Fma, Exp, Exp2, Expm1, Log, Log2, Log10,
            Log1p, Pow, Sin, Cos, Tan, Asin, Acos, Atan, Atan2, Sinh, Cosh, Tanh, Asinh, Acosh,
            Atanh, Hypot, Fmin, Fmax, Fdim, Fmod, Floor, Ceil, Trunc, Round, Copysign,
        ]
    }
}

impl std::fmt::Display for RealOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A real-number shadow value.
///
/// Implementations must be able to round-trip doubles exactly and evaluate
/// every [`RealOp`]; the precision of that evaluation determines how much
/// client error the analysis can measure.
pub trait Real: Clone + Debug + Sized {
    /// Converts a double exactly into a shadow value.
    fn from_f64(x: f64) -> Self;
    /// Converts a double exactly into a shadow value carrying the given
    /// mantissa precision in bits.
    ///
    /// This is how an analysis threads its configured shadow precision
    /// through to every value it creates, instead of mutating process-global
    /// state: binary operations propagate the larger operand precision, so
    /// seeding the leaves is enough. Representations with a fixed precision
    /// (`f64`, [`DoubleDouble`]) ignore the argument.
    fn from_f64_prec(x: f64, prec: u32) -> Self {
        let _ = prec;
        Self::from_f64(x)
    }
    /// Rounds the shadow value to the nearest double.
    fn to_f64(&self) -> f64;
    /// True if the value is NaN.
    fn is_nan(&self) -> bool;
    /// Numeric comparison (None if either side is NaN).
    fn compare(&self, other: &Self) -> Option<Ordering>;
    /// Evaluates `op` on the given arguments.
    ///
    /// # Panics
    ///
    /// Panics if `args.len() != op.arity()`.
    fn apply(op: RealOp, args: &[Self]) -> Self;

    /// Evaluates `op` on borrowed arguments.
    ///
    /// The analysis hot loop holds its operands by reference (they live in
    /// the shadow slot table); this entry point lets implementations evaluate
    /// without cloning each operand first. The default clones and defers to
    /// [`Real::apply`]; the provided shadow types override it.
    ///
    /// # Panics
    ///
    /// Panics if `args.len() != op.arity()`.
    fn apply_ref(op: RealOp, args: &[&Self]) -> Self {
        let owned: Vec<Self> = args.iter().map(|a| (*a).clone()).collect();
        Self::apply(op, &owned)
    }

    /// Numeric equality through [`Real::compare`].
    fn eq_value(&self, other: &Self) -> bool {
        self.compare(other) == Some(Ordering::Equal)
    }

    /// Stable short name of this shadow representation, used to attribute
    /// telemetry op counts ("f64", "dd", "bigfloat").
    fn kind_name() -> &'static str {
        "shadow"
    }
}

/// A shadow representation that can evaluate an operation over a whole lane
/// group in one call — the hook through which the batched analysis reaches
/// the vectorized kernels.
///
/// `args` holds one `[Option<&Self>; W]` lane array per operand; lanes
/// outside `mask` may be `None` and are left untouched in `out`. The
/// contract every implementation must honor is **bit-identity with the
/// scalar path**: for each active lane, the result must be exactly what
/// [`Real::apply_ref`] would produce on that lane's operands. The default
/// implementation simply loops the scalar kernel; `f64` and
/// [`DoubleDouble`] override it with contiguous lane loops
/// ([`crate::dd_batch`]) that the compiler auto-vectorizes.
pub trait BatchReal: Real {
    /// Evaluates `op` for every lane set in `mask`, writing results into
    /// `out`.
    ///
    /// # Panics
    ///
    /// Panics if `args.len() != op.arity()`, or if an active lane is missing
    /// an operand.
    fn apply_lanes<const W: usize>(
        op: RealOp,
        args: &[[Option<&Self>; W]],
        mask: u32,
        out: &mut [Option<Self>; W],
    ) {
        assert_eq!(args.len(), op.arity(), "arity mismatch for {op}");
        for l in 0..W {
            if (mask >> l) & 1 == 0 {
                continue;
            }
            let mut refs: [&Self; MAX_ARITY] =
                [args[0][l].expect("active lane operand"); MAX_ARITY];
            for (slot, lanes) in refs.iter_mut().zip(args) {
                *slot = lanes[l].expect("active lane operand");
            }
            out[l] = Some(Self::apply_ref(op, &refs[..args.len()]));
        }
    }
}

impl Real for f64 {
    fn from_f64(x: f64) -> Self {
        x
    }
    fn to_f64(&self) -> f64 {
        *self
    }
    fn is_nan(&self) -> bool {
        f64::is_nan(*self)
    }
    fn compare(&self, other: &Self) -> Option<Ordering> {
        self.partial_cmp(other)
    }
    fn apply(op: RealOp, args: &[Self]) -> Self {
        assert_eq!(args.len(), op.arity(), "arity mismatch for {op}");
        apply_f64(op, args)
    }
    fn kind_name() -> &'static str {
        "f64"
    }
    fn apply_ref(op: RealOp, args: &[&Self]) -> Self {
        assert_eq!(args.len(), op.arity(), "arity mismatch for {op}");
        let mut buf = [0.0f64; MAX_ARITY];
        for (slot, &&a) in buf.iter_mut().zip(args) {
            *slot = a;
        }
        apply_f64(op, &buf[..args.len()])
    }
}

/// Evaluates an operation elementwise over `[f64; W]` lane arrays — the
/// lane-parallel form of [`apply_f64`], used both by the batched machine
/// interpreter (client semantics) and by the `f64` trivial shadow. The
/// hardware operations are specialized to contiguous lane loops that the
/// compiler auto-vectorizes; library calls fall back to a per-lane scalar
/// loop. Every lane is computed; per lane the result is bit-identical to
/// the scalar evaluation.
///
/// # Panics
///
/// Panics if `args.len() != op.arity()`.
pub fn apply_f64_lanes<const W: usize>(op: RealOp, args: &[[f64; W]]) -> [f64; W] {
    assert_eq!(args.len(), op.arity(), "arity mismatch for {op}");
    let mut out = [0.0f64; W];
    match (op, args) {
        (RealOp::Add, [a, b]) => {
            for l in 0..W {
                out[l] = a[l] + b[l];
            }
        }
        (RealOp::Sub, [a, b]) => {
            for l in 0..W {
                out[l] = a[l] - b[l];
            }
        }
        (RealOp::Mul, [a, b]) => {
            for l in 0..W {
                out[l] = a[l] * b[l];
            }
        }
        (RealOp::Div, [a, b]) => {
            for l in 0..W {
                out[l] = a[l] / b[l];
            }
        }
        (RealOp::Neg, [a]) => {
            for l in 0..W {
                out[l] = -a[l];
            }
        }
        (RealOp::Fabs, [a]) => {
            for l in 0..W {
                out[l] = a[l].abs();
            }
        }
        (RealOp::Sqrt, [a]) => {
            for l in 0..W {
                out[l] = a[l].sqrt();
            }
        }
        (RealOp::Fma, [a, b, c]) => {
            for l in 0..W {
                out[l] = f64::mul_add(a[l], b[l], c[l]);
            }
        }
        _ => {
            let mut lane_args = [0.0f64; MAX_ARITY];
            for (l, slot) in out.iter_mut().enumerate() {
                for (dst, lanes) in lane_args.iter_mut().zip(args) {
                    *dst = lanes[l];
                }
                *slot = apply_f64(op, &lane_args[..args.len()]);
            }
        }
    }
    out
}

/// Evaluates an operation directly in double precision (the client
/// semantics). This is also used by the interpreter for the un-instrumented
/// native execution.
pub(crate) fn apply_f64(op: RealOp, args: &[f64]) -> f64 {
    use RealOp::*;
    match op {
        Add => args[0] + args[1],
        Sub => args[0] - args[1],
        Mul => args[0] * args[1],
        Div => args[0] / args[1],
        Neg => -args[0],
        Fabs => args[0].abs(),
        Sqrt => args[0].sqrt(),
        Cbrt => args[0].cbrt(),
        Fma => f64::mul_add(args[0], args[1], args[2]),
        Exp => args[0].exp(),
        Exp2 => args[0].exp2(),
        Expm1 => args[0].exp_m1(),
        Log => args[0].ln(),
        Log2 => args[0].log2(),
        Log10 => args[0].log10(),
        Log1p => args[0].ln_1p(),
        Pow => args[0].powf(args[1]),
        Sin => args[0].sin(),
        Cos => args[0].cos(),
        Tan => args[0].tan(),
        Asin => args[0].asin(),
        Acos => args[0].acos(),
        Atan => args[0].atan(),
        Atan2 => args[0].atan2(args[1]),
        Sinh => args[0].sinh(),
        Cosh => args[0].cosh(),
        Tanh => args[0].tanh(),
        Asinh => args[0].asinh(),
        Acosh => args[0].acosh(),
        Atanh => args[0].atanh(),
        Hypot => args[0].hypot(args[1]),
        Fmin => args[0].min(args[1]),
        Fmax => args[0].max(args[1]),
        Fdim => (args[0] - args[1]).max(0.0),
        Fmod => args[0] % args[1],
        Floor => args[0].floor(),
        Ceil => args[0].ceil(),
        Trunc => args[0].trunc(),
        Round => args[0].round(),
        Copysign => args[0].copysign(args[1]),
    }
}

impl BatchReal for f64 {
    fn apply_lanes<const W: usize>(
        op: RealOp,
        args: &[[Option<&Self>; W]],
        mask: u32,
        out: &mut [Option<Self>; W],
    ) {
        assert_eq!(args.len(), op.arity(), "arity mismatch for {op}");
        let mut gathered = [[0.0f64; W]; MAX_ARITY];
        for (lanes, arg) in gathered.iter_mut().zip(args) {
            for (lane, operand) in lanes.iter_mut().zip(arg) {
                if let Some(&v) = operand {
                    *lane = v;
                }
            }
        }
        let results = apply_f64_lanes(op, &gathered[..args.len()]);
        for (l, (slot, result)) in out.iter_mut().zip(results).enumerate() {
            if (mask >> l) & 1 == 1 {
                *slot = Some(result);
            }
        }
    }
}

/// `BigFloat` lane groups run the unrolled 256-bit kernels back to back:
/// conforming lanes (both operands finite at the default four-limb
/// precision) are gathered contiguously and dispatched once per group
/// instead of once per lane ([`crate::bigfloat::lanes`]); everything else
/// — other precisions, non-finite operands, non-arithmetic operations —
/// falls back to the scalar kernels, so every lane stays bit-identical to
/// [`Real::apply_ref`].
impl BatchReal for BigFloat {
    fn apply_lanes<const W: usize>(
        op: RealOp,
        args: &[[Option<&Self>; W]],
        mask: u32,
        out: &mut [Option<Self>; W],
    ) {
        assert_eq!(args.len(), op.arity(), "arity mismatch for {op}");
        let handled = match (op, args) {
            (RealOp::Add, [a, b]) => crate::bigfloat::lanes::add_lanes(a, b, mask, out),
            (RealOp::Sub, [a, b]) => crate::bigfloat::lanes::sub_lanes(a, b, mask, out),
            (RealOp::Mul, [a, b]) => crate::bigfloat::lanes::mul_lanes(a, b, mask, out),
            (RealOp::Div, [a, b]) => crate::bigfloat::lanes::div_lanes(a, b, mask, out),
            _ => 0,
        };
        let rest = mask & !handled;
        if rest == 0 {
            return;
        }
        for l in 0..W {
            if (rest >> l) & 1 == 0 {
                continue;
            }
            let mut refs: [&Self; MAX_ARITY] =
                [args[0][l].expect("active lane operand"); MAX_ARITY];
            for (slot, lanes) in refs.iter_mut().zip(args) {
                *slot = lanes[l].expect("active lane operand");
            }
            out[l] = Some(Self::apply_ref(op, &refs[..args.len()]));
        }
    }
}

impl Real for BigFloat {
    fn from_f64(x: f64) -> Self {
        BigFloat::from_f64(x)
    }
    fn from_f64_prec(x: f64, prec: u32) -> Self {
        BigFloat::from_f64_prec(x, prec)
    }
    fn to_f64(&self) -> f64 {
        BigFloat::to_f64(self)
    }
    fn is_nan(&self) -> bool {
        BigFloat::is_nan(self)
    }
    fn compare(&self, other: &Self) -> Option<Ordering> {
        BigFloat::partial_cmp(self, other)
    }
    fn kind_name() -> &'static str {
        "bigfloat"
    }
    fn apply(op: RealOp, args: &[Self]) -> Self {
        assert!(!args.is_empty(), "arity mismatch for {op}");
        let mut refs: [&Self; MAX_ARITY] = [&args[0]; MAX_ARITY];
        for (slot, a) in refs.iter_mut().zip(args) {
            *slot = a;
        }
        Self::apply_ref(op, &refs[..args.len()])
    }
    fn apply_ref(op: RealOp, args: &[&Self]) -> Self {
        assert_eq!(args.len(), op.arity(), "arity mismatch for {op}");
        telemetry::BIGFLOAT_APPLY_OPS.incr();
        use RealOp::*;
        match op {
            Add => args[0].add(args[1]),
            Sub => args[0].sub(args[1]),
            Mul => args[0].mul(args[1]),
            Div => args[0].div(args[1]),
            Neg => args[0].neg(),
            Fabs => args[0].abs(),
            Sqrt => args[0].sqrt(),
            Cbrt => args[0].cbrt(),
            Fma => args[0].fma(args[1], args[2]),
            Exp => args[0].exp(),
            Exp2 => args[0].exp2(),
            Expm1 => args[0].expm1(),
            Log => args[0].ln(),
            Log2 => args[0].log2(),
            Log10 => args[0].log10(),
            Log1p => args[0].log1p(),
            Pow => args[0].pow(args[1]),
            Sin => args[0].sin(),
            Cos => args[0].cos(),
            Tan => args[0].tan(),
            Asin => args[0].asin(),
            Acos => args[0].acos(),
            Atan => args[0].atan(),
            Atan2 => args[0].atan2(args[1]),
            Sinh => args[0].sinh(),
            Cosh => args[0].cosh(),
            Tanh => args[0].tanh(),
            Asinh => args[0].asinh(),
            Acosh => args[0].acosh(),
            Atanh => args[0].atanh(),
            Hypot => args[0].hypot(args[1]),
            Fmin => args[0].fmin(args[1]),
            Fmax => args[0].fmax(args[1]),
            Fdim => args[0].fdim(args[1]),
            Fmod => args[0].fmod(args[1]),
            Floor => args[0].floor(),
            Ceil => args[0].ceil(),
            Trunc => args[0].trunc(),
            Round => args[0].round_nearest(),
            Copysign => args[0].copysign(args[1]),
        }
    }
}

impl BatchReal for DoubleDouble {
    fn apply_lanes<const W: usize>(
        op: RealOp,
        args: &[[Option<&Self>; W]],
        mask: u32,
        out: &mut [Option<Self>; W],
    ) {
        assert_eq!(args.len(), op.arity(), "arity mismatch for {op}");
        let mut gathered: [crate::dd_batch::DdLanes<W>; MAX_ARITY] =
            [crate::dd_batch::DdLanes::zero(); MAX_ARITY];
        for (lanes, arg) in gathered.iter_mut().zip(args) {
            for (l, operand) in arg.iter().enumerate() {
                if let Some(&v) = operand {
                    lanes.set(l, v);
                }
            }
        }
        let results = crate::dd_batch::apply(op, &gathered[..args.len()]);
        for (l, slot) in out.iter_mut().enumerate() {
            if (mask >> l) & 1 == 1 {
                *slot = Some(results.get(l));
            }
        }
    }
}

impl Real for DoubleDouble {
    fn from_f64(x: f64) -> Self {
        DoubleDouble::from_f64(x)
    }
    fn to_f64(&self) -> f64 {
        DoubleDouble::to_f64(self)
    }
    fn is_nan(&self) -> bool {
        DoubleDouble::is_nan(self)
    }
    fn compare(&self, other: &Self) -> Option<Ordering> {
        DoubleDouble::compare(self, other)
    }
    fn apply(op: RealOp, args: &[Self]) -> Self {
        assert!(!args.is_empty(), "arity mismatch for {op}");
        let mut refs: [&Self; MAX_ARITY] = [&args[0]; MAX_ARITY];
        for (slot, a) in refs.iter_mut().zip(args) {
            *slot = a;
        }
        Self::apply_ref(op, &refs[..args.len()])
    }
    fn kind_name() -> &'static str {
        "dd"
    }
    fn apply_ref(op: RealOp, args: &[&Self]) -> Self {
        assert_eq!(args.len(), op.arity(), "arity mismatch for {op}");
        use RealOp::*;
        match op {
            Add => args[0].add(args[1]),
            Sub => args[0].sub(args[1]),
            Mul => args[0].mul(args[1]),
            Div => args[0].div(args[1]),
            Neg => args[0].neg(),
            Fabs => args[0].abs(),
            Sqrt => args[0].sqrt(),
            Fma => args[0].mul(args[1]).add(args[2]),
            // Library calls go through the double-double elementary kernels:
            // accurate (≲ 2^-85 relative) for the transcendental set the
            // tiered certificates cover, the documented double-precision
            // fallback for the rest.
            _ => crate::dd_math::apply_library(op, args),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_matches_argument_shape() {
        for &op in RealOp::all() {
            assert!(op.arity() >= 1 && op.arity() <= MAX_ARITY, "{op}");
        }
        assert_eq!(RealOp::Add.arity(), 2);
        assert_eq!(RealOp::Sqrt.arity(), 1);
        assert_eq!(RealOp::Fma.arity(), 3);
        // MAX_ARITY sizes fixed operand buffers across the workspace
        // (interpreter tape, analysis operand arrays, trace-interner keys);
        // adding a wider operation must bump it, and this pin makes that
        // failure loud.
        assert_eq!(
            RealOp::all().iter().map(|op| op.arity()).max(),
            Some(MAX_ARITY)
        );
    }

    #[test]
    fn f64_real_is_identity_shadow() {
        let x = <f64 as Real>::from_f64(2.5);
        assert_eq!(x.to_f64(), 2.5);
        let sum = f64::apply(RealOp::Add, &[2.0, 3.0]);
        assert_eq!(sum, 5.0);
    }

    #[test]
    fn bigfloat_agrees_with_f64_on_exact_ops() {
        let ops_and_args: Vec<(RealOp, Vec<f64>)> = vec![
            (RealOp::Add, vec![1.5, 2.25]),
            (RealOp::Sub, vec![10.0, 3.0]),
            (RealOp::Mul, vec![3.0, 7.0]),
            (RealOp::Div, vec![1.0, 4.0]),
            (RealOp::Sqrt, vec![9.0]),
            (RealOp::Fabs, vec![-8.0]),
            (RealOp::Neg, vec![5.5]),
            (RealOp::Floor, vec![2.7]),
            (RealOp::Ceil, vec![2.2]),
            (RealOp::Fmax, vec![1.0, -2.0]),
        ];
        for (op, args) in ops_and_args {
            let expect = f64::apply(op, &args);
            let big_args: Vec<BigFloat> = args.iter().map(|&a| BigFloat::from_f64(a)).collect();
            let got = BigFloat::apply(op, &big_args).to_f64();
            assert_eq!(got, expect, "{op} on {args:?}");
        }
    }

    #[test]
    fn bigfloat_is_more_accurate_than_f64_on_cancellation() {
        // exp(1e-15) - 1 computed naively in doubles loses accuracy; the
        // shadow real keeps it.
        let x = 1e-15_f64;
        let naive = f64::apply(RealOp::Sub, &[f64::apply(RealOp::Exp, &[x]), 1.0]);
        let shadow = BigFloat::apply(
            RealOp::Sub,
            &[
                BigFloat::apply(RealOp::Exp, &[BigFloat::from_f64(x)]),
                BigFloat::from_f64(1.0),
            ],
        );
        let reference = x.exp_m1();
        let naive_err = (naive - reference).abs();
        let shadow_err = (shadow.to_f64() - reference).abs();
        assert!(shadow_err <= naive_err);
        assert!(shadow_err / reference < 1e-15);
    }

    #[test]
    fn precision_threads_through_the_trait() {
        let wide = <BigFloat as Real>::from_f64_prec(0.1, 512);
        assert_eq!(wide.precision(), 512);
        assert_eq!(wide.to_f64(), 0.1);
        // Binary operations propagate the larger operand precision, so
        // seeding the leaves determines the working precision everywhere.
        let sum = BigFloat::apply(RealOp::Add, &[wide, BigFloat::from_f64_prec(1.0, 512)]);
        assert_eq!(sum.precision(), 512);
        // Fixed-precision shadows accept and ignore the parameter.
        assert_eq!(<f64 as Real>::from_f64_prec(0.25, 512), 0.25);
        assert_eq!(DoubleDouble::from_f64_prec(0.25, 512).to_f64(), 0.25);
    }

    #[test]
    fn apply_ref_matches_apply_on_every_op() {
        for &op in RealOp::all() {
            let args_f: Vec<f64> = (0..op.arity()).map(|i| 0.5 + i as f64 * 0.25).collect();
            let by_ref = f64::apply_ref(op, &args_f.iter().collect::<Vec<_>>());
            assert_eq!(by_ref.to_bits(), f64::apply(op, &args_f).to_bits(), "{op}");

            let big: Vec<BigFloat> = args_f.iter().map(|&a| BigFloat::from_f64(a)).collect();
            let owned = BigFloat::apply(op, &big);
            let by_ref = BigFloat::apply_ref(op, &big.iter().collect::<Vec<_>>());
            assert_eq!(format!("{owned:?}"), format!("{by_ref:?}"), "{op}");

            let dd: Vec<DoubleDouble> = args_f.iter().map(|&a| DoubleDouble::from_f64(a)).collect();
            let owned = DoubleDouble::apply(op, &dd);
            let by_ref = DoubleDouble::apply_ref(op, &dd.iter().collect::<Vec<_>>());
            assert_eq!(format!("{owned:?}"), format!("{by_ref:?}"), "{op}");
        }
    }

    #[test]
    fn library_call_classification() {
        assert!(!RealOp::Add.is_library_call());
        assert!(!RealOp::Sqrt.is_library_call());
        assert!(RealOp::Sin.is_library_call());
        assert!(RealOp::Pow.is_library_call());
    }

    #[test]
    fn doubledouble_shadow_handles_basic_ops() {
        let a = DoubleDouble::from_f64(1.0e16);
        let b = DoubleDouble::from_f64(1.0);
        let r = DoubleDouble::apply(RealOp::Sub, &[DoubleDouble::apply(RealOp::Add, &[a, b]), a]);
        assert_eq!(r.to_f64(), 1.0);
    }

    #[test]
    fn nan_detection_through_trait() {
        assert!(<f64 as Real>::is_nan(&f64::NAN));
        assert!(BigFloat::apply(RealOp::Sqrt, &[BigFloat::from_f64(-1.0)]).is_nan());
        assert!(DoubleDouble::apply(RealOp::Sqrt, &[DoubleDouble::from_f64(-1.0)]).is_nan());
    }

    #[test]
    fn every_op_evaluates_on_all_three_shadows() {
        for &op in RealOp::all() {
            let args_f: Vec<f64> = (0..op.arity()).map(|i| 0.5 + i as f64 * 0.25).collect();
            let f = f64::apply(op, &args_f);
            let b = BigFloat::apply(
                op,
                &args_f
                    .iter()
                    .map(|&a| BigFloat::from_f64(a))
                    .collect::<Vec<_>>(),
            );
            let d = DoubleDouble::apply(
                op,
                &args_f
                    .iter()
                    .map(|&a| DoubleDouble::from_f64(a))
                    .collect::<Vec<_>>(),
            );
            // All three shadows must agree to double accuracy on these
            // well-conditioned arguments.
            if f.is_nan() {
                assert!(b.is_nan() && d.is_nan(), "{op}");
            } else {
                assert!(
                    (b.to_f64() - f).abs() <= f.abs() * 1e-12 + 1e-300,
                    "{op}: {} vs {f}",
                    b.to_f64()
                );
                assert!(
                    (d.to_f64() - f).abs() <= f.abs() * 1e-12 + 1e-300,
                    "{op}: {} vs {f}",
                    d.to_f64()
                );
            }
        }
    }
}

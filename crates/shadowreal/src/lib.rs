//! High-precision shadow arithmetic for floating-point error analysis.
//!
//! This crate is the substitute for the MPFR shadow values used by Herbgrind
//! ("Finding Root Causes of Floating Point Error", PLDI 2018, §5.1). The paper
//! treats the real-number computation as an abstract data type; this crate
//! provides that abstraction as the [`Real`] trait together with three
//! implementations:
//!
//! * [`BigFloat`] — an arbitrary-precision binary floating-point number with a
//!   configurable mantissa width (default 256 bits), the analogue of the
//!   paper's 1000-bit MPFR shadows. All arithmetic and elementary functions
//!   are implemented from scratch (no external bignum crate).
//! * [`DoubleDouble`] — Bailey-style double-double arithmetic (~106 bits of
//!   precision), a fast alternative shadow representation.
//! * `f64` — the trivial shadow, used by the uninstrumented baseline.
//!
//! The crate also provides the *bits of error* metric ([`bits_error`]) used
//! throughout the analysis: the base-2 logarithm of the number of
//! double-precision values between the approximate and the exact result.
//!
//! # Example
//!
//! ```
//! use shadowreal::{BigFloat, Real, bits_error};
//!
//! // (x + 1) - x loses all significance for x = 1e16 in doubles...
//! let x = 1.0e16_f64;
//! let float_result = (x + 1.0) - x; // 0.0 or 2.0, not 1.0
//!
//! // ...but the shadow real computes the true answer.
//! let sx = BigFloat::from_f64(x);
//! let shadow_result = sx.add(&BigFloat::from_f64(1.0)).sub(&sx);
//! assert_eq!(shadow_result.to_f64(), 1.0);
//!
//! // The error of the float result, measured in bits, is large.
//! assert!(bits_error(float_result, 1.0) > 50.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bits;
mod dd;
mod real;

pub mod bigfloat;
pub mod cert;
pub mod dd_batch;
pub mod dd_math;

pub use bigfloat::BigFloat;
pub use bits::{bits_error, ordinal, ulps_between, MAX_ERROR_BITS};
pub use dd::DoubleDouble;
pub use dd_batch::DdLanes;
pub use real::{apply_f64_lanes, BatchReal, Real, RealOp, MAX_ARITY};

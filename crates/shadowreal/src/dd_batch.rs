//! Lane-vectorized [`DoubleDouble`] arithmetic.
//!
//! The batched execution engine evaluates a whole lane group's shadow
//! operation in one call. [`DdLanes`] holds a group of double-doubles
//! struct-of-arrays (`hi` and `lo` lane arrays), and the kernels here apply
//! the error-free transformations elementwise over those arrays — plain
//! contiguous loops of branch-free float arithmetic that the compiler
//! auto-vectorizes.
//!
//! **Every kernel is bit-identical, per lane, to the scalar
//! [`DoubleDouble`] operation**: it executes exactly the same floating-point
//! operation sequence, and the branchy special cases of division and square
//! root (non-finite quotients, negative radicands, zero) are reproduced by
//! computing the branch-free main path for all lanes and then patching the
//! special lanes with the scalar path's exact results. The agreement tests
//! below pin this down over the full operation set, and the analysis-level
//! equivalence suite relies on it: a batched sweep with the `DoubleDouble`
//! shadow must produce the same report as the serial one.

// The kernels below intentionally index several lane arrays with one loop
// variable: each iteration is one lane of a lockstep SIMD operation, and the
// index-parallel form keeps the loops in the shape the auto-vectorizer
// recognizes while mirroring the scalar operation sequence line for line.
#![allow(clippy::needless_range_loop)]

use crate::dd::{quick_two_sum, two_prod, two_sum};
use crate::{DoubleDouble, RealOp, MAX_ARITY};

/// A lane group of double-doubles, struct-of-arrays.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DdLanes<const W: usize> {
    /// The leading components, one per lane.
    pub hi: [f64; W],
    /// The correction components, one per lane.
    pub lo: [f64; W],
}

impl<const W: usize> Default for DdLanes<W> {
    fn default() -> Self {
        DdLanes {
            hi: [0.0; W],
            lo: [0.0; W],
        }
    }
}

impl<const W: usize> DdLanes<W> {
    /// All lanes zero.
    pub fn zero() -> Self {
        Self::default()
    }

    /// Broadcasts one double-double to every lane.
    pub fn splat(value: DoubleDouble) -> Self {
        DdLanes {
            hi: [value.hi(); W],
            lo: [value.lo(); W],
        }
    }

    /// Builds a lane group from exact doubles (`lo = 0`).
    pub fn from_f64_lanes(values: &[f64; W]) -> Self {
        DdLanes {
            hi: *values,
            lo: [0.0; W],
        }
    }

    /// Gathers a lane group from scalar double-doubles.
    pub fn from_scalars(values: &[DoubleDouble; W]) -> Self {
        let mut lanes = Self::zero();
        for (l, v) in values.iter().enumerate() {
            lanes.hi[l] = v.hi();
            lanes.lo[l] = v.lo();
        }
        lanes
    }

    /// The scalar double-double in lane `l`.
    #[inline]
    pub fn get(&self, l: usize) -> DoubleDouble {
        DoubleDouble::raw(self.hi[l], self.lo[l])
    }

    /// Stores a scalar double-double into lane `l`.
    #[inline]
    pub fn set(&mut self, l: usize, value: DoubleDouble) {
        self.hi[l] = value.hi();
        self.lo[l] = value.lo();
    }

    /// Scatters the lanes to scalar double-doubles.
    pub fn to_scalars(&self) -> [DoubleDouble; W] {
        std::array::from_fn(|l| self.get(l))
    }
}

/// Lane-wise addition (the scalar `add` per lane).
pub fn add<const W: usize>(a: &DdLanes<W>, b: &DdLanes<W>) -> DdLanes<W> {
    let mut out = DdLanes::zero();
    for l in 0..W {
        let (s, e) = two_sum(a.hi[l], b.hi[l]);
        let e = e + a.lo[l] + b.lo[l];
        let (hi, lo) = quick_two_sum(s, e);
        out.hi[l] = hi;
        out.lo[l] = lo;
    }
    out
}

/// Lane-wise negation.
pub fn neg<const W: usize>(a: &DdLanes<W>) -> DdLanes<W> {
    let mut out = DdLanes::zero();
    for l in 0..W {
        out.hi[l] = -a.hi[l];
        out.lo[l] = -a.lo[l];
    }
    out
}

/// Lane-wise subtraction (the scalar `sub` is `add` of the negation).
pub fn sub<const W: usize>(a: &DdLanes<W>, b: &DdLanes<W>) -> DdLanes<W> {
    add(a, &neg(b))
}

/// Lane-wise absolute value (the scalar sign test per lane).
pub fn abs<const W: usize>(a: &DdLanes<W>) -> DdLanes<W> {
    let mut out = *a;
    for l in 0..W {
        if a.hi[l] < 0.0 || (a.hi[l] == 0.0 && a.lo[l] < 0.0) {
            out.hi[l] = -a.hi[l];
            out.lo[l] = -a.lo[l];
        }
    }
    out
}

/// Lane-wise multiplication (the scalar `mul` per lane).
pub fn mul<const W: usize>(a: &DdLanes<W>, b: &DdLanes<W>) -> DdLanes<W> {
    let mut out = DdLanes::zero();
    for l in 0..W {
        let (p, e) = two_prod(a.hi[l], b.hi[l]);
        let e = e + a.hi[l] * b.lo[l] + a.lo[l] * b.hi[l];
        let (hi, lo) = quick_two_sum(p, e);
        out.hi[l] = hi;
        out.lo[l] = lo;
    }
    out
}

/// Lane-wise division: the scalar three-quotient refinement is computed
/// branch-free for every lane, then lanes whose first quotient is
/// non-finite are patched with the scalar early return (`from_f64(q1)`).
pub fn div<const W: usize>(a: &DdLanes<W>, b: &DdLanes<W>) -> DdLanes<W> {
    let mut q1 = [0.0f64; W];
    for l in 0..W {
        q1[l] = a.hi[l] / b.hi[l];
    }
    // r = a - q1 * b; q2 = r.hi / b.hi; r2 = r - q2 * b; q3 = r2.hi / b.hi —
    // built from the lane kernels above, so each lane performs exactly the
    // scalar operation sequence.
    let q1_dd = DdLanes {
        hi: q1,
        lo: [0.0; W],
    };
    let r = sub(a, &mul(b, &q1_dd));
    let mut q2 = [0.0f64; W];
    for l in 0..W {
        q2[l] = r.hi[l] / b.hi[l];
    }
    let q2_dd = DdLanes {
        hi: q2,
        lo: [0.0; W],
    };
    let r2 = sub(&r, &mul(b, &q2_dd));
    let mut out = DdLanes::zero();
    for l in 0..W {
        let q3 = r2.hi[l] / b.hi[l];
        let (hi, lo) = quick_two_sum(q1[l], q2[l]);
        let (s, e) = two_sum(hi, lo + q3);
        out.hi[l] = s;
        out.lo[l] = e;
    }
    for l in 0..W {
        if !q1[l].is_finite() {
            out.hi[l] = q1[l];
            out.lo[l] = 0.0;
        }
    }
    out
}

/// Lane-wise square root: one Newton step on the double approximation for
/// every lane, then the scalar special cases (non-finite approximation,
/// negative radicand, exact zero) patched in the scalar path's order.
pub fn sqrt<const W: usize>(a: &DdLanes<W>) -> DdLanes<W> {
    let mut approx = [0.0f64; W];
    for l in 0..W {
        approx[l] = a.hi[l].sqrt();
    }
    let x = DdLanes {
        hi: approx,
        lo: [0.0; W],
    };
    let diff = sub(a, &mul(&x, &x));
    let mut twice = [0.0f64; W];
    for l in 0..W {
        twice[l] = 2.0 * approx[l];
    }
    let correction = div(
        &diff,
        &DdLanes {
            hi: twice,
            lo: [0.0; W],
        },
    );
    let mut out = add(&x, &correction);
    for l in 0..W {
        if !approx[l].is_finite() {
            out.hi[l] = approx[l];
            out.lo[l] = 0.0;
        }
        if a.hi[l] < 0.0 {
            out.hi[l] = f64::NAN;
            out.lo[l] = 0.0;
        }
        if a.hi[l] == 0.0 && a.lo[l] == 0.0 {
            out.hi[l] = 0.0;
            out.lo[l] = 0.0;
        }
    }
    out
}

/// Evaluates any [`RealOp`] lane-wise, exactly as the scalar
/// `DoubleDouble::apply_ref` does per lane: native double-double kernels for
/// the hardware operations, and the documented double-precision fallback for
/// library calls.
pub fn apply<const W: usize>(op: RealOp, args: &[DdLanes<W>]) -> DdLanes<W> {
    assert_eq!(args.len(), op.arity(), "arity mismatch for {op}");
    match (op, args) {
        (RealOp::Add, [a, b]) => add(a, b),
        (RealOp::Sub, [a, b]) => sub(a, b),
        (RealOp::Mul, [a, b]) => mul(a, b),
        (RealOp::Div, [a, b]) => div(a, b),
        (RealOp::Neg, [a]) => neg(a),
        (RealOp::Fabs, [a]) => abs(a),
        (RealOp::Sqrt, [a]) => sqrt(a),
        (RealOp::Fma, [a, b, c]) => add(&mul(a, b), c),
        _ => {
            // Library calls loop the scalar double-double kernel per lane —
            // the same function the scalar `apply_ref` fallback calls, so
            // per-lane bit-identity holds by construction.
            let mut out = DdLanes::zero();
            let mut lane_args = [DoubleDouble::ZERO; MAX_ARITY];
            for l in 0..W {
                for (slot, lanes) in lane_args.iter_mut().zip(args) {
                    *slot = lanes.get(l);
                }
                let refs: [&DoubleDouble; MAX_ARITY] =
                    [&lane_args[0], &lane_args[1], &lane_args[2]];
                out.set(l, crate::dd_math::apply_library(op, &refs[..args.len()]));
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Real;

    const W: usize = 8;

    /// Per-lane operand sets that hit ordinary values, cancellation,
    /// non-finite quotients, negative radicands, signed zeros, and NaN.
    fn operand_grid() -> Vec<DoubleDouble> {
        let mut values = vec![
            DoubleDouble::ZERO,
            DoubleDouble::from_f64(-0.0),
            DoubleDouble::ONE,
            DoubleDouble::from_f64(-1.0),
            DoubleDouble::from_f64(3.5),
            DoubleDouble::from_f64(1.0e16).add(&DoubleDouble::ONE),
            DoubleDouble::from_f64(1.0e-300),
            DoubleDouble::from_f64(f64::INFINITY),
            DoubleDouble::from_f64(f64::NEG_INFINITY),
            DoubleDouble::from_f64(f64::NAN),
            DoubleDouble::from_f64(1.0).div(&DoubleDouble::from_f64(3.0)),
            DoubleDouble::from_parts(2.0, -1.1e-17),
        ];
        for i in 1..6 {
            values.push(DoubleDouble::from_f64(0.1 * i as f64));
            values.push(DoubleDouble::from_f64(-7.3 * i as f64));
        }
        values
    }

    fn assert_lane_bits(expected: DoubleDouble, got: DoubleDouble, what: &str) {
        assert_eq!(
            (expected.hi().to_bits(), expected.lo().to_bits()),
            (got.hi().to_bits(), got.lo().to_bits()),
            "{what}: scalar {expected:?} vs lanes {got:?}"
        );
    }

    #[test]
    fn every_op_is_bit_identical_to_scalar_per_lane() {
        let grid = operand_grid();
        for &op in RealOp::all() {
            // Slide a window over the grid so every lane sees different
            // operands, including the special values.
            for offset in 0..grid.len() {
                let pick = |k: usize, l: usize| grid[(offset + k * 3 + l) % grid.len()];
                let args: Vec<[DoubleDouble; W]> = (0..op.arity())
                    .map(|k| std::array::from_fn(|l| pick(k, l)))
                    .collect();
                let lanes_args: Vec<DdLanes<W>> = args.iter().map(DdLanes::from_scalars).collect();
                let got = apply(op, &lanes_args);
                for l in 0..W {
                    let scalar_args: Vec<DoubleDouble> = args.iter().map(|a| a[l]).collect();
                    let expected = DoubleDouble::apply(op, &scalar_args);
                    let got_l = got.get(l);
                    if expected.is_nan() {
                        assert!(got_l.is_nan(), "{op} lane {l}: {expected:?} vs {got_l:?}");
                    } else {
                        assert_lane_bits(expected, got_l, &format!("{op} lane {l}"));
                    }
                }
            }
        }
    }

    #[test]
    fn division_special_lanes_match_scalar_early_returns() {
        // Lane 0: ordinary, lane 1: divide by zero, lane 2: NaN numerator,
        // lane 3: infinite denominator.
        let a = DdLanes::<4>::from_scalars(&[
            DoubleDouble::ONE,
            DoubleDouble::ONE,
            DoubleDouble::from_f64(f64::NAN),
            DoubleDouble::from_f64(5.0),
        ]);
        let b = DdLanes::<4>::from_scalars(&[
            DoubleDouble::from_f64(3.0),
            DoubleDouble::ZERO,
            DoubleDouble::ONE,
            DoubleDouble::from_f64(f64::INFINITY),
        ]);
        let q = div(&a, &b);
        assert_eq!(q.get(0).to_f64(), 1.0 / 3.0);
        assert!(q.get(1).hi().is_infinite());
        assert!(q.get(2).is_nan());
        // A finite value over infinity takes the scalar's *full* path (the
        // first quotient 0.0 is finite), so the lane must reproduce whatever
        // the scalar refinement produces — not a patched early return.
        let scalar = DoubleDouble::from_f64(5.0).div(&DoubleDouble::from_f64(f64::INFINITY));
        if scalar.is_nan() {
            assert!(q.get(3).is_nan());
        } else {
            assert_lane_bits(scalar, q.get(3), "5/inf");
        }
    }

    #[test]
    fn sqrt_special_lanes_match_scalar() {
        let a = DdLanes::<4>::from_scalars(&[
            DoubleDouble::from_f64(2.0),
            DoubleDouble::ZERO,
            DoubleDouble::from_f64(-4.0),
            DoubleDouble::from_f64(f64::INFINITY),
        ]);
        let r = sqrt(&a);
        assert_lane_bits(DoubleDouble::from_f64(2.0).sqrt(), r.get(0), "sqrt(2)");
        assert_eq!((r.get(1).hi(), r.get(1).lo()), (0.0, 0.0));
        assert!(r.get(2).is_nan());
        assert!(r.get(3).hi().is_infinite());
    }

    #[test]
    fn soa_gather_scatter_roundtrips() {
        let values: [DoubleDouble; 3] = [
            DoubleDouble::from_parts(1.0, 1e-20),
            DoubleDouble::from_f64(-2.5),
            DoubleDouble::ZERO,
        ];
        let lanes = DdLanes::from_scalars(&values);
        assert_eq!(lanes.to_scalars(), values);
        let mut other = DdLanes::<3>::splat(DoubleDouble::ONE);
        other.set(1, values[0]);
        assert_eq!(other.get(0), DoubleDouble::ONE);
        assert_eq!(other.get(1), values[0]);
        assert_eq!(
            DdLanes::<2>::from_f64_lanes(&[4.0, 9.0]).get(1).to_f64(),
            9.0
        );
    }

    #[test]
    fn vectorized_lanes_capture_cancellation() {
        // (1e16 + 1) - 1e16 == 1 in every lane.
        let big = DdLanes::<W>::splat(DoubleDouble::from_f64(1.0e16));
        let one = DdLanes::<W>::splat(DoubleDouble::ONE);
        let r = sub(&add(&big, &one), &big);
        for l in 0..W {
            assert_eq!(r.get(l).to_f64(), 1.0, "lane {l}");
        }
    }
}

//! Low-level helpers on little-endian limb buffers, and the small-buffer
//! storage they live in.
//!
//! A limb buffer represents an unsigned integer as base-2^64 digits stored
//! least-significant first. The [`super::BigFloat`] mantissa is such a buffer
//! normalized so that the most-significant bit of the last limb is set.
//!
//! Storage is the [`SmallBuf`] type: up to `N` limbs live inline on the
//! stack, longer buffers fall back to the heap. Two instantiations are used:
//!
//! * [`Limbs`] (`N = 6`) holds stored mantissas — precisions up to 384 bits
//!   never touch the allocator, covering the default 256 plus the widened
//!   working precision (`prec + 64`) the transcendental kernels run at;
//! * [`Scratch`] (`N = 16`) holds the working windows of the arithmetic
//!   kernels — the widened addition window (`limbs + 1`), the full product
//!   (`a.len() + b.len()`), and the Newton division/sqrt windows stay on
//!   the stack for operands up to the widened default precision.
//!
//! All kernels operate in place on `&mut [u64]` slices so the same code
//! serves both representations; none of them allocate.

use std::ops::{Deref, DerefMut};

/// Number of limbs stored inline in a mantissa: 6 limbs = 384 bits, the
/// default shadow precision (256) plus the `prec + 64` guard width the
/// transcendental kernels work at.
pub(crate) const INLINE_LIMBS: usize = 6;

/// Number of limbs stored inline in a scratch window (covers the addition
/// window, the double-width product, and the Newton division/sqrt windows
/// at default precision with room to spare for mixed-precision operands).
pub(crate) const SCRATCH_LIMBS: usize = 16;

/// A limb buffer with inline storage for up to `N` limbs and heap fallback
/// above.
#[derive(Clone)]
pub(crate) enum SmallBuf<const N: usize> {
    /// `len` limbs stored inline; only `buf[..len]` is meaningful.
    Inline { len: u8, buf: [u64; N] },
    /// Heap fallback for buffers longer than `N` limbs.
    Heap(Vec<u64>),
}

/// Stored mantissa limbs: inline for precisions up to 384 bits.
pub(crate) type Limbs = SmallBuf<INLINE_LIMBS>;

/// Scratch working window for the arithmetic kernels.
pub(crate) type Scratch = SmallBuf<SCRATCH_LIMBS>;

/// Test-support switch (debug builds only): force every new buffer onto the
/// heap so the inline and heap code paths can be compared bit for bit at the
/// same precision. See [`super::set_force_heap_limbs`].
#[cfg(debug_assertions)]
pub(crate) static FORCE_HEAP: std::sync::atomic::AtomicBool =
    std::sync::atomic::AtomicBool::new(false);

#[inline]
fn use_heap(len: usize, inline_capacity: usize) -> bool {
    #[cfg(debug_assertions)]
    if FORCE_HEAP.load(std::sync::atomic::Ordering::Relaxed) {
        return true;
    }
    len > inline_capacity
}

impl<const N: usize> SmallBuf<N> {
    /// A zero-filled buffer of `len` limbs.
    #[inline]
    pub(crate) fn zeroed(len: usize) -> Self {
        if use_heap(len, N) {
            SmallBuf::Heap(vec![0u64; len])
        } else {
            SmallBuf::Inline {
                len: len as u8,
                buf: [0u64; N],
            }
        }
    }

    /// A buffer holding a copy of `src`.
    #[inline]
    pub(crate) fn from_slice(src: &[u64]) -> Self {
        let mut out = Self::zeroed(src.len());
        out.as_mut_slice().copy_from_slice(src);
        out
    }

    /// The limbs as a slice, least-significant first.
    #[inline]
    pub(crate) fn as_slice(&self) -> &[u64] {
        match self {
            SmallBuf::Inline { len, buf } => &buf[..*len as usize],
            SmallBuf::Heap(v) => v,
        }
    }

    /// The limbs as a mutable slice.
    #[inline]
    pub(crate) fn as_mut_slice(&mut self) -> &mut [u64] {
        match self {
            SmallBuf::Inline { len, buf } => &mut buf[..*len as usize],
            SmallBuf::Heap(v) => v,
        }
    }

    /// True if this buffer lives on the heap (used by the representation
    /// tests; sharing the name with `Vec` would be misleading).
    #[cfg(test)]
    pub(crate) fn is_heap(&self) -> bool {
        matches!(self, SmallBuf::Heap(_))
    }
}

impl<const N: usize> Deref for SmallBuf<N> {
    type Target = [u64];
    #[inline]
    fn deref(&self) -> &[u64] {
        self.as_slice()
    }
}

impl<const N: usize> DerefMut for SmallBuf<N> {
    #[inline]
    fn deref_mut(&mut self) -> &mut [u64] {
        self.as_mut_slice()
    }
}

impl<const N: usize> std::fmt::Debug for SmallBuf<N> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Render as the bare limb list so `Finite`'s debug output is
        // representation-independent (inline and heap print identically).
        std::fmt::Debug::fmt(self.as_slice(), f)
    }
}

/// Compares two equal-length limb slices as unsigned integers.
#[inline]
pub(crate) fn cmp(a: &[u64], b: &[u64]) -> std::cmp::Ordering {
    debug_assert_eq!(a.len(), b.len());
    for i in (0..a.len()).rev() {
        match a[i].cmp(&b[i]) {
            std::cmp::Ordering::Equal => continue,
            ord => return ord,
        }
    }
    std::cmp::Ordering::Equal
}

/// Compares two top-aligned fraction buffers of possibly different lengths:
/// both are normalized mantissas (value = 0.limbs), so the comparison walks
/// from the most-significant limb down, treating missing low limbs as zero.
#[inline]
pub(crate) fn cmp_top_aligned(a: &[u64], b: &[u64]) -> std::cmp::Ordering {
    let n = a.len().max(b.len());
    for i in 0..n {
        let ai = if i < a.len() { a[a.len() - 1 - i] } else { 0 };
        let bi = if i < b.len() { b[b.len() - 1 - i] } else { 0 };
        match ai.cmp(&bi) {
            std::cmp::Ordering::Equal => continue,
            ord => return ord,
        }
    }
    std::cmp::Ordering::Equal
}

/// Adds `b` into `a` in place; both must have the same length. Returns the
/// carry out of the top limb. (The addition kernel now uses the fused
/// [`add_shifted_into`]; this remains as the reference implementation the
/// unit tests check the fused pass against.)
#[cfg(test)]
pub(crate) fn add_in_place(a: &mut [u64], b: &[u64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let mut carry = false;
    for i in 0..a.len() {
        let (s1, c1) = a[i].overflowing_add(b[i]);
        let (s2, c2) = s1.overflowing_add(carry as u64);
        a[i] = s2;
        carry = c1 || c2;
    }
    carry
}

/// Subtracts `b` from `a` in place (`a >= b` as integers); both must have the
/// same length.
#[inline]
pub(crate) fn sub_in_place(a: &mut [u64], b: &[u64]) {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_ne!(cmp(a, b), std::cmp::Ordering::Less);
    let mut borrow = false;
    for i in 0..a.len() {
        let (d1, b1) = a[i].overflowing_sub(b[i]);
        let (d2, b2) = d1.overflowing_sub(borrow as u64);
        a[i] = d2;
        borrow = b1 || b2;
    }
    debug_assert!(!borrow);
}

/// Adds `1 << bit` to the buffer in place; returns the carry out of the top.
#[inline]
pub(crate) fn add_bit_in_place(a: &mut [u64], bit: u32) -> bool {
    let limb = (bit / 64) as usize;
    let offset = bit % 64;
    if limb >= a.len() {
        return false;
    }
    let (s, mut carry) = a[limb].overflowing_add(1u64 << offset);
    a[limb] = s;
    let mut i = limb + 1;
    while carry && i < a.len() {
        let (s, c) = a[i].overflowing_add(1);
        a[i] = s;
        carry = c;
        i += 1;
    }
    carry
}

/// Shifts the buffer right by `bits` in place (towards less significant),
/// returning `true` if any nonzero bit was shifted out.
#[inline]
pub(crate) fn shr_in_place(a: &mut [u64], bits: u64) -> bool {
    let len = a.len();
    if bits == 0 {
        return false;
    }
    if bits >= (len as u64) * 64 {
        let sticky = a.iter().any(|&l| l != 0);
        a.iter_mut().for_each(|l| *l = 0);
        return sticky;
    }
    let limb_shift = (bits / 64) as usize;
    let bit_shift = (bits % 64) as u32;
    let mut sticky = a[..limb_shift].iter().any(|&l| l != 0);
    if bit_shift > 0 {
        sticky |= limb_shift < len && (a[limb_shift] << (64 - bit_shift)) != 0;
    }
    for i in 0..len {
        let src = i + limb_shift;
        let low = if src < len { a[src] } else { 0 };
        let high = if src + 1 < len { a[src + 1] } else { 0 };
        a[i] = if bit_shift == 0 {
            low
        } else {
            (low >> bit_shift) | (high << (64 - bit_shift))
        };
    }
    sticky
}

/// Shifts the buffer left by `bits` in place (towards more significant). The
/// caller must guarantee that no set bit is shifted out the top.
#[inline]
pub(crate) fn shl_in_place(a: &mut [u64], bits: u64) {
    let len = a.len();
    if bits == 0 || len == 0 {
        return;
    }
    debug_assert!(bits < (len as u64) * 64 || a.iter().all(|&l| l == 0));
    let limb_shift = (bits / 64) as usize;
    let bit_shift = (bits % 64) as u32;
    for i in (0..len).rev() {
        let src = i as isize - limb_shift as isize;
        let low = if src >= 0 { a[src as usize] } else { 0 };
        let lower = if src >= 1 { a[(src - 1) as usize] } else { 0 };
        a[i] = if bit_shift == 0 {
            low
        } else {
            (low << bit_shift) | (lower >> (64 - bit_shift))
        };
    }
}

/// Number of leading zero bits, counting from the most-significant bit of the
/// last limb. Returns `len * 64` for an all-zero buffer.
#[inline]
pub(crate) fn leading_zeros(a: &[u64]) -> u64 {
    let mut zeros = 0u64;
    for &limb in a.iter().rev() {
        if limb == 0 {
            zeros += 64;
        } else {
            zeros += limb.leading_zeros() as u64;
            break;
        }
    }
    zeros
}

/// True if every limb is zero.
#[inline]
pub(crate) fn is_zero(a: &[u64]) -> bool {
    a.iter().all(|&l| l == 0)
}

/// Adds `src` — top-aligned to the `dst` window and shifted right by `bits` —
/// into `dst` in place, fusing the widen/shift/add passes of the addition
/// kernel into one loop. Returns `(sticky, carry)`: `sticky` is true if any
/// nonzero bit was shifted out the bottom of the window, `carry` is the carry
/// out of the top limb.
#[inline]
pub(crate) fn add_shifted_into(dst: &mut [u64], src: &[u64], bits: u64) -> (bool, bool) {
    let wl = dst.len();
    debug_assert!(src.len() <= wl);
    let off = wl - src.len();
    // Window-limb accessor for the top-aligned source (low limbs are zero).
    let sw = |j: usize| -> u64 {
        if j >= off && j < wl {
            src[j - off]
        } else {
            0
        }
    };
    if bits >= (wl as u64) * 64 {
        return (!is_zero(src), false);
    }
    let limb_shift = (bits / 64) as usize;
    let bit_shift = (bits % 64) as u32;
    let mut sticky = (0..limb_shift).any(|j| sw(j) != 0);
    if bit_shift > 0 {
        sticky |= sw(limb_shift) << (64 - bit_shift) != 0;
    }
    let mut carry = false;
    for (i, d) in dst.iter_mut().enumerate() {
        let shifted = if bit_shift == 0 {
            sw(i + limb_shift)
        } else {
            (sw(i + limb_shift) >> bit_shift) | (sw(i + limb_shift + 1) << (64 - bit_shift))
        };
        let (s1, c1) = d.overflowing_add(shifted);
        let (s2, c2) = s1.overflowing_add(carry as u64);
        *d = s2;
        carry = c1 || c2;
    }
    (sticky, carry)
}

/// Two's-complement negation in place:
/// `a = (2^(64·len) − a) mod 2^(64·len)`.
#[inline]
pub(crate) fn negate_in_place(a: &mut [u64]) {
    let mut carry = true;
    for limb in a.iter_mut() {
        let (v, c) = (!*limb).overflowing_add(carry as u64);
        *limb = v;
        carry = c;
    }
}

/// Adds `src` into `dst` starting at limb `offset`, propagating the carry
/// through the rest of `dst`. Returns the carry out of the top (callers on
/// two's-complement buffers let it wrap; others assert it clear).
#[inline]
pub(crate) fn add_at(dst: &mut [u64], src: &[u64], offset: usize) -> bool {
    debug_assert!(offset + src.len() <= dst.len());
    let mut carry = false;
    for (d, &s) in dst[offset..].iter_mut().zip(src) {
        let (v1, c1) = d.overflowing_add(s);
        let (v2, c2) = v1.overflowing_add(carry as u64);
        *d = v2;
        carry = c1 || c2;
    }
    for d in dst[offset + src.len()..].iter_mut() {
        if !carry {
            break;
        }
        let (v, c) = d.overflowing_add(1);
        *d = v;
        carry = c;
    }
    carry
}

/// Subtracts `src` from `dst` starting at limb `offset`, propagating the
/// borrow through the rest of `dst`. Returns the borrow out of the top
/// (on two's-complement buffers a set borrow just wraps the sign).
#[inline]
pub(crate) fn sub_at(dst: &mut [u64], src: &[u64], offset: usize) -> bool {
    debug_assert!(offset + src.len() <= dst.len());
    let mut borrow = false;
    for (d, &s) in dst[offset..].iter_mut().zip(src) {
        let (v1, b1) = d.overflowing_sub(s);
        let (v2, b2) = v1.overflowing_sub(borrow as u64);
        *d = v2;
        borrow = b1 || b2;
    }
    for d in dst[offset + src.len()..].iter_mut() {
        if !borrow {
            break;
        }
        let (v, b) = d.overflowing_sub(1);
        *d = v;
        borrow = b;
    }
    borrow
}

/// Subtracts `q · src` from `acc` limb-wise (`acc.len() == src.len()`),
/// returning the borrow word out of the top — the schoolbook division
/// inner step. The borrow word cannot overflow: the per-limb high product
/// is at most 2^64 − 2, leaving room for the subtraction borrow.
#[inline]
pub(crate) fn submul_1(acc: &mut [u64], src: &[u64], q: u64) -> u64 {
    debug_assert_eq!(acc.len(), src.len());
    let mut borrow = 0u64;
    for (a, &s) in acc.iter_mut().zip(src) {
        let p = (q as u128) * (s as u128) + borrow as u128;
        let (v, under) = a.overflowing_sub(p as u64);
        *a = v;
        borrow = (p >> 64) as u64 + under as u64;
    }
    borrow
}

/// Shifts left by `bits` (must be < 64) in place, discarding anything
/// shifted out the top — unlike [`shl_in_place`], which forbids overflow.
/// Used on fraction windows where the integer part is dropped by design.
#[inline]
pub(crate) fn shl_small_wrapping(a: &mut [u64], bits: u32) {
    debug_assert!(bits < 64);
    if bits == 0 {
        return;
    }
    let mut carry = 0u64;
    for limb in a.iter_mut() {
        let new = (*limb << bits) | carry;
        carry = *limb >> (64 - bits);
        *limb = new;
    }
}

/// Full product of two limb buffers, written into `out`, which must be
/// exactly `a.len() + b.len()` limbs long. Column-wise (comba) accumulation:
/// each output limb is written exactly once, and carries propagate through a
/// 192-bit running accumulator instead of per-row read-modify-write sweeps.
///
/// Small square operand counts — covering the default 256-bit mantissas
/// and the widened `prec + 64` working precision of the transcendental
/// kernels — are dispatched to const-size instantiations the compiler
/// fully unrolls.
#[inline]
pub(crate) fn mul_into(out: &mut [u64], a: &[u64], b: &[u64]) {
    if a.len() == b.len() {
        match a.len() {
            1 => return mul_comba::<1>(out, a, b),
            2 => return mul_comba::<2>(out, a, b),
            3 => return mul_comba::<3>(out, a, b),
            4 => return mul_comba::<4>(out, a, b),
            5 => return mul_comba::<5>(out, a, b),
            6 => return mul_comba::<6>(out, a, b),
            _ => {}
        }
    }
    mul_comba_dyn(out, a, b);
}

/// Truncated product: computes only the comba columns `cut ..
/// a.len() + b.len()` of `a × b`, writing them into `out` (which must be
/// exactly `a.len() + b.len() - cut` limbs). Partial products entirely
/// below column `cut` are skipped, so the result can fall short of the
/// true top columns by up to `min(a.len(), b.len()) + 1` units of column
/// `cut` (the carries the skipped columns would have propagated up).
/// Callers keep ≥ 2 guard limbs below the bits they consume, which makes
/// the shortfall irrelevant next to their own fixup step.
#[inline]
pub(crate) fn mul_trunc_into(out: &mut [u64], a: &[u64], b: &[u64], cut: usize) {
    debug_assert_eq!(out.len() + cut, a.len() + b.len());
    let mut acc_lo: u128 = 0;
    let mut acc_hi: u64 = 0;
    for (o, col) in out.iter_mut().zip(cut..) {
        let i_min = col.saturating_sub(b.len() - 1);
        let i_max = (col + 1).min(a.len());
        for i in i_min..i_max {
            let p = (a[i] as u128) * (b[col - i] as u128);
            let (sum, overflowed) = acc_lo.overflowing_add(p);
            acc_lo = sum;
            acc_hi += overflowed as u64;
        }
        *o = acc_lo as u64;
        acc_lo = (acc_lo >> 64) | ((acc_hi as u128) << 64);
        acc_hi = 0;
    }
}

/// Comba multiplication with a compile-time operand size (both operands `N`
/// limbs); bit-identical to [`mul_comba_dyn`].
#[inline]
pub(crate) fn mul_comba<const N: usize>(out: &mut [u64], a: &[u64], b: &[u64]) {
    debug_assert_eq!(out.len(), 2 * N);
    let a: &[u64; N] = a.try_into().expect("operand size");
    let b: &[u64; N] = b.try_into().expect("operand size");
    let mut acc_lo: u128 = 0;
    let mut acc_hi: u64 = 0;
    for col in 0..2 * N {
        let i_min = col.saturating_sub(N - 1);
        let i_max = (col + 1).min(N);
        for i in i_min..i_max {
            let p = (a[i] as u128) * (b[col - i] as u128);
            let (sum, overflowed) = acc_lo.overflowing_add(p);
            acc_lo = sum;
            acc_hi += overflowed as u64;
        }
        out[col] = acc_lo as u64;
        acc_lo = (acc_lo >> 64) | ((acc_hi as u128) << 64);
        acc_hi = 0;
    }
    debug_assert_eq!(acc_lo, 0);
}

#[inline]
fn mul_comba_dyn(out: &mut [u64], a: &[u64], b: &[u64]) {
    debug_assert_eq!(out.len(), a.len() + b.len());
    // Row-major schoolbook: each a-limb row is multiply-accumulated into
    // `out` with a single carry word. Shorter dependency chains than a
    // column-comba accumulator for the small asymmetric shapes the
    // Newton kernels produce.
    let (row0, rest) = out.split_at_mut(b.len());
    let mut carry = 0u64;
    let a0 = a[0];
    for (o, &bj) in row0.iter_mut().zip(b) {
        let p = (a0 as u128) * (bj as u128) + carry as u128;
        *o = p as u64;
        carry = (p >> 64) as u64;
    }
    rest[0] = carry;
    for (i, &ai) in a.iter().enumerate().skip(1) {
        let mut carry = 0u64;
        let row = &mut out[i..i + b.len() + 1];
        let (acc, top) = row.split_at_mut(b.len());
        for (o, &bj) in acc.iter_mut().zip(b) {
            let p = (ai as u128) * (bj as u128) + *o as u128 + carry as u128;
            *o = p as u64;
            carry = (p >> 64) as u64;
        }
        top[0] = carry;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mul(a: &[u64], b: &[u64]) -> Vec<u64> {
        let mut out = vec![0u64; a.len() + b.len()];
        mul_into(&mut out, a, b);
        out
    }

    #[test]
    fn add_and_sub_roundtrip() {
        let a = vec![u64::MAX, 1, 7];
        let b = vec![3, u64::MAX, 0];
        let mut s = a.clone();
        let carry = add_in_place(&mut s, &b);
        assert!(!carry);
        sub_in_place(&mut s, &b);
        assert_eq!(s, a);
    }

    #[test]
    fn add_produces_carry_out() {
        let mut a = vec![u64::MAX, u64::MAX];
        let carry = add_in_place(&mut a, &[1, 0]);
        assert!(carry);
        assert_eq!(a, vec![0, 0]);
    }

    #[test]
    fn shift_right_collects_sticky() {
        let mut a = vec![0b1011u64, 0];
        let sticky = shr_in_place(&mut a, 2);
        assert!(sticky);
        assert_eq!(a[0], 0b10);
        let mut b = vec![0b1000u64, 0];
        let sticky = shr_in_place(&mut b, 2);
        assert!(!sticky);
        assert_eq!(b[0], 0b10);
    }

    #[test]
    fn shift_right_by_more_than_width_zeroes_vector() {
        let mut a = vec![5u64, 9];
        let sticky = shr_in_place(&mut a, 1000);
        assert!(sticky);
        assert!(is_zero(&a));
    }

    #[test]
    fn shift_left_then_right_roundtrips() {
        let original = vec![0xDEAD_BEEFu64, 0x1234, 0];
        let mut a = original.clone();
        shl_in_place(&mut a, 70);
        let sticky = shr_in_place(&mut a, 70);
        assert!(!sticky);
        assert_eq!(a, original);
    }

    #[test]
    fn leading_zeros_counts_from_top() {
        assert_eq!(leading_zeros(&[0, 0]), 128);
        assert_eq!(leading_zeros(&[1, 0]), 127);
        assert_eq!(leading_zeros(&[0, 1u64 << 63]), 0);
        assert_eq!(leading_zeros(&[0, 1]), 63);
    }

    #[test]
    fn schoolbook_multiplication_matches_u128() {
        let a = 0xFFFF_FFFF_FFFF_FFFFu64;
        let b = 0x1234_5678_9ABC_DEF0u64;
        let prod = mul(&[a], &[b]);
        let expect = (a as u128) * (b as u128);
        assert_eq!(prod[0], expect as u64);
        assert_eq!(prod[1], (expect >> 64) as u64);
    }

    #[test]
    fn add_bit_carries_through() {
        let mut a = vec![u64::MAX, 0];
        let carry = add_bit_in_place(&mut a, 0);
        assert!(!carry);
        assert_eq!(a, vec![0, 1]);
    }

    #[test]
    fn compare_orders_by_most_significant_limb() {
        assert_eq!(cmp(&[5, 1], &[9, 0]), std::cmp::Ordering::Greater);
        assert_eq!(cmp(&[5, 1], &[5, 1]), std::cmp::Ordering::Equal);
        assert_eq!(cmp(&[0, 1], &[1, 1]), std::cmp::Ordering::Less);
    }

    #[test]
    fn top_aligned_compare_pads_the_low_side() {
        // [hi] vs [lo, hi]: equal tops, the longer buffer has a nonzero low
        // limb, so it is greater.
        assert_eq!(
            cmp_top_aligned(&[1u64 << 63], &[7, 1u64 << 63]),
            std::cmp::Ordering::Less
        );
        assert_eq!(
            cmp_top_aligned(&[0, 1u64 << 63], &[1u64 << 63]),
            std::cmp::Ordering::Equal
        );
        assert_eq!(
            cmp_top_aligned(&[3, 2], &[4, 1]),
            std::cmp::Ordering::Greater
        );
    }

    #[test]
    fn small_buf_switches_to_heap_above_capacity() {
        let inline = Limbs::zeroed(INLINE_LIMBS);
        assert!(!inline.is_heap());
        assert_eq!(inline.len(), INLINE_LIMBS);
        let heap = Limbs::zeroed(INLINE_LIMBS + 1);
        assert!(heap.is_heap());
        assert_eq!(heap.len(), INLINE_LIMBS + 1);
        let copied = Limbs::from_slice(&[1, 2, 3]);
        assert_eq!(copied.as_slice(), &[1, 2, 3]);
        assert!(!copied.is_heap());
    }

    #[test]
    fn small_buf_debug_is_representation_independent() {
        let inline = Limbs::from_slice(&[1, 2]);
        let heap = Limbs::Heap(vec![1, 2]);
        assert_eq!(format!("{inline:?}"), format!("{heap:?}"));
    }
}

//! Low-level helpers on little-endian limb vectors.
//!
//! A limb vector represents an unsigned integer as base-2^64 digits stored
//! least-significant first. The [`super::BigFloat`] mantissa is such a vector
//! normalized so that the most-significant bit of the last limb is set.

/// Compares two equal-length limb vectors as unsigned integers.
pub(crate) fn cmp(a: &[u64], b: &[u64]) -> std::cmp::Ordering {
    debug_assert_eq!(a.len(), b.len());
    for i in (0..a.len()).rev() {
        match a[i].cmp(&b[i]) {
            std::cmp::Ordering::Equal => continue,
            ord => return ord,
        }
    }
    std::cmp::Ordering::Equal
}

/// Adds `b` into `a` in place; both must have the same length. Returns the
/// carry out of the top limb.
pub(crate) fn add_in_place(a: &mut [u64], b: &[u64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let mut carry = false;
    for i in 0..a.len() {
        let (s1, c1) = a[i].overflowing_add(b[i]);
        let (s2, c2) = s1.overflowing_add(carry as u64);
        a[i] = s2;
        carry = c1 || c2;
    }
    carry
}

/// Subtracts `b` from `a` in place (`a >= b` as integers); both must have the
/// same length.
pub(crate) fn sub_in_place(a: &mut [u64], b: &[u64]) {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_ne!(cmp(a, b), std::cmp::Ordering::Less);
    let mut borrow = false;
    for i in 0..a.len() {
        let (d1, b1) = a[i].overflowing_sub(b[i]);
        let (d2, b2) = d1.overflowing_sub(borrow as u64);
        a[i] = d2;
        borrow = b1 || b2;
    }
    debug_assert!(!borrow);
}

/// Adds `1 << bit` to the vector in place; returns the carry out of the top.
pub(crate) fn add_bit_in_place(a: &mut [u64], bit: u32) -> bool {
    let limb = (bit / 64) as usize;
    let offset = bit % 64;
    if limb >= a.len() {
        return false;
    }
    let (s, mut carry) = a[limb].overflowing_add(1u64 << offset);
    a[limb] = s;
    let mut i = limb + 1;
    while carry && i < a.len() {
        let (s, c) = a[i].overflowing_add(1);
        a[i] = s;
        carry = c;
        i += 1;
    }
    carry
}

/// Shifts the vector right by `bits` in place (towards less significant),
/// returning `true` if any nonzero bit was shifted out.
pub(crate) fn shr_in_place(a: &mut [u64], bits: u64) -> bool {
    let len = a.len();
    if bits == 0 {
        return false;
    }
    if bits >= (len as u64) * 64 {
        let sticky = a.iter().any(|&l| l != 0);
        a.iter_mut().for_each(|l| *l = 0);
        return sticky;
    }
    let limb_shift = (bits / 64) as usize;
    let bit_shift = (bits % 64) as u32;
    let mut sticky = a[..limb_shift].iter().any(|&l| l != 0);
    if bit_shift > 0 {
        sticky |= limb_shift < len && (a[limb_shift] << (64 - bit_shift)) != 0;
    }
    for i in 0..len {
        let src = i + limb_shift;
        let low = if src < len { a[src] } else { 0 };
        let high = if src + 1 < len { a[src + 1] } else { 0 };
        a[i] = if bit_shift == 0 {
            low
        } else {
            (low >> bit_shift) | (high << (64 - bit_shift))
        };
    }
    sticky
}

/// Shifts the vector left by `bits` in place (towards more significant). The
/// caller must guarantee that no set bit is shifted out the top.
pub(crate) fn shl_in_place(a: &mut [u64], bits: u64) {
    let len = a.len();
    if bits == 0 || len == 0 {
        return;
    }
    debug_assert!(bits < (len as u64) * 64 || a.iter().all(|&l| l == 0));
    let limb_shift = (bits / 64) as usize;
    let bit_shift = (bits % 64) as u32;
    for i in (0..len).rev() {
        let src = i as isize - limb_shift as isize;
        let low = if src >= 0 { a[src as usize] } else { 0 };
        let lower = if src >= 1 { a[(src - 1) as usize] } else { 0 };
        a[i] = if bit_shift == 0 {
            low
        } else {
            (low << bit_shift) | (lower >> (64 - bit_shift))
        };
    }
}

/// Number of leading zero bits, counting from the most-significant bit of the
/// last limb. Returns `len * 64` for an all-zero vector.
pub(crate) fn leading_zeros(a: &[u64]) -> u64 {
    let mut zeros = 0u64;
    for &limb in a.iter().rev() {
        if limb == 0 {
            zeros += 64;
        } else {
            zeros += limb.leading_zeros() as u64;
            break;
        }
    }
    zeros
}

/// True if every limb is zero.
pub(crate) fn is_zero(a: &[u64]) -> bool {
    a.iter().all(|&l| l == 0)
}

/// Full schoolbook product of two limb vectors; the result has
/// `a.len() + b.len()` limbs.
pub(crate) fn mul(a: &[u64], b: &[u64]) -> Vec<u64> {
    let mut out = vec![0u64; a.len() + b.len()];
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 {
            continue;
        }
        let mut carry = 0u128;
        for (j, &bj) in b.iter().enumerate() {
            let cur = out[i + j] as u128 + (ai as u128) * (bj as u128) + carry;
            out[i + j] = cur as u64;
            carry = cur >> 64;
        }
        let mut k = i + b.len();
        while carry > 0 {
            let cur = out[k] as u128 + carry;
            out[k] = cur as u64;
            carry = cur >> 64;
            k += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_sub_roundtrip() {
        let a = vec![u64::MAX, 1, 7];
        let b = vec![3, u64::MAX, 0];
        let mut s = a.clone();
        let carry = add_in_place(&mut s, &b);
        assert!(!carry);
        sub_in_place(&mut s, &b);
        assert_eq!(s, a);
    }

    #[test]
    fn add_produces_carry_out() {
        let mut a = vec![u64::MAX, u64::MAX];
        let carry = add_in_place(&mut a, &[1, 0]);
        assert!(carry);
        assert_eq!(a, vec![0, 0]);
    }

    #[test]
    fn shift_right_collects_sticky() {
        let mut a = vec![0b1011u64, 0];
        let sticky = shr_in_place(&mut a, 2);
        assert!(sticky);
        assert_eq!(a[0], 0b10);
        let mut b = vec![0b1000u64, 0];
        let sticky = shr_in_place(&mut b, 2);
        assert!(!sticky);
        assert_eq!(b[0], 0b10);
    }

    #[test]
    fn shift_right_by_more_than_width_zeroes_vector() {
        let mut a = vec![5u64, 9];
        let sticky = shr_in_place(&mut a, 1000);
        assert!(sticky);
        assert!(is_zero(&a));
    }

    #[test]
    fn shift_left_then_right_roundtrips() {
        let original = vec![0xDEAD_BEEFu64, 0x1234, 0];
        let mut a = original.clone();
        shl_in_place(&mut a, 70);
        let sticky = shr_in_place(&mut a, 70);
        assert!(!sticky);
        assert_eq!(a, original);
    }

    #[test]
    fn leading_zeros_counts_from_top() {
        assert_eq!(leading_zeros(&[0, 0]), 128);
        assert_eq!(leading_zeros(&[1, 0]), 127);
        assert_eq!(leading_zeros(&[0, 1u64 << 63]), 0);
        assert_eq!(leading_zeros(&[0, 1]), 63);
    }

    #[test]
    fn schoolbook_multiplication_matches_u128() {
        let a = 0xFFFF_FFFF_FFFF_FFFFu64;
        let b = 0x1234_5678_9ABC_DEF0u64;
        let prod = mul(&[a], &[b]);
        let expect = (a as u128) * (b as u128);
        assert_eq!(prod[0], expect as u64);
        assert_eq!(prod[1], (expect >> 64) as u64);
    }

    #[test]
    fn add_bit_carries_through() {
        let mut a = vec![u64::MAX, 0];
        let carry = add_bit_in_place(&mut a, 0);
        assert!(!carry);
        assert_eq!(a, vec![0, 1]);
    }

    #[test]
    fn compare_orders_by_most_significant_limb() {
        assert_eq!(cmp(&[5, 1], &[9, 0]), std::cmp::Ordering::Greater);
        assert_eq!(cmp(&[5, 1], &[5, 1]), std::cmp::Ordering::Equal);
        assert_eq!(cmp(&[0, 1], &[1, 1]), std::cmp::Ordering::Less);
    }
}

//! Elementary functions on [`BigFloat`].
//!
//! Herbgrind wraps calls to the math library (`sin`, `exp`, ...) and
//! evaluates them directly on the shadow reals (§5.3 of the paper). This
//! module provides those evaluations: argument reduction plus Taylor /
//! atanh-style series, computed with 64 guard bits and faithfully rounded to
//! the working precision. Constants (π, ln 2, √½) are computed on demand and
//! cached per precision.
//!
//! Allocation audit (this module is part of the shadow hot path): with the
//! inline-limb mantissa representation, every temporary at or below 256 bits
//! — including the per-iteration `from_i64` series coefficients — lives on
//! the stack. The series accumulators (`term`, `power`, `sum`) are moved,
//! not cloned, across iterations, so the only heap traffic in a series
//! evaluation is the mantissas wider than four limbs created at the
//! `work = prec + 64` guard precision.

use super::{fast_paths_enabled, BigFloat, Finite, Repr, MAX_PRECISION, MIN_PRECISION};
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

// The constant caches recover from lock poisoning instead of propagating
// it: entries are idempotent inserts of deterministic values, so a cache
// abandoned mid-update by a panicking run is still valid, and one
// quarantined input must not poison the shadow arithmetic for the rest of
// a fault-isolated sweep.
fn pi_cache() -> &'static Mutex<HashMap<u32, BigFloat>> {
    static CACHE: OnceLock<Mutex<HashMap<u32, BigFloat>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

fn ln2_cache() -> &'static Mutex<HashMap<u32, BigFloat>> {
    static CACHE: OnceLock<Mutex<HashMap<u32, BigFloat>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// √½ at the given precision, cached: `ln` needs it for range reduction on
/// every call, and recomputing it runs a full Newton square root each time.
fn sqrt_half(prec: u32) -> BigFloat {
    static CACHE: OnceLock<Mutex<HashMap<u32, BigFloat>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(v) = cache
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .get(&prec)
    {
        telemetry::BIGFLOAT_CONST_CACHE_HITS.incr();
        return v.clone();
    }
    telemetry::BIGFLOAT_CONST_CACHE_MISSES.incr();
    let v = BigFloat::from_f64_prec(0.5, prec).sqrt();
    cache
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .insert(prec, v.clone());
    v
}

/// arctan(1/x) for a small positive integer x, by the Gregory series.
fn atan_recip_int(x: i64, prec: u32) -> BigFloat {
    let work = prec + 32;
    let xb = BigFloat::from_i64(x).with_precision(work);
    let xsq = xb.mul(&xb);
    let mut term = BigFloat::one().with_precision(work).div(&xb);
    let mut sum = term.clone();
    let mut k: i64 = 1;
    loop {
        term = term.div(&xsq);
        let contrib = term.div(&BigFloat::from_i64(2 * k + 1));
        let next = if k % 2 == 1 {
            sum.sub(&contrib)
        } else {
            sum.add(&contrib)
        };
        if converged(&next, &contrib, work) {
            return next.with_precision(prec);
        }
        sum = next;
        k += 1;
    }
}

fn two_over_pi_cache() -> &'static Mutex<HashMap<u32, BigFloat>> {
    static CACHE: OnceLock<Mutex<HashMap<u32, BigFloat>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// 2/π at the given precision, cached: the Payne–Hanek trig reduction
/// reads a bit window out of it for every large argument.
fn two_over_pi(prec: u32) -> BigFloat {
    if let Some(v) = two_over_pi_cache()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .get(&prec)
    {
        telemetry::BIGFLOAT_CONST_CACHE_HITS.incr();
        return v.clone();
    }
    telemetry::BIGFLOAT_CONST_CACHE_MISSES.incr();
    let v = BigFloat::from_i64(2)
        .with_precision(prec)
        .div(&BigFloat::pi(prec));
    two_over_pi_cache()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .insert(prec, v.clone());
    v
}

/// Guard bits kept on top of a term's contributing window when its
/// evaluation precision is staged down (see [`SeriesArg`]).
const STAGE_GUARD: u32 = 96;

/// Staged working precision for a series argument (`r`, `x²`, ...).
///
/// In a Taylor/atanh series evaluated at `work` bits, a term whose leading
/// bit sits `below` bits under the running sum only contributes its top
/// `work − below` bits to the result — evaluating it at full guard width
/// wastes quadratic multiply work on bits the final rounding never sees.
/// Each term is therefore demoted to the narrowest 64-bit-aligned rung that
/// still covers its contributing window plus [`STAGE_GUARD`] bits (the
/// re-rounding of the argument is linear in the mantissa, noise next to the
/// multiply it narrows). The staging is part of the fast-path surface: with
/// `set_disable_fast_paths` every term runs at full width and the loops
/// below replay the historical evaluation order bit for bit.
struct SeriesArg<'a> {
    x: &'a BigFloat,
    work: u32,
    staged: bool,
}

impl<'a> SeriesArg<'a> {
    fn new(x: &'a BigFloat, work: u32) -> Self {
        SeriesArg {
            x,
            work,
            staged: fast_paths_enabled(),
        }
    }

    /// The stage precision for a term sitting `below` bits under the
    /// running sum.
    fn prec_at(&self, below: i64) -> u32 {
        let needed = (self.work as i64 + STAGE_GUARD as i64 - below).max(128) as u32;
        self.work - 64 * ((self.work.saturating_sub(needed)) / 64)
    }

    /// Demotes a series accumulator and pairs it with an argument copy at
    /// the matching stage precision; the full-width path passes both
    /// through untouched.
    fn stage(&self, term: BigFloat, below: i64) -> (BigFloat, BigFloat) {
        let sp = self.prec_at(below);
        if self.staged && term.precision() > sp {
            (term.with_precision(sp), self.x.with_precision(sp))
        } else {
            (term, self.x.clone())
        }
    }

    /// An integer series coefficient: [`MIN_PRECISION`] on the staged path
    /// (so a narrow term is not promoted back up by the division), the
    /// historical `from_i64` default precision otherwise.
    fn int(&self, k: i64) -> BigFloat {
        let c = BigFloat::from_i64(k);
        if self.staged {
            c.with_precision(MIN_PRECISION)
        } else {
            c
        }
    }
}

/// Bits the leading edge of `term` sits below the leading edge of `sum`.
fn bits_below(sum: &BigFloat, term: &BigFloat) -> i64 {
    match (sum.exponent(), term.exponent()) {
        (Some(s), Some(t)) => (s - t).max(0),
        _ => 0,
    }
}

/// True when `delta` is negligible relative to `total` at `work` bits.
fn converged(total: &BigFloat, delta: &BigFloat, work: u32) -> bool {
    if delta.is_zero() {
        return true;
    }
    match (total.exponent(), delta.exponent()) {
        (Some(te), Some(de)) => de < te - work as i64 - 4,
        _ => false,
    }
}

impl BigFloat {
    /// π at the given precision (cached).
    pub fn pi(prec: u32) -> BigFloat {
        let prec = prec.min(MAX_PRECISION);
        if let Some(v) = pi_cache()
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(&prec)
        {
            telemetry::BIGFLOAT_CONST_CACHE_HITS.incr();
            return v.clone();
        }
        telemetry::BIGFLOAT_CONST_CACHE_MISSES.incr();
        // Machin's formula: π = 16·atan(1/5) − 4·atan(1/239).
        let work = prec + 32;
        let a = atan_recip_int(5, work).mul(&BigFloat::from_i64(16));
        let b = atan_recip_int(239, work).mul(&BigFloat::from_i64(4));
        let pi = a.sub(&b).with_precision(prec);
        pi_cache()
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .insert(prec, pi.clone());
        pi
    }

    /// ln 2 at the given precision (cached).
    pub fn ln2(prec: u32) -> BigFloat {
        let prec = prec.min(MAX_PRECISION);
        if let Some(v) = ln2_cache()
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(&prec)
        {
            telemetry::BIGFLOAT_CONST_CACHE_HITS.incr();
            return v.clone();
        }
        telemetry::BIGFLOAT_CONST_CACHE_MISSES.incr();
        // ln 2 = 2·atanh(1/3) = 2·(1/3 + (1/3)³/3 + (1/3)⁵/5 + ...)
        let work = prec + 32;
        let third = BigFloat::one()
            .with_precision(work)
            .div(&BigFloat::from_i64(3));
        let t2 = third.mul(&third);
        let mut power = third.clone();
        let mut sum = third.clone();
        let mut k: i64 = 1;
        loop {
            power = power.mul(&t2);
            let contrib = power.div(&BigFloat::from_i64(2 * k + 1));
            let next = sum.add(&contrib);
            if converged(&next, &contrib, work) {
                let result = next.mul(&BigFloat::from_i64(2)).with_precision(prec);
                ln2_cache()
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .insert(prec, result.clone());
                return result;
            }
            sum = next;
            k += 1;
        }
    }

    /// Euler's number e at the given precision.
    pub fn e(prec: u32) -> BigFloat {
        BigFloat::one().with_precision(prec).exp()
    }

    fn work_prec(&self) -> u32 {
        (self.precision() + 64).min(MAX_PRECISION)
    }

    /// Adds `delta` to the binary exponent (multiplies by 2^delta).
    fn scale_exp(&self, delta: i64) -> BigFloat {
        match &self.repr {
            Repr::Finite(f) => BigFloat {
                repr: Repr::Finite(Finite {
                    exp: f.exp.saturating_add(delta),
                    ..f.clone()
                }),
            },
            _ => self.clone(),
        }
    }

    /// The exponential function e^x.
    pub fn exp(&self) -> BigFloat {
        let prec = self.precision();
        match &self.repr {
            Repr::Nan { .. } => BigFloat::nan_at(prec),
            Repr::Zero { .. } => BigFloat::one().with_precision(prec),
            Repr::Inf { neg: false, .. } => BigFloat::inf_at(false, prec),
            Repr::Inf { neg: true, .. } => BigFloat::zero_at(false, prec),
            Repr::Finite(f) => {
                // Guard against astronomically large arguments whose result
                // exponent would not fit in an i64.
                if f.exp > 62 {
                    return if f.neg {
                        BigFloat::zero_at(false, prec)
                    } else {
                        BigFloat::inf_at(false, prec)
                    };
                }
                let work = self.work_prec();
                let ln2 = BigFloat::ln2(work);
                let x = self.with_precision(work);
                let n = x.div(&ln2).round_nearest().to_f64() as i64;
                let nb = BigFloat::from_i64(n).with_precision(work);
                let r = x.sub(&nb.mul(&ln2));
                // Taylor series for exp(r), |r| ≲ ln2/2, with staged
                // working precision as the terms shrink.
                let args = SeriesArg::new(&r, work);
                let mut term = BigFloat::one().with_precision(work);
                let mut sum = term.clone();
                let mut k: i64 = 1;
                loop {
                    let below = bits_below(&sum, &term);
                    let (t, rs) = args.stage(term, below);
                    term = t.mul(&rs).div(&args.int(k));
                    let next = sum.add(&term);
                    if converged(&next, &term, work) {
                        return next.scale_exp(n).with_precision(prec);
                    }
                    sum = next;
                    k += 1;
                }
            }
        }
    }

    /// The natural logarithm ln(x); NaN for negative input, −∞ at zero.
    pub fn ln(&self) -> BigFloat {
        let prec = self.precision();
        match &self.repr {
            Repr::Nan { .. } => BigFloat::nan_at(prec),
            Repr::Zero { .. } => BigFloat::inf_at(true, prec),
            Repr::Inf { neg: false, .. } => BigFloat::inf_at(false, prec),
            Repr::Inf { neg: true, .. } => BigFloat::nan_at(prec),
            Repr::Finite(f) if f.neg => BigFloat::nan_at(prec),
            Repr::Finite(f) => {
                let work = self.work_prec();
                // Reduce to m·2^k with m in [√½, √2).
                let mut k = f.exp;
                let mut m = self.with_precision(work).scale_exp(-f.exp);
                let sqrt_half = sqrt_half(work);
                if m.partial_cmp(&sqrt_half) == Some(std::cmp::Ordering::Less) {
                    m = m.scale_exp(1);
                    k -= 1;
                }
                // ln m = 2·atanh(t), t = (m−1)/(m+1), |t| ≤ 0.172.
                let one = BigFloat::one().with_precision(work);
                let t = m.sub(&one).div(&m.add(&one));
                let ln_m = t.atanh_series(work).mul(&BigFloat::from_i64(2));
                let kb = BigFloat::from_i64(k).with_precision(work);
                kb.mul(&BigFloat::ln2(work)).add(&ln_m).with_precision(prec)
            }
        }
    }

    /// Base-2 logarithm.
    pub fn log2(&self) -> BigFloat {
        let prec = self.precision();
        let work = self.work_prec();
        self.with_precision(work)
            .ln()
            .div(&BigFloat::ln2(work))
            .with_precision(prec)
    }

    /// Base-10 logarithm.
    pub fn log10(&self) -> BigFloat {
        let prec = self.precision();
        let work = self.work_prec();
        let ln10 = BigFloat::from_i64(10).with_precision(work).ln();
        self.with_precision(work)
            .ln()
            .div(&ln10)
            .with_precision(prec)
    }

    /// 2^x.
    pub fn exp2(&self) -> BigFloat {
        let prec = self.precision();
        let work = self.work_prec();
        self.with_precision(work)
            .mul(&BigFloat::ln2(work))
            .exp()
            .with_precision(prec)
    }

    /// e^x − 1, accurate for small x.
    pub fn expm1(&self) -> BigFloat {
        let prec = self.precision();
        match &self.repr {
            Repr::Nan { .. } => BigFloat::nan_at(prec),
            Repr::Zero { neg, .. } => BigFloat::zero_at(*neg, prec),
            Repr::Inf { neg: false, .. } => BigFloat::inf_at(false, prec),
            Repr::Inf { neg: true, .. } => BigFloat::from_i64(-1).with_precision(prec),
            Repr::Finite(f) => {
                if f.exp < -4 {
                    // Direct Taylor series avoids cancellation: x + x²/2! + ...
                    let work = self.work_prec();
                    let x = self.with_precision(work);
                    let mut term = x.clone();
                    let mut sum = x.clone();
                    let mut k: i64 = 2;
                    loop {
                        term = term.mul(&x).div(&BigFloat::from_i64(k));
                        let next = sum.add(&term);
                        if converged(&next, &term, work) {
                            return next.with_precision(prec);
                        }
                        sum = next;
                        k += 1;
                    }
                }
                self.exp().sub(&BigFloat::one()).with_precision(prec)
            }
        }
    }

    /// ln(1 + x), accurate for small x.
    pub fn log1p(&self) -> BigFloat {
        let prec = self.precision();
        let one = BigFloat::one().with_precision(prec);
        match &self.repr {
            Repr::Nan { .. } => BigFloat::nan_at(prec),
            Repr::Zero { neg, .. } => BigFloat::zero_at(*neg, prec),
            Repr::Finite(f) if f.exp < -4 => {
                // ln(1+x) = 2·atanh(x / (2+x)).
                let work = self.work_prec();
                let x = self.with_precision(work);
                let t = x.div(&x.add(&BigFloat::from_i64(2)));
                t.atanh_series(work)
                    .mul(&BigFloat::from_i64(2))
                    .with_precision(prec)
            }
            _ => self.add(&one).ln().with_precision(prec),
        }
    }

    /// atanh by direct series; requires |self| well below 1.
    fn atanh_series(&self, work: u32) -> BigFloat {
        let t = self.with_precision(work);
        let t2 = t.mul(&t);
        let args = SeriesArg::new(&t2, work);
        let mut power = t.clone();
        let mut sum = t.clone();
        let mut i: i64 = 1;
        loop {
            let below = bits_below(&sum, &power);
            let (p, ts) = args.stage(power, below);
            power = p.mul(&ts);
            let contrib = power.div(&args.int(2 * i + 1));
            let next = sum.add(&contrib);
            if converged(&next, &contrib, work) || contrib.is_zero() {
                return next;
            }
            sum = next;
            i += 1;
        }
    }

    /// Reduces the argument modulo π/2, returning the remainder (|r| ≤ π/4)
    /// and the quadrant (0..=3).
    fn trig_reduce(&self, work: u32) -> (BigFloat, u8) {
        if let Some(red) = self.trig_reduce_payne_hanek(work) {
            return red;
        }
        let exp_extra = self.exponent().unwrap_or(0).max(0) as u32;
        let red_work = (work + exp_extra + 16).min(MAX_PRECISION);
        let pi = BigFloat::pi(red_work);
        let half_pi = pi.scale_exp(-1);
        let x = self.with_precision(red_work);
        let n = x.div(&half_pi).round_nearest();
        let r = x.sub(&n.mul(&half_pi)).with_precision(work);
        let q = n.fmod(&BigFloat::from_i64(4)).to_f64() as i64;
        let q = ((q % 4) + 4) % 4;
        (r, q as u8)
    }

    /// Payne–Hanek reduction for large arguments: instead of dividing by
    /// π/2 at `work + exponent` bits, reads a fixed-width window out of a
    /// cached 2/π.
    ///
    /// Writing `x = f·2^e` with an `mb`-bit mantissa, every bit of 2/π of
    /// weight `2^−j` with `j ≤ e − mb − 2` multiplies `x` into an exact
    /// multiple of 4 — irrelevant to both the quadrant (`n mod 4`) and the
    /// remainder. Only a window of `mb + work + O(guard)` bits of 2/π below
    /// that line ever matters, so the reduction cost stops growing with the
    /// exponent. Returns `None` (falling back to the plain reduction) for
    /// small arguments, where the window would not drop anything, and for
    /// exponents so large the cached constant cannot cover the window.
    fn trig_reduce_payne_hanek(&self, work: u32) -> Option<(BigFloat, u8)> {
        if !fast_paths_enabled() {
            return None;
        }
        let f = match &self.repr {
            Repr::Finite(f) => f,
            _ => return None,
        };
        let mb = 64 * f.limbs.len() as i64;
        // High bits of 2/π with weight ≥ 2^−drop contribute multiples of 4.
        let drop = f.exp - mb - 2;
        if drop < 1 {
            return None;
        }
        let window = (mb as u32 + work + 160).min(MAX_PRECISION);
        // Round the constant's precision up to a coarse grid so repeated
        // reductions at nearby exponents share a cache entry.
        let cprec = (drop as u64 + window as u64).next_multiple_of(2048);
        if cprec > MAX_PRECISION as u64 {
            return None;
        }
        let c = two_over_pi(cprec as u32);
        // m = 2/π with the irrelevant high bits sliced off: frac(2/π·2^drop)
        // rescaled, then narrowed to the window.
        let shifted = c.scale_exp(drop);
        let m = shifted
            .sub(&shifted.trunc())
            .scale_exp(-drop)
            .with_precision(window);
        // p = x·m carries n mod 4 in its integer part (|p| < 2^(mb+3)) and
        // the reduced fraction below the point.
        let p = self.with_precision(window).mul(&m);
        let n = p.round_nearest();
        let frac = p.sub(&n).with_precision((work + 32).min(MAX_PRECISION));
        let q = n.fmod(&BigFloat::from_i64(4)).to_f64() as i64;
        let q = ((q % 4) + 4) % 4;
        let half_pi = BigFloat::pi((work + 32).min(MAX_PRECISION)).scale_exp(-1);
        let r = frac.mul(&half_pi).with_precision(work);
        Some((r, q as u8))
    }

    /// Taylor series for sine, valid for small arguments.
    fn sin_series(&self, work: u32) -> BigFloat {
        let x = self.with_precision(work);
        let x2 = x.mul(&x);
        let args = SeriesArg::new(&x2, work);
        let mut term = x.clone();
        let mut sum = x.clone();
        let mut k: i64 = 1;
        loop {
            // term_{k+1} = -term_k * x² / ((2k)(2k+1))
            let below = bits_below(&sum, &term);
            let (t, xs) = args.stage(term, below);
            term = t.mul(&xs).div(&args.int(2 * k * (2 * k + 1))).neg();
            let next = sum.add(&term);
            if converged(&next, &term, work) || term.is_zero() {
                return next;
            }
            sum = next;
            k += 1;
        }
    }

    /// Taylor series for cosine, valid for small arguments.
    fn cos_series(&self, work: u32) -> BigFloat {
        let x = self.with_precision(work);
        let x2 = x.mul(&x);
        let args = SeriesArg::new(&x2, work);
        let mut term = BigFloat::one().with_precision(work);
        let mut sum = term.clone();
        let mut k: i64 = 1;
        loop {
            // term_{k+1} = -term_k * x² / ((2k-1)(2k))
            let below = bits_below(&sum, &term);
            let (t, xs) = args.stage(term, below);
            term = t.mul(&xs).div(&args.int((2 * k - 1) * (2 * k))).neg();
            let next = sum.add(&term);
            if converged(&next, &term, work) || term.is_zero() {
                return next;
            }
            sum = next;
            k += 1;
        }
    }

    /// Sine.
    pub fn sin(&self) -> BigFloat {
        let prec = self.precision();
        match &self.repr {
            Repr::Nan { .. } | Repr::Inf { .. } => BigFloat::nan_at(prec),
            Repr::Zero { neg, .. } => BigFloat::zero_at(*neg, prec),
            Repr::Finite(_) => {
                let work = self.work_prec();
                let (r, q) = self.trig_reduce(work);
                let v = match q {
                    0 => r.sin_series(work),
                    1 => r.cos_series(work),
                    2 => r.sin_series(work).neg(),
                    _ => r.cos_series(work).neg(),
                };
                v.with_precision(prec)
            }
        }
    }

    /// Cosine.
    pub fn cos(&self) -> BigFloat {
        let prec = self.precision();
        match &self.repr {
            Repr::Nan { .. } | Repr::Inf { .. } => BigFloat::nan_at(prec),
            Repr::Zero { .. } => BigFloat::one().with_precision(prec),
            Repr::Finite(_) => {
                let work = self.work_prec();
                let (r, q) = self.trig_reduce(work);
                let v = match q {
                    0 => r.cos_series(work),
                    1 => r.sin_series(work).neg(),
                    2 => r.cos_series(work).neg(),
                    _ => r.sin_series(work),
                };
                v.with_precision(prec)
            }
        }
    }

    /// Tangent.
    pub fn tan(&self) -> BigFloat {
        let prec = self.precision();
        match &self.repr {
            Repr::Nan { .. } | Repr::Inf { .. } => BigFloat::nan_at(prec),
            Repr::Zero { neg, .. } => BigFloat::zero_at(*neg, prec),
            Repr::Finite(_) => {
                let work = self.work_prec();
                let (r, q) = self.trig_reduce(work);
                let s = r.sin_series(work);
                let c = r.cos_series(work);
                let v = match q {
                    0 | 2 => s.div(&c),
                    _ => c.div(&s).neg(),
                };
                v.with_precision(prec)
            }
        }
    }

    /// Arctangent.
    pub fn atan(&self) -> BigFloat {
        let prec = self.precision();
        match &self.repr {
            Repr::Nan { .. } => BigFloat::nan_at(prec),
            Repr::Zero { neg, .. } => BigFloat::zero_at(*neg, prec),
            Repr::Inf { neg, .. } => {
                let v = BigFloat::pi(prec).scale_exp(-1);
                if *neg {
                    v.neg()
                } else {
                    v
                }
            }
            Repr::Finite(f) => {
                let work = self.work_prec();
                let neg = f.neg;
                let t = self.abs().with_precision(work);
                let one = BigFloat::one().with_precision(work);
                let (t, invert) = if t.partial_cmp(&one) == Some(std::cmp::Ordering::Greater) {
                    (one.div(&t), true)
                } else {
                    (t, false)
                };
                // Halve the argument four times: atan(t) = 2·atan(t/(1+√(1+t²))).
                let mut t = t;
                let halvings = 4;
                for _ in 0..halvings {
                    let denom = one.add(&one.add(&t.mul(&t)).sqrt());
                    t = t.div(&denom);
                }
                // Gregory series.
                let t2 = t.mul(&t);
                let mut power = t.clone();
                let mut sum = t.clone();
                let mut k: i64 = 1;
                let series = loop {
                    power = power.mul(&t2);
                    let contrib = power.div(&BigFloat::from_i64(2 * k + 1));
                    let next = if k % 2 == 1 {
                        sum.sub(&contrib)
                    } else {
                        sum.add(&contrib)
                    };
                    if converged(&next, &contrib, work) || contrib.is_zero() {
                        break next;
                    }
                    sum = next;
                    k += 1;
                };
                let mut result = series.scale_exp(halvings as i64);
                if invert {
                    result = BigFloat::pi(work).scale_exp(-1).sub(&result);
                }
                if neg {
                    result = result.neg();
                }
                result.with_precision(prec)
            }
        }
    }

    /// Two-argument arctangent atan2(self, x) where `self` is y.
    pub fn atan2(&self, x: &BigFloat) -> BigFloat {
        let prec = self.precision().max(x.precision());
        let y = self;
        if y.is_nan() || x.is_nan() {
            return BigFloat::nan_at(prec);
        }
        let pi = BigFloat::pi(prec + 32);
        let result = if x.is_zero() && y.is_zero() {
            // atan2(±0, +0) = ±0; atan2(±0, −0) = ±π.
            if x.is_negative() {
                pi.clone()
            } else {
                BigFloat::zero()
            }
        } else if x.is_zero() {
            pi.scale_exp(-1)
        } else if y.is_zero() {
            if x.is_negative() {
                pi.clone()
            } else {
                BigFloat::zero()
            }
        } else if x.is_infinite() || y.is_infinite() {
            match (x.is_infinite(), y.is_infinite(), x.is_negative()) {
                (true, true, false) => pi.scale_exp(-2),
                (true, true, true) => pi.mul(&BigFloat::from_i64(3)).scale_exp(-2),
                (true, false, false) => BigFloat::zero(),
                (true, false, true) => pi.clone(),
                _ => pi.scale_exp(-1),
            }
        } else {
            let base = y.abs().div(&x.abs()).with_precision(prec + 32).atan();
            if x.is_negative() {
                pi.sub(&base)
            } else {
                base
            }
        };
        let result = result.with_precision(prec);
        if y.is_negative() && !result.is_zero() {
            result.neg()
        } else if y.is_negative() {
            BigFloat::from_f64_prec(-0.0, prec)
        } else {
            result
        }
    }

    /// Arcsine; NaN outside [−1, 1].
    pub fn asin(&self) -> BigFloat {
        let prec = self.precision();
        if self.is_nan() {
            return BigFloat::nan_at(prec);
        }
        let one = BigFloat::one();
        let a = self.abs();
        match a.partial_cmp(&one) {
            Some(std::cmp::Ordering::Greater) | None => BigFloat::nan_at(prec),
            Some(std::cmp::Ordering::Equal) => {
                let v = BigFloat::pi(prec).scale_exp(-1);
                if self.is_negative() {
                    v.neg()
                } else {
                    v
                }
            }
            Some(std::cmp::Ordering::Less) => {
                let work = self.work_prec();
                let x = self.with_precision(work);
                let denom = BigFloat::one().with_precision(work).sub(&x.mul(&x)).sqrt();
                x.div(&denom).atan().with_precision(prec)
            }
        }
    }

    /// Arccosine; NaN outside [−1, 1].
    pub fn acos(&self) -> BigFloat {
        let prec = self.precision();
        if self.is_nan() {
            return BigFloat::nan_at(prec);
        }
        let work = self.work_prec();
        let asin = self.with_precision(work).asin();
        if asin.is_nan() {
            return BigFloat::nan_at(prec);
        }
        BigFloat::pi(work)
            .scale_exp(-1)
            .sub(&asin)
            .with_precision(prec)
    }

    /// Hyperbolic sine.
    pub fn sinh(&self) -> BigFloat {
        let prec = self.precision();
        match &self.repr {
            Repr::Nan { .. } => BigFloat::nan_at(prec),
            Repr::Zero { neg, .. } => BigFloat::zero_at(*neg, prec),
            Repr::Inf { neg, .. } => BigFloat::inf_at(*neg, prec),
            Repr::Finite(f) => {
                if f.exp < -8 {
                    // Avoid cancellation for small x: x + x³/3! + x⁵/5! + ...
                    let work = self.work_prec();
                    let x = self.with_precision(work);
                    let x2 = x.mul(&x);
                    let mut term = x.clone();
                    let mut sum = x.clone();
                    let mut k: i64 = 1;
                    loop {
                        term = term.mul(&x2).div(&BigFloat::from_i64(2 * k * (2 * k + 1)));
                        let next = sum.add(&term);
                        if converged(&next, &term, work) {
                            return next.with_precision(prec);
                        }
                        sum = next;
                        k += 1;
                    }
                }
                let work = self.work_prec();
                let e = self.with_precision(work).exp();
                let ei = BigFloat::one().with_precision(work).div(&e);
                e.sub(&ei).scale_exp(-1).with_precision(prec)
            }
        }
    }

    /// Hyperbolic cosine.
    pub fn cosh(&self) -> BigFloat {
        let prec = self.precision();
        match &self.repr {
            Repr::Nan { .. } => BigFloat::nan_at(prec),
            Repr::Zero { .. } => BigFloat::one().with_precision(prec),
            Repr::Inf { .. } => BigFloat::inf_at(false, prec),
            Repr::Finite(_) => {
                let work = self.work_prec();
                let e = self.with_precision(work).exp();
                let ei = BigFloat::one().with_precision(work).div(&e);
                e.add(&ei).scale_exp(-1).with_precision(prec)
            }
        }
    }

    /// Hyperbolic tangent.
    pub fn tanh(&self) -> BigFloat {
        let prec = self.precision();
        match &self.repr {
            Repr::Nan { .. } => BigFloat::nan_at(prec),
            Repr::Zero { neg, .. } => BigFloat::zero_at(*neg, prec),
            Repr::Inf { neg, .. } => {
                let one = BigFloat::one().with_precision(prec);
                if *neg {
                    one.neg()
                } else {
                    one
                }
            }
            Repr::Finite(_) => {
                let work = self.work_prec();
                let s = self.with_precision(work).sinh();
                let c = self.with_precision(work).cosh();
                s.div(&c).with_precision(prec)
            }
        }
    }

    /// Inverse hyperbolic sine.
    pub fn asinh(&self) -> BigFloat {
        let prec = self.precision();
        if self.is_nan() || self.is_zero() || self.is_infinite() {
            return self.clone();
        }
        let work = self.work_prec();
        let a = self.abs().with_precision(work);
        let r = a
            .add(&a.mul(&a).add(&BigFloat::one()).sqrt())
            .ln()
            .with_precision(prec);
        if self.is_negative() {
            r.neg()
        } else {
            r
        }
    }

    /// Inverse hyperbolic cosine; NaN below 1.
    pub fn acosh(&self) -> BigFloat {
        let prec = self.precision();
        let one = BigFloat::one();
        match self.partial_cmp(&one) {
            None => BigFloat::nan_at(prec),
            Some(std::cmp::Ordering::Less) => BigFloat::nan_at(prec),
            Some(std::cmp::Ordering::Equal) => BigFloat::zero_at(false, prec),
            Some(std::cmp::Ordering::Greater) => {
                if self.is_infinite() {
                    return BigFloat::inf_at(false, prec);
                }
                let work = self.work_prec();
                let x = self.with_precision(work);
                x.add(&x.mul(&x).sub(&BigFloat::one()).sqrt())
                    .ln()
                    .with_precision(prec)
            }
        }
    }

    /// Inverse hyperbolic tangent; NaN outside (−1, 1), ±∞ at ±1.
    pub fn atanh(&self) -> BigFloat {
        let prec = self.precision();
        if self.is_nan() {
            return BigFloat::nan_at(prec);
        }
        let one = BigFloat::one();
        let a = self.abs();
        match a.partial_cmp(&one) {
            Some(std::cmp::Ordering::Greater) | None => BigFloat::nan_at(prec),
            Some(std::cmp::Ordering::Equal) => BigFloat::inf_at(self.is_negative(), prec),
            Some(std::cmp::Ordering::Less) => {
                let work = self.work_prec();
                let x = self.with_precision(work);
                let num = BigFloat::one().add(&x);
                let den = BigFloat::one().sub(&x);
                num.div(&den).ln().scale_exp(-1).with_precision(prec)
            }
        }
    }

    /// x raised to the power y.
    pub fn pow(&self, y: &BigFloat) -> BigFloat {
        let prec = self.precision().max(y.precision());
        if y.is_zero() {
            return BigFloat::one().with_precision(prec);
        }
        if self.is_nan() || y.is_nan() {
            return BigFloat::nan_at(prec);
        }
        if self.eq_value(&BigFloat::one()) {
            return BigFloat::one().with_precision(prec);
        }
        if self.is_zero() {
            return if y.is_negative() {
                BigFloat::inf_at(false, prec)
            } else {
                BigFloat::zero_at(false, prec)
            };
        }
        if self.is_infinite() {
            return if y.is_negative() {
                BigFloat::zero_at(false, prec)
            } else if self.is_negative()
                && y.is_integer()
                && y.fmod(&BigFloat::from_i64(2))
                    .abs()
                    .eq_value(&BigFloat::one())
            {
                BigFloat::inf_at(true, prec)
            } else {
                BigFloat::inf_at(false, prec)
            };
        }
        if self.is_negative() {
            if !y.is_integer() {
                return BigFloat::nan_at(prec);
            }
            let odd = y
                .fmod(&BigFloat::from_i64(2))
                .abs()
                .eq_value(&BigFloat::one());
            let mag = self.abs().pow(y);
            return if odd { mag.neg() } else { mag };
        }
        let work = (prec + 64).min(MAX_PRECISION);
        let r = y
            .with_precision(work)
            .mul(&self.with_precision(work).ln())
            .exp();
        r.with_precision(prec)
    }

    /// Cube root, defined for negative inputs.
    pub fn cbrt(&self) -> BigFloat {
        let prec = self.precision();
        if self.is_nan() || self.is_zero() || self.is_infinite() {
            return self.clone();
        }
        let work = self.work_prec();
        let mag = self
            .abs()
            .with_precision(work)
            .ln()
            .div(&BigFloat::from_i64(3))
            .exp()
            .with_precision(prec);
        if self.is_negative() {
            mag.neg()
        } else {
            mag
        }
    }

    /// √(x² + y²) without intermediate overflow concerns.
    pub fn hypot(&self, other: &BigFloat) -> BigFloat {
        let prec = self.precision().max(other.precision());
        if self.is_infinite() || other.is_infinite() {
            return BigFloat::inf_at(false, prec);
        }
        if self.is_nan() || other.is_nan() {
            return BigFloat::nan_at(prec);
        }
        let work = (prec + 64).min(MAX_PRECISION);
        let a = self.with_precision(work);
        let b = other.with_precision(work);
        a.mul(&a).add(&b.mul(&b)).sqrt().with_precision(prec)
    }

    /// Fused multiply-add: self·b + c with a single rounding (to working
    /// precision).
    pub fn fma(&self, b: &BigFloat, c: &BigFloat) -> BigFloat {
        let prec = self.precision().max(b.precision()).max(c.precision());
        let work = (2 * prec + 64).min(MAX_PRECISION);
        self.with_precision(work)
            .mul(&b.with_precision(work))
            .add(&c.with_precision(work))
            .with_precision(prec)
    }

    /// Positive difference: max(self − other, 0).
    pub fn fdim(&self, other: &BigFloat) -> BigFloat {
        let prec = self.precision().max(other.precision());
        if self.is_nan() || other.is_nan() {
            return BigFloat::nan_at(prec);
        }
        let d = self.sub(other);
        if d.is_negative() {
            BigFloat::zero_at(false, prec)
        } else {
            d
        }
    }

    /// Minimum, ignoring NaN when the other operand is a number.
    pub fn fmin(&self, other: &BigFloat) -> BigFloat {
        if self.is_nan() {
            return other.clone();
        }
        if other.is_nan() {
            return self.clone();
        }
        if self.partial_cmp(other) == Some(std::cmp::Ordering::Greater) {
            other.clone()
        } else {
            self.clone()
        }
    }

    /// Maximum, ignoring NaN when the other operand is a number.
    pub fn fmax(&self, other: &BigFloat) -> BigFloat {
        if self.is_nan() {
            return other.clone();
        }
        if other.is_nan() {
            return self.clone();
        }
        if self.partial_cmp(other) == Some(std::cmp::Ordering::Less) {
            other.clone()
        } else {
            self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Largest acceptable relative error against the f64 libm reference for a
    /// well-conditioned point: a few ulps of double precision.
    const RTOL: f64 = 1e-13;

    fn close(a: f64, b: f64) -> bool {
        if a.is_nan() {
            return b.is_nan();
        }
        if a.is_infinite() || b.is_infinite() {
            return a == b;
        }
        let scale = a.abs().max(b.abs()).max(1e-300);
        (a - b).abs() / scale < RTOL
    }

    #[test]
    fn pi_matches_known_digits() {
        let pi = BigFloat::pi(256);
        assert!(close(pi.to_f64(), std::f64::consts::PI));
        // And the error versus the f64 constant should be at the f64 level,
        // not the BigFloat level (i.e. our pi is more precise).
        let diff = pi.sub(&BigFloat::from_f64(std::f64::consts::PI)).abs();
        assert!(diff.to_f64() < 1e-15);
        assert!(diff.to_f64() > 0.0);
    }

    #[test]
    fn ln2_matches_f64_constant() {
        assert!(close(BigFloat::ln2(256).to_f64(), std::f64::consts::LN_2));
    }

    #[test]
    fn exp_matches_libm_on_grid() {
        for &x in &[
            -50.0, -3.2, -1.0, -1e-8, 0.0, 1e-8, 0.5, 1.0, 2.0, 10.0, 100.0, 700.0,
        ] {
            let got = BigFloat::from_f64(x).exp().to_f64();
            assert!(close(got, x.exp()), "exp({x}) = {got} vs {}", x.exp());
        }
    }

    #[test]
    fn exp_overflow_and_underflow() {
        assert!(
            BigFloat::from_f64(1e300).exp().is_infinite()
                || BigFloat::from_f64(1e300).exp().to_f64().is_infinite()
        );
        let tiny = BigFloat::from_f64(-1e300).exp();
        assert!(tiny.is_zero() || tiny.to_f64() == 0.0);
    }

    #[test]
    fn ln_matches_libm_on_grid() {
        for &x in &[1e-300, 1e-8, 0.5, 1.0, 1.5, 2.0, 10.0, 1e8, 1e300] {
            let got = BigFloat::from_f64(x).ln().to_f64();
            assert!(close(got, x.ln()), "ln({x}) = {got} vs {}", x.ln());
        }
        assert!(BigFloat::from_f64(-1.0).ln().is_nan());
        assert!(BigFloat::zero().ln().is_infinite());
    }

    #[test]
    fn exp_ln_roundtrip_is_tight() {
        let x = BigFloat::from_f64(7.25);
        let roundtrip = x.exp().ln();
        let err = roundtrip.sub(&x).abs().to_f64();
        assert!(err < 1e-60, "roundtrip error {err}");
    }

    #[test]
    #[allow(clippy::approx_constant)] // near-π grid points, deliberately inexact
    fn trig_matches_libm_on_grid() {
        for &x in &[
            -10.0, -1.5, -0.7, -1e-9, 0.0, 1e-9, 0.5, 1.0, 1.5707, 3.0, 6.28, 100.0,
        ] {
            let b = BigFloat::from_f64(x);
            assert!(close(b.sin().to_f64(), x.sin()), "sin({x})");
            assert!(close(b.cos().to_f64(), x.cos()), "cos({x})");
            assert!(close(b.tan().to_f64(), x.tan()), "tan({x})");
        }
    }

    #[test]
    fn trig_handles_large_arguments() {
        // Argument reduction must stay accurate for large inputs.
        for &x in &[1e10, 1e15, 1e20] {
            let got = BigFloat::from_f64(x).sin().to_f64();
            let expect = x.sin();
            assert!(close(got, expect), "sin({x}) = {got} vs {expect}");
        }
    }

    #[test]
    fn inverse_trig_matches_libm() {
        for &x in &[-0.99, -0.5, -1e-8, 0.0, 1e-8, 0.3, 0.7, 0.99, 1.0] {
            let b = BigFloat::from_f64(x);
            assert!(close(b.asin().to_f64(), x.asin()), "asin({x})");
            assert!(close(b.acos().to_f64(), x.acos()), "acos({x})");
        }
        for &x in &[-1e6, -3.0, -1.0, 0.0, 0.5, 1.0, 3.0, 1e6] {
            assert!(
                close(BigFloat::from_f64(x).atan().to_f64(), x.atan()),
                "atan({x})"
            );
        }
        assert!(BigFloat::from_f64(1.5).asin().is_nan());
    }

    #[test]
    fn atan2_quadrants() {
        let cases = [
            (1.0, 1.0),
            (1.0, -1.0),
            (-1.0, 1.0),
            (-1.0, -1.0),
            (0.0, 1.0),
            (0.0, -1.0),
            (1.0, 0.0),
            (-1.0, 0.0),
            (2.5, -3.5),
        ];
        for (y, x) in cases {
            let got = BigFloat::from_f64(y).atan2(&BigFloat::from_f64(x)).to_f64();
            let expect = y.atan2(x);
            assert!(close(got, expect), "atan2({y},{x}) = {got} vs {expect}");
        }
    }

    #[test]
    fn hyperbolic_matches_libm() {
        for &x in &[-5.0, -1.0, -1e-9, 0.0, 1e-9, 0.5, 1.0, 5.0, 20.0] {
            let b = BigFloat::from_f64(x);
            assert!(close(b.sinh().to_f64(), x.sinh()), "sinh({x})");
            assert!(close(b.cosh().to_f64(), x.cosh()), "cosh({x})");
            assert!(close(b.tanh().to_f64(), x.tanh()), "tanh({x})");
        }
        for &x in &[-3.0, -0.5, 0.0, 0.5, 3.0] {
            assert!(
                close(BigFloat::from_f64(x).asinh().to_f64(), x.asinh()),
                "asinh({x})"
            );
        }
        for &x in &[1.0, 1.5, 10.0] {
            assert!(
                close(BigFloat::from_f64(x).acosh().to_f64(), x.acosh()),
                "acosh({x})"
            );
        }
        for &x in &[-0.9, -0.5, 0.0, 0.5, 0.9] {
            assert!(
                close(BigFloat::from_f64(x).atanh().to_f64(), x.atanh()),
                "atanh({x})"
            );
        }
    }

    #[test]
    fn pow_matches_libm() {
        let cases = [
            (2.0, 10.0),
            (2.0, -3.0),
            (10.0, 0.5),
            (0.5, 100.0),
            (3.7, 2.2),
            (-2.0, 3.0),
            (-2.0, 2.0),
            (7.0, 0.0),
        ];
        for (x, y) in cases {
            let got = BigFloat::from_f64(x).pow(&BigFloat::from_f64(y)).to_f64();
            let expect = x.powf(y);
            assert!(close(got, expect), "pow({x},{y}) = {got} vs {expect}");
        }
        assert!(BigFloat::from_f64(-2.0)
            .pow(&BigFloat::from_f64(0.5))
            .is_nan());
    }

    #[test]
    fn expm1_and_log1p_accurate_for_tiny_arguments() {
        let x = 1e-20;
        let em = BigFloat::from_f64(x).expm1();
        assert!(close(em.to_f64(), x), "expm1 tiny");
        let lp = BigFloat::from_f64(x).log1p();
        assert!(close(lp.to_f64(), x), "log1p tiny");
        // And reasonable at moderate arguments too.
        assert!(close(
            BigFloat::from_f64(1.5).expm1().to_f64(),
            1.5f64.exp_m1()
        ));
        assert!(close(
            BigFloat::from_f64(1.5).log1p().to_f64(),
            1.5f64.ln_1p()
        ));
    }

    #[test]
    fn cbrt_hypot_fdim() {
        assert!(close(BigFloat::from_f64(27.0).cbrt().to_f64(), 3.0));
        assert!(close(BigFloat::from_f64(-27.0).cbrt().to_f64(), -3.0));
        assert!(close(
            BigFloat::from_f64(3.0)
                .hypot(&BigFloat::from_f64(4.0))
                .to_f64(),
            5.0
        ));
        assert!(close(
            BigFloat::from_f64(1e300)
                .hypot(&BigFloat::from_f64(1e300))
                .to_f64(),
            (2.0f64).sqrt() * 1e300
        ));
        assert_eq!(
            BigFloat::from_f64(3.0)
                .fdim(&BigFloat::from_f64(5.0))
                .to_f64(),
            0.0
        );
        assert_eq!(
            BigFloat::from_f64(5.0)
                .fdim(&BigFloat::from_f64(3.0))
                .to_f64(),
            2.0
        );
    }

    #[test]
    fn fma_is_single_rounded() {
        // fma(1 + 2^-52, 1 + 2^-52, -1) exercises the extra intermediate bits.
        let a = 1.0 + f64::EPSILON;
        let got = BigFloat::from_f64(a)
            .fma(&BigFloat::from_f64(a), &BigFloat::from_f64(-1.0))
            .to_f64();
        let expect = f64::mul_add(a, a, -1.0);
        assert!(close(got, expect), "fma: {got} vs {expect}");
    }

    #[test]
    fn fmin_fmax_ignore_nan() {
        let nan = BigFloat::nan();
        let one = BigFloat::one();
        assert_eq!(nan.fmin(&one).to_f64(), 1.0);
        assert_eq!(one.fmax(&nan).to_f64(), 1.0);
        assert_eq!(
            BigFloat::from_f64(2.0)
                .fmin(&BigFloat::from_f64(-3.0))
                .to_f64(),
            -3.0
        );
    }

    #[test]
    fn exp2_log2_log10() {
        assert!(close(BigFloat::from_f64(10.0).exp2().to_f64(), 1024.0));
        assert!(close(BigFloat::from_f64(1024.0).log2().to_f64(), 10.0));
        assert!(close(BigFloat::from_f64(1000.0).log10().to_f64(), 3.0));
    }
}

//! Arbitrary-precision binary floating point, the shadow-real substrate.
//!
//! [`BigFloat`] plays the role of MPFR in the original Herbgrind: every
//! double in the client program is shadowed by a `BigFloat` with a much wider
//! mantissa (256 bits by default, configurable via
//! [`set_default_precision`]), so that rounding error in the client is
//! visible as a difference between the client value and the rounded shadow.
//!
//! The implementation is self-contained (no external bignum dependency). A
//! finite value is `(-1)^sign * f * 2^exp` with the fraction `f` in
//! `[0.5, 1)` stored as a little-endian limb buffer whose top bit is set.
//! Mantissas up to four limbs (256 bits, the default precision) are stored
//! inline — no heap allocation — with a heap fallback for wider precisions;
//! the arithmetic kernels work in place on fixed-size stack scratch windows,
//! so steady-state add/sub/mul/round at default precision never allocates
//! (see `limbs::SmallBuf` and the allocation-counting integration test).
//! Arithmetic is *faithfully* rounded: results are within one unit in the
//! last place of the working precision, which is orders of magnitude more
//! accurate than required to measure error in double-precision clients.

mod functions;
pub(crate) mod lanes;
mod limbs;
mod newton;

use limbs::{Limbs, Scratch};
use std::cmp::Ordering;
use std::sync::atomic::{AtomicU32, Ordering as AtomicOrdering};

/// The default mantissa precision, in bits, for newly created values.
static DEFAULT_PRECISION: AtomicU32 = AtomicU32::new(256);

/// Smallest supported mantissa precision in bits.
pub const MIN_PRECISION: u32 = 64;
/// Largest supported mantissa precision in bits.
pub const MAX_PRECISION: u32 = 16384;

/// Sets the default mantissa precision (in bits) used by [`BigFloat::from_f64`]
/// and friends. Clamped to `[MIN_PRECISION, MAX_PRECISION]`.
///
/// This mirrors Herbgrind's `--precision` flag (default 1000 bits in the
/// paper; 256 here, which is ample for measuring error in 53-bit clients).
pub fn set_default_precision(bits: u32) {
    let clamped = bits.clamp(MIN_PRECISION, MAX_PRECISION);
    DEFAULT_PRECISION.store(clamped, AtomicOrdering::Relaxed);
}

/// Returns the current default mantissa precision in bits.
pub fn default_precision() -> u32 {
    DEFAULT_PRECISION.load(AtomicOrdering::Relaxed)
}

/// Test support (debug builds only): forces every newly created limb buffer
/// onto the heap, so the inline (≤ 256-bit) and heap-fallback code paths can
/// be compared bit for bit at the same precision. Not compiled into release
/// builds; has no effect on values created before the switch.
#[cfg(debug_assertions)]
#[doc(hidden)]
pub fn set_force_heap_limbs(on: bool) {
    limbs::FORCE_HEAP.store(on, std::sync::atomic::Ordering::Relaxed);
}

/// Test support (debug builds only): routes every operation through the
/// general kernels, bypassing the unrolled 256-bit fast paths, so the two
/// can be compared bit for bit. Not compiled into release builds.
#[cfg(debug_assertions)]
#[doc(hidden)]
pub fn set_disable_fast_paths(on: bool) {
    DISABLE_FAST_PATHS.store(on, std::sync::atomic::Ordering::Relaxed);
}

#[cfg(debug_assertions)]
static DISABLE_FAST_PATHS: std::sync::atomic::AtomicBool =
    std::sync::atomic::AtomicBool::new(false);

#[inline]
fn fast_paths_enabled() -> bool {
    #[cfg(debug_assertions)]
    {
        !DISABLE_FAST_PATHS.load(std::sync::atomic::Ordering::Relaxed)
    }
    #[cfg(not(debug_assertions))]
    {
        true
    }
}

/// An arbitrary-precision binary floating-point number.
///
/// See the [module documentation](self) for the representation. All
/// operations are non-destructive and return new values; the result precision
/// of a binary operation is the larger of the operand precisions.
#[derive(Clone, Debug)]
pub struct BigFloat {
    repr: Repr,
}

/// Internal representation. Zeros, infinities and NaN carry no mantissa, but
/// they do carry the precision they were created at: an analysis that threads
/// a non-default `shadow_precision` through its leaves must see that
/// precision propagate through special-value chains (`exp(0)`, `atan(∞)`, …)
/// exactly like finite ones, without consulting the process-global default.
#[derive(Clone, Debug)]
enum Repr {
    Zero { neg: bool, prec: u32 },
    Finite(Finite),
    Inf { neg: bool, prec: u32 },
    Nan { prec: u32 },
}

#[derive(Clone, Debug)]
struct Finite {
    neg: bool,
    /// Binary exponent: the value is `fraction * 2^exp` with fraction in [0.5, 1).
    exp: i64,
    /// Little-endian limbs of the fraction; the top bit of the last limb is
    /// set. Inline storage for precisions up to 256 bits ([`limbs::Limbs`]).
    limbs: Limbs,
    /// Mantissa precision in bits.
    prec: u32,
}

fn limbs_for(prec: u32) -> usize {
    (prec as usize).div_ceil(64)
}

impl Finite {
    /// Rounds a (normalized, top-bit-set) limb buffer to `prec` bits using
    /// round-to-nearest-even with a sticky flag for already-dropped bits.
    ///
    /// The source slice is read in place (it is a scratch window or another
    /// mantissa); the only storage created is the kept mantissa itself, which
    /// is inline for precisions up to 256 bits.
    #[inline]
    fn round(neg: bool, src: &[u64], mut exp: i64, prec: u32, mut sticky: bool) -> Repr {
        debug_assert!(!src.is_empty());
        debug_assert!(src.last().map(|l| l >> 63 == 1).unwrap_or(false));
        let nl = limbs_for(prec);
        let extra_low_bits = (nl as u32) * 64 - prec;
        // Copy the top `nl` limbs of `src` into the kept mantissa; a shorter
        // source is top-aligned with zero-filled low limbs.
        let mut kept = Limbs::zeroed(nl);
        if src.len() >= nl {
            kept.as_mut_slice().copy_from_slice(&src[src.len() - nl..]);
        } else {
            kept.as_mut_slice()[nl - src.len()..].copy_from_slice(src);
        }
        let drop_limbs = src.len().saturating_sub(nl);
        // Total number of low bits that must be cleared/dropped. The dropped
        // bits live in `src` when it is longer than the target, otherwise in
        // the (not yet masked) low bits of the kept copy.
        let p = (drop_limbs as u64) * 64 + extra_low_bits as u64;
        let mut round_bit = false;
        if p > 0 {
            let view: &[u64] = if src.len() >= nl { src } else { &kept };
            let rb_index = p - 1;
            let rb_limb = (rb_index / 64) as usize;
            let rb_off = (rb_index % 64) as u32;
            round_bit = (view[rb_limb] >> rb_off) & 1 == 1;
            // Sticky: any set bit strictly below the round bit.
            'outer: for (i, &l) in view.iter().enumerate().take(rb_limb + 1) {
                let masked = if i == rb_limb {
                    if rb_off == 0 {
                        0
                    } else {
                        l & ((1u64 << rb_off) - 1)
                    }
                } else {
                    l
                };
                if masked != 0 {
                    sticky = true;
                    break 'outer;
                }
            }
        }
        let k = kept.as_mut_slice();
        if extra_low_bits > 0 {
            k[0] &= !((1u64 << extra_low_bits) - 1);
        }
        // Round to nearest, ties to even.
        let lsb_set = (k[0] >> extra_low_bits) & 1 == 1;
        if round_bit && (sticky || lsb_set) {
            let carry = limbs::add_bit_in_place(k, extra_low_bits);
            if carry {
                // Mantissa overflowed to 1.0: renormalize to 0.5 * 2^(exp+1).
                for l in k.iter_mut() {
                    *l = 0;
                }
                k[nl - 1] = 1u64 << 63;
                exp += 1;
            }
        }
        if limbs::is_zero(&kept) {
            return Repr::Zero { neg, prec };
        }
        Repr::Finite(Finite {
            neg,
            exp,
            limbs: kept,
            prec,
        })
    }

    /// Normalizes a possibly denormalized limb buffer (top bit not set) by
    /// shifting left in place and adjusting the exponent, then rounds.
    #[inline]
    fn normalize_and_round(
        neg: bool,
        buf: &mut [u64],
        mut exp: i64,
        prec: u32,
        sticky: bool,
    ) -> Repr {
        if limbs::is_zero(buf) {
            return Repr::Zero { neg, prec };
        }
        let lz = limbs::leading_zeros(buf);
        if lz > 0 {
            limbs::shl_in_place(buf, lz);
            exp -= lz as i64;
        }
        Finite::round(neg, buf, exp, prec, sticky)
    }
}

impl BigFloat {
    // ----- constructors -----

    /// Creates a value from a double, exactly, at the default precision.
    pub fn from_f64(x: f64) -> Self {
        Self::from_f64_prec(x, default_precision())
    }

    /// Creates a value from a double, exactly, at the given precision.
    pub fn from_f64_prec(x: f64, prec: u32) -> Self {
        let prec = prec.clamp(MIN_PRECISION, MAX_PRECISION);
        if x.is_nan() {
            return BigFloat {
                repr: Repr::Nan { prec },
            };
        }
        if x.is_infinite() {
            return BigFloat {
                repr: Repr::Inf { neg: x < 0.0, prec },
            };
        }
        if x == 0.0 {
            return BigFloat {
                repr: Repr::Zero {
                    neg: x.is_sign_negative(),
                    prec,
                },
            };
        }
        let bits = x.to_bits();
        let neg = bits >> 63 == 1;
        let biased = ((bits >> 52) & 0x7ff) as i64;
        let frac = bits & 0x000f_ffff_ffff_ffff;
        let (sig, pow): (u64, i64) = if biased == 0 {
            // Subnormal: value = frac * 2^-1074
            (frac, -1074)
        } else {
            ((1u64 << 52) | frac, biased - 1075)
        };
        // value = sig * 2^pow; normalize so fraction is in [0.5, 1).
        let sig_bits = 64 - sig.leading_zeros() as i64;
        let exp = pow + sig_bits;
        let mut limbs = Limbs::zeroed(limbs_for(prec));
        let top = limbs.len() - 1;
        limbs[top] = sig << (64 - sig_bits);
        BigFloat {
            repr: Repr::Finite(Finite {
                neg,
                exp,
                limbs,
                prec,
            }),
        }
    }

    /// Creates a value from a signed 64-bit integer, exactly (precision is at
    /// least the default, widened if needed to hold the integer).
    pub fn from_i64(x: i64) -> Self {
        let prec = default_precision().max(64);
        if x == i64::MIN {
            // Avoid overflow on abs(): -2^63 is exactly representable in f64.
            return Self::from_f64_prec(x as f64, prec);
        }
        let neg = x < 0;
        let mag = x.unsigned_abs();
        if mag == 0 {
            return BigFloat {
                repr: Repr::Zero { neg: false, prec },
            };
        }
        let bits = 64 - mag.leading_zeros() as i64;
        let mut limbs = Limbs::zeroed(limbs_for(prec));
        let top = limbs.len() - 1;
        limbs[top] = mag << (64 - bits);
        BigFloat {
            repr: Repr::Finite(Finite {
                neg,
                exp: bits,
                limbs,
                prec,
            }),
        }
    }

    /// Positive zero at the default precision.
    pub fn zero() -> Self {
        BigFloat::zero_at(false, default_precision())
    }

    /// The value one at the default precision.
    pub fn one() -> Self {
        Self::from_i64(1)
    }

    /// Not-a-number.
    pub fn nan() -> Self {
        BigFloat::nan_at(default_precision())
    }

    /// Positive or negative infinity.
    pub fn infinity(negative: bool) -> Self {
        BigFloat::inf_at(negative, default_precision())
    }

    /// NaN carrying an explicit precision: operations stamp their result
    /// precision on special values exactly as they do on finite ones, so a
    /// threaded (non-default) shadow precision survives special-value chains.
    fn nan_at(prec: u32) -> Self {
        BigFloat {
            repr: Repr::Nan { prec },
        }
    }

    /// Zero of the given sign carrying an explicit precision.
    fn zero_at(neg: bool, prec: u32) -> Self {
        BigFloat {
            repr: Repr::Zero { neg, prec },
        }
    }

    /// Infinity of the given sign carrying an explicit precision.
    fn inf_at(neg: bool, prec: u32) -> Self {
        BigFloat {
            repr: Repr::Inf { neg, prec },
        }
    }

    // ----- accessors and classification -----

    /// The mantissa precision of this value in bits (the default precision
    /// for zeros, infinities and NaN).
    pub fn precision(&self) -> u32 {
        match &self.repr {
            Repr::Finite(f) => f.prec,
            Repr::Zero { prec, .. } | Repr::Inf { prec, .. } | Repr::Nan { prec } => *prec,
        }
    }

    /// Re-rounds this value to the given precision.
    pub fn with_precision(&self, prec: u32) -> Self {
        let prec = prec.clamp(MIN_PRECISION, MAX_PRECISION);
        match &self.repr {
            Repr::Finite(f) => BigFloat {
                repr: Finite::round(f.neg, &f.limbs, f.exp, prec, false),
            },
            Repr::Zero { neg, .. } => BigFloat::zero_at(*neg, prec),
            Repr::Inf { neg, .. } => BigFloat::inf_at(*neg, prec),
            Repr::Nan { .. } => BigFloat::nan_at(prec),
        }
    }

    /// True if this value is NaN.
    pub fn is_nan(&self) -> bool {
        matches!(self.repr, Repr::Nan { .. })
    }

    /// True if this value is +∞ or -∞.
    pub fn is_infinite(&self) -> bool {
        matches!(self.repr, Repr::Inf { .. })
    }

    /// True if this value is finite (zero or a finite nonzero number).
    pub fn is_finite(&self) -> bool {
        matches!(self.repr, Repr::Zero { .. } | Repr::Finite(_))
    }

    /// True if this value is exactly zero (of either sign).
    pub fn is_zero(&self) -> bool {
        matches!(self.repr, Repr::Zero { .. })
    }

    /// True if the value is negative (including -0 and -∞); false for NaN.
    pub fn is_negative(&self) -> bool {
        match &self.repr {
            Repr::Zero { neg, .. } | Repr::Inf { neg, .. } => *neg,
            Repr::Finite(f) => f.neg,
            Repr::Nan { .. } => false,
        }
    }

    /// The binary exponent of a finite nonzero value (value = f * 2^exp with
    /// f in [0.5, 1)); `None` otherwise.
    pub fn exponent(&self) -> Option<i64> {
        match &self.repr {
            Repr::Finite(f) => Some(f.exp),
            _ => None,
        }
    }

    // ----- conversion to f64 -----

    /// Rounds to the nearest double (round-to-nearest, ties-to-even).
    pub fn to_f64(&self) -> f64 {
        match &self.repr {
            Repr::Nan { .. } => f64::NAN,
            Repr::Inf { neg, .. } => {
                if *neg {
                    f64::NEG_INFINITY
                } else {
                    f64::INFINITY
                }
            }
            Repr::Zero { neg, .. } => {
                if *neg {
                    -0.0
                } else {
                    0.0
                }
            }
            Repr::Finite(f) => {
                let sign = if f.neg { -1.0 } else { 1.0 };
                if f.exp > 1024 {
                    return sign * f64::INFINITY;
                }
                if f.exp < -1100 {
                    return sign * 0.0;
                }
                // Extract the top 53 bits of the mantissa plus round/sticky.
                let total_bits = (f.limbs.len() as u64) * 64;
                let keep: u64 = 53;
                let top_limb = f.limbs[f.limbs.len() - 1];
                let mut m53: u64;
                let mut round = false;
                let mut sticky = false;
                if total_bits <= keep {
                    m53 = top_limb >> (64 - total_bits);
                    m53 <<= keep - total_bits;
                } else {
                    // Gather the top 53 bits across (at most) the top two limbs.
                    m53 = top_limb >> (64 - keep);
                    let drop = total_bits - keep;
                    // Round bit is the next bit below the kept ones.
                    let rb_index = drop - 1;
                    let rb_limb = (rb_index / 64) as usize;
                    let rb_off = (rb_index % 64) as u32;
                    round = (f.limbs[rb_limb] >> rb_off) & 1 == 1;
                    for (i, &l) in f.limbs.iter().enumerate().take(rb_limb + 1) {
                        let masked = if i == rb_limb {
                            if rb_off == 0 {
                                0
                            } else {
                                l & ((1u64 << rb_off) - 1)
                            }
                        } else {
                            l
                        };
                        if masked != 0 {
                            sticky = true;
                            break;
                        }
                    }
                }
                let mut exp = f.exp;
                // Subnormal target: fewer than 53 bits available below the
                // exponent floor. Shift m53 right accordingly.
                if exp < -1021 {
                    let shift = (-1021 - exp) as u64;
                    if shift >= 54 {
                        return sign * 0.0;
                    }
                    let lost_mask = (1u64 << shift) - 1;
                    let lost = m53 & lost_mask;
                    if lost != 0 {
                        // Fold previously computed round bit into sticky.
                        sticky = sticky || round || (lost & !(1 << (shift - 1))) != 0;
                        round = (lost >> (shift - 1)) & 1 == 1;
                    } else {
                        sticky = sticky || round;
                        round = false;
                    }
                    m53 >>= shift;
                    exp += shift as i64;
                }
                if round && (sticky || m53 & 1 == 1) {
                    m53 += 1;
                    if m53 == 1u64 << 53 {
                        m53 >>= 1;
                        exp += 1;
                        if exp > 1024 {
                            return sign * f64::INFINITY;
                        }
                    }
                }
                // value = m53 * 2^(exp - 53); both factors exact in f64.
                let scale = exp - 53;
                let result = if (-1022..=1023).contains(&scale) {
                    (m53 as f64) * f64::from_bits(((scale + 1023) as u64) << 52)
                } else {
                    // Extreme scale: split the scaling in two exact halves.
                    let half = scale / 2;
                    let rest = scale - half;
                    (m53 as f64) * pow2(half) * pow2(rest)
                };
                sign * result
            }
        }
    }

    // ----- sign operations -----

    /// Negation.
    pub fn neg(&self) -> Self {
        let repr = match &self.repr {
            Repr::Nan { prec } => Repr::Nan { prec: *prec },
            Repr::Inf { neg, prec } => Repr::Inf {
                neg: !neg,
                prec: *prec,
            },
            Repr::Zero { neg, prec } => Repr::Zero {
                neg: !neg,
                prec: *prec,
            },
            Repr::Finite(f) => Repr::Finite(Finite {
                neg: !f.neg,
                ..f.clone()
            }),
        };
        BigFloat { repr }
    }

    /// Absolute value.
    pub fn abs(&self) -> Self {
        if self.is_negative() {
            self.neg()
        } else {
            self.clone()
        }
    }

    /// Returns a value with the magnitude of `self` and the sign of `sign`.
    pub fn copysign(&self, sign: &Self) -> Self {
        if self.is_negative() == sign.is_negative() {
            self.clone()
        } else {
            self.neg()
        }
    }

    // ----- comparison -----

    /// Compares magnitudes of two finite nonzero values.
    fn cmp_abs_finite(a: &Finite, b: &Finite) -> Ordering {
        match a.exp.cmp(&b.exp) {
            Ordering::Equal => {
                // Both mantissas are top-aligned fractions in [0.5, 1);
                // compare from the most-significant limb down, padding the
                // shorter one with zero low limbs.
                limbs::cmp_top_aligned(&a.limbs, &b.limbs)
            }
            ord => ord,
        }
    }

    /// IEEE-style partial comparison; `None` if either operand is NaN.
    pub fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        use Repr::*;
        match (&self.repr, &other.repr) {
            (Nan { .. }, _) | (_, Nan { .. }) => None,
            (Zero { .. }, Zero { .. }) => Some(Ordering::Equal),
            (Inf { neg: a, .. }, Inf { neg: b, .. }) => Some(if a == b {
                Ordering::Equal
            } else if *a {
                Ordering::Less
            } else {
                Ordering::Greater
            }),
            (Inf { neg, .. }, _) => Some(if *neg {
                Ordering::Less
            } else {
                Ordering::Greater
            }),
            (_, Inf { neg, .. }) => Some(if *neg {
                Ordering::Greater
            } else {
                Ordering::Less
            }),
            (Zero { .. }, Finite(f)) => Some(if f.neg {
                Ordering::Greater
            } else {
                Ordering::Less
            }),
            (Finite(f), Zero { .. }) => Some(if f.neg {
                Ordering::Less
            } else {
                Ordering::Greater
            }),
            (Finite(a), Finite(b)) => {
                if a.neg != b.neg {
                    return Some(if a.neg {
                        Ordering::Less
                    } else {
                        Ordering::Greater
                    });
                }
                let mag = Self::cmp_abs_finite(a, b);
                Some(if a.neg { mag.reverse() } else { mag })
            }
        }
    }

    /// Numeric equality (`-0 == +0`, NaN never equal).
    pub fn eq_value(&self, other: &Self) -> bool {
        self.partial_cmp(other) == Some(Ordering::Equal)
    }

    // ----- arithmetic -----

    /// Addition.
    pub fn add(&self, other: &Self) -> Self {
        use Repr::*;
        let prec = self.precision().max(other.precision());
        match (&self.repr, &other.repr) {
            (Nan { .. }, _) | (_, Nan { .. }) => BigFloat::nan_at(prec),
            (Inf { neg: a, .. }, Inf { neg: b, .. }) => {
                if a == b {
                    BigFloat::inf_at(*a, prec)
                } else {
                    BigFloat::nan_at(prec)
                }
            }
            (Inf { neg, .. }, _) | (_, Inf { neg, .. }) => BigFloat::inf_at(*neg, prec),
            (Zero { neg: a, .. }, Zero { neg: b, .. }) => BigFloat::zero_at(*a && *b, prec),
            (Zero { .. }, _) => other.with_precision(prec),
            (_, Zero { .. }) => self.with_precision(prec),
            (Finite(a), Finite(b)) => BigFloat {
                repr: Self::add_finite(a, b, prec),
            },
        }
    }

    /// Subtraction.
    pub fn sub(&self, other: &Self) -> Self {
        self.add(&other.neg())
    }

    fn add_finite(a: &Finite, b: &Finite, prec: u32) -> Repr {
        let nl = a.limbs.len();
        if nl == b.limbs.len() && prec as usize == nl * 64 && fast_paths_enabled() {
            // Whole-limb precisions up to the default 256 bits take the
            // unrolled const-size window (NL limbs plus one guard limb).
            match nl {
                1 => return Self::add_finite_fast::<1, 2>(a, b),
                2 => return Self::add_finite_fast::<2, 3>(a, b),
                3 => return Self::add_finite_fast::<3, 4>(a, b),
                4 => return Self::add_finite_fast::<4, 5>(a, b),
                _ => {}
            }
        }
        // Working window: target precision plus one guard limb. The windows
        // are stack scratch buffers; nothing in this kernel allocates at
        // default precision.
        let wl = limbs_for(prec) + 1;
        // Ensure a is the operand with the larger exponent.
        let (hi, lo) = if a.exp >= b.exp { (a, b) } else { (b, a) };
        let diff = (hi.exp - lo.exp) as u64;

        // Top-align: copy the source limbs into the top of the window.
        let widen_into = |dst: &mut [u64], src: &[u64]| {
            let offset = dst.len() - src.len().min(dst.len());
            let start = src.len().saturating_sub(dst.len());
            dst[offset..].copy_from_slice(&src[start..]);
        };

        let mut acc = Scratch::zeroed(wl);
        widen_into(&mut acc, &hi.limbs);

        if hi.neg == lo.neg {
            // Magnitude addition: fold the aligned low operand into the
            // window in a single fused pass.
            let (mut sticky, carry) = limbs::add_shifted_into(&mut acc, &lo.limbs, diff);
            let mut exp = hi.exp;
            if carry {
                sticky |= limbs::shr_in_place(&mut acc, 1);
                let top = acc.len() - 1;
                acc[top] |= 1u64 << 63;
                exp += 1;
            }
            Finite::normalize_and_round(hi.neg, &mut acc, exp, prec, sticky)
        } else {
            let mut small = Scratch::zeroed(wl);
            widen_into(&mut small, &lo.limbs);
            let sticky = limbs::shr_in_place(&mut small, diff);
            // Magnitude subtraction: result sign follows the larger
            // magnitude. An exponent gap of one or more means the shifted low
            // operand is strictly below 0.5 while the high one is at least
            // 0.5, so the compare is only needed for equal exponents.
            let ord = if diff == 0 {
                limbs::cmp(&acc, &small)
            } else {
                Ordering::Greater
            };
            match ord {
                Ordering::Equal => {
                    if sticky {
                        // acc - (small + epsilon) is a tiny negative-of-lo-sign value,
                        // far below working precision; approximate with signed zero.
                        Repr::Zero { neg: lo.neg, prec }
                    } else {
                        Repr::Zero { neg: false, prec }
                    }
                }
                Ordering::Greater => {
                    limbs::sub_in_place(&mut acc, &small);
                    Finite::normalize_and_round(hi.neg, &mut acc, hi.exp, prec, sticky)
                }
                Ordering::Less => {
                    limbs::sub_in_place(&mut small, &acc);
                    Finite::normalize_and_round(lo.neg, &mut small, hi.exp, prec, sticky)
                }
            }
        }
    }

    /// Multiplication.
    pub fn mul(&self, other: &Self) -> Self {
        use Repr::*;
        let prec = self.precision().max(other.precision());
        let sign = self.is_negative() != other.is_negative();
        match (&self.repr, &other.repr) {
            (Nan { .. }, _) | (_, Nan { .. }) => BigFloat::nan_at(prec),
            (Inf { .. }, Zero { .. }) | (Zero { .. }, Inf { .. }) => BigFloat::nan_at(prec),
            (Inf { .. }, _) | (_, Inf { .. }) => BigFloat::inf_at(sign, prec),
            (Zero { .. }, _) | (_, Zero { .. }) => BigFloat::zero_at(sign, prec),
            (Finite(a), Finite(b)) => {
                let nl = a.limbs.len();
                if nl == b.limbs.len() && prec as usize == nl * 64 && fast_paths_enabled() {
                    let fast = match nl {
                        1 => Some(Self::mul_finite_fast::<1, 2>(a, b, sign)),
                        2 => Some(Self::mul_finite_fast::<2, 4>(a, b, sign)),
                        3 => Some(Self::mul_finite_fast::<3, 6>(a, b, sign)),
                        4 => Some(Self::mul_finite_fast::<4, 8>(a, b, sign)),
                        _ => None,
                    };
                    if let Some(repr) = fast {
                        return BigFloat { repr };
                    }
                }
                // The double-width product lives in a stack scratch window.
                let mut product = Scratch::zeroed(a.limbs.len() + b.limbs.len());
                limbs::mul_into(&mut product, &a.limbs, &b.limbs);
                let exp = a.exp + b.exp;
                BigFloat {
                    repr: crate::bigfloat::Finite::normalize_and_round(
                        sign,
                        &mut product,
                        exp,
                        prec,
                        false,
                    ),
                }
            }
        }
    }

    /// Division.
    pub fn div(&self, other: &Self) -> Self {
        use Repr::*;
        let prec = self.precision().max(other.precision());
        let sign = self.is_negative() != other.is_negative();
        match (&self.repr, &other.repr) {
            (Nan { .. }, _) | (_, Nan { .. }) => BigFloat::nan_at(prec),
            (Inf { .. }, Inf { .. }) => BigFloat::nan_at(prec),
            (Zero { .. }, Zero { .. }) => BigFloat::nan_at(prec),
            (Inf { .. }, _) => BigFloat::inf_at(sign, prec),
            (_, Inf { .. }) => BigFloat::zero_at(sign, prec),
            (Zero { .. }, _) => BigFloat::zero_at(sign, prec),
            (_, Zero { .. }) => BigFloat::inf_at(sign, prec),
            (Finite(a), Finite(b)) => BigFloat {
                repr: newton::div_finite(a, b, prec, sign),
            },
        }
    }

    /// Addition fast path for whole-limb precisions: both operands carry
    /// exactly `NL` limbs and the result precision is `64·NL` bits, so the
    /// working window is an `NL + 1`-limb stack array whose length the
    /// compiler sees, letting it unroll the shift/add/round loops. (`WL`
    /// must be `NL + 1`; stable const generics cannot express the sum.)
    /// The logic is the general `add_finite` body verbatim; bit-identical
    /// results are pinned by the fast-path proptests
    /// (`set_disable_fast_paths`).
    fn add_finite_fast<const NL: usize, const WL: usize>(a: &Finite, b: &Finite) -> Repr {
        debug_assert!(a.limbs.len() == NL && b.limbs.len() == NL && WL == NL + 1);
        let prec = (NL * 64) as u32;
        let (hi, lo) = if a.exp >= b.exp { (a, b) } else { (b, a) };
        let diff = (hi.exp - lo.exp) as u64;
        let mut acc = [0u64; WL];
        acc[1..].copy_from_slice(&hi.limbs);

        if hi.neg == lo.neg {
            // Magnitude addition: the top bit of the window stays set (the
            // high operand is normalized and magnitudes only grow), so the
            // normalize/round tail collapses to dropping the one guard limb.
            let (mut sticky, carry) = limbs::add_shifted_into(&mut acc, &lo.limbs, diff);
            let mut exp = hi.exp;
            if carry {
                sticky |= acc[0] & 1 == 1;
                for i in 0..NL {
                    acc[i] = (acc[i] >> 1) | (acc[i + 1] << 63);
                }
                acc[NL] = (acc[NL] >> 1) | (1u64 << 63);
                exp += 1;
            }
            let round_bit = acc[0] >> 63 == 1;
            let sticky = sticky || (acc[0] << 1) != 0;
            let mut kept = Limbs::zeroed(NL);
            let k = kept.as_mut_slice();
            k.copy_from_slice(&acc[1..]);
            if round_bit && (sticky || k[0] & 1 == 1) {
                let carry = limbs::add_bit_in_place(k, 0);
                if carry {
                    // Mantissa overflowed to 1.0: renormalize.
                    k[NL - 1] = 1u64 << 63;
                    exp += 1;
                }
            }
            Repr::Finite(Finite {
                neg: hi.neg,
                exp,
                limbs: kept,
                prec,
            })
        } else {
            let mut small = [0u64; WL];
            small[1..].copy_from_slice(&lo.limbs);
            let sticky = limbs::shr_in_place(&mut small, diff);
            let ord = if diff == 0 {
                limbs::cmp(&acc, &small)
            } else {
                Ordering::Greater
            };
            match ord {
                Ordering::Equal => {
                    if sticky {
                        Repr::Zero { neg: lo.neg, prec }
                    } else {
                        Repr::Zero { neg: false, prec }
                    }
                }
                Ordering::Greater => {
                    limbs::sub_in_place(&mut acc, &small);
                    Finite::normalize_and_round(hi.neg, &mut acc, hi.exp, prec, sticky)
                }
                Ordering::Less => {
                    limbs::sub_in_place(&mut small, &acc);
                    Finite::normalize_and_round(lo.neg, &mut small, hi.exp, prec, sticky)
                }
            }
        }
    }

    /// Multiplication fast path for whole-limb precisions: both operands
    /// carry exactly `NL` limbs and the result precision is `64·NL` bits,
    /// so the product is `TW = 2·NL` limbs, the leading-zero count is 0 or
    /// 1, and no partial low limb exists. Bit-identical to the general
    /// `mul_into`/`normalize_and_round` pipeline (checked by the
    /// `mul_fast_path_matches_general_pipeline` test); fully unrolled, no
    /// scratch window.
    fn mul_finite_fast<const NL: usize, const TW: usize>(
        a: &Finite,
        b: &Finite,
        sign: bool,
    ) -> Repr {
        debug_assert!(a.limbs.len() == NL && b.limbs.len() == NL && TW == 2 * NL);
        let prec = (NL * 64) as u32;
        let mut out = [0u64; TW];
        limbs::mul_comba::<NL>(&mut out, &a.limbs, &b.limbs);
        let mut exp = a.exp + b.exp;
        // Both fractions are in [0.5, 1), so the product is in [0.25, 1):
        // at most one normalization shift.
        if out[TW - 1] >> 63 == 0 {
            for i in (1..TW).rev() {
                out[i] = (out[i] << 1) | (out[i - 1] >> 63);
            }
            out[0] <<= 1;
            exp -= 1;
        }
        // Round to nearest, ties to even, dropping the low NL limbs.
        let round_bit = out[NL - 1] >> 63 == 1;
        let sticky = (out[NL - 1] << 1) != 0 || out[..NL - 1].iter().any(|&l| l != 0);
        let mut kept = Limbs::zeroed(NL);
        let k = kept.as_mut_slice();
        k.copy_from_slice(&out[NL..]);
        if round_bit && (sticky || k[0] & 1 == 1) {
            let carry = limbs::add_bit_in_place(k, 0);
            if carry {
                // Mantissa overflowed to 1.0: renormalize to 0.5 * 2^(exp+1).
                k[NL - 1] = 1u64 << 63;
                exp += 1;
            }
        }
        // The product of nonzero mantissas keeps its top bit after rounding,
        // so the zero case of the general path cannot occur here.
        Repr::Finite(Finite {
            neg: sign,
            exp,
            limbs: kept,
            prec,
        })
    }

    /// Square root (NaN for negative inputs, following IEEE 754).
    pub fn sqrt(&self) -> Self {
        use Repr::*;
        let prec = self.precision();
        match &self.repr {
            Nan { .. } => BigFloat::nan_at(prec),
            Zero { neg, .. } => BigFloat::zero_at(*neg, prec),
            Inf { neg: false, .. } => self.clone(),
            Inf { neg: true, .. } => BigFloat::nan_at(prec),
            Finite(f) if f.neg => BigFloat::nan_at(prec),
            Finite(f) => BigFloat {
                repr: newton::sqrt_finite(f, prec),
            },
        }
    }

    // ----- integer-related helpers -----

    /// Truncates toward zero to an integer-valued `BigFloat`.
    pub fn trunc(&self) -> Self {
        match &self.repr {
            Repr::Finite(f) => {
                if f.exp <= 0 {
                    return BigFloat::zero_at(f.neg, f.prec);
                }
                let total_bits = (f.limbs.len() as i64) * 64;
                if f.exp >= total_bits {
                    return self.clone();
                }
                // Clear all bits below the binary point (weight < 1), working
                // on a stack scratch copy of the mantissa.
                let frac_bits = (total_bits - f.exp) as u64;
                let mut limbs = Scratch::from_slice(&f.limbs);
                let whole_limbs = (frac_bits / 64) as usize;
                let rem = (frac_bits % 64) as u32;
                for l in limbs.iter_mut().take(whole_limbs) {
                    *l = 0;
                }
                if rem > 0 && whole_limbs < limbs.len() {
                    limbs[whole_limbs] &= !((1u64 << rem) - 1);
                }
                BigFloat {
                    repr: Finite::normalize_and_round(f.neg, &mut limbs, f.exp, f.prec, false),
                }
            }
            _ => self.clone(),
        }
    }

    /// Largest integer less than or equal to the value.
    pub fn floor(&self) -> Self {
        let t = self.trunc();
        if !self.is_negative() || t.eq_value(self) || !self.is_finite() {
            t
        } else {
            t.sub(&BigFloat::one())
        }
    }

    /// Smallest integer greater than or equal to the value.
    pub fn ceil(&self) -> Self {
        let t = self.trunc();
        if self.is_negative() || t.eq_value(self) || !self.is_finite() {
            t
        } else {
            t.add(&BigFloat::one())
        }
    }

    /// Rounds to the nearest integer, ties away from zero (like `f64::round`).
    pub fn round_nearest(&self) -> Self {
        if !self.is_finite() {
            return self.clone();
        }
        let half = BigFloat::from_f64_prec(0.5, self.precision());
        if self.is_negative() {
            self.sub(&half).ceil()
        } else {
            self.add(&half).floor()
        }
    }

    /// True if the value is a (mathematical) integer.
    pub fn is_integer(&self) -> bool {
        match &self.repr {
            Repr::Zero { .. } => true,
            Repr::Finite(_) => self.trunc().eq_value(self),
            _ => false,
        }
    }

    /// Floating-point remainder with the sign of the dividend (like `fmod`).
    pub fn fmod(&self, other: &Self) -> Self {
        let prec = self.precision().max(other.precision());
        if self.is_nan() || other.is_nan() || other.is_zero() || self.is_infinite() {
            return BigFloat::nan_at(prec);
        }
        if other.is_infinite() || self.is_zero() {
            return self.clone();
        }
        // Work at enough precision to represent the (possibly huge) quotient.
        let extra = match (self.exponent(), other.exponent()) {
            (Some(ea), Some(eb)) if ea > eb => (ea - eb) as u32 + 64,
            _ => 64,
        };
        let work = (self.precision() + extra).min(MAX_PRECISION);
        let a = self.with_precision(work);
        let b = other.with_precision(work);
        let q = a.div(&b).trunc();
        a.sub(&q.mul(&b)).with_precision(self.precision())
    }
}

/// An exact power of two as a double (for scaling during conversion); the
/// exponent is clamped to the representable double range.
fn pow2(e: i64) -> f64 {
    if e >= 1024 {
        f64::INFINITY
    } else if e >= -1022 {
        f64::from_bits(((e + 1023) as u64) << 52)
    } else if e >= -1074 {
        f64::from_bits(1u64 << (e + 1074))
    } else {
        0.0
    }
}

impl PartialEq for BigFloat {
    fn eq(&self, other: &Self) -> bool {
        self.eq_value(other)
    }
}

impl Default for BigFloat {
    fn default() -> Self {
        BigFloat::zero()
    }
}

impl std::fmt::Display for BigFloat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:e}", self.to_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(x: f64) {
        let b = BigFloat::from_f64(x);
        let back = b.to_f64();
        if x.is_nan() {
            assert!(back.is_nan());
        } else {
            assert_eq!(back.to_bits(), x.to_bits(), "roundtrip of {x:e}");
        }
    }

    #[test]
    fn f64_roundtrip_exact() {
        for x in [
            0.0,
            -0.0,
            1.0,
            -1.0,
            0.1,
            std::f64::consts::PI,
            1e-300,
            1e300,
            f64::MIN_POSITIVE,
            f64::MAX,
            f64::MIN,
            5e-324,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NAN,
            1.0 + f64::EPSILON,
        ] {
            roundtrip(x);
        }
    }

    #[test]
    fn addition_matches_f64_when_exact() {
        let cases = [(1.0, 2.0), (0.5, 0.25), (3.0, -8.0), (1e10, 1e-3)];
        for (a, b) in cases {
            let s = BigFloat::from_f64(a).add(&BigFloat::from_f64(b));
            let expected = a + b;
            // Exactly representable sums must round back exactly.
            if (a + b) - a == b {
                assert_eq!(s.to_f64(), expected);
            } else {
                assert!((s.to_f64() - expected).abs() <= expected.abs() * 1e-15);
            }
        }
    }

    #[test]
    fn cancellation_is_exact_at_high_precision() {
        let x = BigFloat::from_f64(1.0e16);
        let one = BigFloat::one();
        let r = x.add(&one).sub(&x);
        assert_eq!(r.to_f64(), 1.0);
    }

    #[test]
    fn multiplication_matches_integers() {
        let a = BigFloat::from_i64(123456789);
        let b = BigFloat::from_i64(987654321);
        assert_eq!(a.mul(&b).to_f64(), 123456789.0 * 987654321.0);
    }

    #[test]
    fn division_accuracy() {
        let one = BigFloat::one();
        let three = BigFloat::from_i64(3);
        let third = one.div(&three);
        // 1/3 rounded back to double must equal the double division.
        assert_eq!(third.to_f64(), 1.0 / 3.0);
        // And multiplying back must be far closer to 1 than doubles can say.
        let back = third.mul(&three);
        assert!(back.sub(&one).abs().to_f64().abs() < 1e-60);
    }

    #[test]
    fn division_special_cases() {
        assert!(BigFloat::one().div(&BigFloat::zero()).is_infinite());
        assert!(BigFloat::zero().div(&BigFloat::zero()).is_nan());
        assert!(BigFloat::from_f64(-1.0)
            .div(&BigFloat::zero())
            .is_negative());
        assert!(BigFloat::zero().div(&BigFloat::one()).is_zero());
    }

    #[test]
    fn sqrt_accuracy() {
        let two = BigFloat::from_i64(2);
        let r = two.sqrt();
        assert_eq!(r.to_f64(), 2.0_f64.sqrt());
        let back = r.mul(&r).sub(&two).abs();
        assert!(back.to_f64() < 1e-70);
        assert!(BigFloat::from_f64(-4.0).sqrt().is_nan());
        assert_eq!(BigFloat::from_f64(4.0).sqrt().to_f64(), 2.0);
        assert_eq!(BigFloat::from_f64(1e300).sqrt().to_f64(), 1e150);
    }

    #[test]
    fn mul_fast_path_matches_general_pipeline() {
        // Dense 256-bit mantissas (division and square-root results) exercise
        // the round-bit/sticky logic; the reference result is computed
        // through the general pipeline: the 512-bit product is exact, so
        // rounding it to 256 bits once is exactly what `mul` must produce.
        let mut vals = vec![
            BigFloat::one().div(&BigFloat::from_i64(3)),
            BigFloat::from_i64(2).sqrt(),
            BigFloat::from_i64(10).div(&BigFloat::from_i64(7)).neg(),
            BigFloat::from_f64(1.0 + f64::EPSILON),
            BigFloat::from_f64(1e300),
            BigFloat::from_f64(5e-324),
            BigFloat::from_f64(-0.7),
        ];
        let seed = BigFloat::from_i64(97).sqrt();
        for k in 1..8 {
            vals.push(seed.div(&BigFloat::from_i64(k)));
        }
        for a in &vals {
            for b in &vals {
                let fast = a.mul(b);
                let exact = a.with_precision(512).mul(&b.with_precision(512));
                let general = exact.with_precision(256);
                assert_eq!(fast.precision(), 256);
                assert!(
                    fast.eq_value(&general),
                    "mantissa mismatch: {} * {}",
                    a.to_f64(),
                    b.to_f64()
                );
                assert_eq!(fast.exponent(), general.exponent());
                assert_eq!(fast.to_f64().to_bits(), general.to_f64().to_bits());
            }
        }
    }

    #[test]
    fn comparison_ordering() {
        let vals = [-1e300, -2.0, -1e-300, 0.0, 1e-300, 1.0, 1e300];
        for (i, &a) in vals.iter().enumerate() {
            for (j, &b) in vals.iter().enumerate() {
                let ba = BigFloat::from_f64(a);
                let bb = BigFloat::from_f64(b);
                assert_eq!(
                    ba.partial_cmp(&bb),
                    a.partial_cmp(&b),
                    "compare {a} vs {b} ({i},{j})"
                );
            }
        }
        assert_eq!(BigFloat::nan().partial_cmp(&BigFloat::one()), None);
    }

    #[test]
    fn trunc_floor_ceil_round() {
        let check = |x: f64| {
            let b = BigFloat::from_f64(x);
            assert_eq!(b.trunc().to_f64(), x.trunc(), "trunc {x}");
            assert_eq!(b.floor().to_f64(), x.floor(), "floor {x}");
            assert_eq!(b.ceil().to_f64(), x.ceil(), "ceil {x}");
            assert_eq!(b.round_nearest().to_f64(), x.round(), "round {x}");
        };
        for x in [
            0.0, 0.3, 0.5, 0.7, 1.0, 1.5, 2.5, -0.3, -0.5, -1.5, -2.5, 123456.789, -99999.999,
        ] {
            check(x);
        }
    }

    #[test]
    fn fmod_matches_f64() {
        let cases = [
            (7.5, 2.0),
            (-7.5, 2.0),
            (10.0, 3.0),
            (1e10, 7.0),
            (0.7, 0.2),
        ];
        for (a, b) in cases {
            let r = BigFloat::from_f64(a).fmod(&BigFloat::from_f64(b));
            let expect = a % b;
            assert!(
                (r.to_f64() - expect).abs() < 1e-9,
                "fmod({a},{b}) = {} expected {expect}",
                r.to_f64()
            );
        }
    }

    #[test]
    fn subnormal_conversion() {
        let tiny = 5e-324;
        assert_eq!(BigFloat::from_f64(tiny).to_f64(), tiny);
        let sub = 1.2e-310;
        assert_eq!(BigFloat::from_f64(sub).to_f64(), sub);
    }

    #[test]
    fn is_integer_detection() {
        assert!(BigFloat::from_f64(5.0).is_integer());
        assert!(BigFloat::from_f64(-3.0).is_integer());
        assert!(BigFloat::zero().is_integer());
        assert!(!BigFloat::from_f64(0.5).is_integer());
        assert!(!BigFloat::nan().is_integer());
        assert!(!BigFloat::infinity(false).is_integer());
    }

    #[test]
    fn precision_widening_and_narrowing() {
        let x = BigFloat::from_f64_prec(1.0 / 3.0, 128);
        assert_eq!(x.precision(), 128);
        let wide = x.with_precision(512);
        assert_eq!(wide.precision(), 512);
        assert_eq!(wide.to_f64(), 1.0 / 3.0);
    }

    #[test]
    fn default_precision_is_configurable() {
        let before = default_precision();
        set_default_precision(512);
        assert_eq!(default_precision(), 512);
        assert_eq!(BigFloat::from_f64(2.0).precision(), 512);
        set_default_precision(before);
    }

    #[test]
    fn special_values_carry_their_precision() {
        // Zeros, infinities and NaN remember the precision they were created
        // at, and operations stamp their result precision on special results
        // — so a threaded (non-default) shadow precision survives
        // special-value chains instead of falling back to the global default.
        let zero = BigFloat::from_f64_prec(0.0, 1024);
        assert_eq!(zero.precision(), 1024);
        assert_eq!(zero.exp().precision(), 1024); // exp(0) = 1 @ 1024 bits
        assert_eq!(zero.exp().sin().precision(), 1024);
        let inf = BigFloat::from_f64_prec(f64::INFINITY, 512);
        assert_eq!(inf.precision(), 512);
        assert_eq!(inf.atan().precision(), 512); // atan(∞) = π/2 @ 512 bits
        assert_eq!(BigFloat::from_f64_prec(f64::NAN, 512).precision(), 512);
        // Binary operations propagate the larger operand precision through
        // special results exactly like finite ones.
        let wide_finite = BigFloat::from_f64_prec(1.5, 320);
        assert_eq!(wide_finite.mul(&zero).precision(), 1024);
        assert_eq!(wide_finite.div(&zero).precision(), 1024);
        // Re-rounding stamps specials too.
        assert_eq!(zero.with_precision(128).precision(), 128);
        assert_eq!(inf.neg().precision(), 512);
        // Functions that *produce* specials stamp the operand precision.
        assert_eq!(BigFloat::from_f64_prec(1.0, 512).atanh().precision(), 512);
        assert_eq!(BigFloat::from_f64_prec(0.0, 512).ln().precision(), 512);
    }

    #[test]
    fn signed_zero_behaviour() {
        let nz = BigFloat::from_f64(-0.0);
        assert!(nz.is_zero());
        assert!(nz.is_negative());
        assert!(nz.eq_value(&BigFloat::zero()));
        assert_eq!(nz.to_f64().to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn infinity_arithmetic() {
        let inf = BigFloat::infinity(false);
        assert!(inf.add(&BigFloat::one()).is_infinite());
        assert!(inf.sub(&inf).is_nan());
        assert!(inf.mul(&BigFloat::zero()).is_nan());
        assert!(BigFloat::one().div(&inf).is_zero());
    }
}

//! Newton–Raphson division and square root on raw limb windows.
//!
//! The seed-era kernels ran division as a chain of whole-`BigFloat`
//! operations (a reciprocal refined by `x += x·(1 − a·x)` at full working
//! precision), paying a full-width multiply, round, and allocation per
//! Newton step. This module reformulates both operations as *integer*
//! problems on stack scratch windows:
//!
//! * division computes `Q = floor(Dividend / B)` where `Dividend = A·2^s`
//!   is the dividend mantissa scaled so `Q` has exactly `64·qn` bits
//!   (`qn = limbs_for(prec) + 1`, one guard limb below the target
//!   precision);
//! * square root computes `S = isqrt(floor(g·2^(128·qn)))` for the
//!   exponent-adjusted fraction `g ∈ [0.25, 1)`.
//!
//! Both run a precision-doubling Newton iteration on a reciprocal
//! (`z ≈ 1/(2d)` resp. `y ≈ 1/(2√g)`) seeded from the top limbs, where
//! each stage works only on the limb window that carries new information:
//! the residual `e = 1 − 2dz` (resp. `1 − 4gy²`) is tiny, so its sign
//! bits are sliced off and the correction product runs at the width of
//! the bits being gained, not the full precision. The estimate is then
//! finished with an **exact** fixup — the true remainder
//! `Dividend − Q̂·B` (resp. `Gbig − S²`) is computed and the estimate
//! stepped until the remainder is in range — so correct rounding never
//! depends on the Newton error analysis being tight, and the remainder
//! doubles as an exact sticky bit for [`Finite::round`].
//!
//! Divisors with a single significant limb (which includes every small
//! integer constant the transcendental series divide by, and every power
//! of two) skip Newton entirely for a word-at-a-time short division with
//! a precomputed Möller–Granlund reciprocal.
//!
//! The seed-era semantics are pinned by retained reference kernels —
//! bit-serial restoring long division and two-bits-per-step restoring
//! square root — selected by the debug-only `set_disable_fast_paths`
//! hook and compared bit for bit by the `newton_props` proptest suite.

use super::limbs::{self, Scratch};
use super::{fast_paths_enabled, limbs_for, Finite, Repr};
use std::cmp::Ordering;

/// Correctly-rounded division of finite nonzero mantissas: returns
/// `round(|a| / |b|)` at `prec` bits with sign `sign`.
pub(crate) fn div_finite(a: &Finite, b: &Finite, prec: u32, sign: bool) -> Repr {
    let na = a.limbs.len();
    let nb = b.limbs.len();
    let qn = limbs_for(prec) + 1;
    // ge = 1 when fa ≥ fb, so the quotient fraction (fa/fb)·2^(−ge) is in
    // [0.5, 1) — strictly: fa < fb and both in [0.5, 1) force fa/fb > 0.5.
    let ge = (limbs::cmp_top_aligned(&a.limbs, &b.limbs) != Ordering::Less) as i64;
    let exp_q = a.exp - b.exp + ge;
    let wd = qn + nb;
    // Dividend = floor(A · 2^s), scaled so Q = floor(Dividend / B) has
    // exactly 64·qn bits. A negative s (a wide dividend mantissa divided at
    // a narrow target precision) drops bits into the sticky flag; nested
    // floors leave the quotient unchanged.
    let s = 64 * (wd as i64 - na as i64) - ge;
    let (mut dbuf, pre_sticky) = build_shifted(&a.limbs, s, wd);
    let dividend = &mut dbuf[..wd];
    let mut q = Scratch::zeroed(qn + 1);
    let rem_sticky = if !fast_paths_enabled() {
        telemetry::BIGFLOAT_DIV_SCHOOLBOOK.incr();
        div_core_long(dividend, &b.limbs, qn, &mut q)
    } else if limbs::is_zero(&b.limbs[..nb - 1]) {
        telemetry::BIGFLOAT_DIV_WORD.incr();
        div_core_word(dividend, b.limbs[nb - 1], nb, qn, &mut q)
    } else if nb <= MG_THRESHOLD {
        telemetry::BIGFLOAT_DIV_SCHOOLBOOK.incr();
        div_core_mg(dividend, &b.limbs, qn, &mut q)
    } else {
        telemetry::BIGFLOAT_DIV_NEWTON.incr();
        div_core_newton(dividend, &b.limbs, qn, &mut q)
    };
    debug_assert_eq!(q[qn], 0);
    debug_assert_eq!(q[qn - 1] >> 63, 1);
    Finite::round(sign, &q[..qn], exp_q, prec, rem_sticky || pre_sticky)
}

/// Correctly-rounded square root of a positive finite mantissa at `prec`
/// bits.
pub(crate) fn sqrt_finite(f: &Finite, prec: u32) -> Repr {
    let na = f.limbs.len();
    let qn = limbs_for(prec) + 1;
    // a = g·2^(2·e2) with g ∈ [0.25, 1): odd exponents fold a halving into
    // the fraction, so √a = √g·2^e2 with √g ∈ [0.5, 1).
    let t = f.exp.div_euclid(2);
    let (e2, r1) = if f.exp.rem_euclid(2) == 1 {
        (t + 1, 1i64)
    } else {
        (t, 0i64)
    };
    let wg = 2 * qn;
    // Gbig = floor(g · 2^(128·qn)); S = isqrt(Gbig) then has 64·qn bits.
    let sh = 64 * (wg as i64 - na as i64) - r1;
    let (gbuf, pre_sticky) = build_shifted(&f.limbs, sh, wg);
    let gbig = &gbuf[..wg];
    let mut s = Scratch::zeroed(qn + 1);
    let pow2 = f.limbs[na - 1] == 1 << 63 && limbs::is_zero(&f.limbs[..na - 1]);
    let rem_sticky = if !fast_paths_enabled() {
        sqrt_core_digit(gbig, qn, &mut s)
    } else if pow2 && r1 == 1 {
        // g = 1/4 exactly (the one case where 1/(2√g) hits 1.0, outside
        // the Newton iterate's open interval): the root is 2^(N−1).
        s[qn - 1] = 1 << 63;
        false
    } else {
        match sqrt_core_newton(gbig, qn, &mut s) {
            Some(sticky) => sticky,
            None => {
                s.iter_mut().for_each(|l| *l = 0);
                sqrt_core_digit(gbig, qn, &mut s)
            }
        }
    };
    debug_assert_eq!(s[qn], 0);
    debug_assert_eq!(s[qn - 1] >> 63, 1);
    Finite::round(false, &s[..qn], e2, prec, rem_sticky || pre_sticky)
}

/// Copies `src` into a window of at least `width` limbs and shifts it by
/// `sh` bits (left for positive `sh`); a right shift returns the dropped
/// bits as a sticky flag.
fn build_shifted(src: &[u64], sh: i64, width: usize) -> (Scratch, bool) {
    let mut buf = Scratch::zeroed(width.max(src.len()));
    buf[..src.len()].copy_from_slice(src);
    if sh >= 0 {
        limbs::shl_in_place(&mut buf, sh as u64);
        (buf, false)
    } else {
        let sticky = limbs::shr_in_place(&mut buf, (-sh) as u64);
        (buf, sticky)
    }
}

// ----- retained reference kernels (debug-only dispatch + proptest pin) -----

/// Restoring long division, one quotient bit per step. This is the
/// semantics oracle the Newton path is pinned against; it also serves as
/// the release-mode safety net should the fixup ever fail to converge.
fn div_core_long(dividend: &[u64], b: &[u64], qn: usize, q: &mut [u64]) -> bool {
    let nb = b.len();
    debug_assert_eq!(dividend.len(), qn + nb);
    // rem = Dividend >> 64·qn, which the scaling guarantees is < B.
    let mut rem = Scratch::zeroed(nb + 1);
    rem[..nb].copy_from_slice(&dividend[qn..]);
    debug_assert!(limbs::cmp(&rem[..nb], b) == Ordering::Less);
    for bit in (0..64 * qn).rev() {
        // rem = 2·rem + next dividend bit; rem < B keeps it in nb+1 limbs.
        let mut carry = (dividend[bit / 64] >> (bit % 64)) & 1;
        for l in rem.iter_mut() {
            let new = (*l << 1) | carry;
            carry = *l >> 63;
            *l = new;
        }
        debug_assert_eq!(carry, 0);
        if rem[nb] != 0 || limbs::cmp(&rem[..nb], b) != Ordering::Less {
            limbs::sub_at(&mut rem, b, 0);
            q[bit / 64] |= 1u64 << (bit % 64);
        }
    }
    !limbs::is_zero(&rem)
}

/// Restoring square root, two bits per step: the integer-root analogue of
/// [`div_core_long`], with the invariant `Gbig_high = root² + rem`,
/// `rem ≤ 2·root`.
fn sqrt_core_digit(gbig: &[u64], qn: usize, s: &mut [u64]) -> bool {
    debug_assert_eq!(gbig.len(), 2 * qn);
    let mut rem = Scratch::zeroed(qn + 2);
    let mut root = Scratch::zeroed(qn + 2);
    let mut t = Scratch::zeroed(qn + 2);
    for step in (0..64 * qn).rev() {
        // rem = 4·rem + next two bits of Gbig (rem ≤ 2·root < 2^(N+1)
        // keeps this in qn+2 limbs).
        let mut carry = (gbig[(2 * step) / 64] >> ((2 * step) % 64)) & 0b11;
        for l in rem.iter_mut() {
            let new = (*l << 2) | carry;
            carry = *l >> 62;
            *l = new;
        }
        debug_assert_eq!(carry, 0);
        // Trial subtrahend 4·root + 1: accepting appends a 1-bit to root.
        t.copy_from_slice(&root);
        limbs::shl_small_wrapping(&mut t, 2);
        t[0] |= 1;
        limbs::shl_small_wrapping(&mut root, 1);
        if limbs::cmp(&rem, &t) != Ordering::Less {
            limbs::sub_at(&mut rem, &t, 0);
            root[0] |= 1;
        }
    }
    s.copy_from_slice(&root[..s.len()]);
    !limbs::is_zero(&rem)
}

// ----- short path: single-significant-limb divisors -----

/// Möller–Granlund reciprocal of a normalized (top-bit-set) word:
/// `v = floor((2^128 − 1) / d) − 2^64`.
fn reciprocal_word(d: u64) -> u64 {
    debug_assert_eq!(d >> 63, 1);
    ((u128::MAX / d as u128) - (1u128 << 64)) as u64
}

/// One step of schoolbook division by a normalized word using the
/// precomputed reciprocal: returns `(q, r)` with
/// `u1·2^64 + u0 = q·d + r`, requiring `u1 < d`.
#[inline]
fn div_2by1(u1: u64, u0: u64, d: u64, v: u64) -> (u64, u64) {
    debug_assert!(u1 < d);
    let t = (v as u128) * (u1 as u128) + (((u1 as u128) << 64) | u0 as u128);
    let mut q1 = (t >> 64) as u64;
    let q0 = t as u64;
    q1 = q1.wrapping_add(1);
    let mut r = u0.wrapping_sub(q1.wrapping_mul(d));
    if r > q0 {
        q1 = q1.wrapping_sub(1);
        r = r.wrapping_add(d);
    }
    if r >= d {
        q1 = q1.wrapping_add(1);
        r -= d;
    }
    (q1, r)
}

/// Division by a divisor whose mantissa has a single significant limb
/// (`B = b1·2^(64(nb−1))`, covering every small-integer series divisor and
/// every power of two): word-at-a-time short division.
fn div_core_word(dividend: &[u64], b1: u64, nb: usize, qn: usize, q: &mut [u64]) -> bool {
    // floor(Dividend / B) = floor((Dividend >> 64(nb−1)) / b1); the
    // dropped low limbs only feed sticky.
    let u = &dividend[nb - 1..];
    debug_assert_eq!(u.len(), qn + 1);
    let v = reciprocal_word(b1);
    let mut rem = u[qn];
    debug_assert!(rem < b1);
    for i in (0..qn).rev() {
        let (qd, r) = div_2by1(rem, u[i], b1, v);
        q[i] = qd;
        rem = r;
    }
    rem != 0 || !limbs::is_zero(&dividend[..nb - 1])
}

// ----- short path: few-limb divisors (Möller–Granlund 3-by-2 schoolbook) -----

/// Divisor width (in limbs) up to which schoolbook division with a
/// precomputed 3-by-2 word reciprocal beats the Newton iteration: with a
/// quadratic base multiply the Newton path only amortizes its window
/// bookkeeping once the per-step `submul` rows are long enough.
const MG_THRESHOLD: usize = 8;

/// Möller–Granlund reciprocal of a normalized two-limb divisor
/// `D = d1·2^64 + d0` (top bit of `d1` set):
/// `v = floor((2^192 − 1) / D) − 2^64`.
fn reciprocal_3by2(d1: u64, d0: u64) -> u64 {
    let mut v = reciprocal_word(d1);
    let mut p = d1.wrapping_mul(v).wrapping_add(d0);
    if p < d0 {
        v = v.wrapping_sub(1);
        if p >= d1 {
            v = v.wrapping_sub(1);
            p = p.wrapping_sub(d1);
        }
        p = p.wrapping_sub(d1);
    }
    let t = (v as u128) * (d0 as u128);
    let t1 = (t >> 64) as u64;
    let p2 = p.wrapping_add(t1);
    if p2 < t1 {
        v = v.wrapping_sub(1);
        if p2 > d1 || (p2 == d1 && (t as u64) >= d0) {
            v = v.wrapping_sub(1);
        }
    }
    v
}

/// One step of schoolbook division by a normalized two-limb divisor:
/// returns `(q, r1, r0)` with `(u2, u1, u0) = q·(d1, d0) + (r1, r0)`,
/// requiring `(u2, u1) < (d1, d0)`.
#[inline]
fn div_3by2(u2: u64, u1: u64, u0: u64, d1: u64, d0: u64, v: u64) -> (u64, u64, u64) {
    let q = (v as u128) * (u2 as u128) + (((u2 as u128) << 64) | u1 as u128);
    let mut q1 = (q >> 64) as u64;
    let q0 = q as u64;
    let r1 = u1.wrapping_sub(q1.wrapping_mul(d1));
    let d = ((d1 as u128) << 64) | d0 as u128;
    let t = (d0 as u128) * (q1 as u128);
    let mut r = (((r1 as u128) << 64) | u0 as u128)
        .wrapping_sub(t)
        .wrapping_sub(d);
    q1 = q1.wrapping_add(1);
    if (r >> 64) as u64 >= q0 {
        q1 = q1.wrapping_sub(1);
        r = r.wrapping_add(d);
    }
    if r >= d {
        q1 = q1.wrapping_add(1);
        r = r.wrapping_sub(d);
    }
    ((q1), (r >> 64) as u64, r as u64)
}

/// Knuth Algorithm D with Möller–Granlund 3-by-2 quotient digits: exact
/// word-at-a-time long division for divisors of up to [`MG_THRESHOLD`]
/// limbs. Unlike the Newton path there is no estimate/fixup phase — each
/// digit is final after at most one add-back — and the remainder falls out
/// of the loop, so sticky is a plain zero test.
fn div_core_mg(dividend: &mut [u64], b: &[u64], qn: usize, q: &mut [u64]) -> bool {
    let nb = b.len();
    debug_assert!(nb >= 2);
    debug_assert_eq!(dividend.len(), qn + nb);
    // The scaling in `div_finite` guarantees the top nb limbs (the initial
    // partial remainder) are < B, so the quotient fits qn limbs exactly.
    debug_assert!(limbs::cmp(&dividend[qn..], b) == Ordering::Less);
    let d1 = b[nb - 1];
    let d0 = b[nb - 2];
    let v = reciprocal_3by2(d1, d0);
    let u = dividend;
    for j in (0..qn).rev() {
        // Invariant: the remainder so far sits in u[..=j+nb] and is
        // < B·2^(64(j+1)), so (u[j+nb], u[j+nb−1]) ≤ (d1, d0).
        let u2 = u[j + nb];
        let u1 = u[j + nb - 1];
        let mut qhat = if u2 == d1 && u1 == d0 {
            // div_3by2 needs a strictly smaller top pair; the saturated
            // digit is correct here up to the shared add-back below.
            u64::MAX
        } else {
            div_3by2(u2, u1, u[j + nb - 2], d1, d0, v).0
        };
        let borrow = limbs::submul_1(&mut u[j..j + nb], b, qhat);
        if u2 < borrow {
            // qhat was one too large (3-by-2 digits overshoot by at most
            // one): add the divisor back.
            qhat -= 1;
            let carry = limbs::add_at(&mut u[j..j + nb], b, 0);
            u[j + nb] = u2.wrapping_sub(borrow).wrapping_add(carry as u64);
        } else {
            u[j + nb] = u2 - borrow;
        }
        debug_assert_eq!(u[j + nb], 0);
        q[j] = qhat;
    }
    !limbs::is_zero(&u[..nb])
}

// ----- Newton reciprocal iteration -----

/// Newton–Raphson reciprocal: for the divisor fraction `d = B/2^(64·nb)`
/// in (0.5, 1) — top bit set, more than one significant limb, so the word
/// path has already peeled off the `d = 0.5` boundary — computes
/// `z ≈ 1/(2d) ∈ (0.5, 1)` to `zn` limbs (`z = Z/2^(64·zn)`).
fn recip_limbs(b: &[u64], zn: usize) -> Scratch {
    let nb = b.len();
    let mut z = Scratch::zeroed(zn);
    // Seed from the top divisor limb: ~62 correct bits.
    // (2^128 − 1)/b1 ∈ [2^64, 2^65), halved into [2^63, 2^64).
    z[zn - 1] = ((u128::MAX / b[nb - 1] as u128) >> 1) as u64;
    // Stage scratch, allocated once and re-sliced per stage (every mul
    // kernel fully overwrites its output window, so no re-zeroing).
    let mut pb = Scratch::zeroed((zn + 1).min(nb) + zn);
    let mut esb = Scratch::zeroed(zn + 3);
    let mut dzb = Scratch::zeroed(2 * zn + 4);
    let mut w = 1usize;
    while w < zn {
        let w2 = (2 * w).min(zn);
        // d' = top db limbs of B, one guard limb past the target width.
        let db = (w2 + 1).min(nb);
        let l = db + w;
        let p = &mut pb[..l];
        limbs::mul_into(p, &b[nb - db..], &z[zn - w..]);
        // e = 1 − 2·d'·z': d'z' ∈ (0.25, 0.5]·(1 ± ε), so shifting the
        // product up one bit and negating mod 1 leaves the residual as a
        // small signed two's-complement fraction.
        limbs::shl_small_wrapping(p, 1);
        limbs::negate_in_place(p);
        // z += z·e
        apply_correction(&mut z, &pb[..l], w, w2, 0, &mut esb, &mut dzb);
        // Clear everything below the refined window: the correction may
        // deposit extra low bits the next stage's truncated products will
        // not see, and leaving them would freeze them in as error. The
        // buffer must always equal its own truncation exactly.
        for l in z[..zn - w2].iter_mut() {
            *l = 0;
        }
        w = w2;
    }
    z
}

/// Applies the Newton update `z += z·e·2^(−extra_shift)` where `e` is a
/// signed two's-complement fraction `E/2^(64·len)` (the stage residual),
/// refining `z` to `w2` correct limbs. The window of `e` that enters the
/// correction product is found by *scanning* for its actual top
/// significant limb rather than trusting the nominal ladder position:
/// the f64/word seeds start below 64 correct bits, so the true error can
/// sit a limb or two above where a `w`-limbs-correct ladder would put
/// it, and a window keyed to the claim would drop those bits as sign
/// extension and never correct them.
/// `esb`/`dzb` are caller-owned scratch for the |e| window and the
/// correction product, at least `w2 + 2` and `zn + w2 + 2` limbs.
fn apply_correction(
    z: &mut Scratch,
    e: &[u64],
    w: usize,
    w2: usize,
    extra_shift: u32,
    esb: &mut [u64],
    dzb: &mut [u64],
) {
    let zn = z.len();
    let l = e.len();
    let e_neg = e[l - 1] >> 63 == 1;
    let fill = if e_neg { u64::MAX } else { 0 };
    // Top significant limb of |e| (sign-fill limbs above it carry no
    // information; one is kept in the window for the boundary carry).
    let top = match e.iter().rposition(|&limb| limb != fill) {
        Some(t) => t,
        None => return, // e ∈ {0, −2^(−64·l)}: below every guard width
    };
    // Window bottom sits at the stage's absolute target depth
    // 2^(−64(w2+2)) — limbs below it are beyond the guard width of the
    // precision being gained, wherever the top happens to be.
    let hi = (top + 2).min(l);
    let bot = l as i64 - w2 as i64 - 2;
    if (hi as i64) <= bot {
        return; // |e| already below the target depth
    }
    let lo = bot.max(0) as usize;
    let es = &mut esb[..hi - lo];
    es.copy_from_slice(&e[lo..hi]);
    if e_neg {
        // |e| = ¬E + 1 over the full width; the +1 reaches limb `lo` only
        // if every dropped low limb is zero.
        for limb in es.iter_mut() {
            *limb = !*limb;
        }
        if limbs::is_zero(&e[..lo]) {
            let carry = limbs::add_at(es, &[1], 0);
            debug_assert!(!carry);
        }
    }
    // dz = ztop·|e|: enough top limbs of z that the truncation error
    // |e|·2^(−64m) clears the target depth. l − top ≈ how many limbs
    // down |e| starts, so m grows automatically when the error is
    // running behind the ladder; it is capped at z's significant width
    // `w` — limbs below that window are exact zeros and multiplying by
    // them gains nothing.
    let m = (w2 + 3).saturating_sub(l - top).clamp(1, w.min(zn));
    let dz = &mut dzb[..m + (hi - lo)];
    limbs::mul_into(dz, &z[zn - m..], es);
    if extra_shift > 0 {
        limbs::shr_in_place(dz, extra_shift as u64);
    }
    // Alignment: dz = DZ·2^(64(lo − l − m)), applied in z's units of
    // 2^(−64·zn); a negative limb offset truncates dz from below.
    let offset = zn as i64 - m as i64 + lo as i64 - l as i64;
    let (dz_slice, off) = if offset >= 0 {
        (&dz[..], offset as usize)
    } else {
        let drop = (-offset) as usize;
        if drop >= dz.len() {
            return;
        }
        (&dz[drop..], 0)
    };
    // Saturate on overflow in either direction: the true iterate lives in
    // (0.5, 1), but a correction computed while the estimate is still
    // coarse can overshoot the buffer's range; clamping keeps the next
    // residual meaningful and the exact fixup guarantees the result.
    if e_neg {
        if limbs::sub_at(z, dz_slice, off) {
            z.iter_mut().for_each(|limb| *limb = 0);
            z[zn - 1] = 1 << 63;
        }
    } else if limbs::add_at(z, dz_slice, off) {
        z.iter_mut().for_each(|limb| *limb = u64::MAX);
    }
}

/// Newton division: estimate `Q̂ = Dividend·2z·2^(−64·nb)` from a
/// truncated top product, then fix up exactly.
fn div_core_newton(dividend: &[u64], b: &[u64], qn: usize, q: &mut [u64]) -> bool {
    let wd = dividend.len();
    let zn = qn + 1;
    let z = recip_limbs(b, zn);
    // Truncated product of the top dividend limbs with z: keep the top
    // qn+2 comba columns (two guard limbs below the quotient's lsb).
    let ma = (zn + 1).min(wd);
    let cut = ma + zn - (qn + 2);
    let mut pp = Scratch::zeroed(qn + 2);
    limbs::mul_trunc_into(&mut pp, &dividend[wd - ma..], &z, cut);
    // Q̂ = PP_hi·2^(1−128).
    limbs::shr_in_place(&mut pp, 127);
    q[..qn + 1].copy_from_slice(&pp[..qn + 1]);
    match correct_quotient(q, dividend, b) {
        Some(sticky) => sticky,
        None => {
            // The estimate was too far off to fix up (never observed;
            // asserted against in debug builds). Fall back to the exact
            // reference kernel rather than risk a wrong quotient.
            q.iter_mut().for_each(|l| *l = 0);
            div_core_long(dividend, b, qn, q)
        }
    }
}

/// Exact division fixup: computes the true remainder
/// `R = Dividend − Q̂·B` and steps `Q̂` until `0 ≤ R < B`, so the result
/// is `floor(Dividend/B)` regardless of the estimate's error. Returns
/// `Some(R ≠ 0)`, or `None` if the estimate is implausibly far off.
fn correct_quotient(q: &mut [u64], dividend: &[u64], b: &[u64]) -> Option<bool> {
    let nb = b.len();
    let wd = dividend.len();
    let wr = wd + 1;
    let mut t = Scratch::zeroed(q.len() + nb);
    limbs::mul_into(&mut t, q, b);
    debug_assert_eq!(t.len(), wr);
    // R = Dividend − Q̂·B, two's complement over wr limbs.
    let mut r = Scratch::zeroed(wr);
    r[..wd].copy_from_slice(dividend);
    limbs::sub_at(&mut r, &t, 0);
    let mut m = Scratch::zeroed(wr);
    let mut cb = Scratch::zeroed(nb + 1);
    for iter in 0..64 {
        debug_assert!(iter < 32, "division fixup drifting: bad Newton estimate");
        let neg = r[wr - 1] >> 63 == 1;
        m.copy_from_slice(&r);
        if neg {
            limbs::negate_in_place(&mut m);
        }
        let h = match m.iter().rposition(|&l| l != 0) {
            None => return Some(false), // exact
            Some(h) => h,
        };
        if !neg && (h < nb - 1 || (h == nb - 1 && limbs::cmp(&m[..nb], b) == Ordering::Less)) {
            return Some(true); // 0 < R < B
        }
        // Single-word correction c·2^(64·off) ≤ |R|/B (floor'd numerator,
        // ceil'd denominator keep it an underestimate, so each side
        // converges monotonically), clamped up to 1 to guarantee progress.
        let (c, off) = if h >= nb {
            let num = ((m[h] as u128) << 64) | m[h - 1] as u128;
            let c128 = num / (b[nb - 1] as u128 + 1);
            if c128 >> 64 != 0 {
                ((c128 >> 64) as u64, h - nb + 1)
            } else {
                ((c128 as u64).max(1), h - nb)
            }
        } else {
            (1u64, 0usize)
        };
        if off + nb + 1 > wr || off >= q.len() {
            return None;
        }
        mul_word_into(&mut cb, b, c);
        if neg {
            limbs::sub_at(q, &[c], off);
            limbs::add_at(&mut r, &cb, off);
        } else {
            limbs::add_at(q, &[c], off);
            limbs::sub_at(&mut r, &cb, off);
        }
    }
    None
}

/// `out = a · w` (one extra limb for the carry).
fn mul_word_into(out: &mut [u64], a: &[u64], w: u64) {
    debug_assert_eq!(out.len(), a.len() + 1);
    let mut carry = 0u64;
    for (o, &x) in out.iter_mut().zip(a) {
        let p = (x as u128) * (w as u128) + carry as u128;
        *o = p as u64;
        carry = (p >> 64) as u64;
    }
    out[a.len()] = carry;
}

/// Newton square root via the reciprocal root: `y ≈ 1/(2√g) ∈ (0.5, 1)`
/// (the `g = 1/4` boundary is special-cased by the caller), refined by
/// `y += y·(1 − 4gy²)/2`, then `S = 2·g·y` with an exact fixup. Returns
/// `Some(remainder ≠ 0)`, or `None` to fall back to the digit kernel.
fn sqrt_core_newton(gbig: &[u64], qn: usize, s: &mut [u64]) -> Option<bool> {
    let wg = 2 * qn;
    let zn = qn + 1;
    let mut y = Scratch::zeroed(zn);
    // f64 seed from the top 128 bits of g: ~50 correct bits.
    let gf = (gbig[wg - 1] as f64) * 2f64.powi(-64) + (gbig[wg - 2] as f64) * 2f64.powi(-128);
    let y0f = 0.5 / gf.sqrt();
    let y0 = if y0f >= 1.0 {
        u64::MAX
    } else {
        ((y0f * 18446744073709551616.0) as u64) | (1 << 63)
    };
    // One word-width Newton step lifts the ~48-bit f64 seed to ~60 bits,
    // keeping the ladder's doubled precision from falling behind the limb
    // window when the stage count is a power of two (where the final
    // stage is a full doubling with no truncation slack to regenerate).
    let y2 = ((y0 as u128 * y0 as u128) >> 64) as u64;
    let gy2 = ((gbig[wg - 1] as u128 * y2 as u128) >> 64) as i128;
    let e0 = (1i128 << 62) - gy2;
    let y1 = y0 as i128 + ((y0 as i128 * e0) >> 63);
    y[zn - 1] = y1.clamp(1i128 << 63, u64::MAX as i128) as u64;
    // Stage scratch, allocated once and re-sliced per stage.
    let mut ysqb = Scratch::zeroed(2 * zn);
    let mut pb = Scratch::zeroed((zn + 2).min(wg) + zn + 1);
    let mut esb = Scratch::zeroed(zn + 3);
    let mut dzb = Scratch::zeroed(2 * zn + 4);
    let mut w = 1usize;
    while w < zn {
        let w2 = (2 * w).min(zn);
        // y'² from the top w limbs, truncated to one guard limb past the
        // target width.
        let ysq = &mut ysqb[..2 * w];
        limbs::mul_into(ysq, &y[zn - w..], &y[zn - w..]);
        let ts = (w2 + 1).min(2 * w);
        let db = (w2 + 2).min(wg);
        let l = db + ts;
        let p = &mut pb[..l];
        limbs::mul_into(p, &gbig[wg - db..], &ysq[2 * w - ts..]);
        // e = 1 − 4·g·y²: two bits up, negate mod 1.
        limbs::shl_small_wrapping(p, 2);
        limbs::negate_in_place(p);
        // y += y·e/2
        apply_correction(&mut y, &pb[..l], w, w2, 1, &mut esb, &mut dzb);
        // Keep the buffer equal to its own truncation (see recip_limbs).
        for l in y[..zn - w2].iter_mut() {
            *l = 0;
        }
        w = w2;
    }
    // S = 2·g·y = √g, truncated top product, same layout as division.
    let ma = zn + 1;
    let cut = ma + zn - (qn + 2);
    let mut pp = Scratch::zeroed(qn + 2);
    limbs::mul_trunc_into(&mut pp, &gbig[wg - ma..], &y, cut);
    limbs::shr_in_place(&mut pp, 127);
    s[..qn + 1].copy_from_slice(&pp[..qn + 1]);
    correct_sqrt(s, gbig, qn)
}

/// Exact square-root fixup: computes `R = Gbig − S²` and steps `S` until
/// `0 ≤ R ≤ 2S` (the defining window of the integer root). A multi-word
/// remainder is absorbed with a single-word correction `c ≈ |R|/(2S)`
/// followed by a full residual recompute (mirroring the division fixup);
/// the ±1 endgame then lands exactly. Returns `Some(R ≠ 0)`, or `None`
/// if the estimate is implausibly far off.
fn correct_sqrt(s: &mut [u64], gbig: &[u64], qn: usize) -> Option<bool> {
    let wr = 2 * qn + 2;
    let mut sq = Scratch::zeroed(2 * (qn + 1));
    let mut r = Scratch::zeroed(wr);
    let mut m = Scratch::zeroed(wr);
    let mut t = Scratch::zeroed(qn + 2);
    let mut recompute = true;
    for iter in 0..64 {
        debug_assert!(iter < 32, "sqrt fixup drifting: bad Newton estimate");
        if recompute {
            // R = Gbig − S², two's complement over wr limbs.
            sq.iter_mut().for_each(|l| *l = 0);
            limbs::mul_into(&mut sq, s, s);
            debug_assert_eq!(sq.len(), wr);
            r.iter_mut().for_each(|l| *l = 0);
            r[..2 * qn].copy_from_slice(gbig);
            limbs::sub_at(&mut r, &sq, 0);
            recompute = false;
        }
        let neg = r[wr - 1] >> 63 == 1;
        // t = 2S + 1, the increment of S² for a unit step of S.
        t.iter_mut().for_each(|l| *l = 0);
        t[..s.len()].copy_from_slice(s);
        limbs::shl_small_wrapping(&mut t, 1);
        t[0] |= 1;
        if !neg && limbs::is_zero(&r[qn + 2..]) && limbs::cmp(&r[..qn + 2], &t) == Ordering::Less {
            return Some(!limbs::is_zero(&r));
        }
        m.copy_from_slice(&r);
        if neg {
            limbs::negate_in_place(&mut m);
        }
        let h = match m.iter().rposition(|&l| l != 0) {
            None => return Some(false), // exact
            Some(h) => h,
        };
        if h > qn || (h == qn && m[qn] >= 4) {
            // |R| spans multiple words of slack: apply c·2^(64·off) ≈
            // |R|/(2S) to S (floor'd numerator over ceil'd denominator
            // keeps it an underestimate) and recompute R exactly.
            let num = ((m[h] as u128) << 64) | m[h - 1] as u128;
            let den = (((t[qn] as u128) << 64) | t[qn - 1] as u128).saturating_add(1);
            let c128 = num / den;
            let (c, off) = if c128 >> 64 != 0 {
                ((c128 >> 64) as u64, h - qn + 1)
            } else {
                ((c128 as u64).max(1), h - qn)
            };
            if off >= s.len() {
                return None;
            }
            if neg {
                limbs::sub_at(s, &[c], off);
            } else {
                limbs::add_at(s, &[c], off);
            }
            recompute = true;
        } else if neg {
            // S too big: step down. With S' = S − 1 the remainder gains
            // 2S' + 1 = t − 2.
            limbs::sub_at(s, &[1], 0);
            limbs::sub_at(&mut t, &[2], 0);
            limbs::add_at(&mut r, &t, 0);
        } else {
            // R > 2S: the next root up still fits. R loses 2S + 1.
            limbs::sub_at(&mut r, &t, 0);
            limbs::add_at(s, &[1], 0);
        }
    }
    None
}

//! Lane-grouped evaluation of the unrolled 256-bit BigFloat kernels.
//!
//! The batched analysis hands [`crate::BatchReal::apply_lanes`] a lane
//! group per operation; for `DoubleDouble` that call lands in a SoA loop
//! the compiler vectorizes. BigFloat's limb kernels are carry chains that
//! no SIMD unit helps with, but the escalated tier still loses real time
//! to per-lane dispatch: every scalar call re-matches the `Repr` variants,
//! re-checks the fast-path conditions, and re-resolves the operation. The
//! functions here hoist all of that out of the lane loop — conforming
//! lanes (both operands finite, four inline limbs, 256-bit result) are
//! gathered contiguously, then a monomorphic loop runs the const-size
//! kernel (`add_finite_fast::<4, 5>`, `mul_finite_fast::<4, 8>`, the
//! Newton/reciprocal `div_finite`) back to back, letting the compiler
//! inline and schedule one unrolled body across the whole group.
//!
//! Bit-identity is structural: a conforming lane is dispatched to exactly
//! the kernel the scalar path would pick for the same operands, and every
//! non-conforming lane is reported back to the caller for the scalar
//! fallback. With `set_disable_fast_paths` the gather declines every lane.

use super::{fast_paths_enabled, newton, BigFloat, Finite, Repr};

/// The mantissa width (limbs) and result precision the lane kernels are
/// specialized for: the default 256-bit tier.
const LANE_LIMBS: usize = 4;
const LANE_PREC: u32 = 256;

/// A gathered binary lane group: contiguous conforming operand pairs plus
/// their original lane indices.
struct Gather<'a, const W: usize> {
    pairs: [Option<(&'a Finite, &'a Finite)>; W],
    lanes: [u8; W],
    len: usize,
    handled: u32,
}

impl<'a, const W: usize> Gather<'a, W> {
    /// Collects the active lanes whose operands both sit in the 4-limb /
    /// 256-bit representation the unrolled kernels cover.
    fn collect(a: &[Option<&'a BigFloat>; W], b: &[Option<&'a BigFloat>; W], mask: u32) -> Self {
        let mut g = Gather {
            pairs: [None; W],
            lanes: [0; W],
            len: 0,
            handled: 0,
        };
        if !fast_paths_enabled() {
            return g;
        }
        for l in 0..W {
            if (mask >> l) & 1 == 0 {
                continue;
            }
            if let (Some(x), Some(y)) = (a[l], b[l]) {
                if let (Repr::Finite(fa), Repr::Finite(fb)) = (&x.repr, &y.repr) {
                    if fa.prec == LANE_PREC
                        && fb.prec == LANE_PREC
                        && fa.limbs.len() == LANE_LIMBS
                        && fb.limbs.len() == LANE_LIMBS
                    {
                        g.pairs[g.len] = Some((fa, fb));
                        g.lanes[g.len] = l as u8;
                        g.len += 1;
                        g.handled |= 1 << l;
                    }
                }
            }
        }
        g
    }
}

/// Lane-grouped 256-bit addition. Returns the mask of lanes evaluated;
/// the caller owes the rest to the scalar path.
pub(crate) fn add_lanes<const W: usize>(
    a: &[Option<&BigFloat>; W],
    b: &[Option<&BigFloat>; W],
    mask: u32,
    out: &mut [Option<BigFloat>; W],
) -> u32 {
    let g = Gather::collect(a, b, mask);
    for i in 0..g.len {
        let (fa, fb) = g.pairs[i].expect("gathered lane");
        out[g.lanes[i] as usize] = Some(BigFloat {
            repr: BigFloat::add_finite_fast::<4, 5>(fa, fb),
        });
    }
    g.handled
}

/// Lane-grouped 256-bit subtraction: the scalar path negates the second
/// operand and adds, so the lane loop does the same (the mantissa copy is
/// an inline-limb stack move).
pub(crate) fn sub_lanes<const W: usize>(
    a: &[Option<&BigFloat>; W],
    b: &[Option<&BigFloat>; W],
    mask: u32,
    out: &mut [Option<BigFloat>; W],
) -> u32 {
    let g = Gather::collect(a, b, mask);
    for i in 0..g.len {
        let (fa, fb) = g.pairs[i].expect("gathered lane");
        let nb = Finite {
            neg: !fb.neg,
            ..fb.clone()
        };
        out[g.lanes[i] as usize] = Some(BigFloat {
            repr: BigFloat::add_finite_fast::<4, 5>(fa, &nb),
        });
    }
    g.handled
}

/// Lane-grouped 256-bit multiplication.
pub(crate) fn mul_lanes<const W: usize>(
    a: &[Option<&BigFloat>; W],
    b: &[Option<&BigFloat>; W],
    mask: u32,
    out: &mut [Option<BigFloat>; W],
) -> u32 {
    let g = Gather::collect(a, b, mask);
    for i in 0..g.len {
        let (fa, fb) = g.pairs[i].expect("gathered lane");
        out[g.lanes[i] as usize] = Some(BigFloat {
            repr: BigFloat::mul_finite_fast::<4, 8>(fa, fb, fa.neg != fb.neg),
        });
    }
    g.handled
}

/// Lane-grouped 256-bit division through the Newton/reciprocal kernel.
pub(crate) fn div_lanes<const W: usize>(
    a: &[Option<&BigFloat>; W],
    b: &[Option<&BigFloat>; W],
    mask: u32,
    out: &mut [Option<BigFloat>; W],
) -> u32 {
    let g = Gather::collect(a, b, mask);
    for i in 0..g.len {
        let (fa, fb) = g.pairs[i].expect("gathered lane");
        out[g.lanes[i] as usize] = Some(BigFloat {
            repr: newton::div_finite(fa, fb, LANE_PREC, fa.neg != fb.neg),
        });
    }
    g.handled
}

//! Double-double ("compensated pair") arithmetic.
//!
//! A [`DoubleDouble`] represents a real number as an unevaluated sum of two
//! doubles `hi + lo` with `|lo| <= ulp(hi)/2`, giving roughly 106 bits of
//! significand. It is a fast alternative shadow representation: precise
//! enough to measure up to ~50 bits of error in a double-precision client
//! computation, far cheaper than [`crate::BigFloat`].
//!
//! The error-free transformations (`two_sum`, `two_prod`) follow Knuth and
//! Dekker; the composite operations follow Bailey's QD library.

/// A number represented as the unevaluated sum of two doubles.
///
/// The invariant `hi = hi + lo` rounded to double (i.e. `lo` is a correction
/// smaller than half an ulp of `hi`) is maintained by every constructor and
/// operation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DoubleDouble {
    hi: f64,
    lo: f64,
}

/// Error-free sum: returns `(s, e)` with `s = fl(a + b)` and `a + b = s + e`
/// exactly. Shared with the lane-vectorized kernels in [`crate::dd_batch`],
/// which must execute exactly this operation sequence per lane.
#[inline]
pub(crate) fn two_sum(a: f64, b: f64) -> (f64, f64) {
    let s = a + b;
    let bb = s - a;
    let e = (a - (s - bb)) + (b - bb);
    (s, e)
}

/// Error-free sum assuming `|a| >= |b|`.
#[inline]
pub(crate) fn quick_two_sum(a: f64, b: f64) -> (f64, f64) {
    let s = a + b;
    let e = b - (s - a);
    (s, e)
}

/// Error-free product using fused multiply-add: `a * b = p + e` exactly.
#[inline]
pub(crate) fn two_prod(a: f64, b: f64) -> (f64, f64) {
    let p = a * b;
    let e = f64::mul_add(a, b, -p);
    (p, e)
}

impl DoubleDouble {
    /// The value zero.
    pub const ZERO: DoubleDouble = DoubleDouble { hi: 0.0, lo: 0.0 };
    /// The value one.
    pub const ONE: DoubleDouble = DoubleDouble { hi: 1.0, lo: 0.0 };

    /// Creates a double-double from a single double (exact).
    pub fn from_f64(x: f64) -> Self {
        DoubleDouble { hi: x, lo: 0.0 }
    }

    /// Creates a double-double from an unnormalized pair of doubles.
    pub fn from_parts(hi: f64, lo: f64) -> Self {
        let (s, e) = two_sum(hi, lo);
        DoubleDouble { hi: s, lo: e }
    }

    /// Assembles a double-double from already-normalized components without
    /// re-normalizing — the lane-vectorized kernels scatter their per-lane
    /// results through this.
    #[inline]
    pub(crate) fn raw(hi: f64, lo: f64) -> Self {
        DoubleDouble { hi, lo }
    }

    /// `const` form of [`DoubleDouble::raw`] for compile-time constants
    /// whose components are known to be normalized (checked in tests).
    pub(crate) const fn const_parts(hi: f64, lo: f64) -> Self {
        DoubleDouble { hi, lo }
    }

    /// The high (leading) component.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// The low (correction) component.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Rounds to the nearest double.
    pub fn to_f64(&self) -> f64 {
        self.hi
    }

    /// True if the value is NaN.
    pub fn is_nan(&self) -> bool {
        self.hi.is_nan()
    }

    /// True if the value is finite.
    pub fn is_finite(&self) -> bool {
        self.hi.is_finite()
    }

    /// True if the value is exactly zero.
    pub fn is_zero(&self) -> bool {
        self.hi == 0.0 && self.lo == 0.0
    }

    /// Addition.
    pub fn add(&self, other: &Self) -> Self {
        let (s, e) = two_sum(self.hi, other.hi);
        let e = e + self.lo + other.lo;
        let (hi, lo) = quick_two_sum(s, e);
        DoubleDouble { hi, lo }
    }

    /// Subtraction.
    pub fn sub(&self, other: &Self) -> Self {
        self.add(&other.neg())
    }

    /// Negation.
    pub fn neg(&self) -> Self {
        DoubleDouble {
            hi: -self.hi,
            lo: -self.lo,
        }
    }

    /// Absolute value.
    pub fn abs(&self) -> Self {
        if self.hi < 0.0 || (self.hi == 0.0 && self.lo < 0.0) {
            self.neg()
        } else {
            *self
        }
    }

    /// Multiplication.
    pub fn mul(&self, other: &Self) -> Self {
        let (p, e) = two_prod(self.hi, other.hi);
        let e = e + self.hi * other.lo + self.lo * other.hi;
        let (hi, lo) = quick_two_sum(p, e);
        DoubleDouble { hi, lo }
    }

    /// Division.
    pub fn div(&self, other: &Self) -> Self {
        let q1 = self.hi / other.hi;
        if !q1.is_finite() {
            return DoubleDouble::from_f64(q1);
        }
        // r = self - q1 * other
        let r = self.sub(&other.mul(&DoubleDouble::from_f64(q1)));
        let q2 = r.hi / other.hi;
        let r2 = r.sub(&other.mul(&DoubleDouble::from_f64(q2)));
        let q3 = r2.hi / other.hi;
        let (hi, lo) = quick_two_sum(q1, q2);
        DoubleDouble::from_parts(hi, lo + q3)
    }

    /// Square root.
    pub fn sqrt(&self) -> Self {
        if self.is_zero() {
            return DoubleDouble::ZERO;
        }
        if self.hi < 0.0 {
            return DoubleDouble::from_f64(f64::NAN);
        }
        let approx = self.hi.sqrt();
        if !approx.is_finite() {
            return DoubleDouble::from_f64(approx);
        }
        // One Newton step: sqrt(a) ~= x + (a - x^2) / (2x)
        let x = DoubleDouble::from_f64(approx);
        let diff = self.sub(&x.mul(&x));
        let correction = diff.div(&DoubleDouble::from_f64(2.0 * approx));
        x.add(&correction)
    }

    /// Comparison compatible with the IEEE total order on the leading
    /// component (NaN compares as incomparable, like `f64`).
    pub fn compare(&self, other: &Self) -> Option<std::cmp::Ordering> {
        if self.is_nan() || other.is_nan() {
            return None;
        }
        match self.hi.partial_cmp(&other.hi) {
            Some(std::cmp::Ordering::Equal) => self.lo.partial_cmp(&other.lo),
            ord => ord,
        }
    }
}

impl PartialOrd for DoubleDouble {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        self.compare(other)
    }
}

impl Default for DoubleDouble {
    fn default() -> Self {
        DoubleDouble::ZERO
    }
}

impl std::fmt::Display for DoubleDouble {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:e}", self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_small_integer_arithmetic() {
        let a = DoubleDouble::from_f64(3.0);
        let b = DoubleDouble::from_f64(4.0);
        assert_eq!(a.add(&b).to_f64(), 7.0);
        assert_eq!(a.mul(&b).to_f64(), 12.0);
        assert_eq!(b.sub(&a).to_f64(), 1.0);
        assert_eq!(b.div(&a).mul(&a).to_f64(), 4.0);
    }

    #[test]
    fn captures_cancellation_that_doubles_lose() {
        // (1e16 + 1) - 1e16 == 1 in double-double, not in doubles.
        let x = DoubleDouble::from_f64(1.0e16);
        let one = DoubleDouble::ONE;
        let result = x.add(&one).sub(&x);
        assert_eq!(result.to_f64(), 1.0);
    }

    #[test]
    fn sqrt_of_two_squares_back() {
        let two = DoubleDouble::from_f64(2.0);
        let r = two.sqrt();
        let back = r.mul(&r);
        assert!((back.to_f64() - 2.0).abs() < 1e-30 || back.to_f64() == 2.0);
        // The double-double square should be much closer to 2 than the
        // double-precision sqrt squared.
        let err = back.sub(&two).abs();
        assert!(err.hi.abs() < 1e-30);
    }

    #[test]
    fn division_has_small_residual() {
        let a = DoubleDouble::from_f64(1.0);
        let b = DoubleDouble::from_f64(3.0);
        let q = a.div(&b);
        let residual = q.mul(&b).sub(&a).abs();
        assert!(residual.hi.abs() < 1e-31);
    }

    #[test]
    fn negative_sqrt_is_nan() {
        assert!(DoubleDouble::from_f64(-1.0).sqrt().is_nan());
    }

    #[test]
    fn division_by_zero_is_infinite() {
        let q = DoubleDouble::ONE.div(&DoubleDouble::ZERO);
        assert!(q.hi().is_infinite());
    }

    #[test]
    fn ordering_uses_low_component_to_break_ties() {
        let a = DoubleDouble::from_parts(1.0, 1e-20);
        let b = DoubleDouble::from_parts(1.0, -1e-20);
        assert!(a > b);
    }

    #[test]
    fn abs_and_neg_roundtrip() {
        let a = DoubleDouble::from_f64(-2.5);
        assert_eq!(a.abs().to_f64(), 2.5);
        assert_eq!(a.neg().to_f64(), 2.5);
        assert_eq!(a.neg().neg().to_f64(), -2.5);
    }
}

//! Double-double elementary functions.
//!
//! The [`DoubleDouble`] shadow originally evaluated library calls by rounding
//! its operands to `f64` and calling libm (~53 accurate bits). That is far
//! too coarse for the tiered analysis, whose ulp-certificates must prove
//! that a double-double result rounds to the *same* double as the 256-bit
//! [`crate::BigFloat`] result. This module provides double-double-accurate
//! kernels (target relative error well below `2^-85`, typically `2^-95` or
//! better inside the certificate domains) for the transcendental operations
//! the certificates cover, following the classic QD recipes: argument
//! reduction with exact-product constant chunks, Taylor series whose terms
//! are formed with double-double divisions, and Newton refinement of an
//! `f64` seed.
//!
//! Operations without an accurate kernel here (`fmod`, the rounding family,
//! hyperbolics, …) keep the historical libm-on-`hi` fallback; the tiered
//! certificates simply refuse to certify them, so inputs that reach them
//! escalate to the `BigFloat` shadow.
//!
//! Every kernel is a pure scalar function; the lane-vectorized
//! [`crate::dd_batch`] fallback calls the same kernel per lane, so scalar
//! and batched evaluation stay bit-identical by construction.

use crate::dd::{quick_two_sum, two_sum, DoubleDouble};
use crate::real::{apply_f64, RealOp};

type Dd = DoubleDouble;

/// π as a double-double (QD's `_pi`: the rounded double plus its
/// correction word; validated against `BigFloat` in tests).
pub const PI: Dd = Dd::const_parts(std::f64::consts::PI, 1.2246467991473532e-16);
/// π/2 as a double-double.
pub const FRAC_PI_2: Dd = Dd::const_parts(std::f64::consts::FRAC_PI_2, 6.123233995736766e-17);
/// ln 2 as a double-double.
pub const LN_2: Dd = Dd::const_parts(std::f64::consts::LN_2, 2.3190468138462996e-17);
/// ln 10 as a double-double.
pub const LN_10: Dd = Dd::const_parts(std::f64::consts::LN_10, -2.1707562233822494e-16);

/// Exact scaling by a power of two (no rounding while both components stay
/// in range, which the kernels' domain guards ensure).
#[inline]
fn mul_pwr2(a: &Dd, p: f64) -> Dd {
    Dd::raw(a.hi() * p, a.lo() * p)
}

#[inline]
fn dd(x: f64) -> Dd {
    Dd::from_f64(x)
}

/// Knuth-style accurate double-double addition. Unlike [`DoubleDouble::add`]
/// (the fast "sloppy" kernel used by the shadow arithmetic itself), its
/// error stays a couple of ulps *of the result* even under catastrophic
/// cancellation — which the trig argument reduction relies on.
fn add_accurate(a: &Dd, b: &Dd) -> Dd {
    let (s1, e1) = two_sum(a.hi(), b.hi());
    let (s2, e2) = two_sum(a.lo(), b.lo());
    let (s1, e1) = quick_two_sum(s1, e1 + s2);
    let (hi, lo) = quick_two_sum(s1, e1 + e2);
    Dd::raw(hi, lo)
}

/// π/2 as five non-overlapping doubles (successive nearest-double roundings
/// of the 384-bit value, ~265 significant bits in total). The trig argument
/// reduction subtracts `k · chunk` products, each exact as a double-double
/// via `two_prod`, so the reduced argument keeps double-double accuracy for
/// quotients as large as the reduction limit allows.
fn pi_2_chunks() -> &'static [f64; 5] {
    static CHUNKS: std::sync::OnceLock<[f64; 5]> = std::sync::OnceLock::new();
    CHUNKS.get_or_init(|| {
        // π/2 = 2·atan(1), derived from the BigFloat oracle rather than
        // hand-transcribed digits.
        let mut v = crate::BigFloat::from_f64_prec(1.0, 384)
            .atan()
            .mul(&crate::BigFloat::from_f64_prec(2.0, 384));
        std::array::from_fn(|_| {
            let c = v.to_f64();
            v = v.sub(&crate::BigFloat::from_f64(c));
            c
        })
    })
}

/// `exp` with ~`2^-95` relative error for `hi ∈ (-708, 709)`; libm fallback
/// outside (overflow, deep underflow, non-finite). Below ~`-670` the scaled
/// low word goes subnormal and accuracy degrades gradually toward plain
/// double; the certificate domain stops well above that.
pub fn exp(a: &Dd) -> Dd {
    let x = a.hi();
    if !x.is_finite() || !(-708.0..=709.0).contains(&x) {
        return dd(x.exp());
    }
    // exp(x) = 2^m · (e^r)^512 with r = (x - m·ln2)/512, |r| ≤ ln2/1024.
    let m = (x / std::f64::consts::LN_2).round();
    let r = mul_pwr2(&a.sub(&LN_2.mul(&dd(m))), 1.0 / 512.0);
    // expm1(r) by Taylor; divisions keep every term accurate to ~2^-104.
    let mut term = mul_pwr2(&r.mul(&r), 0.5);
    let mut sum = r.add(&term);
    for k in 3..=12 {
        term = term.mul(&r).div(&dd(k as f64));
        sum = sum.add(&term);
        if term.hi().abs() < 1e-40 * sum.hi().abs() {
            break;
        }
    }
    // Undo the /512 scaling: (1+s)^2 = 1 + (2s + s²), nine times.
    for _ in 0..9 {
        sum = mul_pwr2(&sum, 2.0).add(&sum.mul(&sum));
    }
    let result = sum.add(&Dd::ONE);
    let scale = 2f64.powi(m as i32);
    Dd::raw(result.hi() * scale, result.lo() * scale)
}

/// `exp2(x) = exp(x·ln2)`; exact on integer arguments in the accurate
/// domain because the reduction cancels exactly.
pub fn exp2(a: &Dd) -> Dd {
    let x = a.hi();
    if !x.is_finite() || !(-1021.0..=1022.0).contains(&x) {
        return dd(x.exp2());
    }
    exp(&a.mul(&LN_2))
}

/// `expm1`, cancellation-free for small arguments.
pub fn expm1(a: &Dd) -> Dd {
    let x = a.hi();
    if !x.is_finite() || x > 700.0 {
        return dd(x.exp_m1());
    }
    if a.is_zero() {
        // Preserve the sign of zero like libm.
        return Dd::raw(x, 0.0);
    }
    if x.abs() > 0.34 {
        // No cancellation once |e^x − 1| is comparable to max(e^x, 1).
        return exp(a).sub(&Dd::ONE);
    }
    let mut term = *a;
    let mut sum = *a;
    for k in 2..=30 {
        term = term.mul(a).div(&dd(k as f64));
        sum = sum.add(&term);
        if term.hi().abs() < 1e-40 * sum.hi().abs() {
            break;
        }
    }
    sum
}

/// `ln`, via an `atanh`-style series near 1 and a Newton step on the libm
/// seed elsewhere: `ln a ≈ y₀ + (a·e^(−y₀) − 1)`.
pub fn log(a: &Dd) -> Dd {
    let x = a.hi();
    if !x.is_finite() || x <= 0.0 {
        return dd(x.ln());
    }
    if !(1e-290..1e290).contains(&x) {
        // Rescale by an exact power of two so the Newton step's exp stays
        // comfortably inside its accurate domain.
        let half_scale = dd(512.0).mul(&LN_2);
        return if x >= 1e290 {
            log(&mul_pwr2(a, 2f64.powi(-512))).add(&half_scale)
        } else {
            log(&mul_pwr2(a, 2f64.powi(512))).sub(&half_scale)
        };
    }
    if (1.0 - 2f64.powi(-10)..=1.0 + 2f64.powi(-10)).contains(&x) {
        // a − 1 is error-free here (Sterbenz), so the series sees the exact
        // reduced argument and stays relatively accurate as log(a) → 0.
        return log1p_series(&a.sub(&Dd::ONE));
    }
    let y0 = x.ln();
    let e = a.mul(&exp(&dd(-y0)));
    dd(y0).add(&e.sub(&Dd::ONE))
}

/// `log1p(z)` for `|z| ≤ ~2^-9` via `2·atanh(z/(2+z))`.
fn log1p_series(z: &Dd) -> Dd {
    let r = z.div(&dd(2.0).add(z));
    let rsq = r.mul(&r);
    let mut term = r;
    let mut sum = r;
    for k in [3.0f64, 5.0, 7.0, 9.0, 11.0] {
        term = term.mul(&rsq);
        sum = sum.add(&term.div(&dd(k)));
    }
    mul_pwr2(&sum, 2.0)
}

/// `log1p`, relatively accurate down to tiny arguments.
pub fn log1p(a: &Dd) -> Dd {
    let x = a.hi();
    if !x.is_finite() || x <= -1.0 {
        return dd(x.ln_1p());
    }
    if a.is_zero() {
        return Dd::raw(x, 0.0);
    }
    if x.abs() < 2f64.powi(-10) {
        return log1p_series(a);
    }
    log(&Dd::ONE.add(a))
}

/// `log2 = ln(x)/ln 2`.
pub fn log2(a: &Dd) -> Dd {
    let x = a.hi();
    if !x.is_finite() || x <= 0.0 {
        return dd(x.log2());
    }
    log(a).div(&LN_2)
}

/// `log10 = ln(x)/ln 10`.
pub fn log10(a: &Dd) -> Dd {
    let x = a.hi();
    if !x.is_finite() || x <= 0.0 {
        return dd(x.log10());
    }
    log(a).div(&LN_10)
}

/// `pow(a, b) = exp(b·ln a)` for strictly positive finite `a`; libm
/// fallback for every other case (negative bases, zeros, specials) and for
/// overflowing exponents.
pub fn pow(a: &Dd, b: &Dd) -> Dd {
    // `<= 0` plus the finiteness screen covers NaN bases too (NaN fails
    // both comparisons but not `is_finite`).
    if a.hi() <= 0.0 || !a.hi().is_finite() || !b.hi().is_finite() || b.is_zero() {
        return dd(a.hi().powf(b.hi()));
    }
    let t = b.mul(&log(a));
    if !t.hi().is_finite() || t.hi().abs() > 705.0 {
        return dd(a.hi().powf(b.hi()));
    }
    exp(&t)
}

/// Largest `|x|` the trig argument reduction accepts; the quotient
/// `round(x/(π/2))` stays an exact small integer below it.
const TRIG_REDUCE_LIMIT: f64 = 1.073741824e9; // 2^30

/// sin and cos of the reduced argument `|t| ≤ π/4 + ε` by Taylor series.
fn sin_cos_taylor(t: &Dd) -> (Dd, Dd) {
    let tsq = t.mul(t);
    // sin t = t − t³/3! + …
    let mut term = *t;
    let mut sin = *t;
    for k in 1..=15 {
        let denom = (2 * k) as f64 * (2 * k + 1) as f64;
        term = term.mul(&tsq).div(&dd(-denom));
        sin = sin.add(&term);
        if term.hi().abs() < 1e-40 {
            break;
        }
    }
    // cos t = 1 − t²/2! + …
    let mut term = Dd::ONE;
    let mut cos = Dd::ONE;
    for k in 1..=15 {
        let denom = (2 * k - 1) as f64 * (2 * k) as f64;
        term = term.mul(&tsq).div(&dd(-denom));
        cos = cos.add(&term);
        if term.hi().abs() < 1e-40 {
            break;
        }
    }
    (sin, cos)
}

/// (sin x, cos x) with chunked π/2 argument reduction; `None` when the
/// argument is outside the reduction range (callers fall back to libm).
fn sin_cos(a: &Dd) -> Option<(Dd, Dd)> {
    let x = a.hi();
    if !x.is_finite() || x.abs() > TRIG_REDUCE_LIMIT {
        return None;
    }
    let k = (x / std::f64::consts::FRAC_PI_2).round();
    let mut t = *a;
    if k != 0.0 {
        // t = a − k·(π/2): each k·chunk product is exact as a double-double,
        // and the accurate addition keeps the cancelling remainder's
        // relative error at the double-double level.
        let neg_k = dd(-k);
        for &chunk in pi_2_chunks() {
            t = add_accurate(&t, &dd(chunk).mul(&neg_k));
        }
    }
    let (s, c) = sin_cos_taylor(&t);
    let q = (k as i64).rem_euclid(4);
    Some(match q {
        0 => (s, c),
        1 => (c, s.neg()),
        2 => (s.neg(), c.neg()),
        _ => (c.neg(), s),
    })
}

/// `sin`.
pub fn sin(a: &Dd) -> Dd {
    match sin_cos(a) {
        Some((s, _)) => s,
        None => dd(a.hi().sin()),
    }
}

/// `cos`.
pub fn cos(a: &Dd) -> Dd {
    match sin_cos(a) {
        Some((_, c)) => c,
        None => dd(a.hi().cos()),
    }
}

/// `tan = sin/cos` from one shared reduction.
pub fn tan(a: &Dd) -> Dd {
    match sin_cos(a) {
        Some((s, c)) => s.div(&c),
        None => dd(a.hi().tan()),
    }
}

/// `atan`, by series for small arguments and one Newton-style correction of
/// the libm seed otherwise: `atan(a) ≈ z₀ + (a·cos z₀ − sin z₀)·cos z₀`.
pub fn atan(a: &Dd) -> Dd {
    let x = a.hi();
    if !x.is_finite() {
        return dd(x.atan());
    }
    if x.abs() > 1.0 {
        // The Newton correction linearizes around the seed, which breaks
        // down as tan becomes steep; fold onto [−1, 1] first.
        let r = atan(&Dd::ONE.div(a));
        return if x > 0.0 {
            FRAC_PI_2.sub(&r)
        } else {
            FRAC_PI_2.neg().sub(&r)
        };
    }
    if x.abs() < 0.015625 {
        // atan a = a − a³/3 + a⁵/5 − …, relatively accurate for small a.
        let asq = a.mul(a);
        let mut term = *a;
        let mut sum = *a;
        for k in 1..=10 {
            term = term.mul(&asq).neg();
            sum = sum.add(&term.div(&dd((2 * k + 1) as f64)));
            if term.hi().abs() < 1e-40 * sum.hi().abs() {
                break;
            }
        }
        return sum;
    }
    let z0 = x.atan();
    let (s, c) = sin_cos(&dd(z0)).expect("atan seed is finite and small");
    dd(z0).add(&a.mul(&c).sub(&s).mul(&c))
}

/// `atan2` for finite operands off the axes, with quadrant handling; libm
/// fallback on the axes and specials.
pub fn atan2(y: &Dd, x: &Dd) -> Dd {
    if !x.hi().is_finite() || !y.hi().is_finite() || x.is_zero() || y.hi() == 0.0 {
        return dd(y.hi().atan2(x.hi()));
    }
    let r = atan(&y.div(x));
    if x.hi() > 0.0 {
        r
    } else if y.hi() > 0.0 {
        r.add(&PI)
    } else {
        r.sub(&PI)
    }
}

/// `asin(a) = atan2(a, √((1−a)(1+a)))`.
pub fn asin(a: &Dd) -> Dd {
    let x = a.hi();
    if !x.is_finite() || x.abs() > 1.0 {
        return dd(x.asin());
    }
    if x.abs() == 1.0 && a.lo() == 0.0 {
        return if x > 0.0 { FRAC_PI_2 } else { FRAC_PI_2.neg() };
    }
    let cos = Dd::ONE.sub(a).mul(&Dd::ONE.add(a)).sqrt();
    atan2(a, &cos)
}

/// `acos(a) = atan2(√((1−a)(1+a)), a)`.
pub fn acos(a: &Dd) -> Dd {
    let x = a.hi();
    if !x.is_finite() || x.abs() > 1.0 {
        return dd(x.acos());
    }
    if x == 1.0 && a.lo() == 0.0 {
        return Dd::ZERO;
    }
    if x == -1.0 && a.lo() == 0.0 {
        return PI;
    }
    let sin = Dd::ONE.sub(a).mul(&Dd::ONE.add(a)).sqrt();
    atan2(&sin, a)
}

/// `cbrt`, one Newton step on the libm seed: `x·(1 + (a/x³ − 1)/3)`.
pub fn cbrt(a: &Dd) -> Dd {
    let x = a.hi();
    if !x.is_finite() || a.is_zero() {
        return Dd::raw(x.cbrt(), 0.0);
    }
    if !(1e-250..1e250).contains(&x.abs()) {
        // Keep z³ and its two_prod residuals in normal range: rescale by an
        // exact power of 2³ (528 = 3 · 176).
        return if x.abs() >= 1e250 {
            mul_pwr2(&cbrt(&mul_pwr2(a, 2f64.powi(-528))), 2f64.powi(176))
        } else {
            mul_pwr2(&cbrt(&mul_pwr2(a, 2f64.powi(528))), 2f64.powi(-176))
        };
    }
    let z = dd(x.cbrt());
    let r = a.div(&z.mul(&z).mul(&z));
    z.add(&z.mul(&r.sub(&Dd::ONE)).div(&dd(3.0)))
}

/// Evaluates a library-call operation (everything outside the hardware set
/// `+ − × ÷ neg |·| √ fma`) on double-double operands: the accurate kernels
/// above where available, the historical libm-on-`hi` fallback otherwise.
///
/// # Panics
///
/// Panics if `args.len() != op.arity()`.
pub fn apply_library(op: RealOp, args: &[&Dd]) -> Dd {
    assert_eq!(args.len(), op.arity(), "arity mismatch for {op}");
    match op {
        RealOp::Exp => exp(args[0]),
        RealOp::Exp2 => exp2(args[0]),
        RealOp::Expm1 => expm1(args[0]),
        RealOp::Log => log(args[0]),
        RealOp::Log2 => log2(args[0]),
        RealOp::Log10 => log10(args[0]),
        RealOp::Log1p => log1p(args[0]),
        RealOp::Pow => pow(args[0], args[1]),
        RealOp::Sin => sin(args[0]),
        RealOp::Cos => cos(args[0]),
        RealOp::Tan => tan(args[0]),
        RealOp::Asin => asin(args[0]),
        RealOp::Acos => acos(args[0]),
        RealOp::Atan => atan(args[0]),
        RealOp::Atan2 => atan2(args[0], args[1]),
        RealOp::Cbrt => cbrt(args[0]),
        _ => {
            // Documented accuracy limitation of the fast shadow for the
            // remaining library calls (~53 bits); the tiered certificates
            // never certify these, so they always escalate to BigFloat.
            let mut buf = [0.0f64; crate::real::MAX_ARITY];
            for (slot, a) in buf.iter_mut().zip(args) {
                *slot = a.to_f64();
            }
            dd(apply_f64(op, &buf[..args.len()]))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BigFloat, Real};

    /// Relative error of a dd value against the 256-bit BigFloat oracle.
    fn rel_err_vs_big(got: &Dd, op: RealOp, args: &[f64]) -> f64 {
        let big_args: Vec<BigFloat> = args.iter().map(|&a| BigFloat::from_f64(a)).collect();
        let want = BigFloat::apply(op, &big_args);
        if want.is_nan() || got.is_nan() {
            assert_eq!(want.is_nan(), got.is_nan(), "{op} on {args:?}");
            return 0.0;
        }
        let got_big = BigFloat::from_f64(got.hi()).add(&BigFloat::from_f64(got.lo()));
        let diff = got_big.sub(&want).abs();
        if want.to_f64() == 0.0 {
            return diff.to_f64();
        }
        diff.div(&want.abs()).to_f64()
    }

    #[test]
    fn constants_match_bigfloat() {
        let pi = BigFloat::from_f64(1.0).atan().mul(&BigFloat::from_f64(4.0));
        let half_pi = BigFloat::from_f64(1.0).atan().mul(&BigFloat::from_f64(2.0));
        for (c, big) in [
            (PI, pi),
            (FRAC_PI_2, half_pi),
            (LN_2, BigFloat::from_f64(2.0).ln()),
            (LN_10, BigFloat::from_f64(10.0).ln()),
        ] {
            let got = BigFloat::from_f64(c.hi()).add(&BigFloat::from_f64(c.lo()));
            let err = got.sub(&big).abs().div(&big.abs()).to_f64();
            assert!(err < 2f64.powi(-104), "constant off by {err:e}");
        }
    }

    #[test]
    fn pi_2_chunks_are_nonoverlapping_and_sum_to_half_pi() {
        let chunks = pi_2_chunks();
        assert_eq!(chunks[0], std::f64::consts::FRAC_PI_2);
        for w in chunks.windows(2) {
            assert!(w[1].abs() <= w[0].abs() * 2f64.powi(-52), "{w:?}");
        }
        let mut sum = BigFloat::from_f64_prec(0.0, 384);
        for &c in chunks {
            sum = sum.add(&BigFloat::from_f64(c));
        }
        let half_pi = BigFloat::from_f64_prec(1.0, 384)
            .atan()
            .mul(&BigFloat::from_f64_prec(2.0, 384));
        let err = sum.sub(&half_pi).abs().to_f64();
        assert!(err < 2f64.powi(-250), "chunk sum off by {err:e}");
    }

    #[test]
    fn unary_kernels_track_bigfloat_to_85_bits() {
        let tol = 2f64.powi(-85);
        let grid: Vec<f64> = vec![
            1e-30,
            1e-9,
            0.001,
            0.0625,
            0.24,
            0.5,
            0.75,
            1.0,
            1.0 + 1e-14,
            1.5,
            2.0,
            std::f64::consts::E,
            10.0,
            100.5,
            1e4,
            1e8,
            444.0,
            700.0,
            1e300,
            1e-300,
        ];
        for &x in &grid {
            for (op, dom) in [
                (RealOp::Exp, x <= 700.0),
                (RealOp::Expm1, x <= 700.0),
                (RealOp::Exp2, x.abs() <= 1000.0),
                (RealOp::Log, x > 0.0),
                (RealOp::Log2, x > 0.0),
                (RealOp::Log10, x > 0.0),
                (RealOp::Log1p, true),
                (RealOp::Sin, x.abs() < TRIG_REDUCE_LIMIT),
                (RealOp::Cos, x.abs() < TRIG_REDUCE_LIMIT),
                (RealOp::Tan, x.abs() < TRIG_REDUCE_LIMIT),
                (RealOp::Atan, true),
                (RealOp::Asin, x.abs() <= 1.0),
                (RealOp::Acos, x.abs() <= 1.0),
                (RealOp::Cbrt, true),
            ] {
                if !dom {
                    continue;
                }
                for &signed in &[x, -x] {
                    if matches!(op, RealOp::Log | RealOp::Log2 | RealOp::Log10) && signed <= 0.0 {
                        continue;
                    }
                    if op == RealOp::Log1p && signed <= -1.0 {
                        continue;
                    }
                    if matches!(op, RealOp::Asin | RealOp::Acos) && signed.abs() > 1.0 {
                        continue;
                    }
                    // The scaled-down low word of exp goes subnormal below
                    // ~e^-670; accuracy there is documented as degraded.
                    if matches!(op, RealOp::Exp | RealOp::Expm1) && signed < -670.0 {
                        continue;
                    }
                    let got = apply_library(op, &[&dd(signed)]);
                    let err = rel_err_vs_big(&got, op, &[signed]);
                    assert!(err < tol, "{op}({signed}) rel err {err:e}");
                }
            }
        }
    }

    #[test]
    fn binary_kernels_track_bigfloat_to_85_bits() {
        let tol = 2f64.powi(-85);
        let pairs = [
            (2.0, 0.5),
            (0.3, 7.0),
            (10.0, -3.25),
            (1.5, 100.0),
            (0.9999, 250.0),
            (3.0, 0.0),
        ];
        for &(a, b) in &pairs {
            let got = pow(&dd(a), &dd(b));
            let err = rel_err_vs_big(&got, RealOp::Pow, &[a, b]);
            assert!(err < tol, "pow({a},{b}) rel err {err:e}");
        }
        let quads = [
            (1.0, 2.0),
            (-1.0, 2.0),
            (3.0, -4.0),
            (-0.5, -0.25),
            (1e-8, 1.0),
        ];
        for &(y, x) in &quads {
            let got = atan2(&dd(y), &dd(x));
            let err = rel_err_vs_big(&got, RealOp::Atan2, &[y, x]);
            assert!(err < tol, "atan2({y},{x}) rel err {err:e}");
        }
    }

    #[test]
    fn kernels_preserve_low_order_operand_bits() {
        // The point of the accurate kernels: a perturbation far below f64
        // precision must move the result, which the old libm-on-hi fallback
        // lost entirely.
        let a = dd(1.0).add(&dd(1e-25));
        let diff = exp(&a).sub(&exp(&dd(1.0)));
        assert!(
            (diff.to_f64() - std::f64::consts::E * 1e-25).abs() < 1e-28,
            "exp ignored the low word: {diff:?}"
        );
    }

    #[test]
    fn special_values_follow_libm() {
        assert!(log(&dd(-1.0)).is_nan());
        assert_eq!(log(&dd(0.0)).hi(), f64::NEG_INFINITY);
        assert_eq!(exp(&dd(f64::NEG_INFINITY)).hi(), 0.0);
        assert_eq!(exp(&dd(f64::INFINITY)).hi(), f64::INFINITY);
        assert!(sin(&dd(f64::INFINITY)).is_nan());
        assert!(asin(&dd(1.5)).is_nan());
        assert!(pow(&dd(f64::NAN), &dd(2.0)).is_nan());
        assert_eq!(expm1(&dd(-0.0)).hi().to_bits(), (-0.0f64).to_bits());
        assert_eq!(atan2(&dd(0.0), &dd(1.0)).hi(), 0.0);
        assert_eq!(cbrt(&dd(-8.0)).to_f64(), -2.0);
        assert_eq!(asin(&dd(1.0)).to_f64(), std::f64::consts::FRAC_PI_2);
        assert_eq!(acos(&dd(-1.0)).to_f64(), std::f64::consts::PI);
        assert_eq!(exp2(&dd(10.0)).to_f64(), 1024.0);
        assert_eq!(exp2(&dd(10.0)).lo(), 0.0);
    }
}

//! Ulp-certificates for the tiered adaptive-precision analysis.
//!
//! The tiered analysis wants to run the cheap [`DoubleDouble`] shadow and
//! fall back to the expensive [`crate::BigFloat`] shadow only where the two
//! could *observably* differ. Every analysis observable funnels through two
//! decisions per computed shadow value: how it **rounds to a double**
//! (operand roundings and `to_f64` feed `bits_error`), and how it
//! **compares** against another shadow value (branch agreement,
//! compensation detection). This module maintains, per shadow value, a
//! conservative absolute error bound `E` with the invariant
//!
//! > |value(dd) − value(BigFloat shadow at the configured precision)| ≤ E,
//!
//! where `value(dd) = hi + lo` exactly. `E == 0` additionally asserts the
//! two shadows are *equal as reals*. [`propagate`] grows `E` across each
//! operation (returning `+∞` when no certificate applies — unsupported
//! operation, domain edge, special values), [`rounding_certified`] checks
//! that every real in `[dd − κE, dd + κE]` rounds to the same double `hi`
//! (κ = [`WIDENING`], the explicit widening margin), and
//! [`compare_certified`] checks that a comparison decision is forced. When
//! any certificate fails, the tiered driver re-runs that input on the
//! all-BigFloat shadow — so these bounds only need to be *sound*, never
//! tight.
//!
//! Soundness leans on two verified properties: BigFloat rounds to nearest
//! (ties to even) both per-operation and in `to_f64`, exactly like the
//! double-double invariant `hi = RN(hi + lo)`; and the double-double
//! elementary kernels in [`crate::dd_math`] are accurate to better than
//! [`TRANS_EPS`] inside the certificate domains.

use crate::dd::{two_sum, DoubleDouble};
use crate::real::RealOp;

type Dd = DoubleDouble;

/// Minimum BigFloat shadow precision for which the certificates are valid:
/// below this the "fits exactly in BigFloat" span check would be vacuous
/// and the dd kernels could out-resolve the reference they certify against.
pub const MIN_TIER_PRECISION: u32 = 212;

/// The explicit widening margin κ applied to `E` in the rounding and
/// comparison certificates (dd's ~106 bits under-measure near decision
/// boundaries; the margin absorbs the slack in every propagation bound).
pub const WIDENING: f64 = 4.0;

/// Relative error claim of the accurate [`crate::dd_math`] kernels inside
/// their certificate domains (they typically achieve ~2^-95; the gap is
/// additional margin).
pub const TRANS_EPS: f64 = 2.5849394142282115e-26; // 2^-85

/// Absolute floor added to every propagated bound; swallows subnormal
/// residuals the relative terms cannot see. Any value this close to the
/// subnormal range fails the rounding certificate anyway.
pub const TINY: f64 = 1e-320;

/// Relative error of one sloppy double-double hardware operation, with
/// margin (the kernels guarantee ~2^-105 of the largest participating
/// magnitude).
const DD_EPS: f64 = 7.888609052210118e-31; // 2^-100

/// Magnitude floor for the error-free-transform exactness arguments
/// (`two_prod` residuals must not underflow).
const EFT_FLOOR: f64 = 1e-280;

/// Precision-derived certificate parameters.
#[derive(Clone, Copy, Debug)]
pub struct CertParams {
    /// One BigFloat rounding, with margin: `2^-(prec − 6)`.
    round_eps: f64,
    /// `lo/hi` magnitude ratio below which an exact dd pair may still not
    /// fit in `prec` bits: `2^-(prec − 56)`.
    fits_eps: f64,
}

impl CertParams {
    /// Builds parameters for a BigFloat shadow of `prec` mantissa bits;
    /// `None` if the precision is too low for tiering to be sound.
    pub fn new(prec: u32) -> Option<CertParams> {
        if prec < MIN_TIER_PRECISION {
            return None;
        }
        Some(CertParams {
            round_eps: 2f64.powi(-((prec as i32) - 6)),
            fits_eps: 2f64.powi(-((prec as i32) - 56)),
        })
    }

    /// True if the exact real `hi + lo` is representable in the BigFloat
    /// precision (the two words span at most `prec` mantissa bits).
    fn fits_exactly(&self, v: &Dd) -> bool {
        v.lo() == 0.0 || v.lo().abs() >= v.hi().abs() * self.fits_eps
    }

    /// The bound for an exact dd result: zero if BigFloat holds it exactly,
    /// one BigFloat rounding otherwise.
    fn exact_or_round(&self, v: &Dd) -> f64 {
        if self.fits_exactly(v) {
            0.0
        } else {
            self.round_eps * v.hi().abs()
        }
    }
}

/// The certificate failure value.
const FAIL: f64 = f64::INFINITY;

#[inline]
fn pure(v: &Dd) -> bool {
    v.lo() == 0.0
}

/// A-posteriori proof that a dd addition was error-free: verifies
/// `a ± b − r == 0` *as reals* by folding all six components into a
/// `two_sum` expansion. Every grow and renormalization step is an error-free
/// transform (the expansion's exact sum never changes), so if every
/// component collapses to literal zero the identity holds exactly. A `false`
/// here is merely conservative — the caller falls back to the hardware
/// bound — but `true` is sound.
///
/// This is what keeps loop accumulators certified: `t = t + c` leaves `t`
/// with a nonzero `lo` word after a few iterations, which disqualifies the
/// single-double fast path, yet the sloppy dd add usually *is* exact there
/// (its only roundings are in the low-order `e + lo + lo` adds). Without
/// this check the accumulated `DD_EPS` slack makes any accumulator value
/// that lands on a rounding tie (e.g. `5 × 0.2 = 1 + 2⁻⁵⁴`) uncertifiable.
fn sum_is_exact(a: &Dd, b: &Dd, negate_b: bool, r: &Dd) -> bool {
    let sign = if negate_b { -1.0 } else { 1.0 };
    expansion_is_zero(&[
        a.hi(),
        a.lo(),
        sign * b.hi(),
        sign * b.lo(),
        -r.hi(),
        -r.lo(),
    ])
}

/// A-posteriori proof that a dd multiplication was error-free, for the
/// one-sided case: one operand is a single double `s` and both partial
/// products `w.hi · s`, `w.lo · s` are themselves exact (fma residual
/// zero) — e.g. scaling by a power of two, or by a small integer that
/// leaves mantissa headroom. The true product is then `p1 + p2` exactly,
/// and the expansion check verifies the dd result equals it. Overflow and
/// underflow make the fma residuals nonzero (or NaN), so they never pass.
fn prod_is_exact(a: &Dd, b: &Dd, r: &Dd) -> bool {
    let (w, s) = if pure(b) {
        (a, b.hi())
    } else if pure(a) {
        (b, a.hi())
    } else {
        return false;
    };
    let p1 = w.hi() * s;
    let p2 = w.lo() * s;
    if f64::mul_add(w.hi(), s, -p1) != 0.0 || f64::mul_add(w.lo(), s, -p2) != 0.0 {
        return false;
    }
    expansion_is_zero(&[p1, p2, -r.hi(), -r.lo()])
}

/// Error-free zero test for a sum of up to six doubles: folds the terms
/// into a `two_sum` expansion (each grow and renormalization step preserves
/// the exact total), then demands every component be literal zero. `true`
/// is sound — an all-zero expansion sums to exactly zero — while a `false`
/// is merely conservative. Non-finite terms yield NaN components and never
/// pass.
fn expansion_is_zero(terms: &[f64]) -> bool {
    debug_assert!(terms.len() <= 6);
    let mut exp = [0.0f64; 6];
    let len = terms.len();
    for (i, &t) in terms.iter().enumerate() {
        let mut q = t;
        for slot in exp.iter_mut().take(i) {
            let (s, e) = two_sum(q, *slot);
            *slot = e;
            q = s;
        }
        exp[i] = q;
    }
    // One bottom-up renormalization sweep concentrates any residue upward so
    // that an exactly-zero total reliably reads as all-zero components.
    for i in 0..len - 1 {
        let (s, e) = two_sum(exp[i + 1], exp[i]);
        exp[i + 1] = s;
        exp[i] = e;
    }
    exp[..len].iter().all(|&c| c == 0.0)
}

/// Propagates the absolute error bound across one shadow operation.
///
/// `args` pairs each double-double operand with its current bound;
/// `result` is the double-double the shadow computed for this operation.
/// Returns the bound for `result`, or `+∞` when no certificate applies.
pub fn propagate(op: RealOp, args: &[(&Dd, f64)], result: &Dd, params: &CertParams) -> f64 {
    // Uncertified inputs poison the output.
    if args.iter().any(|(_, e)| !e.is_finite()) {
        return FAIL;
    }
    if args.iter().any(|(a, _)| !a.hi().is_finite()) {
        // Double-double does not track IEEE special semantics (e.g. its
        // two_sum residual for inf + inf is inf - inf = NaN while BigFloat
        // keeps inf), so any special operand forfeits the certificate.
        return FAIL;
    }

    let e = propagate_finite(op, args, result, params);
    if e.is_nan() {
        return FAIL;
    }
    if !result.hi().is_finite() {
        // A non-finite result from finite operands (overflow, domain error)
        // is only certifiable where propagate_finite returned an exact
        // certified NaN; those paths return 0 before reaching here.
        if e == 0.0 {
            return 0.0;
        }
        return FAIL;
    }
    e
}

/// [`propagate`] for finite operands with finite bounds.
fn propagate_finite(op: RealOp, args: &[(&Dd, f64)], r: &Dd, p: &CertParams) -> f64 {
    use RealOp::*;
    let rh = r.hi().abs();
    let big_round = p.round_eps * rh;
    match (op, args) {
        (Neg | Fabs, [(_, ea)]) => *ea,
        (Add | Sub, [(a, ea), (b, eb)]) => {
            if *ea == 0.0 && *eb == 0.0 {
                // two_sum + quick_two_sum are error-free on single-double
                // operands; for wider operands the a-posteriori expansion
                // check proves exactness after the fact. Either way the dd
                // result IS the exact sum.
                if (pure(a) && pure(b)) || sum_is_exact(a, b, matches!(op, Sub), r) {
                    return p.exact_or_round(r);
                }
            }
            ea + eb + DD_EPS * a.hi().abs().max(b.hi().abs()).max(rh) + big_round + TINY
        }
        (Mul, [(a, ea), (b, eb)]) => {
            if *ea == 0.0 && *eb == 0.0 {
                // two_prod is exact while its residual stays normal; wider
                // operands can still be proven exact a posteriori (scaling).
                if pure(a) && pure(b) && (rh >= EFT_FLOOR || r.hi() == 0.0) {
                    return p.exact_or_round(r);
                }
                if prod_is_exact(a, b, r) {
                    return p.exact_or_round(r);
                }
            }
            ea * (b.hi().abs() + eb) + eb * a.hi().abs() + DD_EPS * rh + big_round + TINY
        }
        (Div, [(a, ea), (b, eb)]) => {
            let bh = b.hi().abs();
            if *eb != 0.0 && *eb >= bh * 0.25 {
                return FAIL; // denominator interval reaches zero
            }
            if b.is_zero() {
                return FAIL; // division by exact zero: special results
            }
            if *ea == 0.0
                && *eb == 0.0
                && pure(a)
                && pure(b)
                && pure(r)
                && rh >= EFT_FLOOR
                && f64::mul_add(r.hi(), b.hi(), -a.hi()) == 0.0
            {
                return 0.0; // exact quotient, single double, fits
            }
            (ea + eb * rh) / bh * 2.0 + DD_EPS * rh + big_round + TINY
        }
        (Sqrt, [(a, ea)]) => {
            if a.is_zero() && *ea == 0.0 {
                return 0.0; // ±0 → ±0 exactly on both shadows
            }
            if a.hi() < 0.0 {
                // Interval strictly negative: NaN on both shadows.
                return if *ea < -a.hi() * 0.25 { 0.0 } else { FAIL };
            }
            if *ea >= a.hi() * 0.25 {
                return FAIL; // straddles zero
            }
            if *ea == 0.0
                && pure(a)
                && pure(r)
                && rh >= EFT_FLOOR
                && f64::mul_add(r.hi(), r.hi(), -a.hi()) == 0.0
            {
                return 0.0; // exact square root
            }
            ea / rh.max(TINY) + DD_EPS * rh + big_round + TINY
        }
        (Fma, [(a, ea), (b, eb), (_c, ec)]) => {
            ea * (b.hi().abs() + eb)
                + eb * a.hi().abs()
                + ec
                + DD_EPS * ((a.hi() * b.hi()).abs() + rh)
                + big_round
                + TINY
        }
        (Exp, [(a, ea)]) => {
            if a.hi().abs() > 650.0 || *ea > 9.765625e-4 {
                return FAIL;
            }
            rh * (2.0 * ea + TRANS_EPS) + big_round + TINY
        }
        (Exp2, [(a, ea)]) => {
            if a.hi().abs() > 900.0 || *ea > 9.765625e-4 {
                return FAIL;
            }
            rh * (2.0 * ea + TRANS_EPS) + big_round + TINY
        }
        (Expm1, [(a, ea)]) => {
            if a.hi() > 650.0 || *ea > 9.765625e-4 {
                return FAIL;
            }
            2.0 * ea * (rh + 1.0) + TRANS_EPS * (rh + 1.0) + big_round + TINY
        }
        (Log | Log2 | Log10, [(a, ea)]) => {
            if a.hi() < 0.0 {
                // Interval strictly negative: NaN on both shadows.
                return if *ea < -a.hi() * 0.25 { 0.0 } else { FAIL };
            }
            if a.hi() == 0.0 || *ea >= a.hi() * 0.25 {
                return FAIL;
            }
            3.0 * ea / a.hi() + 2.0 * TRANS_EPS * (rh + 1.0) + big_round + TINY
        }
        (Log1p, [(a, ea)]) => {
            let one_plus = 1.0 + a.hi();
            if one_plus <= 0.001 || *ea >= one_plus * 0.25 {
                return FAIL;
            }
            3.0 * ea / one_plus + 2.0 * TRANS_EPS * (rh + 1.0) + big_round + TINY
        }
        (Pow, [(a, ea), (b, eb)]) => {
            // Operands are finite here (propagate screens specials), so
            // `<= 0` is exactly "not strictly positive".
            if a.hi() <= 0.0 || *ea >= a.hi() * 0.25 {
                return FAIL;
            }
            let ln_a = a.hi().ln();
            let t = b.hi() * ln_a;
            if !t.is_finite() || t.abs() > 650.0 || *eb > 9.765625e-4 * (ln_a.abs() + 1.0).recip() {
                return FAIL;
            }
            if 2.0 * b.hi().abs() * ea / a.hi() > 9.765625e-4 {
                return FAIL;
            }
            rh * (2.0 * b.hi().abs() * ea / a.hi() + 2.0 * eb * (ln_a.abs() + 1.0) + TRANS_EPS)
                + big_round
                + TINY
        }
        (Sin | Cos, [(a, ea)]) => {
            if a.hi().abs() > 1.073741824e9 || *ea > 0.1 {
                return FAIL;
            }
            ea + TRANS_EPS + a.hi().abs() * 2f64.powi(-95) + p.round_eps + TINY
        }
        (Tan, [(a, ea)]) => {
            if a.hi().abs() > 1.073741824e9 || *ea > 0.1 {
                return FAIL;
            }
            let slope = 1.0 + r.hi() * r.hi();
            (ea + TRANS_EPS + a.hi().abs() * 2f64.powi(-95)) * slope * 2.0
                + TRANS_EPS * (rh + 1.0)
                + big_round
                + TINY
        }
        (Asin | Acos, [(a, ea)]) => {
            if a.hi().abs() > 0.999 || *ea > 2.44140625e-4 {
                return FAIL;
            }
            2.0 * ea / (1.0 - a.hi() * a.hi()).sqrt() + 2.0 * TRANS_EPS + 4.0 * p.round_eps + TINY
        }
        (Atan, [(_a, ea)]) => ea + TRANS_EPS * (rh + 1.0) + big_round + TINY,
        (Atan2, [(y, ey), (x, ex)]) => {
            let (xh, yh) = (x.hi(), y.hi());
            if xh <= 0.0 || *ex >= xh * 0.25 {
                return FAIL; // certified only in the right half-plane
            }
            if !(1e-150..1e150).contains(&xh) || yh.abs() > 1e150 {
                return FAIL;
            }
            2.0 * (ey * xh + ex * yh.abs()) / (xh * xh + yh * yh)
                + 2.0 * TRANS_EPS
                + 4.0 * p.round_eps
                + TINY
        }
        (Cbrt, [(a, ea)]) => {
            if a.is_zero() && *ea == 0.0 {
                return 0.0;
            }
            if *ea >= a.hi().abs() * 0.25 {
                return FAIL;
            }
            ea * rh / a.hi().abs() + TRANS_EPS * rh + big_round + TINY
        }
        // Hyperbolics, hypot, fmin/fmax, fdim, fmod, the rounding family,
        // copysign: no accurate dd kernel — never certified.
        _ => FAIL,
    }
}

/// Half the distance from `x` to its nearest double neighbor (the rounding
/// decision radius). Zero at the edges of the finite range, which makes the
/// certificate fail there — intended.
fn half_gap(x: f64) -> f64 {
    let up = next_after_up(x) - x;
    let down = x - next_after_down(x);
    up.min(down) * 0.5
}

fn next_after_up(x: f64) -> f64 {
    let bits = x.to_bits();
    if x.is_sign_negative() {
        if x == 0.0 {
            return f64::from_bits(1); // -0 → smallest positive subnormal
        }
        f64::from_bits(bits - 1)
    } else {
        f64::from_bits(bits + 1)
    }
}

fn next_after_down(x: f64) -> f64 {
    let bits = x.to_bits();
    if x.is_sign_negative() {
        f64::from_bits(bits + 1)
    } else {
        if x == 0.0 {
            return -f64::from_bits(1);
        }
        f64::from_bits(bits - 1)
    }
}

/// True if every real within `WIDENING · e` of the double-double value is
/// guaranteed to round (nearest-even) to the same double the BigFloat
/// shadow would produce — i.e. the `to_f64` observable is certified.
pub fn rounding_certified(v: &Dd, e: f64) -> bool {
    if e == 0.0 {
        // Exact: both shadows hold the same real, both round nearest-even.
        return true;
    }
    if !e.is_finite() || !v.hi().is_finite() {
        return false;
    }
    v.lo().abs() + WIDENING * e + TINY < half_gap(v.hi())
}

/// True if the ordering decision between two bounded shadow values is
/// forced: either both are exact (dd's normalized lexicographic comparison
/// then equals BigFloat's real comparison, NaN included), or the two
/// widened intervals are strictly disjoint (so the strict ordering of the
/// `hi` words is the ordering of both shadows).
pub fn compare_certified(a: &Dd, ea: f64, b: &Dd, eb: f64) -> bool {
    if ea == 0.0 && eb == 0.0 {
        return true;
    }
    if !ea.is_finite() || !eb.is_finite() || a.is_nan() || b.is_nan() {
        return false;
    }
    let diff = (a.hi() - b.hi()).abs();
    diff > WIDENING * (ea + eb) + 2f64.powi(-50) * (a.hi().abs() + b.hi().abs()) + TINY
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BigFloat, Real};

    fn params() -> CertParams {
        CertParams::new(256).unwrap()
    }

    fn dd(x: f64) -> Dd {
        Dd::from_f64(x)
    }

    /// Applies one op on dd and Big in lockstep and checks the propagated
    /// bound actually covers the observed deviation (with a margin).
    fn check_bound(op: RealOp, args: &[f64]) -> f64 {
        let p = params();
        let dd_args: Vec<Dd> = args.iter().map(|&a| dd(a)).collect();
        let big_args: Vec<BigFloat> = args.iter().map(|&a| BigFloat::from_f64(a)).collect();
        let r = Dd::apply(op, &dd_args);
        let b = BigFloat::apply(op, &big_args);
        let pairs: Vec<(&Dd, f64)> = dd_args.iter().map(|a| (a, 0.0)).collect();
        let e = propagate(op, &pairs, &r, &p);
        if e.is_finite() && !r.is_nan() {
            let got = BigFloat::from_f64(r.hi()).add(&BigFloat::from_f64(r.lo()));
            let dev = got.sub(&b).abs().to_f64();
            assert!(
                dev <= e,
                "{op} on {args:?}: observed |dd - big| = {dev:e} > bound {e:e}"
            );
        }
        e
    }

    #[test]
    fn precision_gate() {
        assert!(CertParams::new(53).is_none());
        assert!(CertParams::new(211).is_none());
        assert!(CertParams::new(212).is_some());
        assert!(CertParams::new(256).is_some());
    }

    #[test]
    fn integer_arithmetic_stays_exact() {
        let p = params();
        // i + 1 on a loop counter: exact, certified, and comparable.
        let i = dd(41.0);
        let one = Dd::ONE;
        let r = i.add(&one);
        let e = propagate(RealOp::Add, &[(&i, 0.0), (&one, 0.0)], &r, &p);
        assert_eq!(e, 0.0);
        assert!(rounding_certified(&r, e));
        assert!(compare_certified(&r, e, &dd(100.0), 0.0));
    }

    #[test]
    fn accumulator_adds_stay_exact_through_a_rounding_tie() {
        // t = t + 0.2 five times lands exactly on 1 + 2⁻⁵⁴ — the rounding
        // tie of 1.0. The accumulator's nonzero lo word disqualifies the
        // single-double fast path, but the a-posteriori expansion check must
        // keep E = 0 so the tie stays certified (both shadows hold the same
        // real and round it nearest-even identically).
        let p = params();
        let step = dd(0.2);
        let mut t = Dd::ZERO;
        let mut e = 0.0;
        for _ in 0..5 {
            let r = t.add(&step);
            e = propagate(RealOp::Add, &[(&t, e), (&step, 0.0)], &r, &p);
            assert_eq!(e, 0.0, "accumulator add must certify as exact");
            t = r;
        }
        assert_eq!(t.hi(), 1.0);
        assert_eq!(t.lo(), 2f64.powi(-54));
        assert!(rounding_certified(&t, e));
    }

    #[test]
    fn scaling_a_wide_value_stays_exact() {
        // Newton iterations halve a wide accumulator: 0.5 · x is an exact
        // scaling even when x carries a nonzero lo word, and must keep
        // E = 0 (the pure×pure fast path does not apply).
        let p = params();
        let x = Dd::from_parts(2.997724956857091, 2.220446049250313e-16);
        let half = dd(0.5);
        let r = half.mul(&x);
        let e = propagate(RealOp::Mul, &[(&half, 0.0), (&x, 0.0)], &r, &p);
        assert_eq!(e, 0.0, "power-of-two scaling must certify as exact");
        assert!(rounding_certified(&r, e));
        // A wide × wide product is not covered: hardware bound.
        let e2 = propagate(RealOp::Mul, &[(&x, 0.0), (&x, 0.0)], &x.mul(&x), &p);
        assert!(e2 > 0.0 && e2.is_finite());
    }

    #[test]
    fn inexact_wide_adds_fall_back_to_the_hardware_bound() {
        // The low-order add `e + a.lo` inside dd's sloppy addition rounds
        // here: 3·2⁻⁵⁵ + (2⁻⁵⁴ + 2⁻¹⁰⁶) spans 54 significand bits with the
        // trailing bit exactly at the rounding tie, so the dd result drops
        // 2⁻¹⁰⁶ and the expansion check must say "inexact" (its error-free
        // sweeps make a false "exact" impossible: all-zero components imply
        // a zero residual).
        let p = params();
        let a = Dd::from_parts(1.0, 2f64.powi(-54) + 2f64.powi(-106));
        let b = dd(3.0 * 2f64.powi(-55));
        let r = a.add(&b);
        assert!(!super::sum_is_exact(&a, &b, false, &r));
        let e = propagate(RealOp::Add, &[(&a, 0.0), (&b, 0.0)], &r, &p);
        assert!(e > 0.0 && e.is_finite(), "e = {e:e}");
    }

    #[test]
    fn exact_sum_that_exceeds_big_precision_gets_rounding_bound() {
        let p = params();
        let a = dd(2f64.powi(300));
        let b = dd(2f64.powi(-300));
        let r = a.add(&b); // exact in dd (600-bit span), not in 256-bit Big
        let e = propagate(RealOp::Add, &[(&a, 0.0), (&b, 0.0)], &r, &p);
        assert!(e > 0.0 && e.is_finite(), "e = {e:e}");
        // Still certifies the rounding: the deviation is far below half an
        // ulp of 2^300.
        assert!(rounding_certified(&r, e));
    }

    #[test]
    fn hardware_bounds_cover_observed_deviation() {
        for op in [RealOp::Add, RealOp::Sub, RealOp::Mul, RealOp::Div] {
            for args in [[0.1, 0.3], [1e16, -1.0], [2.5, 3.0], [1.0, 3.0]] {
                check_bound(op, &args);
            }
        }
        check_bound(RealOp::Sqrt, &[2.0]);
        check_bound(RealOp::Sqrt, &[0.1]);
        check_bound(RealOp::Fma, &[0.1, 0.3, -0.02]);
    }

    #[test]
    fn library_bounds_cover_observed_deviation() {
        for op in [
            RealOp::Exp,
            RealOp::Expm1,
            RealOp::Log,
            RealOp::Log2,
            RealOp::Log10,
            RealOp::Log1p,
            RealOp::Sin,
            RealOp::Cos,
            RealOp::Tan,
            RealOp::Atan,
            RealOp::Cbrt,
        ] {
            for x in [0.5, 1.0, 2.5, 10.0, 100.5] {
                let e = check_bound(op, &[x]);
                assert!(e.is_finite(), "{op}({x}) unexpectedly failed");
            }
        }
        assert!(check_bound(RealOp::Pow, &[2.5, 3.5]).is_finite());
        assert!(check_bound(RealOp::Atan2, &[1.5, 2.5]).is_finite());
        assert!(check_bound(RealOp::Asin, &[0.5]).is_finite());
        assert!(check_bound(RealOp::Acos, &[-0.5]).is_finite());
    }

    #[test]
    fn unsupported_and_out_of_domain_operations_fail() {
        let p = params();
        let x = dd(0.5);
        for op in [
            RealOp::Sinh,
            RealOp::Tanh,
            RealOp::Floor,
            RealOp::Round,
            RealOp::Fmod,
        ] {
            let args: Vec<(&Dd, f64)> = (0..op.arity()).map(|_| (&x, 0.0)).collect();
            let r = Dd::apply(op, &vec![x; op.arity()]);
            assert_eq!(propagate(op, &args, &r, &p), FAIL, "{op}");
        }
        // Trig far outside the reduction range.
        let huge = dd(1e12);
        let r = crate::dd_math::sin(&huge);
        assert_eq!(propagate(RealOp::Sin, &[(&huge, 0.0)], &r, &p), FAIL);
        // Interval straddling a domain edge.
        let near_zero = dd(1e-10);
        let r = crate::dd_math::log(&near_zero);
        assert_eq!(propagate(RealOp::Log, &[(&near_zero, 1e-10)], &r, &p), FAIL);
    }

    #[test]
    fn certified_domain_violation_nans() {
        let p = params();
        let neg = dd(-4.0);
        let r = neg.sqrt();
        assert!(r.is_nan());
        assert_eq!(propagate(RealOp::Sqrt, &[(&neg, 1e-10)], &r, &p), 0.0);
        let r = crate::dd_math::log(&neg);
        assert!(r.is_nan());
        assert_eq!(propagate(RealOp::Log, &[(&neg, 1e-10)], &r, &p), 0.0);
        // Both shadows produce NaN for these.
        assert!(BigFloat::from_f64(-4.0).sqrt().is_nan());
        assert!(BigFloat::from_f64(-4.0).ln().is_nan());
    }

    #[test]
    fn special_operands_always_fail() {
        // dd's two_sum residual for inf + inf is NaN while BigFloat keeps
        // inf — IEEE specials are not modeled, so they must never certify.
        let p = params();
        for x in [f64::INFINITY, f64::NEG_INFINITY, f64::NAN] {
            let s = dd(x);
            for op in [RealOp::Add, RealOp::Mul, RealOp::Neg, RealOp::Exp] {
                let args: Vec<Dd> = (0..op.arity())
                    .map(|i| if i == 0 { s } else { dd(1.0) })
                    .collect();
                let r = Dd::apply(op, &args);
                let pairs: Vec<(&Dd, f64)> = args.iter().map(|a| (a, 0.0)).collect();
                assert_eq!(propagate(op, &pairs, &r, &p), FAIL, "{op}({x})");
            }
        }
    }

    #[test]
    fn overflow_from_finite_operands_fails() {
        let p = params();
        let big = dd(1e308);
        let r = big.add(&big);
        assert!(!r.hi().is_finite());
        assert_eq!(
            propagate(RealOp::Add, &[(&big, 1.0), (&big, 1.0)], &r, &p),
            FAIL
        );
        // Exact operands overflowing must fail too (BigFloat stays finite).
        let r2 = big.mul(&big);
        assert_eq!(
            propagate(RealOp::Mul, &[(&big, 0.0), (&big, 0.0)], &r2, &p),
            FAIL
        );
    }

    #[test]
    fn rounding_certificate_boundaries() {
        // A bound far smaller than the half-gap certifies.
        assert!(rounding_certified(&dd(1.0), 1e-30));
        // A bound near the half-ulp of 1.0 (~1.1e-16) must not certify.
        assert!(!rounding_certified(&dd(1.0), 1e-16));
        assert!(!rounding_certified(&dd(1.0), 3e-17)); // κ = 4 widening
                                                       // lo sitting near the rounding boundary eats the budget.
        let near_tie = Dd::from_parts(1.0, 1.1e-16 * 0.999);
        assert!(!rounding_certified(&near_tie, 1e-18));
        // Exact values always certify, even NaN / infinity.
        assert!(rounding_certified(&dd(f64::NAN), 0.0));
        assert!(rounding_certified(&dd(f64::INFINITY), 0.0));
        // Subnormal-range values fail any inexact certificate.
        assert!(!rounding_certified(&dd(1e-320), 1e-321));
        // An uncertified value stays uncertified.
        assert!(!rounding_certified(&dd(1.0), FAIL));
    }

    #[test]
    fn compare_certificate_boundaries() {
        // Exact pair: always certified, NaN included.
        assert!(compare_certified(&dd(1.0), 0.0, &dd(1.0), 0.0));
        assert!(compare_certified(&dd(f64::NAN), 0.0, &dd(1.0), 0.0));
        // Disjoint intervals certify; overlapping do not.
        assert!(compare_certified(&dd(1.0), 1e-3, &dd(2.0), 1e-3));
        assert!(!compare_certified(&dd(1.0), 0.3, &dd(2.0), 0.3));
        // NaN with a nonzero bound is unknown.
        assert!(!compare_certified(&dd(f64::NAN), 1e-30, &dd(1.0), 0.0));
        // Equal his with inexact bounds cannot be ordered.
        assert!(!compare_certified(&dd(1.0), 1e-30, &dd(1.0), 1e-30));
    }

    #[test]
    fn transcendental_chain_certifies_realistic_values() {
        // sqrt(x+1) - sqrt(x): the standard cancellation example, one input.
        let p = params();
        let x = dd(1e10);
        let xp1 = x.add(&Dd::ONE);
        let e1 = propagate(RealOp::Add, &[(&x, 0.0), (&Dd::ONE, 0.0)], &xp1, &p);
        let s1 = xp1.sqrt();
        let e2 = propagate(RealOp::Sqrt, &[(&xp1, e1)], &s1, &p);
        let s0 = x.sqrt();
        let e3 = propagate(RealOp::Sqrt, &[(&x, 0.0)], &s0, &p);
        let d = s1.sub(&s0);
        let e4 = propagate(RealOp::Sub, &[(&s1, e2), (&s0, e3)], &d, &p);
        assert!(e4.is_finite());
        // The difference ~5e-6 carries ~1e-21 of bound: certifiable.
        assert!(rounding_certified(&d, e4), "e4 = {e4:e}");
        // And a transcendental on top stays certified.
        let l = crate::dd_math::log(&d);
        let e5 = propagate(RealOp::Log, &[(&d, e4)], &l, &p);
        assert!(rounding_certified(&l, e5), "e5 = {e5:e}");
    }
}

//! The "bits of error" metric used by Herbgrind and Herbie.
//!
//! The error between an approximate double `approx` and a reference value
//! `exact` is measured as `log2(1 + ulps_between(approx, exact))`: the base-2
//! logarithm of how many double-precision floating-point values lie between
//! them. This is the metric written `E(r_R, r_F)` in Figure 4 of the paper.

/// The maximum representable error in bits for double precision.
///
/// There are 2^64 bit patterns, so no two doubles can be more than 64 bits of
/// error apart. NaN results (when the reference is finite) are reported with
/// this maximal error, matching the paper's Gram-Schmidt case study where a
/// NaN output is reported as "64 bits of error".
pub const MAX_ERROR_BITS: f64 = 64.0;

/// Maps a double onto a signed ordinal such that the ordering of ordinals
/// matches the ordering of the doubles and adjacent doubles have adjacent
/// ordinals.
///
/// NaNs are mapped to `i64::MAX` so that any comparison against a non-NaN
/// value yields maximal distance.
///
/// ```
/// use shadowreal::ordinal;
/// assert!(ordinal(1.0) < ordinal(1.0 + f64::EPSILON));
/// assert_eq!(ordinal(-0.0), ordinal(0.0));
/// ```
pub fn ordinal(x: f64) -> i64 {
    if x.is_nan() {
        return i64::MAX;
    }
    let bits = x.to_bits();
    if bits >> 63 == 0 {
        bits as i64
    } else {
        // Negative: flip to mirror below zero. -0.0 maps to 0.
        -((bits & 0x7fff_ffff_ffff_ffff) as i64)
    }
}

/// Number of representable doubles strictly between `a` and `b` plus one when
/// they differ (i.e. the ULP distance), saturating at `u64::MAX`.
///
/// Returns 0 when the two values are identical (including `-0.0` vs `0.0`).
/// If exactly one argument is NaN the distance saturates; if both are NaN the
/// distance is 0 (a NaN shadow matching a NaN float is "no error").
pub fn ulps_between(a: f64, b: f64) -> u64 {
    if a.is_nan() && b.is_nan() {
        return 0;
    }
    if a.is_nan() || b.is_nan() {
        return u64::MAX;
    }
    ordinal(a).abs_diff(ordinal(b))
}

/// Bits of error between a computed double `approx` and the reference value
/// `exact` (already rounded to double).
///
/// Zero when the values are identical; at most [`MAX_ERROR_BITS`].
///
/// ```
/// use shadowreal::bits_error;
/// assert_eq!(bits_error(1.0, 1.0), 0.0);
/// assert!(bits_error(0.0, 1.0) > 50.0);
/// assert!(bits_error(1.0, 1.0 + f64::EPSILON) <= 1.0);
/// ```
pub fn bits_error(approx: f64, exact: f64) -> f64 {
    let ulps = ulps_between(approx, exact);
    if ulps == u64::MAX {
        return MAX_ERROR_BITS;
    }
    let bits = ((ulps as f64) + 1.0).log2();
    bits.min(MAX_ERROR_BITS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_values_have_zero_error() {
        assert_eq!(bits_error(3.25, 3.25), 0.0);
        assert_eq!(bits_error(0.0, -0.0), 0.0);
        assert_eq!(bits_error(f64::INFINITY, f64::INFINITY), 0.0);
    }

    #[test]
    fn nan_vs_finite_is_maximal() {
        assert_eq!(bits_error(f64::NAN, 1.0), MAX_ERROR_BITS);
        assert_eq!(bits_error(1.0, f64::NAN), MAX_ERROR_BITS);
    }

    #[test]
    fn nan_vs_nan_is_zero() {
        assert_eq!(bits_error(f64::NAN, f64::NAN), 0.0);
    }

    #[test]
    fn adjacent_doubles_are_one_ulp() {
        let x = 1.0_f64;
        let next = f64::from_bits(x.to_bits() + 1);
        assert_eq!(ulps_between(x, next), 1);
        assert!(bits_error(x, next) <= 1.0);
    }

    #[test]
    fn sign_crossing_counts_ulps_through_zero() {
        let tiny_pos = f64::from_bits(1);
        let tiny_neg = -tiny_pos;
        assert_eq!(ulps_between(tiny_pos, tiny_neg), 2);
    }

    #[test]
    fn catastrophic_cancellation_registers_large_error() {
        // (1e16 + 1) - 1e16 computed in doubles gives 2, true answer 1.
        let x = 1.0e16_f64;
        let approx = (x + 1.0) - x;
        assert!(bits_error(approx, 1.0) > 40.0);
    }

    #[test]
    fn error_is_symmetric() {
        let pairs = [(1.0, 2.0), (0.1, 0.1000001), (-5.0, 5.0), (1e300, 1e-300)];
        for (a, b) in pairs {
            assert_eq!(bits_error(a, b), bits_error(b, a));
        }
    }

    #[test]
    fn error_is_monotone_in_distance() {
        assert!(bits_error(1.0, 1.1) < bits_error(1.0, 2.0));
        assert!(bits_error(1.0, 2.0) < bits_error(1.0, 1e10));
    }

    #[test]
    fn ordinal_is_monotone() {
        let values = [-1e300, -1.0, -1e-300, -0.0, 0.0, 1e-300, 1.0, 1e300];
        for w in values.windows(2) {
            assert!(ordinal(w[0]) <= ordinal(w[1]), "{} vs {}", w[0], w[1]);
        }
    }

    #[test]
    fn max_error_bounded_by_64() {
        assert!(bits_error(f64::MIN, f64::MAX) <= MAX_ERROR_BITS);
        assert!(bits_error(f64::NEG_INFINITY, f64::INFINITY) <= MAX_ERROR_BITS);
    }
}

//! Zero-cost-when-off sweep telemetry.
//!
//! A dependency-free registry of atomic counters, max gauges, and coarse
//! log2-bucket histograms, plus RAII phase-timing spans, that every layer of
//! the analysis pipeline reports into: the `fpvm` interpreters, the batched
//! engine, the tiered driver, `shadowreal`, the expression interner, and the
//! quarantine machinery.
//!
//! # Cost model
//!
//! All metrics live in process-global statics. Recording is gated behind a
//! single `AtomicBool` read with relaxed ordering ([`enabled`]); when telemetry
//! is off (the default) every recording site is one predictable branch, and the
//! hot interpreter loops batch their counts into plain locals that are flushed
//! once per run or per batch pass, so the off-mode overhead is not visible on
//! the committed `batch_sweep` baseline (CI asserts ≤2%).
//!
//! # Capture discipline
//!
//! Because the registry is process-global, a capture is exclusive:
//! [`SweepCapture::begin`] with [`TelemetryMode::On`] takes a global lock,
//! zeroes every metric, and sets the enabled flag; [`SweepCapture::finish`]
//! reads everything into an owned [`SweepTelemetry`] snapshot and clears the
//! flag. Concurrent captures serialize on the lock. Sweeps running on *other*
//! threads during a capture will record into the same registry — captures are
//! meant to wrap one sweep at a time, which is what the `*_telemetry` driver
//! entry points in `herbgrind` do.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// Whether a sweep records telemetry. The default is [`TelemetryMode::Off`],
/// under which every recording site reduces to one relaxed load and a
/// predictable branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TelemetryMode {
    /// No recording; `*_telemetry` drivers return a disabled snapshot.
    #[default]
    Off,
    /// Record all metrics for the duration of the capture.
    On,
}

static ENABLED: AtomicBool = AtomicBool::new(false);

/// True while a [`SweepCapture`] with [`TelemetryMode::On`] is active.
///
/// This is the single gate every recording site checks; it is `#[inline]` and
/// a relaxed load so the off path stays branch-predictable and free of fences.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// A monotonically increasing `u64` counter (also used as a sum gauge).
pub struct Counter(AtomicU64);

impl Counter {
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Add `n` if telemetry is enabled. Call sites that already batched into a
    /// local should use this once per run/pass rather than per event.
    #[inline(always)]
    pub fn add(&self, n: u64) {
        if enabled() && n != 0 {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Increment by one if telemetry is enabled.
    #[inline(always)]
    pub fn incr(&self) {
        if enabled() {
            self.0.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

impl Default for Counter {
    fn default() -> Self {
        Counter::new()
    }
}

/// A gauge that keeps the maximum value observed during the capture.
pub struct MaxGauge(AtomicU64);

impl MaxGauge {
    pub const fn new() -> Self {
        MaxGauge(AtomicU64::new(0))
    }

    /// Record `v`, keeping the capture-wide maximum, if telemetry is enabled.
    #[inline(always)]
    pub fn record(&self, v: u64) {
        if enabled() {
            self.0.fetch_max(v, Ordering::Relaxed);
        }
    }

    fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

impl Default for MaxGauge {
    fn default() -> Self {
        MaxGauge::new()
    }
}

/// Number of log2 buckets in a [`Histogram`].
pub const HIST_BUCKETS: usize = 32;

/// Bucket index for a value: 0 holds zero, bucket `k` (1..=30) holds values in
/// `[2^(k-1), 2^k)`, and bucket 31 holds everything `>= 2^30`.
#[inline]
pub fn hist_bucket(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
    }
}

/// A coarse log2-bucket histogram with total count and sum.
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    pub const fn new() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Record one observation if telemetry is enabled.
    #[inline(always)]
    pub fn observe(&self, v: u64) {
        if enabled() {
            self.buckets[hist_bucket(v)].fetch_add(1, Ordering::Relaxed);
            self.count.fetch_add(1, Ordering::Relaxed);
            self.sum.fetch_add(v, Ordering::Relaxed);
        }
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; HIST_BUCKETS];
        for (out, b) in buckets.iter_mut().zip(self.buckets.iter()) {
            *out = b.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// Point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    pub buckets: [u64; HIST_BUCKETS],
    pub count: u64,
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Mean of the observed values, if any were recorded.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }
}

// ---------------------------------------------------------------------------
// Metric registry
// ---------------------------------------------------------------------------

macro_rules! declare_counters {
    ($( ($ident:ident, $name:literal, $stable:literal, $doc:literal) ),* $(,)?) => {
        $(
            #[doc = $doc]
            pub static $ident: Counter = Counter::new();
        )*

        /// Names of every registered counter, in registry order. This order is
        /// part of the stable JSON schema.
        pub const COUNTER_NAMES: &[&str] = &[ $($name),* ];

        /// For each counter (registry order), whether its value is
        /// order-independent: deterministic for a given driver + program +
        /// inputs regardless of thread count and lane width. Unstable metrics
        /// (schedule-, width-, or clock-dependent) are excluded from the
        /// determinism contract.
        pub const COUNTER_STABLE: &[bool] = &[ $($stable),* ];

        fn counter_refs() -> [&'static Counter; COUNTER_NAMES.len()] {
            [ $( &$ident ),* ]
        }
    };
}

declare_counters! {
    // fpvm: serial + batched interpreters.
    (FPVM_STEPS, "fpvm.steps", true,
     "Instructions executed across all runs (per active lane in batch mode)."),
    (FPVM_BUDGET_CHECKS, "fpvm.budget_checks", false,
     "Step-budget and deadline checks performed by the interpreters."),
    (FPVM_BATCH_PASSES, "fpvm.batch_passes", false,
     "Batched interpreter passes (one per lane group per program run)."),
    (FPVM_BATCH_DISPATCHES, "fpvm.batch_dispatches", false,
     "Scheduler iterations in the batched interpreter (one group-instruction dispatch each)."),
    (FPVM_BATCH_ACTIVE_LANE_SLOTS, "fpvm.batch_active_lane_slots", false,
     "Sum of active lanes over all batch dispatches (utilization numerator)."),
    (FPVM_BRANCH_DIVERGENCE, "fpvm.branch_divergence", false,
     "Lane-group splits at data-dependent branches in the batched interpreter."),
    (FPVM_BRANCH_RECONVERGE, "fpvm.branch_reconverge", false,
     "Lane-group merges when a parked group rejoined at the scheduler's current pc."),
    // Batched analysis engine (group-interned traces).
    (BATCH_GROUP_SHARED_NODES, "batch.group_shared_nodes", false,
     "Group-interned trace nodes satisfied by sharing an earlier lane's node."),
    (BATCH_GROUP_SPLIT_NODES, "batch.group_split_nodes", false,
     "Group-interned trace nodes that required a per-lane probe or allocation."),
    // Shadow op counts attributed by Real::kind_name().
    (SHADOW_F64_OPS, "shadow.f64_ops", true,
     "Analyzed operations executed under the f64 reference shadow."),
    (SHADOW_DD_OPS, "shadow.dd_ops", true,
     "Analyzed operations executed under the DoubleDouble shadow."),
    (SHADOW_BIGFLOAT_OPS, "shadow.bigfloat_ops", true,
     "Analyzed operations executed under the BigFloat shadow."),
    // shadowreal internals.
    (BIGFLOAT_APPLY_OPS, "bigfloat.apply_ops", true,
     "BigFloat operations dispatched through the shadowreal Real boundary."),
    (BIGFLOAT_DIV_WORD, "bigfloat.div_word", true,
     "BigFloat divisions served by the single-limb schoolbook kernel."),
    (BIGFLOAT_DIV_SCHOOLBOOK, "bigfloat.div_schoolbook", true,
     "BigFloat divisions served by the multi-limb schoolbook kernel."),
    (BIGFLOAT_DIV_NEWTON, "bigfloat.div_newton", true,
     "BigFloat divisions served by the Newton reciprocal kernel."),
    (BIGFLOAT_CONST_CACHE_HITS, "bigfloat.const_cache_hits", false,
     "Transcendental constant-cache lookups served from cache (process-lifetime warm)."),
    (BIGFLOAT_CONST_CACHE_MISSES, "bigfloat.const_cache_misses", false,
     "Transcendental constant-cache lookups that had to compute the constant."),
    // Expression interner.
    (INTERNER_PROBE_HITS, "interner.probe_hits", false,
     "Interner table probes that found an existing node."),
    (INTERNER_PROBE_MISSES, "interner.probe_misses", false,
     "Interner table probes that allocated a new node."),
    (INTERNER_POOL_RECYCLES, "interner.pool_recycles", false,
     "Node allocations served by recycling a pooled allocation."),
    // Tiered driver.
    (TIERED_INPUTS_CERTIFIED, "tiered.inputs_certified", true,
     "Inputs whose probe pass certified the cheap DoubleDouble tier."),
    (TIERED_INPUTS_ESCALATED, "tiered.inputs_escalated", true,
     "Inputs escalated to the BigFloat tier."),
    (TIERED_ESCALATE_ROUNDING, "tiered.escalate_rounding", true,
     "Escalations first caused by a rounding certificate failure."),
    (TIERED_ESCALATE_COMPENSATION, "tiered.escalate_compensation", true,
     "Escalations first caused by a compensation-comparison certificate failure."),
    (TIERED_ESCALATE_BRANCH, "tiered.escalate_branch", true,
     "Escalations first caused by a branch-comparison certificate failure."),
    (TIERED_ESCALATE_MACHINE_FAULT, "tiered.escalate_machine_fault", true,
     "Escalations caused by a machine fault (budget/deadline) during the probe run."),
    (TIERED_ESCALATE_PRECISION_GATE, "tiered.escalate_precision_gate", true,
     "Inputs escalated wholesale because the shadow precision has no certificate parameters."),
    (TIERED_ESCALATE_INJECTED, "tiered.escalate_injected", true,
     "Escalations forced by the fault-injection harness."),
    // Static tier 0 (error-dataflow certification over the tape).
    (TIER0_STATEMENTS_CERTIFIED, "tier0.statements_certified", true,
     "Compute statements the static tier-0 pass certified stable."),
    (TIER0_STATEMENTS_PRUNED, "tier0.statements_pruned", true,
     "Compute statements in the tier-0 prune mask (certified, non-compensating, clean destination)."),
    (TIER0_PRUNED_EXECUTIONS, "tier0.pruned_executions", true,
     "Dynamic compute executions that skipped shadowing because the statement was statically pruned."),
    // Quarantine.
    (QUARANTINE_INPUTS, "quarantine.inputs_quarantined", true,
     "Inputs quarantined in the final report."),
    (QUARANTINE_LADDER_ATTEMPTS, "quarantine.ladder_attempts", false,
     "Heal-ladder rungs attempted across all quarantine candidates."),
    (QUARANTINE_LADDER_HEALS, "quarantine.ladder_heals", false,
     "Heal-ladder rungs that produced a clean re-run (candidate healed)."),
    // Fault injection (test harness).
    (FAULTINJECT_FIRED, "faultinject.fired", false,
     "Injected fault sites that actually fired."),
}

macro_rules! declare_gauges {
    ($( ($ident:ident, $name:literal, $doc:literal) ),* $(,)?) => {
        $(
            #[doc = $doc]
            pub static $ident: MaxGauge = MaxGauge::new();
        )*
        /// Names of every registered max gauge, in registry order.
        pub const GAUGE_NAMES: &[&str] = &[ $($name),* ];
        fn gauge_refs() -> [&'static MaxGauge; GAUGE_NAMES.len()] {
            [ $( &$ident ),* ]
        }
    };
}

declare_gauges! {
    (INTERNER_PEAK_NODES, "interner.peak_nodes",
     "Largest interned-node count observed in any single analysis run."),
    (INTERNER_NODE_BUDGET, "interner.node_budget",
     "Configured trace-node budget (0 = unlimited); headroom = budget - peak."),
}

macro_rules! declare_histograms {
    ($( ($ident:ident, $name:literal, $doc:literal) ),* $(,)?) => {
        $(
            #[doc = $doc]
            pub static $ident: Histogram = Histogram::new();
        )*
        /// Names of every registered histogram, in registry order.
        pub const HISTOGRAM_NAMES: &[&str] = &[ $($name),* ];
        fn histogram_refs() -> [&'static Histogram; HISTOGRAM_NAMES.len()] {
            [ $( &$ident ),* ]
        }
    };
}

declare_histograms! {
    (HIST_RUN_STEPS, "hist.run_steps",
     "Steps per completed interpreter run (per lane in batch mode)."),
    (HIST_BATCH_GROUP_SIZE, "hist.batch_group_size",
     "Active-lane count of each batched pass's initial lane group."),
}

// ---------------------------------------------------------------------------
// Phase timing
// ---------------------------------------------------------------------------

/// Coarse pipeline phases timed by [`span`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Whole-sweep wall time inside the driver.
    Sweep,
    /// Tiered driver: DoubleDouble certify-probe pass.
    Certify,
    /// Tiered driver: certified DoubleDouble sweep segments.
    TierDoubleDouble,
    /// Tiered driver: escalated BigFloat sweep segments.
    TierBigFloat,
    /// Quarantine heal-ladder re-runs.
    Ladder,
    /// Report assembly and merging.
    Report,
    /// Tiered driver: tier-0 static error-dataflow pass over the tape.
    Tier0Static,
}

/// All phases, in registry order (part of the stable JSON schema).
pub const PHASES: &[Phase] = &[
    Phase::Sweep,
    Phase::Certify,
    Phase::TierDoubleDouble,
    Phase::TierBigFloat,
    Phase::Ladder,
    Phase::Report,
    Phase::Tier0Static,
];

/// Stable snake_case name for each phase.
pub const PHASE_NAMES: &[&str] = &[
    "sweep",
    "certify",
    "tier_dd",
    "tier_bigfloat",
    "ladder",
    "report",
    "tier0_static",
];

struct PhaseCell {
    count: Counter,
    nanos: Counter,
}

static PHASE_CELLS: [PhaseCell; 7] = [const {
    PhaseCell {
        count: Counter::new(),
        nanos: Counter::new(),
    }
}; 7];

/// RAII span that records one entry and its wall-clock duration for a phase.
/// Inert (no clock read) when telemetry is disabled at construction time.
pub struct PhaseSpan {
    start: Option<(Phase, Instant)>,
}

impl PhaseSpan {
    fn noop() -> Self {
        PhaseSpan { start: None }
    }
}

impl Drop for PhaseSpan {
    fn drop(&mut self) {
        if let Some((phase, start)) = self.start.take() {
            let cell = &PHASE_CELLS[phase as usize];
            cell.count.add(1);
            cell.nanos.add(start.elapsed().as_nanos() as u64);
        }
    }
}

/// Start timing `phase`; the span records on drop. When telemetry is off this
/// returns an inert span without touching the clock.
#[inline]
pub fn span(phase: Phase) -> PhaseSpan {
    if enabled() {
        PhaseSpan {
            start: Some((phase, Instant::now())),
        }
    } else {
        PhaseSpan::noop()
    }
}

/// Timing snapshot for one phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseSnapshot {
    /// Number of spans recorded for this phase.
    pub count: u64,
    /// Total wall-clock nanoseconds across those spans.
    pub nanos: u64,
}

// ---------------------------------------------------------------------------
// Quarantine fault table (stage x kind)
// ---------------------------------------------------------------------------

/// Sweep stage a quarantine fault was attributed to (rows of the fault table).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultStage {
    Serial,
    ParallelShard,
    BatchedLane,
    TieredDoubleDouble,
    TieredBigFloat,
}

/// Stable names for [`FaultStage`], in discriminant order.
pub const FAULT_STAGE_NAMES: &[&str] = &[
    "serial",
    "parallel_shard",
    "batched_lane",
    "tiered_dd",
    "tiered_bigfloat",
];

/// Kind of quarantine fault (columns of the fault table).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    Panic,
    StepBudget,
    Deadline,
    TraceBudget,
    Other,
}

/// Stable names for [`FaultKind`], in discriminant order.
pub const FAULT_KIND_NAMES: &[&str] =
    &["panic", "step_budget", "deadline", "trace_budget", "other"];

const FAULT_STAGES: usize = FAULT_STAGE_NAMES.len();
const FAULT_KINDS: usize = FAULT_KIND_NAMES.len();

static FAULT_TABLE: [[Counter; FAULT_KINDS]; FAULT_STAGES] =
    [const { [const { Counter::new() }; FAULT_KINDS] }; FAULT_STAGES];

/// Count one quarantined fault at `stage` of `kind` (if telemetry is enabled).
#[inline]
pub fn record_fault(stage: FaultStage, kind: FaultKind) {
    FAULT_TABLE[stage as usize][kind as usize].incr();
}

// ---------------------------------------------------------------------------
// Capture & snapshot
// ---------------------------------------------------------------------------

fn capture_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

fn reset_all() {
    for c in counter_refs() {
        c.reset();
    }
    for g in gauge_refs() {
        g.reset();
    }
    for h in histogram_refs() {
        h.reset();
    }
    for cell in &PHASE_CELLS {
        cell.count.reset();
        cell.nanos.reset();
    }
    for row in &FAULT_TABLE {
        for c in row {
            c.reset();
        }
    }
}

/// Exclusive telemetry capture around one sweep.
///
/// `begin(TelemetryMode::On)` acquires the process-global capture lock, zeroes
/// the registry, and enables recording; [`SweepCapture::finish`] snapshots the
/// registry into a [`SweepTelemetry`] and disables recording. Dropping an
/// unfinished capture also disables recording. `begin(TelemetryMode::Off)` is
/// free: no lock, no reset, and `finish` returns a disabled snapshot.
pub struct SweepCapture {
    guard: Option<MutexGuard<'static, ()>>,
}

impl SweepCapture {
    /// Start a capture. With [`TelemetryMode::Off`] this is a no-op handle.
    pub fn begin(mode: TelemetryMode) -> Self {
        match mode {
            TelemetryMode::Off => SweepCapture { guard: None },
            TelemetryMode::On => {
                let guard = match capture_lock().lock() {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
                reset_all();
                ENABLED.store(true, Ordering::SeqCst);
                SweepCapture { guard: Some(guard) }
            }
        }
    }

    /// Stop recording and return the snapshot accumulated since `begin`.
    pub fn finish(mut self) -> SweepTelemetry {
        match self.guard.take() {
            None => SweepTelemetry::disabled(),
            Some(guard) => {
                ENABLED.store(false, Ordering::SeqCst);
                let snap = SweepTelemetry::read_registry();
                drop(guard);
                snap
            }
        }
    }
}

impl Drop for SweepCapture {
    fn drop(&mut self) {
        if self.guard.take().is_some() {
            ENABLED.store(false, Ordering::SeqCst);
        }
    }
}

/// Owned snapshot of the full metric registry for one sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepTelemetry {
    /// Whether recording was enabled; a disabled snapshot is all zeros.
    pub enabled: bool,
    counters: Vec<u64>,
    gauges: Vec<u64>,
    histograms: Vec<HistogramSnapshot>,
    phases: Vec<PhaseSnapshot>,
    faults: Vec<Vec<u64>>,
}

impl SweepTelemetry {
    /// The snapshot returned when telemetry was off: all zeros, `enabled: false`.
    pub fn disabled() -> Self {
        SweepTelemetry {
            enabled: false,
            counters: vec![0; COUNTER_NAMES.len()],
            gauges: vec![0; GAUGE_NAMES.len()],
            histograms: vec![HistogramSnapshot::default(); HISTOGRAM_NAMES.len()],
            phases: vec![PhaseSnapshot::default(); PHASE_NAMES.len()],
            faults: vec![vec![0; FAULT_KINDS]; FAULT_STAGES],
        }
    }

    fn read_registry() -> Self {
        SweepTelemetry {
            enabled: true,
            counters: counter_refs().iter().map(|c| c.get()).collect(),
            gauges: gauge_refs().iter().map(|g| g.get()).collect(),
            histograms: histogram_refs().iter().map(|h| h.snapshot()).collect(),
            phases: PHASE_CELLS
                .iter()
                .map(|cell| PhaseSnapshot {
                    count: cell.count.get(),
                    nanos: cell.nanos.get(),
                })
                .collect(),
            faults: FAULT_TABLE
                .iter()
                .map(|row| row.iter().map(|c| c.get()).collect())
                .collect(),
        }
    }

    /// Value of the counter with this registry name. Panics on unknown names
    /// (they indicate a typo in test or tooling code, not runtime state).
    pub fn counter(&self, name: &str) -> u64 {
        match COUNTER_NAMES.iter().position(|n| *n == name) {
            Some(i) => self.counters[i],
            None => panic!("unknown telemetry counter {name:?}"),
        }
    }

    /// Value of the max gauge with this registry name.
    pub fn gauge(&self, name: &str) -> u64 {
        match GAUGE_NAMES.iter().position(|n| *n == name) {
            Some(i) => self.gauges[i],
            None => panic!("unknown telemetry gauge {name:?}"),
        }
    }

    /// Snapshot of the histogram with this registry name.
    pub fn histogram(&self, name: &str) -> &HistogramSnapshot {
        match HISTOGRAM_NAMES.iter().position(|n| *n == name) {
            Some(i) => &self.histograms[i],
            None => panic!("unknown telemetry histogram {name:?}"),
        }
    }

    /// Timing snapshot for a phase.
    pub fn phase(&self, phase: Phase) -> PhaseSnapshot {
        self.phases[phase as usize]
    }

    /// Quarantine fault count for one stage x kind cell.
    pub fn fault(&self, stage: FaultStage, kind: FaultKind) -> u64 {
        self.faults[stage as usize][kind as usize]
    }

    /// Total quarantine faults across the whole table.
    pub fn fault_total(&self) -> u64 {
        self.faults.iter().flatten().sum()
    }

    /// `(name, value)` pairs for every counter, in registry order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        COUNTER_NAMES
            .iter()
            .copied()
            .zip(self.counters.iter().copied())
    }

    /// `(name, value)` pairs for the order-independent counters only: the
    /// subset guaranteed identical across thread counts and lane widths for a
    /// given driver, program, and inputs.
    pub fn stable_counters(&self) -> Vec<(&'static str, u64)> {
        COUNTER_NAMES
            .iter()
            .copied()
            .zip(self.counters.iter().copied())
            .zip(COUNTER_STABLE.iter().copied())
            .filter_map(|(pair, stable)| stable.then_some(pair))
            .collect()
    }

    /// Mean active lanes per dispatched batch instruction, if any batch passes
    /// ran. (A per-width utilization fraction is not recoverable once mixed
    /// widths run in one sweep, so the mean active-lane count is reported.)
    pub fn lane_utilization(&self) -> Option<f64> {
        let dispatches = self.counter("fpvm.batch_dispatches");
        let active = self.counter("fpvm.batch_active_lane_slots");
        if dispatches == 0 {
            None
        } else {
            Some(active as f64 / dispatches as f64)
        }
    }

    /// Render the snapshot as an indented human-readable text section.
    /// Zero-valued metrics are omitted; a disabled snapshot says so.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str("--- sweep telemetry ---\n");
        if !self.enabled {
            out.push_str("telemetry disabled (TelemetryMode::Off)\n");
            return out;
        }
        for (name, v) in self.counters() {
            if v != 0 {
                out.push_str(&format!("{name}: {v}\n"));
            }
        }
        for (name, v) in GAUGE_NAMES.iter().zip(self.gauges.iter()) {
            if *v != 0 {
                out.push_str(&format!("{name}: {v} (max)\n"));
            }
        }
        if let Some(mean_active) = self.lane_utilization() {
            out.push_str(&format!(
                "fpvm.mean_active_lanes_per_dispatch: {mean_active:.2}\n"
            ));
        }
        for (name, h) in HISTOGRAM_NAMES.iter().zip(self.histograms.iter()) {
            if h.count != 0 {
                let mean = h.mean().unwrap_or(0.0);
                out.push_str(&format!(
                    "{name}: count={} sum={} mean={mean:.1}\n",
                    h.count, h.sum
                ));
            }
        }
        for (name, p) in PHASE_NAMES.iter().zip(self.phases.iter()) {
            if p.count != 0 {
                out.push_str(&format!(
                    "phase.{name}: count={} total={:.3}ms\n",
                    p.count,
                    p.nanos as f64 / 1.0e6
                ));
            }
        }
        for (stage, row) in FAULT_STAGE_NAMES.iter().zip(self.faults.iter()) {
            for (kind, v) in FAULT_KIND_NAMES.iter().zip(row.iter()) {
                if *v != 0 {
                    out.push_str(&format!("quarantine.fault.{stage}.{kind}: {v}\n"));
                }
            }
        }
        out
    }

    /// Render the snapshot as the stable machine-readable JSON artifact.
    /// See [`telemetry_to_json`].
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": \"herbgrind-sweep-telemetry\",\n");
        out.push_str("  \"version\": 1,\n");
        out.push_str(&format!("  \"enabled\": {},\n", self.enabled));
        out.push_str("  \"counters\": {");
        for (i, (name, v)) in self.counters().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{name}\": {v}"));
        }
        out.push_str("\n  },\n");
        out.push_str("  \"gauges\": {");
        for (i, (name, v)) in GAUGE_NAMES.iter().zip(self.gauges.iter()).enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{name}\": {v}"));
        }
        out.push_str("\n  },\n");
        out.push_str("  \"histograms\": {");
        for (i, (name, h)) in HISTOGRAM_NAMES
            .iter()
            .zip(self.histograms.iter())
            .enumerate()
        {
            if i > 0 {
                out.push(',');
            }
            let buckets: Vec<String> = h.buckets.iter().map(|b| b.to_string()).collect();
            out.push_str(&format!(
                "\n    \"{name}\": {{\"count\": {}, \"sum\": {}, \"buckets\": [{}]}}",
                h.count,
                h.sum,
                buckets.join(", ")
            ));
        }
        out.push_str("\n  },\n");
        out.push_str("  \"phases\": {");
        for (i, (name, p)) in PHASE_NAMES.iter().zip(self.phases.iter()).enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    \"{name}\": {{\"count\": {}, \"nanos\": {}}}",
                p.count, p.nanos
            ));
        }
        out.push_str("\n  },\n");
        out.push_str("  \"quarantine_faults\": {");
        for (i, (stage, row)) in FAULT_STAGE_NAMES.iter().zip(self.faults.iter()).enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{stage}\": {{"));
            for (j, (kind, v)) in FAULT_KIND_NAMES.iter().zip(row.iter()).enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("\"{kind}\": {v}"));
            }
            out.push('}');
        }
        out.push_str("\n  }\n");
        out.push_str("}\n");
        out
    }
}

/// Serialize a snapshot as the stable `herbgrind-sweep-telemetry` v1 JSON
/// artifact: fixed key order (registry order), all metrics present even when
/// zero, integers only. This is the schema CI validates.
pub fn telemetry_to_json(snapshot: &SweepTelemetry) -> String {
    snapshot.to_json()
}

#[cfg(test)]
mod tests {
    use super::*;

    // Every test that enables recording must hold a SweepCapture, which
    // serializes them on the capture lock.

    #[test]
    fn disabled_by_default_and_sites_are_inert() {
        assert!(!enabled());
        FPVM_STEPS.add(17);
        INTERNER_PEAK_NODES.record(99);
        HIST_RUN_STEPS.observe(5);
        record_fault(FaultStage::Serial, FaultKind::Panic);
        let cap = SweepCapture::begin(TelemetryMode::On);
        let snap = cap.finish();
        assert_eq!(snap.counter("fpvm.steps"), 0);
        assert_eq!(snap.gauge("interner.peak_nodes"), 0);
        assert_eq!(snap.histogram("hist.run_steps").count, 0);
        assert_eq!(snap.fault_total(), 0);
    }

    #[test]
    fn capture_records_and_resets() {
        let cap = SweepCapture::begin(TelemetryMode::On);
        FPVM_STEPS.add(10);
        FPVM_STEPS.incr();
        SHADOW_DD_OPS.add(3);
        INTERNER_PEAK_NODES.record(7);
        INTERNER_PEAK_NODES.record(4);
        HIST_BATCH_GROUP_SIZE.observe(8);
        HIST_BATCH_GROUP_SIZE.observe(1);
        record_fault(FaultStage::BatchedLane, FaultKind::TraceBudget);
        {
            let _span = span(Phase::Certify);
        }
        let snap = cap.finish();
        assert!(snap.enabled);
        assert_eq!(snap.counter("fpvm.steps"), 11);
        assert_eq!(snap.counter("shadow.dd_ops"), 3);
        assert_eq!(snap.gauge("interner.peak_nodes"), 7);
        let h = snap.histogram("hist.batch_group_size");
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 9);
        assert_eq!(h.buckets[hist_bucket(8)], 1);
        assert_eq!(h.buckets[hist_bucket(1)], 1);
        assert_eq!(
            snap.fault(FaultStage::BatchedLane, FaultKind::TraceBudget),
            1
        );
        assert_eq!(snap.fault_total(), 1);
        assert_eq!(snap.phase(Phase::Certify).count, 1);
        assert!(!enabled());

        // A fresh capture starts from zero.
        let cap = SweepCapture::begin(TelemetryMode::On);
        let snap = cap.finish();
        assert_eq!(snap.counter("fpvm.steps"), 0);
        assert_eq!(snap.fault_total(), 0);
    }

    #[test]
    fn off_capture_is_free_and_disabled_snapshot_is_zero() {
        let cap = SweepCapture::begin(TelemetryMode::Off);
        FPVM_STEPS.add(10_000);
        let snap = cap.finish();
        assert!(!snap.enabled);
        assert_eq!(snap.counter("fpvm.steps"), 0);
        assert_eq!(snap, SweepTelemetry::disabled());
    }

    #[test]
    fn hist_buckets_cover_ranges() {
        assert_eq!(hist_bucket(0), 0);
        assert_eq!(hist_bucket(1), 1);
        assert_eq!(hist_bucket(2), 2);
        assert_eq!(hist_bucket(3), 2);
        assert_eq!(hist_bucket(4), 3);
        assert_eq!(hist_bucket(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn registry_tables_line_up() {
        assert_eq!(COUNTER_NAMES.len(), COUNTER_STABLE.len());
        assert_eq!(PHASES.len(), PHASE_NAMES.len());
        assert_eq!(PHASE_CELLS.len(), PHASE_NAMES.len());
        // Names must be unique (they key the JSON objects).
        for names in [COUNTER_NAMES, GAUGE_NAMES, HISTOGRAM_NAMES, PHASE_NAMES] {
            let mut sorted: Vec<&str> = names.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), names.len());
        }
    }

    #[test]
    fn json_contains_every_metric_and_schema_header() {
        let cap = SweepCapture::begin(TelemetryMode::On);
        FPVM_STEPS.add(42);
        let snap = cap.finish();
        let json = telemetry_to_json(&snap);
        assert!(json.contains("\"schema\": \"herbgrind-sweep-telemetry\""));
        assert!(json.contains("\"version\": 1"));
        assert!(json.contains("\"fpvm.steps\": 42"));
        for name in COUNTER_NAMES
            .iter()
            .chain(GAUGE_NAMES)
            .chain(HISTOGRAM_NAMES)
        {
            assert!(json.contains(&format!("\"{name}\"")), "missing {name}");
        }
        for name in PHASE_NAMES
            .iter()
            .chain(FAULT_STAGE_NAMES)
            .chain(FAULT_KIND_NAMES)
        {
            assert!(json.contains(&format!("\"{name}\"")), "missing {name}");
        }
    }

    #[test]
    fn stable_counters_subset_matches_flags() {
        let cap = SweepCapture::begin(TelemetryMode::On);
        let snap = cap.finish();
        let stable = snap.stable_counters();
        assert_eq!(stable.len(), COUNTER_STABLE.iter().filter(|s| **s).count());
        assert!(stable.iter().any(|(n, _)| *n == "fpvm.steps"));
        assert!(stable.iter().all(|(n, _)| *n != "fpvm.batch_passes"));
    }
}

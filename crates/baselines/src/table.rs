//! The Table 1 feature matrix.
//!
//! Table 1 of the paper compares FpDebug, BZ, Verrou, and Herbgrind along a
//! fixed set of capabilities. The capabilities of the three baselines are
//! properties of the detection strategies reproduced in this crate; the
//! matrix is therefore data, printed by `examples/table1_features.rs` and
//! checked by tests so it cannot drift from the implementations.

/// One row of the feature matrix.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FeatureRow {
    /// The feature name, as in Table 1.
    pub feature: &'static str,
    /// Support in FpDebug / BZ / Verrou / Herbgrind.
    pub support: [bool; 4],
}

/// The tools, in the column order of Table 1.
pub const TOOLS: [&str; 4] = ["FpDebug", "BZ", "Verrou", "Herbgrind"];

/// The feature matrix of Table 1 (the "Localization" row, which is textual
/// in the paper, is represented by the two abstraction features below).
pub fn feature_matrix() -> Vec<FeatureRow> {
    vec![
        FeatureRow {
            feature: "Dynamic",
            support: [true, true, true, true],
        },
        FeatureRow {
            feature: "Detects Error",
            support: [true, true, true, true],
        },
        FeatureRow {
            feature: "Shadow Reals",
            support: [true, false, false, true],
        },
        FeatureRow {
            feature: "Local Error",
            support: [false, false, false, true],
        },
        FeatureRow {
            feature: "Library Abstraction",
            support: [false, false, false, true],
        },
        FeatureRow {
            feature: "Output-Sensitive Error Report",
            support: [false, false, false, true],
        },
        FeatureRow {
            feature: "Detect Control Divergence",
            support: [false, true, false, true],
        },
        FeatureRow {
            feature: "Abstracted Code Fragment Localization",
            support: [false, false, false, true],
        },
        FeatureRow {
            feature: "Characterize Inputs",
            support: [false, false, false, true],
        },
        FeatureRow {
            feature: "Automatically Re-run in High Precision",
            support: [false, true, false, false],
        },
    ]
}

/// Renders the matrix as an aligned text table.
pub fn render_feature_matrix() -> String {
    let rows = feature_matrix();
    let width = rows.iter().map(|r| r.feature.len()).max().unwrap_or(0);
    let mut out = format!(
        "{:width$}  {}\n",
        "Feature",
        TOOLS.join("  "),
        width = width
    );
    for row in rows {
        let marks: Vec<String> = row
            .support
            .iter()
            .zip(TOOLS)
            .map(|(s, tool)| {
                format!(
                    "{:^width$}",
                    if *s { "yes" } else { "no" },
                    width = tool.len()
                )
            })
            .collect();
        out.push_str(&format!(
            "{:width$}  {}\n",
            row.feature,
            marks.join("  "),
            width = width
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn herbgrind_supports_every_analysis_feature_except_reruns() {
        for row in feature_matrix() {
            let herbgrind = row.support[3];
            if row.feature == "Automatically Re-run in High Precision" {
                assert!(!herbgrind);
            } else {
                assert!(herbgrind, "{} should be supported", row.feature);
            }
        }
    }

    #[test]
    fn only_herbgrind_localizes_to_code_fragments() {
        let row = feature_matrix()
            .into_iter()
            .find(|r| r.feature == "Abstracted Code Fragment Localization")
            .unwrap();
        assert_eq!(row.support, [false, false, false, true]);
    }

    #[test]
    fn rendered_table_mentions_every_tool() {
        let text = render_feature_matrix();
        for tool in TOOLS {
            assert!(text.contains(tool));
        }
    }
}

//! A Verrou-style detector: random-rounding perturbation.
//!
//! Verrou perturbs the rounding of every floating-point operation and infers
//! potential instability from differences between perturbed runs. It has
//! very low overhead because there are no shadow values at all; the price is
//! that it reports only *that* something is unstable, not *where*.

use fpcore::CmpOp;
use fpvm::{MachineError, Pred, Program, Statement, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use shadowreal::{bits_error, Real, RealOp};

/// The result of comparing perturbed runs of a program.
#[derive(Clone, Debug, Default)]
pub struct VerrouReport {
    /// Maximum bits of difference between the nominal outputs and any
    /// perturbed run's outputs.
    pub max_output_deviation_bits: f64,
    /// Number of perturbed runs whose control flow diverged from the nominal
    /// run (detected as a different number of outputs or steps).
    pub control_divergences: u64,
    /// Number of perturbed runs performed.
    pub runs: u64,
}

impl VerrouReport {
    /// Verrou's verdict: the program is *possibly unstable* when perturbation
    /// moved an output by more than the threshold.
    pub fn possibly_unstable(&self, threshold_bits: f64) -> bool {
        self.max_output_deviation_bits > threshold_bits || self.control_divergences > 0
    }
}

/// Runs a program with every floating-point operation's result perturbed by
/// a random ±1 ulp (random-rounding mode), returning its outputs.
///
/// This is a separate interpreter rather than a [`fpvm::Tracer`] because it
/// must *change* the client computation, which tracers cannot do.
///
/// # Errors
///
/// Returns interpreter-equivalent errors (arity mismatch, step budget, bad
/// program counter).
pub fn run_perturbed(
    program: &Program,
    args: &[f64],
    seed: u64,
    step_limit: u64,
) -> Result<(Vec<f64>, u64), MachineError> {
    if args.len() != program.arg_addrs.len() {
        return Err(MachineError::ArityMismatch {
            expected: program.arg_addrs.len(),
            actual: args.len(),
        });
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut memory: Vec<Value> = vec![Value::F(0.0); program.num_addrs];
    for (&addr, &value) in program.arg_addrs.iter().zip(args) {
        memory[addr] = Value::F(value);
    }
    let mut outputs = Vec::new();
    let mut steps = 0u64;
    let mut pc = 0usize;
    loop {
        if steps >= step_limit {
            return Err(MachineError::StepBudgetExceeded { limit: step_limit });
        }
        steps += 1;
        let Some(stmt) = program.statements.get(pc) else {
            return Err(MachineError::PcOutOfRange { pc });
        };
        match stmt {
            Statement::Halt => break,
            Statement::ConstF { dest, value } => {
                memory[*dest] = Value::F(*value);
                pc += 1;
            }
            Statement::ConstI { dest, value } => {
                memory[*dest] = Value::I(*value);
                pc += 1;
            }
            Statement::Copy { dest, src } => {
                memory[*dest] = memory[*src];
                pc += 1;
            }
            Statement::Compute { dest, op, args } => {
                let arg_values: Vec<f64> = args.iter().map(|&a| memory[a].as_f64()).collect();
                let nominal = <f64 as Real>::apply(*op, &arg_values);
                memory[*dest] = Value::F(perturb(nominal, *op, &mut rng));
                pc += 1;
            }
            Statement::CastToInt { dest, src } => {
                memory[*dest] = Value::I(memory[*src].as_f64().trunc() as i64);
                pc += 1;
            }
            Statement::Branch { pred, target } => match pred {
                Pred::Always => pc = *target,
                Pred::Cmp(op, a, b) => {
                    let taken = holds(*op, memory[*a].as_f64(), memory[*b].as_f64());
                    pc = if taken { *target } else { pc + 1 };
                }
            },
            Statement::Output { src } => {
                outputs.push(memory[*src].as_f64());
                pc += 1;
            }
        }
    }
    Ok((outputs, steps))
}

fn holds(op: CmpOp, a: f64, b: f64) -> bool {
    op.holds(a.partial_cmp(&b))
}

fn perturb(value: f64, op: RealOp, rng: &mut StdRng) -> f64 {
    if !value.is_finite() || value == 0.0 {
        return value;
    }
    // Exact-by-construction operations are not perturbed (Verrou leaves
    // copies and sign manipulations alone).
    if matches!(
        op,
        RealOp::Neg
            | RealOp::Fabs
            | RealOp::Copysign
            | RealOp::Floor
            | RealOp::Ceil
            | RealOp::Trunc
            | RealOp::Round
    ) {
        return value;
    }
    match rng.gen_range(0..3u8) {
        0 => f64::from_bits(value.to_bits().wrapping_add(1)),
        1 => f64::from_bits(value.to_bits().wrapping_sub(1)),
        _ => value,
    }
}

/// Runs the nominal program and `runs` perturbed executions, comparing
/// outputs (the Verrou workflow).
///
/// # Errors
///
/// Propagates interpreter errors from the nominal or perturbed runs.
pub fn verrou_compare(
    program: &Program,
    inputs: &[Vec<f64>],
    runs: u64,
    seed: u64,
) -> Result<VerrouReport, MachineError> {
    let machine = fpvm::Machine::new(program);
    let mut report = VerrouReport::default();
    for input in inputs {
        let nominal = machine.run(input)?;
        for r in 0..runs {
            let (outputs, _) = run_perturbed(
                program,
                input,
                seed.wrapping_add(r),
                fpvm::interp::DEFAULT_STEP_LIMIT,
            )?;
            report.runs += 1;
            if outputs.len() != nominal.outputs.len() {
                report.control_divergences += 1;
                continue;
            }
            for (a, b) in outputs.iter().zip(&nominal.outputs) {
                let dev = bits_error(*a, *b);
                if dev > report.max_output_deviation_bits {
                    report.max_output_deviation_bits = dev;
                }
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpcore::parse_core;
    use fpvm::compile_core;

    #[test]
    fn stable_programs_show_tiny_deviation() {
        let core = parse_core("(FPCore (x y) (sqrt (+ (* x x) (* y y))))").unwrap();
        let program = compile_core(&core, Default::default()).unwrap();
        let report = verrou_compare(&program, &[vec![3.0, 4.0]], 5, 1).unwrap();
        assert!(!report.possibly_unstable(5.0), "{report:?}");
    }

    #[test]
    fn cancellation_is_flagged_as_possibly_unstable() {
        let core = parse_core("(FPCore (x) (- (sqrt (+ x 1)) (sqrt x)))").unwrap();
        let program = compile_core(&core, Default::default()).unwrap();
        let inputs: Vec<Vec<f64>> = vec![vec![1e13], vec![1e14]];
        let report = verrou_compare(&program, &inputs, 8, 3).unwrap();
        assert!(report.possibly_unstable(5.0), "{report:?}");
    }

    #[test]
    fn perturbed_run_reports_arity_errors() {
        let core = parse_core("(FPCore (x) (+ x 1))").unwrap();
        let program = compile_core(&core, Default::default()).unwrap();
        assert!(matches!(
            run_perturbed(&program, &[], 0, 1000),
            Err(MachineError::ArityMismatch { .. })
        ));
    }
}

//! A Bao & Zhang-style detector: cheap heuristic monitoring of "discrete
//! factors".
//!
//! The original tool watches instructions whose results feed into discrete
//! decisions (branches, integer conversions) and flags the ones whose
//! operands are so close that a rounding-error-sized relative perturbation
//! could change the outcome. It uses no shadow values, so its overhead is
//! tiny — and its false-positive rate is high (the paper quotes 80–90%).

use fpcore::CmpOp;
use fpvm::{Addr, Machine, MachineError, Program, Tracer, Value};
use std::collections::BTreeMap;

/// The report of the discrete-factor heuristic.
#[derive(Clone, Debug, Default)]
pub struct BzReport {
    /// For each branch statement: (evaluations, flagged evaluations).
    pub per_branch: BTreeMap<usize, (u64, u64)>,
    /// For each float→int conversion: (evaluations, flagged evaluations).
    pub per_conversion: BTreeMap<usize, (u64, u64)>,
}

impl BzReport {
    /// Statements flagged at least once.
    pub fn flagged_statements(&self) -> Vec<usize> {
        self.per_branch
            .iter()
            .chain(self.per_conversion.iter())
            .filter(|(_, (_, flagged))| *flagged > 0)
            .map(|(&pc, _)| pc)
            .collect()
    }

    /// Total number of flagged evaluations.
    pub fn flagged_evaluations(&self) -> u64 {
        self.per_branch
            .values()
            .chain(self.per_conversion.values())
            .map(|(_, f)| f)
            .sum()
    }
}

/// The detector itself: a [`Tracer`] with no shadow state.
#[derive(Clone, Debug)]
pub struct BzDetector {
    /// Relative closeness below which a comparison is considered at risk.
    pub relative_tolerance: f64,
    report: BzReport,
}

impl Default for BzDetector {
    fn default() -> Self {
        BzDetector {
            // A deliberately generous tolerance: the tool is meant to
            // over-approximate so that a high-precision re-run can confirm.
            relative_tolerance: 1e-10,
            report: BzReport::default(),
        }
    }
}

impl BzDetector {
    /// Creates a detector with the default tolerance.
    pub fn new() -> BzDetector {
        BzDetector::default()
    }

    /// The accumulated report.
    pub fn report(&self) -> &BzReport {
        &self.report
    }

    /// Runs a program over a set of inputs and returns the report.
    ///
    /// # Errors
    ///
    /// Propagates interpreter errors.
    pub fn analyze(program: &Program, inputs: &[Vec<f64>]) -> Result<BzReport, MachineError> {
        let mut detector = BzDetector::new();
        let machine = Machine::new(program);
        for input in inputs {
            machine.run_traced(input, &mut detector)?;
        }
        Ok(detector.report.clone())
    }
}

impl Tracer for BzDetector {
    fn on_branch(
        &mut self,
        pc: usize,
        _cmp: CmpOp,
        _lhs: Addr,
        _rhs: Addr,
        lhs_value: Value,
        rhs_value: Value,
        _taken: bool,
    ) {
        let a = lhs_value.as_f64();
        let b = rhs_value.as_f64();
        let scale = a.abs().max(b.abs());
        let close = scale > 0.0 && (a - b).abs() <= scale * self.relative_tolerance;
        let entry = self.report.per_branch.entry(pc).or_insert((0, 0));
        entry.0 += 1;
        if close {
            entry.1 += 1;
        }
    }

    fn on_cast_to_int(&mut self, pc: usize, _dest: Addr, _src: Addr, value: f64, result: i64) {
        // Flag conversions whose input sits within a rounding error of the
        // next integer boundary.
        let distance = (value - result as f64)
            .abs()
            .min((value - (result + value.signum() as i64) as f64).abs());
        let close = distance <= value.abs().max(1.0) * self.relative_tolerance;
        let entry = self.report.per_conversion.entry(pc).or_insert((0, 0));
        entry.0 += 1;
        if close {
            entry.1 += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpcore::parse_core;
    use fpvm::compile_core;

    #[test]
    fn near_boundary_branches_are_flagged() {
        // The PID-controller loop compares an accumulated 0.2-increment
        // counter with the bound; near the bound the operands are within
        // rounding distance.
        let core = parse_core("(FPCore (n) (while (< t n) ((t 0 (+ t 0.2))) t))").unwrap();
        let program = compile_core(&core, Default::default()).unwrap();
        let report = BzDetector::analyze(&program, &[vec![10.0]]).unwrap();
        assert!(report.flagged_evaluations() > 0, "{report:?}");
    }

    #[test]
    fn well_separated_branches_are_not_flagged() {
        let core = parse_core("(FPCore (x) (if (< x 100) 1 2))").unwrap();
        let program = compile_core(&core, Default::default()).unwrap();
        let report = BzDetector::analyze(&program, &[vec![3.0], vec![200.0]]).unwrap();
        assert_eq!(report.flagged_evaluations(), 0);
    }

    #[test]
    fn heuristic_produces_false_positives() {
        // Two exactly equal computed values compare equal reliably — there is
        // no actual instability — yet the heuristic flags the comparison.
        let core = parse_core("(FPCore (x) (if (== (* x 2) (+ x x)) 1 2))").unwrap();
        let program = compile_core(&core, Default::default()).unwrap();
        let report = BzDetector::analyze(&program, &[vec![1.5]]).unwrap();
        assert!(report.flagged_evaluations() > 0);
    }
}

//! An FpDebug-style detector: per-operation shadow error, reported by opcode
//! address.

use fpvm::{Addr, Machine, MachineError, Program, Tracer};
use shadowreal::{bits_error, BigFloat, Real, RealOp};
use std::collections::{BTreeMap, HashMap};

/// Per-operation error statistics, keyed by statement index (the analogue of
/// FpDebug's per-instruction-address report).
#[derive(Clone, Debug, Default)]
pub struct FpDebugReport {
    /// For each operation statement: (executions, max error bits, sum of
    /// error bits).
    pub per_operation: BTreeMap<usize, (u64, f64, f64)>,
}

impl FpDebugReport {
    /// Statements whose maximum error exceeds the threshold, most erroneous
    /// first.
    pub fn erroneous_operations(&self, threshold_bits: f64) -> Vec<(usize, f64)> {
        let mut out: Vec<(usize, f64)> = self
            .per_operation
            .iter()
            .filter(|(_, (_, max, _))| *max > threshold_bits)
            .map(|(&pc, &(_, max, _))| (pc, max))
            .collect();
        out.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        out
    }
}

/// The FpDebug-style tracer: shadows every float with a `BigFloat` and
/// records the error of every operation result, with no influence tracking,
/// no symbolic expressions, and no spot model.
#[derive(Debug, Default)]
pub struct FpDebugDetector {
    shadows: HashMap<Addr, BigFloat>,
    report: FpDebugReport,
}

impl FpDebugDetector {
    /// Creates a fresh detector.
    pub fn new() -> FpDebugDetector {
        FpDebugDetector::default()
    }

    /// The accumulated report.
    pub fn report(&self) -> &FpDebugReport {
        &self.report
    }

    /// Runs a program over a set of inputs and returns the report.
    ///
    /// # Errors
    ///
    /// Propagates interpreter errors.
    pub fn analyze(program: &Program, inputs: &[Vec<f64>]) -> Result<FpDebugReport, MachineError> {
        let mut detector = FpDebugDetector::new();
        let machine = Machine::new(program);
        for input in inputs {
            machine.run_traced(input, &mut detector)?;
        }
        Ok(detector.report.clone())
    }

    fn shadow(&mut self, addr: Addr, value: f64) -> BigFloat {
        self.shadows
            .get(&addr)
            .cloned()
            .unwrap_or_else(|| BigFloat::from_f64(value))
    }
}

impl Tracer for FpDebugDetector {
    fn on_start(&mut self, _program: &Program, _args: &[f64]) {
        self.shadows.clear();
    }

    fn on_const_f(&mut self, _pc: usize, dest: Addr, value: f64) {
        self.shadows.insert(dest, BigFloat::from_f64(value));
    }

    fn on_const_i(&mut self, _pc: usize, dest: Addr, _value: i64) {
        self.shadows.remove(&dest);
    }

    fn on_copy(&mut self, _pc: usize, dest: Addr, src: Addr, value: fpvm::Value) {
        match self.shadows.get(&src).cloned() {
            Some(s) => {
                self.shadows.insert(dest, s);
            }
            None => {
                if let fpvm::Value::F(v) = value {
                    self.shadows.insert(dest, BigFloat::from_f64(v));
                } else {
                    self.shadows.remove(&dest);
                }
            }
        }
    }

    fn on_compute(
        &mut self,
        pc: usize,
        op: RealOp,
        dest: Addr,
        args: &[Addr],
        arg_values: &[f64],
        result: f64,
    ) {
        let exact_args: Vec<BigFloat> = args
            .iter()
            .zip(arg_values)
            .map(|(&a, &v)| self.shadow(a, v))
            .collect();
        let exact = BigFloat::apply(op, &exact_args);
        let error = bits_error(result, exact.to_f64());
        let entry = self.report.per_operation.entry(pc).or_insert((0, 0.0, 0.0));
        entry.0 += 1;
        entry.1 = entry.1.max(error);
        entry.2 += error;
        self.shadows.insert(dest, exact);
    }

    fn on_cast_to_int(&mut self, _pc: usize, dest: Addr, _src: Addr, _value: f64, _result: i64) {
        self.shadows.remove(&dest);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpcore::parse_core;
    use fpvm::compile_core;

    #[test]
    fn detects_error_at_the_operation_that_exhibits_it() {
        let core = parse_core("(FPCore (x) (* (- (+ x 1) x) 2))").unwrap();
        let program = compile_core(&core, Default::default()).unwrap();
        let inputs: Vec<Vec<f64>> = (0..20).map(|i| vec![10f64.powi(i)]).collect();
        let report = FpDebugDetector::analyze(&program, &inputs).unwrap();
        let erroneous = report.erroneous_operations(5.0);
        assert!(!erroneous.is_empty());
        // FpDebug blames the subtraction *and* everything downstream of it,
        // because it reports accumulated error per instruction rather than
        // local error: the multiplication also shows up.
        assert!(erroneous.len() >= 2, "{erroneous:?}");
    }

    #[test]
    fn accurate_programs_have_no_erroneous_operations() {
        let core = parse_core("(FPCore (x y) (sqrt (+ (* x x) (* y y))))").unwrap();
        let program = compile_core(&core, Default::default()).unwrap();
        let report = FpDebugDetector::analyze(&program, &[vec![3.0, 4.0]]).unwrap();
        assert!(report.erroneous_operations(5.0).is_empty());
    }
}

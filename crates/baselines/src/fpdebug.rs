//! An FpDebug-style detector: per-operation shadow error, reported by opcode
//! address.

use fpvm::{Addr, Machine, MachineError, Program, Tracer, Value, MAX_ARITY};
use shadowreal::{bits_error, BigFloat, Real, RealOp};
use std::collections::BTreeMap;

/// Per-operation error statistics, keyed by statement index (the analogue of
/// FpDebug's per-instruction-address report).
#[derive(Clone, Debug, Default)]
pub struct FpDebugReport {
    /// For each operation statement: (executions, max error bits, sum of
    /// error bits).
    pub per_operation: BTreeMap<usize, (u64, f64, f64)>,
}

impl FpDebugReport {
    /// Statements whose maximum error exceeds the threshold, most erroneous
    /// first.
    pub fn erroneous_operations(&self, threshold_bits: f64) -> Vec<(usize, f64)> {
        let mut out: Vec<(usize, f64)> = self
            .per_operation
            .iter()
            .filter(|(_, (_, max, _))| *max > threshold_bits)
            .map(|(&pc, &(_, max, _))| (pc, max))
            .collect();
        out.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        out
    }
}

/// A shadow slot stamped with the run generation it was written in: stale
/// slots read as empty, so resetting shadow memory between runs is O(1) —
/// the same discipline the main analysis uses, replacing the `HashMap`
/// (hash + per-operand clone on the hot path) this baseline started with.
#[derive(Clone, Debug, Default)]
struct ShadowSlot {
    gen: u64,
    value: Option<BigFloat>,
}

/// The FpDebug-style tracer: shadows every float with a `BigFloat` and
/// records the error of every operation result, with no influence tracking,
/// no symbolic expressions, and no spot model.
///
/// Shadow storage is an address-indexed slot table reset by generation
/// stamp, and sweeps drive the machine through
/// [`Machine::run_traced_reusing`], so an N-input baseline run does
/// O(program) setup rather than O(N × program) — keeping the baseline's
/// measured overhead about its *analysis*, not about avoidable bookkeeping.
#[derive(Debug, Default)]
pub struct FpDebugDetector {
    shadows: Vec<ShadowSlot>,
    gen: u64,
    report: FpDebugReport,
}

impl FpDebugDetector {
    /// Creates a fresh detector.
    pub fn new() -> FpDebugDetector {
        FpDebugDetector::default()
    }

    /// The accumulated report.
    pub fn report(&self) -> &FpDebugReport {
        &self.report
    }

    /// Runs a program over a set of inputs and returns the report.
    ///
    /// # Errors
    ///
    /// Propagates interpreter errors.
    pub fn analyze(program: &Program, inputs: &[Vec<f64>]) -> Result<FpDebugReport, MachineError> {
        let mut detector = FpDebugDetector::new();
        let machine = Machine::new(program);
        let mut memory = Vec::new();
        for input in inputs {
            machine.run_traced_reusing(input, &mut detector, &mut memory)?;
        }
        Ok(detector.report.clone())
    }

    /// The live shadow of `addr`, if one was written this run.
    fn shadow_at(&self, addr: Addr) -> Option<&BigFloat> {
        self.shadows
            .get(addr)
            .filter(|slot| slot.gen == self.gen)
            .and_then(|slot| slot.value.as_ref())
    }

    /// Writes `addr`'s slot for the current run, growing the table on the
    /// cold path (statements may address beyond the space seen so far).
    fn put_shadow(&mut self, addr: Addr, value: Option<BigFloat>) {
        if addr >= self.shadows.len() {
            self.shadows.resize_with(addr + 1, ShadowSlot::default);
        }
        let slot = &mut self.shadows[addr];
        slot.gen = self.gen;
        slot.value = value;
    }

    /// Lazily installs a leaf shadow for an operand that was never written
    /// this run.
    fn ensure_shadow(&mut self, addr: Addr, value: f64) {
        if self.shadow_at(addr).is_none() {
            self.put_shadow(addr, Some(BigFloat::from_f64(value)));
        }
    }
}

impl Tracer for FpDebugDetector {
    fn on_start(&mut self, _program: &Program, _args: &[f64]) {
        // O(1) shadow reset: bumping the generation invalidates every slot.
        self.gen += 1;
    }

    fn on_const_f(&mut self, _pc: usize, dest: Addr, value: f64) {
        self.put_shadow(dest, Some(BigFloat::from_f64(value)));
    }

    fn on_const_i(&mut self, _pc: usize, dest: Addr, _value: i64) {
        self.put_shadow(dest, None);
    }

    fn on_copy(&mut self, _pc: usize, dest: Addr, src: Addr, value: Value) {
        if self.shadow_at(src).is_none() {
            match value {
                Value::F(v) => self.ensure_shadow(src, v),
                Value::I(_) => {
                    self.put_shadow(dest, None);
                    return;
                }
            }
        }
        let shared = self.shadow_at(src).cloned();
        self.put_shadow(dest, shared);
    }

    fn on_compute(
        &mut self,
        pc: usize,
        op: RealOp,
        dest: Addr,
        args: &[Addr],
        arg_values: &[f64],
        result: f64,
    ) {
        // Ensure every operand is shadowed, then read them by reference —
        // the exact evaluation clones nothing out of the slot table.
        for (&addr, &value) in args.iter().zip(arg_values) {
            self.ensure_shadow(addr, value);
        }
        let exact = {
            let first = self.shadow_at(args[0]).expect("operand shadow populated");
            let mut exact_refs: [&BigFloat; MAX_ARITY] = [first; MAX_ARITY];
            for (slot, &addr) in exact_refs.iter_mut().zip(args) {
                *slot = self.shadow_at(addr).expect("operand shadow populated");
            }
            BigFloat::apply_ref(op, &exact_refs[..args.len()])
        };
        let error = bits_error(result, exact.to_f64());
        let entry = self.report.per_operation.entry(pc).or_insert((0, 0.0, 0.0));
        entry.0 += 1;
        entry.1 = entry.1.max(error);
        entry.2 += error;
        self.put_shadow(dest, Some(exact));
    }

    fn on_cast_to_int(&mut self, _pc: usize, dest: Addr, _src: Addr, _value: f64, _result: i64) {
        self.put_shadow(dest, None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpcore::parse_core;
    use fpvm::compile_core;

    fn program(src: &str) -> Program {
        compile_core(&parse_core(src).unwrap(), Default::default()).unwrap()
    }

    #[test]
    fn detects_error_at_the_operation_that_exhibits_it() {
        let program = program("(FPCore (x) (* (- (+ x 1) x) 2))");
        let inputs: Vec<Vec<f64>> = (0..20).map(|i| vec![10f64.powi(i)]).collect();
        let report = FpDebugDetector::analyze(&program, &inputs).unwrap();
        let erroneous = report.erroneous_operations(5.0);
        assert!(!erroneous.is_empty());
        // FpDebug blames the subtraction *and* everything downstream of it,
        // because it reports accumulated error per instruction rather than
        // local error: the multiplication also shows up.
        assert!(erroneous.len() >= 2, "{erroneous:?}");
    }

    #[test]
    fn accurate_programs_have_no_erroneous_operations() {
        let program = program("(FPCore (x y) (sqrt (+ (* x x) (* y y))))");
        let report = FpDebugDetector::analyze(&program, &[vec![3.0, 4.0]]).unwrap();
        assert!(report.erroneous_operations(5.0).is_empty());
    }

    #[test]
    fn reused_slots_do_not_leak_shadows_across_runs() {
        // A loop whose accumulator slot is written a different number of
        // times per input: a slot-table reset bug would let a long first
        // run's shadows bleed into a shorter later run. The sweep must
        // accumulate exactly what per-input fresh detectors accumulate.
        let p = program("(FPCore (n) (while (< i n) ((s 0 (+ s (/ 1 i))) (i 1 (+ i 1))) s))");
        let inputs: Vec<Vec<f64>> = [40.0, 3.0, 17.0].iter().map(|&n| vec![n]).collect();
        let swept = FpDebugDetector::analyze(&p, &inputs).unwrap();
        let mut expected: BTreeMap<usize, (u64, f64, f64)> = BTreeMap::new();
        for input in &inputs {
            let single = FpDebugDetector::analyze(&p, std::slice::from_ref(input)).unwrap();
            for (pc, (count, max, sum)) in single.per_operation {
                let entry = expected.entry(pc).or_insert((0, 0.0, 0.0));
                entry.0 += count;
                entry.1 = entry.1.max(max);
                entry.2 += sum;
            }
        }
        assert_eq!(swept.per_operation.len(), expected.len());
        for (pc, (count, max, sum)) in &swept.per_operation {
            let (ecount, emax, esum) = expected[pc];
            assert_eq!(*count, ecount, "pc {pc}");
            assert_eq!(max.to_bits(), emax.to_bits(), "pc {pc}");
            assert_eq!(sum.to_bits(), esum.to_bits(), "pc {pc}");
        }
    }
}

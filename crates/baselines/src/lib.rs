//! Baseline floating-point error detectors, for the Table 1 comparison.
//!
//! The paper compares Herbgrind against three prior dynamic tools. None of
//! them is available as a Rust library, so — per the substitution rule in
//! `DESIGN.md` — this crate re-implements the *detection strategy* of each
//! over the same abstract machine, which is what the feature-matrix and
//! overhead comparison of Table 1 needs:
//!
//! * [`fpdebug`] — FpDebug (Benz et al., PLDI 2012): MPFR-style shadow values
//!   for every operation, error reported per opcode address, no notion of
//!   spots, influences, symbolic expressions, or input ranges.
//! * [`verrou`] — Verrou (Févotte & Lathuilière): random-rounding
//!   perturbation of every operation; error is *suggested* by output
//!   differences between perturbed runs, with no localization at all.
//! * [`bz`] — Bao & Zhang (FSE 2013): a lightweight heuristic that watches
//!   "discrete factors" (branches and float→int conversions) for operands so
//!   close together that a rounding-error-sized perturbation could flip
//!   them; cheap, but with a high false-positive rate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bz;
pub mod fpdebug;
pub mod table;
pub mod verrou;

pub use bz::{BzDetector, BzReport};
pub use fpdebug::{FpDebugDetector, FpDebugReport};
pub use table::{feature_matrix, render_feature_matrix, FeatureRow, TOOLS};
pub use verrou::{run_perturbed, verrou_compare, VerrouReport};

//! Value-generation strategies (subset of `proptest::strategy`).

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The type of value produced.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with a function.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: `self` generates the leaves, and `branch`
    /// wraps a strategy for subtrees into a strategy for one level up.
    ///
    /// `depth` bounds the recursion; the `_desired_size` and
    /// `_expected_branch_size` parameters exist for API compatibility with
    /// real proptest and are ignored.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        branch: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S + 'static,
    {
        Recursive {
            leaf: self.boxed(),
            branch: Rc::new(move |inner| branch(inner).boxed()),
            depth,
        }
    }

    /// Erases the strategy's concrete type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// The strategy returned by [`Strategy::prop_recursive`].
pub struct Recursive<T> {
    leaf: BoxedStrategy<T>,
    branch: Rc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
    depth: u32,
}

impl<T> Clone for Recursive<T> {
    fn clone(&self) -> Self {
        Recursive {
            leaf: self.leaf.clone(),
            branch: Rc::clone(&self.branch),
            depth: self.depth,
        }
    }
}

impl<T: 'static> Strategy for Recursive<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        // A quarter of draws stop early at a leaf so generated trees vary in
        // depth rather than all reaching the bound.
        if self.depth == 0 || rng.index(4) == 0 {
            return self.leaf.generate(rng);
        }
        let smaller = Recursive {
            leaf: self.leaf.clone(),
            branch: Rc::clone(&self.branch),
            depth: self.depth - 1,
        };
        (self.branch)(smaller.boxed()).generate(rng)
    }
}

/// The strategy built by [`prop_oneof!`](crate::prop_oneof): a uniform choice
/// among arms sharing a value type.
#[derive(Clone)]
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Creates a union; panics if no arms are given.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let arm = rng.index(self.arms.len());
        self.arms[arm].generate(rng)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start() + (self.end() - self.start()) * rng.unit_f64()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64 + 1;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// Types with a canonical "any value" strategy (subset of
/// `proptest::arbitrary::Arbitrary`).
pub trait Arbitrary {
    /// Draws an unconstrained value, covering the type's full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Raw bit patterns: exercises subnormals, infinities, and NaNs.
        f64::from_bits(rng.next_u64())
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The strategy returned by [`any`].
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy generating unconstrained values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_seed(1234)
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = rng();
        for _ in 0..500 {
            let v = (1.5f64..2.5).generate(&mut rng);
            assert!((1.5..2.5).contains(&v));
            let n = (3u32..7).generate(&mut rng);
            assert!((3..7).contains(&n));
        }
    }

    #[test]
    fn any_f64_eventually_produces_special_values() {
        let mut rng = rng();
        let strategy = any::<f64>();
        let mut saw_nan = false;
        let mut saw_negative = false;
        for _ in 0..10_000 {
            let v = strategy.generate(&mut rng);
            saw_nan |= v.is_nan();
            saw_negative |= v < 0.0;
        }
        assert!(saw_nan && saw_negative);
    }

    #[test]
    fn map_and_union_compose() {
        let mut rng = rng();
        let strategy = crate::prop_oneof![(0u32..5).prop_map(|n| n * 2), Just(100u32),];
        let mut saw_even_small = false;
        let mut saw_hundred = false;
        for _ in 0..200 {
            match strategy.generate(&mut rng) {
                100 => saw_hundred = true,
                n if n < 10 && n % 2 == 0 => saw_even_small = true,
                other => panic!("unexpected value {other}"),
            }
        }
        assert!(saw_even_small && saw_hundred);
    }

    #[test]
    fn recursive_strategies_bound_depth() {
        #[derive(Debug)]
        enum Tree {
            Leaf,
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf => 0,
                Tree::Node(children) => 1 + children.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strategy = Just(())
            .prop_map(|_| Tree::Leaf)
            .prop_recursive(3, 16, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(vec![a, b]))
            });
        let mut rng = rng();
        let mut max_seen = 0;
        for _ in 0..300 {
            max_seen = max_seen.max(depth(&strategy.generate(&mut rng)));
        }
        assert!(max_seen > 0 && max_seen <= 3, "max depth {max_seen}");
    }
}

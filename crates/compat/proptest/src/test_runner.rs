//! The per-test random number generator.

/// A deterministic RNG (xoshiro256++) whose seed is derived from the test
/// name, so every property is reproducible run to run without recording
/// seeds anywhere.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl TestRng {
    /// Creates an RNG seeded from an explicit value.
    pub fn from_seed(seed: u64) -> TestRng {
        let mut sm = seed;
        TestRng {
            state: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Creates an RNG seeded from a test name (FNV-1a over the bytes).
    pub fn deterministic(name: &str) -> TestRng {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in name.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng::from_seed(hash)
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.state = s;
        result
    }

    /// A uniform double in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform index in `[0, bound)`.
    pub fn index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "index bound must be positive");
        (self.next_u64() % bound as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::TestRng;

    #[test]
    fn same_name_same_stream() {
        let mut a = TestRng::deterministic("some_test");
        let mut b = TestRng::deterministic("some_test");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_names_different_streams() {
        let a: Vec<u64> = {
            let mut rng = TestRng::deterministic("alpha");
            (0..8).map(|_| rng.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut rng = TestRng::deterministic("beta");
            (0..8).map(|_| rng.next_u64()).collect()
        };
        assert_ne!(a, b);
    }
}

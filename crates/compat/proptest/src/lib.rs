//! Offline shim for the subset of the `proptest` 1.x API used by this
//! workspace's property tests.
//!
//! The build environment has no access to crates.io, so the workspace pins
//! this path crate instead of the real proptest. It provides the
//! [`proptest!`] test macro, the [`Strategy`](strategy::Strategy) trait with
//! the `prop_map`/`prop_recursive`/`boxed` combinators, range and tuple
//! strategies, [`prop_oneof!`], [`any`], `collection::vec`, and the
//! `prop_assert*`/[`prop_assume!`] macros.
//!
//! Differences from real proptest, deliberate for an offline shim:
//!
//! * no shrinking — failures report the failing values via the assertion
//!   message and are reproducible because every test derives its RNG seed
//!   from its own name;
//! * `prop_assume!` skips the case instead of drawing a replacement, so a
//!   test runs *up to* `PROPTEST_CASES` cases (default 256).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

pub mod collection {
    //! Strategies for collections (subset of `proptest::collection`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A strategy producing `Vec`s of values from an element strategy.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Creates a strategy producing vectors whose lengths fall in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let len = self.len.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The conventional glob import, mirroring `proptest::prelude`.

    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// The number of cases each property runs, from `PROPTEST_CASES` (default
/// 256, like real proptest).
pub fn cases_from_env() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(256)
}

/// Asserts a condition inside a property (failing the whole test).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Chooses uniformly among several strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Declares property-based tests, mirroring `proptest::proptest!`.
///
/// Each function body runs once per generated case; `prop_assume!` skips a
/// case, `prop_assert*` failures fail the test with the standard panic
/// message (values are printed by the assertion itself).
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($parm:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases = $crate::cases_from_env();
                let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                for _case in 0..cases {
                    let ($($parm,)+) = (
                        $($crate::strategy::Strategy::generate(&($strat), &mut rng),)+
                    );
                    let case = || $body;
                    case();
                }
            }
        )*
    };
}

//! Offline shim for the subset of the `criterion` 0.5 API used by the
//! benches in `crates/bench`.
//!
//! The build environment has no access to crates.io, so the workspace pins
//! this path crate instead of the real Criterion. It supports the
//! `criterion_group!`/`criterion_main!` macros, benchmark groups with
//! `sample_size`, and `Bencher::iter`, and reports min/median/mean wall-clock
//! times per benchmark. It intentionally skips Criterion's statistical
//! machinery (outlier rejection, regression detection, HTML reports): the
//! benches here are read by humans comparing relative magnitudes, which
//! min/median/mean cover.
//!
//! Setting `BENCH_SMOKE=1` in the environment clamps every benchmark to a
//! single timed sample with no warm-up pass — CI uses it to exercise each
//! bench end to end without paying for stable timings.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// The benchmark harness handle passed to every bench function.
#[derive(Debug, Default)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: if self.default_sample_size == 0 {
                20
            } else {
                self.default_sample_size
            },
            _criterion: self,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.benchmark_group(id.clone()).bench_function(id, f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let smoke = std::env::var_os("BENCH_SMOKE").is_some();
        let sample_size = if smoke { 1 } else { self.sample_size };
        let mut samples: Vec<Duration> = Vec::with_capacity(sample_size);
        // One untimed warm-up pass, then the timed samples (smoke mode skips
        // the warm-up: one short iteration is the whole point).
        if !smoke {
            let mut bencher = Bencher {
                elapsed: Duration::ZERO,
            };
            f(&mut bencher);
        }
        for _ in 0..sample_size {
            let mut bencher = Bencher {
                elapsed: Duration::ZERO,
            };
            f(&mut bencher);
            samples.push(bencher.elapsed);
        }
        samples.sort();
        let min = samples[0];
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        println!(
            "bench {}/{}: min {:?}  median {:?}  mean {:?}  ({} samples)",
            self.name,
            id,
            min,
            median,
            mean,
            samples.len()
        );
        self
    }

    /// Ends the group (kept for API compatibility; all reporting is eager).
    pub fn finish(self) {}
}

/// Times the closure passed to [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    /// Runs and times one iteration of the benchmarked routine.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        let value = f();
        self.elapsed += start.elapsed();
        drop(value);
    }
}

/// Prevents the compiler from optimizing a value away (re-export shim; the
/// benches mostly use `std::hint::black_box` directly).
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Declares a group of benchmark functions, mirroring Criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point, mirroring Criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_run_and_time_their_benchmarks() {
        let mut c = Criterion::default();
        let mut runs = 0;
        {
            let mut group = c.benchmark_group("smoke");
            group.sample_size(3);
            group.bench_function("count", |b| {
                b.iter(|| {
                    runs += 1;
                })
            });
            group.finish();
        }
        if std::env::var_os("BENCH_SMOKE").is_some() {
            // Smoke mode: exactly one timed sample, no warm-up.
            assert_eq!(runs, 1);
        } else {
            // One warm-up pass plus three samples.
            assert_eq!(runs, 4);
        }
    }

    #[test]
    fn bench_function_outside_groups_works() {
        let mut c = Criterion::default();
        let mut hit = false;
        c.bench_function("direct", |b| b.iter(|| hit = true));
        assert!(hit);
    }
}

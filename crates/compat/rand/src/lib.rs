//! Offline shim for the subset of the `rand` 0.8 API used by this workspace.
//!
//! The build environment has no access to crates.io, so the workspace pins
//! this path crate instead of the real `rand`. It provides [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] sampling methods the
//! `herbie-lite` sampler and the `baselines` Verrou detector call
//! (`gen_range` over float and integer ranges, `gen_bool`).
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — the same
//! construction real `rand` uses for seeding — so streams are deterministic,
//! well distributed, and stable across platforms. (They are not the same
//! streams as upstream `rand`, which is fine: everything in this repository
//! that depends on sampled values pins a seed and snapshots outputs against
//! this generator.)

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A seedable random number generator (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates an RNG from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core sampling interface (subset of `rand::RngCore`).
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value uniformly from the given range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// A range that knows how to sample itself (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

fn unit_f64(bits: u64) -> f64 {
    // 53 random bits mapped to [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64())
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty f64 range");
        lo + (hi - lo) * unit_f64(rng.next_u64())
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift bounded sampling (Lemire); bias is < 2^-32
                // for the tiny spans used here.
                let draw = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + draw as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range");
                let span = (hi - lo) as u64 + 1;
                let draw = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                lo + draw as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

/// Concrete generators (subset of `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard RNG: xoshiro256++ seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                state: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.state;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.state = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000u64), b.gen_range(0..1000u64));
        }
        let mut c = StdRng::seed_from_u64(43);
        let a_draws: Vec<u64> = (0..10).map(|_| a.gen_range(0..1_000_000u64)).collect();
        let c_draws: Vec<u64> = (0..10).map(|_| c.gen_range(0..1_000_000u64)).collect();
        assert_ne!(a_draws, c_draws);
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-2.5f64..=10.0);
            assert!((-2.5..=10.0).contains(&v));
            let w = rng.gen_range(1.0f64..2.0);
            assert!((1.0..2.0).contains(&w));
        }
    }

    #[test]
    fn integer_ranges_cover_all_values() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[rng.gen_range(0..3u8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }
}

//! The abstract interpreter over the compiled tape: a worklist fixpoint
//! with a bounded widening ladder, per-statement verdicts, and the tier-0
//! prune mask.
//!
//! ## Fixpoint
//!
//! Every statement is a CFG node with an entry state (one [`AbsVal`] per
//! machine address). States flow along the tape edges; conditional-branch
//! edges refine the compared operands (with drift slack, so the refined
//! box still contains both the client and the exact value on that path).
//! Entry states at targets of back edges are widened after a few joins
//! ([`WIDEN_AFTER`]), driving loops to a fixpoint along the domain's
//! finite ladder.
//!
//! ## Certification
//!
//! A compute statement is `CertifiedStable` when the static bound on its
//! *measured local error* — the Figure-4 quantity the dynamic analysis
//! compares against `local_error_threshold` — stays at or below the ulp
//! count where the threshold flips. The bound is
//!
//! ```text
//! ulps ≤ round + Σᵢ κᵢ·(1 + 2·Eᵢ/u) + SLACK_ULPS
//! ```
//!
//! where `round` is the operation's own rounding, `κᵢ` the operand
//! condition numbers, `Eᵢ` the operands' accumulated relative drift and
//! `u = 2⁻⁵³`. The `2·Eᵢ/u` term makes the bound hold for *any* shadow
//! value within `Eᵢ` of the exact real — in particular both for the full
//! shadow chain and for the client-value leaves that replace it when an
//! upstream statement is pruned, which is what keeps tier-0 pruned reports
//! bit-identical. Exact operands (client double = exact real) contribute
//! nothing regardless of κ. `SLACK_ULPS` absorbs the finite precision of
//! the dynamic shadow measurement itself.

use crate::domain::{down, up, AbsVal, UNIT_ROUNDOFF};
use crate::transfer::{transfer, OpFlow, KAPPA_PAD};
use fpcore::CmpOp;
use fpvm::{Pred, Program, Statement};
use shadowreal::{RealOp, MAX_ARITY};

/// Joins at a back-edge target before widening kicks in.
const WIDEN_AFTER: u32 = 3;

/// Flat ulp slack added to every certification bound, absorbing the
/// dynamic measurement's own shadow rounding and ulp discreteness.
const SLACK_ULPS: f64 = 4.0;

/// Bound (in ulps) beyond which a statement is reported as statically
/// *unstable* rather than merely uncertified.
const UNSTABLE_ULPS: f64 = 4096.0;

/// Worklist safety valve: if the fixpoint has not stabilized after this
/// many node visits per statement, the analysis bails to "nothing
/// certified" (sound, never wrong — just useless).
const MAX_VISITS_PER_STMT: usize = 256;

/// Parameters the verdicts depend on, mirrored from the dynamic analysis
/// configuration.
#[derive(Clone, Copy, Debug)]
pub struct StaticParams {
    /// Bits of local error above which the dynamic analysis flags a
    /// computation (`AnalysisConfig::local_error_threshold`).
    pub local_error_threshold: f64,
    /// Bits of output error above which an output spot is flagged.
    pub output_error_threshold: f64,
    /// Whether the dynamic analysis detects compensating additions
    /// (`AnalysisConfig::detect_compensation`); pruning must keep every
    /// potential compensation site live when it does.
    pub detect_compensation: bool,
}

impl Default for StaticParams {
    fn default() -> StaticParams {
        StaticParams {
            local_error_threshold: 5.0,
            output_error_threshold: 5.0,
            detect_compensation: true,
        }
    }
}

/// The per-statement classification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StaticVerdict {
    /// The statement cannot trip its dynamic threshold for any in-range
    /// input: its dynamic shadowing is redundant.
    CertifiedStable,
    /// No certificate, but no static evidence of instability either.
    MayErr,
    /// The static error bound is unbounded or enormous: a root-cause
    /// candidate before any input runs.
    StaticallyUnstable,
}

/// The dominating term of a statement's static error bound — the
/// root-cause hint attached to uncertified verdicts.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DominantTerm {
    /// The operation's own rounding dominates.
    OpRounding,
    /// Amplification of one operand's incoming error dominates.
    OperandAmplification {
        /// Which operand (0-based).
        operand: usize,
        /// The condition-number bound doing the amplifying.
        kappa: f64,
    },
    /// A domain edge (possible NaN / fail-closed operand box).
    DomainEdge,
    /// An operand's accumulated drift is unbounded.
    UnknownOperandDrift {
        /// Which operand (0-based).
        operand: usize,
    },
}

/// Static facts about one tape statement.
#[derive(Clone, Debug)]
pub struct StatementInfo {
    /// The verdict.
    pub verdict: StaticVerdict,
    /// Bound on the measured local error in ulps (`f64::INFINITY` when no
    /// bound was established). Zero for non-compute statements.
    pub ulps_bound: f64,
    /// The dominating term of the bound (computes only).
    pub dominant: Option<DominantTerm>,
    /// The result abstract value (computes and casts).
    pub out: Option<AbsVal>,
    /// Whether a compensating add/sub could fire here.
    pub compensation_possible: bool,
    /// Whether the statement is reachable from entry.
    pub reachable: bool,
}

/// The result of statically analyzing a program over an input region.
#[derive(Clone, Debug)]
pub struct StaticAnalysis {
    /// One entry per tape statement.
    pub statements: Vec<StatementInfo>,
    /// Fixpoint entry state per statement (`None` = unreachable), kept for
    /// the lint layer and soundness tests.
    pub entries: Vec<Option<Box<[AbsVal]>>>,
    /// Number of `Compute` statements.
    pub total_computes: usize,
    /// Number of `Compute` statements certified stable.
    pub certified_computes: usize,
    /// The parameters the verdicts were formed under.
    pub params: StaticParams,
}

impl StaticAnalysis {
    /// The verdict for a statement (trivially stable out of range).
    pub fn verdict(&self, pc: usize) -> StaticVerdict {
        self.statements
            .get(pc)
            .map_or(StaticVerdict::CertifiedStable, |s| s.verdict)
    }

    /// Fraction of compute statements certified stable.
    pub fn certified_fraction(&self) -> f64 {
        if self.total_computes == 0 {
            1.0
        } else {
            self.certified_computes as f64 / self.total_computes as f64
        }
    }
}

/// Which statements the tiered driver may skip dynamic shadowing for.
///
/// A statement is pruned only when it is certified stable, provably
/// non-compensating, and its value never reaches (through the shadow
/// dataflow) a statement whose report-visible behaviour could depend on
/// the shape of the shadow it sees — so pruning is invisible in the
/// report, bit for bit.
#[derive(Clone, Debug, Default)]
pub struct PruneMask {
    bits: Vec<bool>,
    pruned_computes: usize,
    total_computes: usize,
}

impl PruneMask {
    /// True when the statement's dynamic shadowing can be skipped.
    #[inline]
    pub fn is_pruned(&self, pc: usize) -> bool {
        self.bits.get(pc).copied().unwrap_or(false)
    }

    /// Number of pruned compute statements.
    pub fn pruned_computes(&self) -> usize {
        self.pruned_computes
    }

    /// Total compute statements in the program.
    pub fn total_computes(&self) -> usize {
        self.total_computes
    }

    /// Pruned fraction over compute statements.
    pub fn prune_rate(&self) -> f64 {
        if self.total_computes == 0 {
            0.0
        } else {
            self.pruned_computes as f64 / self.total_computes as f64
        }
    }

    /// True when nothing is pruned.
    pub fn is_empty(&self) -> bool {
        self.pruned_computes == 0
    }
}

/// The highest measured-ulp count that still stays at or under `bits` of
/// error: `bits_error` reports `log2(ulps + 1)`.
fn threshold_ulps(bits: f64) -> f64 {
    (bits.exp2() - 1.0).floor().max(0.0)
}

/// Successor list of a statement.
fn successors(stmt: &Statement, pc: usize, len: usize) -> Vec<usize> {
    match stmt {
        Statement::Halt => vec![],
        Statement::Branch {
            pred: Pred::Always,
            target,
        } => vec![*target],
        Statement::Branch {
            pred: Pred::Cmp(..),
            target,
        } => vec![*target, pc + 1],
        _ => vec![pc + 1],
    }
    .into_iter()
    .filter(|&s| s < len)
    .collect()
}

/// Absolute drift slack for a value: how far the client double can sit
/// from the exact real. `None` when unbounded.
fn drift_slack(v: &AbsVal) -> Option<f64> {
    if v.exact {
        Some(0.0)
    } else if v.has_err_bound() && v.is_finite() {
        Some(up(v.err * v.max_abs() * 2.0))
    } else {
        None
    }
}

/// Refines `state` along a comparison edge. Returns `false` when the path
/// is infeasible (empty refined interval).
fn refine_cmp(state: &mut [AbsVal], op: CmpOp, a: usize, b: usize, taken: bool) -> bool {
    // Only ordering comparisons refine; Eq/Ne carry little interval
    // information.
    let (lt_like, le_like) = match (op, taken) {
        (CmpOp::Lt, true) | (CmpOp::Ge, false) => (true, false), // a < b
        (CmpOp::Le, true) | (CmpOp::Gt, false) => (true, true),  // a ≤ b
        (CmpOp::Gt, true) | (CmpOp::Le, false) => (false, false), // a > b
        (CmpOp::Ge, true) | (CmpOp::Lt, false) => (false, true), // a ≥ b
        _ => return true,
    };
    let _ = le_like;
    // On a *taken* ordering edge neither operand was NaN; on a fall-through
    // edge NaN operands also fall through, so the NaN flag must stay.
    let nan_cleared = taken && matches!(op, CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge);
    if !nan_cleared && (state[a].may_nan || state[b].may_nan) {
        return true;
    }
    let (da, db) = match (drift_slack(&state[a]), drift_slack(&state[b])) {
        (Some(da), Some(db)) => (da, db),
        _ => {
            if nan_cleared {
                state[a].may_nan = false;
                state[b].may_nan = false;
            }
            return true;
        }
    };
    // `lt_like`: client(a) ≤ client(b) held, so a's values (client, and
    // exact within da) are bounded by b.hi plus slack; mirrored for b.
    let (lo_idx, hi_idx, d_lo, d_hi) = if lt_like {
        (a, b, da, db)
    } else {
        (b, a, db, da)
    };
    let hi_cap = up(state[hi_idx].hi + d_lo);
    let lo_cap = down(state[lo_idx].lo - d_hi);
    if hi_cap < state[lo_idx].hi {
        state[lo_idx].hi = hi_cap;
    }
    if lo_cap > state[hi_idx].lo {
        state[hi_idx].lo = lo_cap;
    }
    if nan_cleared {
        state[a].may_nan = false;
        state[b].may_nan = false;
    }
    state[a].lo <= state[a].hi && state[b].lo <= state[b].hi
}

/// Applies one statement to a state, returning the flow of a compute for
/// reuse by the verdict pass.
fn apply_statement(stmt: &Statement, state: &mut [AbsVal]) -> Option<OpFlow> {
    match stmt {
        Statement::ConstF { dest, value } => {
            state[*dest] = AbsVal::exact_point(*value);
            None
        }
        Statement::ConstI { dest, value } => {
            state[*dest] = AbsVal::exact_int(*value);
            None
        }
        Statement::Copy { dest, src } => {
            state[*dest] = state[*src];
            None
        }
        Statement::Compute { dest, op, args } => {
            let mut argv = [AbsVal::top(); MAX_ARITY];
            for (i, &a) in args.iter().enumerate() {
                argv[i] = state[a];
            }
            let flow = transfer(*op, &argv[..args.len()]);
            state[*dest] = flow.val;
            Some(flow)
        }
        Statement::CastToInt { dest, src } => {
            let v = state[*src];
            state[*dest] = cast_to_int_val(&v);
            None
        }
        Statement::Branch { .. } | Statement::Output { .. } | Statement::Halt => None,
    }
}

/// Abstract value of a float→int truncation.
fn cast_to_int_val(v: &AbsVal) -> AbsVal {
    const CAST_LIMIT: f64 = 4.611686018427388e18; // 2^62
    if v.exact && !v.may_nan && v.is_finite() && v.max_abs() <= CAST_LIMIT {
        AbsVal {
            lo: v.lo.trunc(),
            hi: v.hi.trunc(),
            may_nan: false,
            err: 0.0,
            exact: true,
            int: true,
        }
    } else {
        AbsVal::top()
    }
}

/// True when a compensating add/sub (§5.3) could fire at this operation
/// over the operand boxes. The dynamic detector triggers when the result
/// equals an operand *in the shadow representation* — which happens not
/// only for an exactly-zero other operand but whenever that operand
/// vanishes relative to the result at the shadow precision (e.g.
/// `1 + exp(-x)` for large `x`). Every supported shadow carries well over
/// 53 fraction bits, so a magnitude gap that can reach 2⁻⁵⁰ is flagged as
/// possibly compensating (the extra bits are margin for rounding at the
/// detection boundary).
fn compensation_possible(op: RealOp, args: &[AbsVal], detect: bool) -> bool {
    if !detect {
        return false;
    }
    const VANISH_RATIO: f64 = 8.881784197001252e-16; // 2^-50
    let may_vanish = |small: &AbsVal, big: &AbsVal| {
        !small.excludes_zero() || small.min_abs() <= big.max_abs() * VANISH_RATIO
    };
    match op {
        RealOp::Add => may_vanish(&args[0], &args[1]) || may_vanish(&args[1], &args[0]),
        RealOp::Sub => may_vanish(&args[1], &args[0]),
        _ => false,
    }
}

/// The certification bound for a compute: measured-local-error ulps plus
/// the dominating term.
fn local_bound(flow: &OpFlow, args: &[AbsVal]) -> (f64, DominantTerm) {
    if flow.val.exact {
        return (0.0, DominantTerm::OpRounding);
    }
    let mut bound = flow.round_ulps + SLACK_ULPS;
    let mut dom = DominantTerm::OpRounding;
    let mut dom_weight = flow.round_ulps;
    for (i, arg) in args.iter().enumerate() {
        if arg.exact {
            continue; // rd(shadow) = shadow = client: no operand rounding
        }
        let term = if arg.has_err_bound() {
            flow.kappa[i] * KAPPA_PAD * (1.0 + 2.0 * arg.err / UNIT_ROUNDOFF)
        } else {
            f64::INFINITY
        };
        if !(term.is_finite()) {
            let dom = if arg.has_err_bound() {
                DominantTerm::OperandAmplification {
                    operand: i,
                    kappa: flow.kappa[i],
                }
            } else {
                DominantTerm::UnknownOperandDrift { operand: i }
            };
            return (f64::INFINITY, dom);
        }
        if term > dom_weight {
            dom_weight = term;
            dom = DominantTerm::OperandAmplification {
                operand: i,
                kappa: flow.kappa[i],
            };
        }
        bound += term;
    }
    (bound, dom)
}

/// Runs the abstract interpretation of `program` over the declared input
/// region and classifies every statement.
///
/// `input_ranges` pairs up positionally with `program.arg_addrs`; missing
/// ranges leave that argument unconstrained (top), which simply certifies
/// less.
pub fn analyze_program(
    program: &Program,
    input_ranges: &[(f64, f64)],
    params: &StaticParams,
) -> StaticAnalysis {
    let len = program.statements.len();
    let num_addrs = program.num_addrs;
    let mut entries: Vec<Option<Box<[AbsVal]>>> = vec![None; len];
    let mut joins: Vec<u32> = vec![0; len];

    // Back-edge targets get widened.
    let mut widen_point = vec![false; len];
    for (pc, stmt) in program.statements.iter().enumerate() {
        if let Statement::Branch { target, .. } = stmt {
            if *target <= pc && *target < len {
                widen_point[*target] = true;
            }
        }
    }

    // Entry state: machine memory is zero-initialized, arguments carry the
    // declared region (client inputs are exact by definition).
    let mut init = vec![AbsVal::exact_point(0.0); num_addrs];
    for (i, &addr) in program.arg_addrs.iter().enumerate() {
        init[addr] = match input_ranges.get(i) {
            Some(&(lo, hi)) => AbsVal::range(lo, hi),
            None => AbsVal::top(),
        };
    }

    let mut worklist: Vec<(usize, Box<[AbsVal]>)> = Vec::new();
    if len > 0 {
        worklist.push((0, init.into_boxed_slice()));
    }
    let mut visits = 0usize;
    let budget = len.saturating_mul(MAX_VISITS_PER_STMT).max(1024);
    let mut bailed = false;

    while let Some((pc, incoming)) = worklist.pop() {
        visits += 1;
        if visits > budget {
            bailed = true;
            break;
        }
        // Join (or widen) the incoming state into the entry state.
        let entry = match &mut entries[pc] {
            slot @ None => {
                *slot = Some(incoming);
                joins[pc] = 1;
                slot.as_ref().expect("just set").clone()
            }
            Some(old) => {
                let mut changed = false;
                let widen = widen_point[pc] && joins[pc] >= WIDEN_AFTER;
                for (o, n) in old.iter_mut().zip(incoming.iter()) {
                    if !o.subsumes(n) {
                        *o = if widen { o.widen(n) } else { o.join(n) };
                        changed = true;
                    }
                }
                if !changed {
                    continue;
                }
                joins[pc] += 1;
                old.clone()
            }
        };

        // Transfer through the statement and propagate to successors.
        let stmt = &program.statements[pc];
        match stmt {
            Statement::Branch {
                pred: Pred::Cmp(op, a, b),
                target,
            } => {
                for (succ, taken) in [(*target, true), (pc + 1, false)] {
                    if succ >= len {
                        continue;
                    }
                    let mut out = entry.clone();
                    if refine_cmp(&mut out, *op, *a, *b, taken) {
                        worklist.push((succ, out));
                    }
                }
            }
            _ => {
                let mut out = entry.clone();
                apply_statement(stmt, &mut out);
                for succ in successors(stmt, pc, len) {
                    worklist.push((succ, out.clone()));
                }
            }
        }
    }

    // Verdict pass over the fixpoint entry states.
    let local_limit = threshold_ulps(params.local_error_threshold);
    let output_limit = threshold_ulps(params.output_error_threshold);
    let mut statements = Vec::with_capacity(len);
    let mut total_computes = 0usize;
    let mut certified_computes = 0usize;
    for (pc, stmt) in program.statements.iter().enumerate() {
        let entry = entries[pc].as_deref();
        let reachable = entry.is_some() && !bailed;
        let info = match (stmt, entry) {
            (Statement::Compute { op, args, .. }, Some(state)) if !bailed => {
                total_computes += 1;
                let argv: Vec<AbsVal> = args.iter().map(|&a| state[a]).collect();
                let flow = transfer(*op, &argv);
                let (ulps_bound, dominant) = local_bound(&flow, &argv);
                let args_clean = argv.iter().all(|a| !a.may_nan);
                // With all-exact operands the local error is the op's own
                // rounding, which libm quotes directly in ulps — no
                // relative-to-ulps conversion is needed, so the result may
                // straddle zero (log across 1) and still certify.
                let all_exact_args = argv.iter().all(|a| a.exact);
                let certified = args_clean
                    && !flow.val.may_nan
                    && ulps_bound <= local_limit
                    && (flow.val.exact || all_exact_args || flow.val.err.is_finite());
                if certified {
                    certified_computes += 1;
                }
                let verdict = if certified {
                    StaticVerdict::CertifiedStable
                } else if !args_clean || flow.val.may_nan || ulps_bound > UNSTABLE_ULPS {
                    StaticVerdict::StaticallyUnstable
                } else {
                    StaticVerdict::MayErr
                };
                let dominant = if certified {
                    None
                } else if !args_clean || flow.val.may_nan {
                    Some(DominantTerm::DomainEdge)
                } else {
                    Some(dominant)
                };
                StatementInfo {
                    verdict,
                    ulps_bound,
                    dominant,
                    out: Some(flow.val),
                    compensation_possible: compensation_possible(
                        *op,
                        &argv,
                        params.detect_compensation,
                    ),
                    reachable,
                }
            }
            (Statement::Compute { .. }, _) => {
                total_computes += 1;
                let (verdict, comp) = if bailed {
                    (StaticVerdict::MayErr, true)
                } else {
                    // Unreachable: never executes, trivially stable.
                    certified_computes += 1;
                    (StaticVerdict::CertifiedStable, false)
                };
                StatementInfo {
                    verdict,
                    ulps_bound: if bailed { f64::INFINITY } else { 0.0 },
                    dominant: None,
                    out: None,
                    compensation_possible: comp,
                    reachable,
                }
            }
            (Statement::Output { src }, Some(state)) if !bailed => {
                let v = state[*src];
                let certified = !v.may_nan
                    && (v.exact
                        || (v.err.is_finite()
                            && 2.0 * v.err / UNIT_ROUNDOFF + SLACK_ULPS <= output_limit));
                let verdict = if certified {
                    StaticVerdict::CertifiedStable
                } else if v.has_err_bound() {
                    StaticVerdict::MayErr
                } else {
                    StaticVerdict::StaticallyUnstable
                };
                StatementInfo {
                    verdict,
                    ulps_bound: if v.exact {
                        0.0
                    } else {
                        2.0 * v.err / UNIT_ROUNDOFF + SLACK_ULPS
                    },
                    dominant: None,
                    out: Some(v),
                    compensation_possible: false,
                    reachable,
                }
            }
            (
                Statement::Branch {
                    pred: Pred::Cmp(_, a, b),
                    ..
                },
                Some(state),
            ) if !bailed => {
                let (va, vb) = (state[*a], state[*b]);
                let both_exact = va.exact && vb.exact && !va.may_nan && !vb.may_nan;
                let separated = match (drift_slack(&va), drift_slack(&vb)) {
                    (Some(da), Some(db)) if !va.may_nan && !vb.may_nan => {
                        let d = da + db;
                        va.hi + d < vb.lo || vb.hi + d < va.lo
                    }
                    _ => false,
                };
                let certified = both_exact || separated;
                StatementInfo {
                    verdict: if certified {
                        StaticVerdict::CertifiedStable
                    } else {
                        StaticVerdict::MayErr
                    },
                    ulps_bound: if certified { 0.0 } else { f64::INFINITY },
                    dominant: None,
                    out: None,
                    compensation_possible: false,
                    reachable,
                }
            }
            (Statement::CastToInt { src, .. }, Some(state)) if !bailed => {
                let v = state[*src];
                let out = cast_to_int_val(&v);
                let certified = out.exact;
                StatementInfo {
                    verdict: if certified {
                        StaticVerdict::CertifiedStable
                    } else {
                        StaticVerdict::MayErr
                    },
                    ulps_bound: if certified { 0.0 } else { f64::INFINITY },
                    dominant: None,
                    out: Some(out),
                    compensation_possible: false,
                    reachable,
                }
            }
            (Statement::Output { .. } | Statement::CastToInt { .. }, _)
            | (
                Statement::Branch {
                    pred: Pred::Cmp(..),
                    ..
                },
                _,
            ) => StatementInfo {
                verdict: if bailed {
                    StaticVerdict::MayErr
                } else {
                    StaticVerdict::CertifiedStable
                },
                ulps_bound: if bailed { f64::INFINITY } else { 0.0 },
                dominant: None,
                out: None,
                compensation_possible: false,
                reachable,
            },
            // Constants, copies, jumps, halt: no floating-point rounding.
            _ => StatementInfo {
                verdict: StaticVerdict::CertifiedStable,
                ulps_bound: 0.0,
                dominant: None,
                out: None,
                compensation_possible: false,
                reachable,
            },
        };
        statements.push(info);
    }

    StaticAnalysis {
        statements,
        entries,
        total_computes,
        certified_computes,
        params: *params,
    }
}

/// Computes the tier-0 prune mask from a static analysis: the backward
/// "poison" fixpoint described in the crate docs. An address is *dirty*
/// when a divergence in the shadow value or shadow trace stored there
/// could become report-visible; a compute is pruned only when it is
/// certified, provably non-compensating, and its destination is clean.
pub fn prune_mask(program: &Program, analysis: &StaticAnalysis) -> PruneMask {
    let len = program.statements.len();
    let mut dirty = vec![false; program.num_addrs];
    let certified = |pc: usize| analysis.verdict(pc) == StaticVerdict::CertifiedStable;

    // Backward fixpoint over the flow-insensitive def-use graph.
    loop {
        let mut changed = false;
        let mark = |addr: usize, dirty: &mut Vec<bool>, changed: &mut bool| {
            if !dirty[addr] {
                dirty[addr] = true;
                *changed = true;
            }
        };
        for (pc, stmt) in program.statements.iter().enumerate() {
            match stmt {
                Statement::Compute { dest, args, .. } => {
                    let transparent = certified(pc)
                        && !analysis
                            .statements
                            .get(pc)
                            .is_some_and(|s| s.compensation_possible);
                    if !transparent || dirty[*dest] {
                        for &a in args {
                            mark(a, &mut dirty, &mut changed);
                        }
                    }
                }
                Statement::Copy { dest, src } if dirty[*dest] => {
                    mark(*src, &mut dirty, &mut changed);
                }
                Statement::CastToInt { dest, src } if !certified(pc) || dirty[*dest] => {
                    mark(*src, &mut dirty, &mut changed);
                }
                Statement::Branch {
                    pred: Pred::Cmp(_, a, b),
                    ..
                } if !certified(pc) => {
                    mark(*a, &mut dirty, &mut changed);
                    mark(*b, &mut dirty, &mut changed);
                }
                Statement::Output { src } if !certified(pc) => {
                    mark(*src, &mut dirty, &mut changed);
                }
                _ => {}
            }
        }
        if !changed {
            break;
        }
    }

    let mut bits = vec![false; len];
    let mut pruned_computes = 0usize;
    let mut total_computes = 0usize;
    for (pc, stmt) in program.statements.iter().enumerate() {
        if let Statement::Compute { dest, .. } = stmt {
            total_computes += 1;
            let info = &analysis.statements[pc];
            if info.verdict == StaticVerdict::CertifiedStable
                && !info.compensation_possible
                && !dirty[*dest]
            {
                bits[pc] = true;
                pruned_computes += 1;
            }
        }
    }
    PruneMask {
        bits,
        pruned_computes,
        total_computes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpcore::parse_core;
    use fpvm::compile_core;

    fn analyze_src(src: &str, ranges: &[(f64, f64)]) -> (Program, StaticAnalysis) {
        let core = parse_core(src).expect("parse");
        let program = compile_core(&core, Default::default()).expect("compile");
        let analysis = analyze_program(&program, ranges, &StaticParams::default());
        (program, analysis)
    }

    #[test]
    fn well_conditioned_program_certifies_fully() {
        let (_, analysis) = analyze_src(
            "(FPCore (x y) (+ (* x x) (* y y)))",
            &[(1.0, 2.0), (1.0, 2.0)],
        );
        assert_eq!(
            analysis.certified_computes, analysis.total_computes,
            "{:#?}",
            analysis.statements
        );
    }

    #[test]
    fn catastrophic_cancellation_is_not_certified() {
        // sqrt(x+1) - sqrt(x) at large x: the subtraction must not certify.
        let (program, analysis) =
            analyze_src("(FPCore (x) (- (sqrt (+ x 1)) (sqrt x)))", &[(1e10, 1e15)]);
        let mut saw_uncertified_sub = false;
        for (pc, stmt) in program.statements.iter().enumerate() {
            if let Statement::Compute {
                op: RealOp::Sub, ..
            } = stmt
            {
                assert_ne!(
                    analysis.verdict(pc),
                    StaticVerdict::CertifiedStable,
                    "cancellation certified at pc {pc}"
                );
                saw_uncertified_sub = true;
            }
        }
        assert!(saw_uncertified_sub);
    }

    #[test]
    fn loop_counters_reach_a_fixpoint_and_stay_exact() {
        let (program, analysis) = analyze_src(
            "(FPCore (n) :pre (<= 1 n 100) (while (<= i n) ((i 1 (+ i 1)) (s 0 (+ s 2))) s))",
            &[(1.0, 100.0)],
        );
        // The counter increment `i + 1` is bounded by the loop guard
        // (branch refinement caps `i` at `n`), stays an exact small
        // integer through widening, and certifies. The accumulator
        // `s + 2` is NOT bounded by the guard, widens to infinity, and
        // must fail closed — certifying it would be unsound for inputs
        // that iterate past 2⁵³.
        assert_eq!(analysis.total_computes, 2);
        assert_eq!(analysis.certified_computes, 1, "{:#?}", analysis.statements);
        let counter_certified = program.statements.iter().enumerate().any(|(pc, stmt)| {
            matches!(
                stmt,
                Statement::Compute {
                    op: RealOp::Add,
                    ..
                }
            ) && analysis.verdict(pc) == StaticVerdict::CertifiedStable
                && analysis.statements[pc]
                    .out
                    .map(|v| v.exact && v.int)
                    .unwrap_or(false)
        });
        assert!(counter_certified, "{:#?}", analysis.statements);
    }

    #[test]
    fn prune_mask_respects_poisoned_consumers() {
        // x*x is certified, but it feeds a cancellation-prone subtraction
        // (uncertified), so it must not be pruned.
        let (program, analysis) = analyze_src(
            "(FPCore (x y) (- (* x x) (* y y)))",
            &[(1.0, 2.0), (1.0, 2.0)],
        );
        let mask = prune_mask(&program, &analysis);
        for (pc, stmt) in program.statements.iter().enumerate() {
            if matches!(
                stmt,
                Statement::Compute {
                    op: RealOp::Mul,
                    ..
                }
            ) {
                assert!(
                    !mask.is_pruned(pc),
                    "multiply feeding a cancellation was pruned"
                );
            }
        }
    }

    #[test]
    fn prune_mask_prunes_clean_chains() {
        // A benign chain flowing only into a certified output.
        let (program, analysis) = analyze_src("(FPCore (x) (* 2 (+ x 10)))", &[(1.0, 2.0)]);
        let mask = prune_mask(&program, &analysis);
        assert!(
            mask.pruned_computes() > 0,
            "expected pruning on a benign chain: {:#?}",
            analysis.statements
        );
    }

    #[test]
    fn unconstrained_inputs_certify_little() {
        let (_, analysis) = analyze_src("(FPCore (x) (/ 1 x))", &[]);
        assert_eq!(analysis.certified_computes, 0);
    }

    #[test]
    fn threshold_ulps_matches_bits_error_flip() {
        assert_eq!(threshold_ulps(5.0), 31.0);
        assert_eq!(threshold_ulps(0.0), 0.0);
        // bits_error(x, x ± 31 ulps) = log2(32) = 5 exactly: not > 5.
        let x = 1.0f64;
        let mut y = x;
        for _ in 0..31 {
            y = f64::from_bits(y.to_bits() + 1);
        }
        assert!(shadowreal::bits_error(x, y) <= 5.0);
    }
}

//! The static lint layer and the `herbgrind-static-report` rendering.
//!
//! Lints are advisory: they surface the anti-patterns the dynamic analysis
//! detects at runtime (cancellation, absorption, unstable branches) before
//! a single input runs, pointing at source locations. They carry no
//! soundness obligation — the prune mask never consults them.

use crate::analyze::{StaticAnalysis, StaticVerdict};
use crate::domain::AbsVal;
use crate::PruneMask;
use fpvm::{Pred, Program, SourceLoc, Statement};
use shadowreal::RealOp;
use std::fmt::Write as _;

/// Magnitude ratio past which an addition absorbs its smaller operand
/// entirely (2⁵³).
const ABSORPTION_RATIO: f64 = 9007199254740992.0;

/// The kind of anti-pattern a lint flags.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LintKind {
    /// `x*x − y*y`: a difference of squares, cancellation-prone and
    /// rewritable as `(x−y)·(x+y)`.
    DifferenceOfSquares,
    /// `1 − cos(x)` (or `cos(x) − 1`): cancellation near small angles,
    /// rewritable via `2·sin²(x/2)`.
    OneMinusCos,
    /// Subtraction of same-sign operands whose ranges overlap: possible
    /// catastrophic cancellation.
    CancellationRange,
    /// An accumulation where one operand's magnitude range dwarfs the
    /// other's: the small addend is absorbed outright.
    Absorption,
    /// A branch comparison whose operand ranges overlap (and are not
    /// drift-certified): control flow can flip under rounding.
    UnstableBranch,
}

impl LintKind {
    /// Stable machine-readable name (part of the JSON schema).
    pub fn name(self) -> &'static str {
        match self {
            LintKind::DifferenceOfSquares => "difference-of-squares",
            LintKind::OneMinusCos => "one-minus-cos",
            LintKind::CancellationRange => "cancellation-range",
            LintKind::Absorption => "absorption",
            LintKind::UnstableBranch => "unstable-branch",
        }
    }
}

/// One flagged site.
#[derive(Clone, Debug)]
pub struct Lint {
    /// What was flagged.
    pub kind: LintKind,
    /// The tape index.
    pub pc: usize,
    /// The source location of the statement.
    pub location: SourceLoc,
    /// Human-readable explanation.
    pub message: String,
}

/// The static report: verdict tallies, prune summary, lints.
#[derive(Clone, Debug)]
pub struct StaticReport {
    /// Program name.
    pub program: String,
    /// Total tape statements.
    pub total_statements: usize,
    /// Compute statements.
    pub total_computes: usize,
    /// Certified-stable compute statements.
    pub certified_computes: usize,
    /// Compute statements with verdict `MayErr`.
    pub may_err_computes: usize,
    /// Compute statements with verdict `StaticallyUnstable`.
    pub statically_unstable_computes: usize,
    /// Compute statements the tier-0 mask prunes.
    pub pruned_computes: usize,
    /// The lints.
    pub lints: Vec<Lint>,
}

/// The unique defining statement of each address, when there is exactly
/// one writer in the whole tape (enough for structural pattern lints).
fn unique_defs(program: &Program) -> Vec<Option<usize>> {
    let mut defs: Vec<Option<usize>> = vec![None; program.num_addrs];
    let mut multi = vec![false; program.num_addrs];
    for (pc, stmt) in program.statements.iter().enumerate() {
        let dest = match stmt {
            Statement::ConstF { dest, .. }
            | Statement::ConstI { dest, .. }
            | Statement::Copy { dest, .. }
            | Statement::Compute { dest, .. }
            | Statement::CastToInt { dest, .. } => *dest,
            _ => continue,
        };
        if defs[dest].is_some() {
            multi[dest] = true;
        }
        defs[dest] = Some(pc);
    }
    for (def, &m) in defs.iter_mut().zip(multi.iter()) {
        if m {
            *def = None;
        }
    }
    defs
}

fn entry_val(analysis: &StaticAnalysis, pc: usize, addr: usize) -> Option<AbsVal> {
    analysis
        .entries
        .get(pc)?
        .as_deref()
        .map(|state| state[addr])
}

/// Runs the lint pass over a program and its static analysis.
pub fn lint_program(program: &Program, analysis: &StaticAnalysis) -> Vec<Lint> {
    let defs = unique_defs(program);
    let mut lints = Vec::new();
    let mut push = |kind: LintKind, pc: usize, message: String| {
        lints.push(Lint {
            kind,
            pc,
            location: program.location(pc).clone(),
            message,
        });
    };

    for (pc, stmt) in program.statements.iter().enumerate() {
        match stmt {
            Statement::Compute {
                op: RealOp::Sub,
                args,
                ..
            } => {
                let (a, b) = (args[0], args[1]);
                // Structural: x*x − y*y.
                let is_square = |addr: usize| {
                    defs[addr].and_then(|d| match &program.statements[d] {
                        Statement::Compute {
                            op: RealOp::Mul,
                            args,
                            ..
                        } if args[0] == args[1] => Some(d),
                        _ => None,
                    })
                };
                if is_square(a).is_some() && is_square(b).is_some() {
                    push(
                        LintKind::DifferenceOfSquares,
                        pc,
                        "difference of squares x*x - y*y; rewrite as (x-y)*(x+y)".to_string(),
                    );
                }
                // Structural: 1 − cos(x) or cos(x) − 1.
                let is_one = |addr: usize| {
                    defs[addr].is_some_and(|d| {
                        matches!(
                            program.statements[d],
                            Statement::ConstF { value, .. } if value == 1.0
                        )
                    })
                };
                let is_cos = |addr: usize| {
                    defs[addr].is_some_and(|d| {
                        matches!(
                            &program.statements[d],
                            Statement::Compute {
                                op: RealOp::Cos,
                                ..
                            }
                        )
                    })
                };
                if (is_one(a) && is_cos(b)) || (is_cos(a) && is_one(b)) {
                    push(
                        LintKind::OneMinusCos,
                        pc,
                        "1 - cos(x) cancels near small angles; rewrite via 2*sin^2(x/2)"
                            .to_string(),
                    );
                }
                // Range-based: same-sign overlapping operands, uncertified.
                if analysis.verdict(pc) != StaticVerdict::CertifiedStable {
                    if let (Some(va), Some(vb)) =
                        (entry_val(analysis, pc, a), entry_val(analysis, pc, b))
                    {
                        let same_sign =
                            (va.lo > 0.0 && vb.lo > 0.0) || (va.hi < 0.0 && vb.hi < 0.0);
                        let overlap = va.lo <= vb.hi && vb.lo <= va.hi;
                        if same_sign && overlap && va.is_finite() && vb.is_finite() {
                            push(
                                LintKind::CancellationRange,
                                pc,
                                format!(
                                    "subtraction of same-sign overlapping ranges [{:.3e}, {:.3e}] - [{:.3e}, {:.3e}] can cancel catastrophically",
                                    va.lo, va.hi, vb.lo, vb.hi
                                ),
                            );
                        }
                    }
                }
            }
            Statement::Compute {
                op: RealOp::Add,
                args,
                ..
            } => {
                if let (Some(va), Some(vb)) = (
                    entry_val(analysis, pc, args[0]),
                    entry_val(analysis, pc, args[1]),
                ) {
                    if va.is_finite() && vb.is_finite() {
                        let absorbed = (vb.max_abs() > 0.0
                            && va.min_abs() >= vb.max_abs() * ABSORPTION_RATIO)
                            || (va.max_abs() > 0.0
                                && vb.min_abs() >= va.max_abs() * ABSORPTION_RATIO);
                        if absorbed {
                            push(
                                LintKind::Absorption,
                                pc,
                                "addition absorbs its smaller operand entirely (magnitude gap ≥ 2^53)"
                                    .to_string(),
                            );
                        }
                    }
                }
            }
            Statement::Branch {
                pred: Pred::Cmp(op, a, b),
                ..
            } if analysis.verdict(pc) != StaticVerdict::CertifiedStable
                && analysis.statements.get(pc).is_some_and(|s| s.reachable) =>
            {
                if let (Some(va), Some(vb)) =
                    (entry_val(analysis, pc, *a), entry_val(analysis, pc, *b))
                {
                    let overlap = va.lo <= vb.hi && vb.lo <= va.hi;
                    if overlap && va.is_finite() && vb.is_finite() {
                        push(
                            LintKind::UnstableBranch,
                            pc,
                            format!(
                                "comparison `{}` over overlapping ranges: the branch can flip under rounding",
                                op.name()
                            ),
                        );
                    }
                }
            }
            _ => {}
        }
    }
    lints
}

/// Builds the full static report for a program.
pub fn static_report(
    program: &Program,
    analysis: &StaticAnalysis,
    mask: &PruneMask,
) -> StaticReport {
    let mut may_err = 0usize;
    let mut unstable = 0usize;
    for (pc, stmt) in program.statements.iter().enumerate() {
        if matches!(stmt, Statement::Compute { .. }) {
            match analysis.verdict(pc) {
                StaticVerdict::MayErr => may_err += 1,
                StaticVerdict::StaticallyUnstable => unstable += 1,
                StaticVerdict::CertifiedStable => {}
            }
        }
    }
    StaticReport {
        program: program.name.clone(),
        total_statements: program.statements.len(),
        total_computes: analysis.total_computes,
        certified_computes: analysis.certified_computes,
        may_err_computes: may_err,
        statically_unstable_computes: unstable,
        pruned_computes: mask.pruned_computes(),
        lints: lint_program(program, analysis),
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl StaticReport {
    /// Prune rate over compute statements.
    pub fn prune_rate(&self) -> f64 {
        if self.total_computes == 0 {
            0.0
        } else {
            self.pruned_computes as f64 / self.total_computes as f64
        }
    }

    /// Renders the report as indented text.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "Static error-dataflow report for {}", self.program);
        let _ = writeln!(
            out,
            "  statements: {} total, {} computes ({} certified stable, {} may-err, {} statically unstable)",
            self.total_statements,
            self.total_computes,
            self.certified_computes,
            self.may_err_computes,
            self.statically_unstable_computes,
        );
        let _ = writeln!(
            out,
            "  tier-0 prune: {}/{} computes ({:.1}%)",
            self.pruned_computes,
            self.total_computes,
            100.0 * self.prune_rate()
        );
        if self.lints.is_empty() {
            let _ = writeln!(out, "  lints: none");
        } else {
            let _ = writeln!(out, "  lints ({}):", self.lints.len());
            for lint in &self.lints {
                let _ = writeln!(
                    out,
                    "    [{}] pc {} at {}: {}",
                    lint.kind.name(),
                    lint.pc,
                    lint.location,
                    lint.message
                );
            }
        }
        out
    }

    /// Renders the report as schema-stable JSON (`herbgrind-static-report`
    /// version 1). Keys are emitted in a fixed order.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": \"herbgrind-static-report\",\n");
        out.push_str("  \"version\": 1,\n");
        let _ = writeln!(out, "  \"program\": \"{}\",", json_escape(&self.program));
        out.push_str("  \"statements\": {\n");
        let _ = writeln!(out, "    \"total\": {},", self.total_statements);
        let _ = writeln!(out, "    \"computes\": {},", self.total_computes);
        let _ = writeln!(
            out,
            "    \"certified_stable\": {},",
            self.certified_computes
        );
        let _ = writeln!(out, "    \"may_err\": {},", self.may_err_computes);
        let _ = writeln!(
            out,
            "    \"statically_unstable\": {}",
            self.statically_unstable_computes
        );
        out.push_str("  },\n");
        out.push_str("  \"prune\": {\n");
        let _ = writeln!(out, "    \"pruned_computes\": {},", self.pruned_computes);
        let _ = writeln!(out, "    \"total_computes\": {},", self.total_computes);
        let _ = writeln!(out, "    \"rate\": {:.6}", self.prune_rate());
        out.push_str("  },\n");
        out.push_str("  \"lints\": [");
        for (i, lint) in self.lints.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            let _ = write!(
                out,
                "\"kind\": \"{}\", \"pc\": {}, \"file\": \"{}\", \"line\": {}, \"function\": \"{}\", \"message\": \"{}\"",
                lint.kind.name(),
                lint.pc,
                json_escape(&lint.location.file),
                lint.location.line,
                json_escape(&lint.location.function),
                json_escape(&lint.message)
            );
            out.push('}');
        }
        if !self.lints.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::{analyze_program, prune_mask, StaticParams};
    use fpcore::parse_core;
    use fpvm::compile_core;

    fn report_for(src: &str, ranges: &[(f64, f64)]) -> StaticReport {
        let core = parse_core(src).expect("parse");
        let program = compile_core(&core, Default::default()).expect("compile");
        let analysis = analyze_program(&program, ranges, &StaticParams::default());
        let mask = prune_mask(&program, &analysis);
        static_report(&program, &analysis, &mask)
    }

    #[test]
    fn difference_of_squares_is_flagged() {
        let report = report_for(
            "(FPCore (x y) (- (* x x) (* y y)))",
            &[(1.0, 2.0), (1.0, 2.0)],
        );
        assert!(
            report
                .lints
                .iter()
                .any(|l| l.kind == LintKind::DifferenceOfSquares),
            "{:#?}",
            report.lints
        );
    }

    #[test]
    fn one_minus_cos_is_flagged() {
        let report = report_for("(FPCore (x) (- 1 (cos x)))", &[(-0.1, 0.1)]);
        assert!(
            report.lints.iter().any(|l| l.kind == LintKind::OneMinusCos),
            "{:#?}",
            report.lints
        );
    }

    #[test]
    fn absorption_is_flagged() {
        let report = report_for("(FPCore (x y) (+ x y))", &[(1e20, 1e21), (1.0, 2.0)]);
        assert!(
            report.lints.iter().any(|l| l.kind == LintKind::Absorption),
            "{:#?}",
            report.lints
        );
    }

    #[test]
    fn unstable_branch_is_flagged() {
        let report = report_for(
            "(FPCore (x y) (if (< (+ x 0.1) y) 1 2))",
            &[(0.0, 1.0), (0.0, 1.0)],
        );
        assert!(
            report
                .lints
                .iter()
                .any(|l| l.kind == LintKind::UnstableBranch),
            "{:#?}",
            report.lints
        );
    }

    #[test]
    fn clean_programs_produce_no_lints() {
        let report = report_for("(FPCore (x) (* 2 (+ x 10)))", &[(1.0, 2.0)]);
        assert!(report.lints.is_empty(), "{:#?}", report.lints);
        assert!(report.to_text().contains("lints: none"));
    }

    #[test]
    fn json_is_schema_stable_and_escaped() {
        let report = report_for(
            "(FPCore (x y) (- (* x x) (* y y)))",
            &[(1.0, 2.0), (1.0, 2.0)],
        );
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"herbgrind-static-report\""));
        assert!(json.contains("\"version\": 1"));
        assert!(json.contains("\"kind\": \"difference-of-squares\""));
        assert!(json.contains("\"prune\""));
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}

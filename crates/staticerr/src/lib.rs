//! Static error-dataflow certification over the compiled fpvm tape
//! (tier 0 of the tiered analysis pipeline).
//!
//! This crate abstractly interprets an [`fpvm::Program`] over a declared
//! input region, propagating per-address abstract values that combine an
//! outward-rounded **interval domain** with a **relative-error-amplification
//! domain** (first-order condition-number bounds per operation, fail-closed
//! on transcendental domain edges; loops are widened to a fixpoint along a
//! bounded ladder). Two products come out:
//!
//! 1. a per-statement [`StaticVerdict`] — `CertifiedStable` statements can
//!    skip dynamic shadowing entirely (the [`PruneMask`] consumed by the
//!    tiered driver as *tier 0*), with reports provably bit-identical to
//!    the unpruned analysis;
//! 2. a [`StaticReport`] lint layer flagging cancellation sites, absorbing
//!    accumulations and range-unstable branches before any input runs,
//!    rendered as text and as schema-stable JSON
//!    (`herbgrind-static-report` version 1).
//!
//! The certification argument and the poison fixpoint behind the prune
//! mask are documented in `analyze`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::unwrap_used)]

pub mod analyze;
pub mod domain;
pub mod report;
pub mod transfer;

pub use analyze::{
    analyze_program, prune_mask, DominantTerm, PruneMask, StatementInfo, StaticAnalysis,
    StaticParams, StaticVerdict,
};
pub use domain::AbsVal;
pub use report::{lint_program, static_report, Lint, LintKind, StaticReport};

//! The abstract value domain: an outward-rounded interval paired with a
//! relative-drift bound and exactness flags.
//!
//! Every memory address of the abstract machine is mapped to an [`AbsVal`]:
//!
//! * `[lo, hi]` — an interval guaranteed to contain both the *client* double
//!   and the *exact* real value at that address, for every in-range input
//!   and every loop iteration (endpoints are widened outward after every
//!   transfer, so double rounding cannot escape the box);
//! * `may_nan` — whether the value can be NaN (fail-closed: any operation
//!   whose domain edge cannot be excluded sets it);
//! * `err` — an upper bound on the *relative* drift `|client − exact| /
//!   |exact|` accumulated along the dataflow ([`AbsVal::UNKNOWN_ERR`] when
//!   no bound is known);
//! * `exact` — the client double *equals* the exact real (no rounding has
//!   occurred anywhere in its history);
//! * `int` — the value is additionally an integer (loop counters), which
//!   lets increments stay exact below 2⁵³.

/// The unit roundoff of IEEE double precision, `2⁻⁵³`.
pub const UNIT_ROUNDOFF: f64 = 1.1102230246251565e-16;

/// Largest magnitude for which `x ± 1` is still exact in double precision.
pub const EXACT_INT_LIMIT: f64 = 9007199254740992.0; // 2^53

/// Nudges a finite double one representable value toward `-∞`.
pub fn down(x: f64) -> f64 {
    if x.is_nan() || x == f64::NEG_INFINITY {
        return x;
    }
    let bits = x.to_bits();
    let next = if x > 0.0 {
        bits - 1
    } else if bits == 0 {
        // +0.0 → smallest negative subnormal.
        0x8000_0000_0000_0001
    } else {
        bits + 1
    };
    f64::from_bits(next)
}

/// Nudges a finite double one representable value toward `+∞`.
pub fn up(x: f64) -> f64 {
    if x.is_nan() || x == f64::INFINITY {
        return x;
    }
    let bits = x.to_bits();
    let next = if bits == 0x8000_0000_0000_0000 {
        // -0.0 → smallest positive subnormal.
        1
    } else if x < 0.0 {
        bits - 1
    } else {
        bits + 1
    };
    f64::from_bits(next)
}

/// Nudges `n` values down (used to widen transcendental endpoint
/// evaluations whose libm rounding is not certified).
pub fn down_n(mut x: f64, n: u32) -> f64 {
    for _ in 0..n {
        x = down(x);
    }
    x
}

/// Nudges `n` values up.
pub fn up_n(mut x: f64, n: u32) -> f64 {
    for _ in 0..n {
        x = up(x);
    }
    x
}

/// An abstract value: interval × NaN flag × relative drift × exactness.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AbsVal {
    /// Lower interval endpoint (may be `-∞`).
    pub lo: f64,
    /// Upper interval endpoint (may be `+∞`).
    pub hi: f64,
    /// The value may be NaN.
    pub may_nan: bool,
    /// Upper bound on relative drift vs the exact real
    /// ([`AbsVal::UNKNOWN_ERR`] = no bound).
    pub err: f64,
    /// The client double equals the exact real.
    pub exact: bool,
    /// The value is an integer.
    pub int: bool,
}

impl AbsVal {
    /// Sentinel drift meaning "no bound known".
    pub const UNKNOWN_ERR: f64 = f64::INFINITY;

    /// The top element: anything at all.
    pub fn top() -> AbsVal {
        AbsVal {
            lo: f64::NEG_INFINITY,
            hi: f64::INFINITY,
            may_nan: true,
            err: Self::UNKNOWN_ERR,
            exact: false,
            int: false,
        }
    }

    /// An exact point value (a constant the client holds bit-for-bit).
    pub fn exact_point(x: f64) -> AbsVal {
        if x.is_nan() {
            return AbsVal {
                lo: f64::NAN,
                hi: f64::NAN,
                may_nan: true,
                err: 0.0,
                exact: true,
                int: false,
            };
        }
        AbsVal {
            lo: x,
            hi: x,
            may_nan: false,
            err: 0.0,
            exact: true,
            int: x.fract() == 0.0 && x.abs() <= EXACT_INT_LIMIT,
        }
    }

    /// An exact integer point value.
    pub fn exact_int(i: i64) -> AbsVal {
        let x = i as f64;
        AbsVal {
            lo: x,
            hi: x,
            may_nan: false,
            err: 0.0,
            exact: (i as f64 as i64) == i,
            int: true,
        }
    }

    /// An input known to lie in `[lo, hi]` (an exact double supplied by the
    /// client, so drift is zero).
    pub fn range(lo: f64, hi: f64) -> AbsVal {
        if lo.is_nan() || hi.is_nan() || lo > hi {
            return AbsVal::top();
        }
        AbsVal {
            lo,
            hi,
            may_nan: false,
            err: 0.0,
            exact: true,
            int: false,
        }
    }

    /// True when the interval is a single point.
    pub fn is_point(&self) -> bool {
        self.lo == self.hi && !self.lo.is_nan()
    }

    /// True when the interval excludes zero (strictly positive or strictly
    /// negative) and cannot be NaN.
    pub fn excludes_zero(&self) -> bool {
        !self.may_nan && (self.lo > 0.0 || self.hi < 0.0)
    }

    /// True when every value in the interval is finite.
    pub fn is_finite(&self) -> bool {
        self.lo.is_finite() && self.hi.is_finite() && !self.lo.is_nan() && !self.hi.is_nan()
    }

    /// Largest absolute value in the interval.
    pub fn max_abs(&self) -> f64 {
        self.lo.abs().max(self.hi.abs())
    }

    /// Smallest absolute value in the interval (0 when it straddles zero).
    pub fn min_abs(&self) -> f64 {
        if self.lo <= 0.0 && self.hi >= 0.0 {
            0.0
        } else {
            self.lo.abs().min(self.hi.abs())
        }
    }

    /// A bound on the drift known (finite) or not.
    pub fn has_err_bound(&self) -> bool {
        self.err.is_finite()
    }

    /// The least upper bound of two abstract values (interval hull, flag
    /// disjunction, drift maximum, exactness conjunction).
    pub fn join(&self, other: &AbsVal) -> AbsVal {
        AbsVal {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
            may_nan: self.may_nan || other.may_nan,
            err: self.err.max(other.err),
            exact: self.exact && other.exact,
            int: self.int && other.int,
        }
    }

    /// True when `other` adds nothing to `self` (used to detect fixpoints).
    pub fn subsumes(&self, other: &AbsVal) -> bool {
        let lo_ok = self.lo <= other.lo || (self.lo.is_nan() && other.lo.is_nan());
        let hi_ok = self.hi >= other.hi || (self.hi.is_nan() && other.hi.is_nan());
        lo_ok
            && hi_ok
            && (self.may_nan || !other.may_nan)
            && (self.err >= other.err || (self.err.is_nan() && other.err.is_nan()))
            && (!self.exact || other.exact)
            && (!self.int || other.int)
    }

    /// Widens `self` so that repeated joins converge quickly: each unstable
    /// endpoint jumps outward to the next rung of a fixed ladder, drift
    /// becomes unknown unless both sides already agree, and exactness is
    /// kept only when both sides are exact integers inside `±2⁵³` (the loop
    /// counter case — a counter that has been joined over several
    /// iterations still steps exactly, so widening must not poison it).
    pub fn widen(&self, next: &AbsVal) -> AbsVal {
        let joined = self.join(next);
        let lo = if joined.lo < self.lo {
            widen_down(joined.lo)
        } else {
            joined.lo
        };
        let hi = if joined.hi > self.hi {
            widen_up(joined.hi)
        } else {
            joined.hi
        };
        let exact = joined.exact && joined.int && lo >= -EXACT_INT_LIMIT && hi <= EXACT_INT_LIMIT;
        AbsVal {
            lo,
            hi,
            may_nan: joined.may_nan,
            err: if joined.err == self.err {
                joined.err
            } else {
                Self::UNKNOWN_ERR
            },
            exact,
            int: joined.int,
        }
    }
}

/// The widening ladder: symmetric magnitude rungs including exactly `2⁵³`
/// (so integer loop counters widen to a box that still certifies exact
/// increments) and infinity as the final rung.
const LADDER: [f64; 10] = [
    0.0,
    1.0,
    16.0,
    1024.0,
    1048576.0,              // 2^20
    4294967296.0,           // 2^32
    EXACT_INT_LIMIT,        // 2^53
    1.3407807929942597e154, // 2^512
    8.98846567431158e307,   // ~2^1023
    f64::INFINITY,
];

fn widen_up(x: f64) -> f64 {
    if x.is_nan() {
        return x;
    }
    for rung in LADDER {
        if x <= rung {
            return rung;
        }
    }
    f64::INFINITY
}

fn widen_down(x: f64) -> f64 {
    if x.is_nan() {
        return x;
    }
    for rung in LADDER {
        if x >= -rung {
            return -rung;
        }
    }
    f64::NEG_INFINITY
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nudges_are_one_ulp_and_directed() {
        assert!(down(1.0) < 1.0);
        assert!(up(1.0) > 1.0);
        assert_eq!(up(down(1.0)), 1.0);
        assert!(up(0.0) > 0.0);
        assert!(down(0.0) < 0.0);
        assert!(up(-0.0) > 0.0);
        assert_eq!(up(f64::INFINITY), f64::INFINITY);
        assert_eq!(down(f64::NEG_INFINITY), f64::NEG_INFINITY);
    }

    #[test]
    fn exact_point_flags() {
        let v = AbsVal::exact_point(3.0);
        assert!(v.exact && v.int && !v.may_nan);
        let w = AbsVal::exact_point(0.5);
        assert!(w.exact && !w.int);
        assert!(AbsVal::exact_point(f64::NAN).may_nan);
    }

    #[test]
    fn join_is_hull_and_conjunction() {
        let a = AbsVal::exact_point(1.0);
        let b = AbsVal::range(2.0, 3.0);
        let j = a.join(&b);
        assert_eq!((j.lo, j.hi), (1.0, 3.0));
        assert!(j.exact); // both sides exact
        assert!(!j.int); // range is not known integral
        assert!(j.subsumes(&a) && j.subsumes(&b));
    }

    #[test]
    fn widening_reaches_a_ladder_rung_and_keeps_counter_exactness() {
        let a = AbsVal::exact_int(1);
        let b = AbsVal::exact_int(2);
        let w = a.widen(&b);
        assert!(w.hi >= 2.0 && w.hi <= 16.0);
        assert!(w.exact && w.int, "loop counters must stay exact: {w:?}");
        // A float range widens without exactness.
        let c = AbsVal::range(0.0, 1.0);
        let d = AbsVal::range(0.0, 2.0e160);
        let w2 = c.widen(&d);
        assert!(w2.hi >= 2.0e160);
        assert!(!w2.exact);
    }

    #[test]
    fn widening_is_monotone_and_terminates() {
        let mut v = AbsVal::exact_point(0.0);
        for i in 0..200 {
            let next = AbsVal::range(-(i as f64) * 1e3, (i as f64) * 1e307);
            let w = v.widen(&next);
            assert!(w.subsumes(&v) && w.subsumes(&next));
            if w == v {
                break;
            }
            v = w;
        }
        // After enough rounds the ladder tops out (the final finite rung
        // subsumes every later input, so the loop reaches a fixpoint there).
        assert!(v.hi >= 8.9e307, "ladder should top out, got {}", v.hi);
    }

    #[test]
    fn min_max_abs() {
        let v = AbsVal::range(-2.0, 8.0);
        assert_eq!(v.max_abs(), 8.0);
        assert_eq!(v.min_abs(), 0.0);
        let w = AbsVal::range(3.0, 5.0);
        assert_eq!(w.min_abs(), 3.0);
        assert!(w.excludes_zero());
        assert!(!v.excludes_zero());
    }
}

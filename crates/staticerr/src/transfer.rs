//! Per-operation abstract transfer functions: a sound result interval plus
//! first-order condition-number bounds.
//!
//! For each [`RealOp`] the transfer computes
//!
//! * a result interval that contains every exact *and* every client value
//!   the operation can produce from operands in the argument boxes
//!   (endpoints are nudged outward past any rounding the evaluation here
//!   could itself commit — one ulp for correctly-rounded hardware ops,
//!   several for libm evaluations);
//! * per-operand condition numbers `κᵢ` bounding how much relative operand
//!   error the operation amplifies (`f64::INFINITY` = fail-closed: no bound
//!   could be established over the box, e.g. `log` across 1 or `sin` across
//!   a zero outside the small-angle window);
//! * the operation's own rounding contribution in ulps (0 for exact
//!   operations, 1 for correctly-rounded IEEE ops, [`LIBM_ULPS`] for
//!   library calls);
//! * drift and exactness bookkeeping via [`AbsVal`] (see `domain`).
//!
//! Condition numbers follow the standard first-order relative-error
//! calculus: for `f` with relative operand errors `δᵢ`, the result's
//! relative error is bounded by `Σ κᵢ|δᵢ| + O(δ²)` with
//! `κᵢ = sup |xᵢ ∂f/∂xᵢ / f|` over the operand box. The `O(δ²)` slack and
//! the rounding of computing `κ` itself are absorbed by [`KAPPA_PAD`],
//! applied by the analyzer when it forms certification bounds.

use crate::domain::{down, down_n, up, up_n, AbsVal, EXACT_INT_LIMIT, UNIT_ROUNDOFF};
use shadowreal::{RealOp, MAX_ARITY};

/// Ulps of rounding attributed to a math-library call (Rust's libm routines
/// are well under 2 ulps; 4 is a comfortable sound margin).
pub const LIBM_ULPS: f64 = 4.0;

/// Multiplicative padding applied to condition numbers when forming
/// certification bounds, absorbing second-order terms and the rounding of
/// the κ computation itself.
pub const KAPPA_PAD: f64 = 1.0625;

/// Smallest magnitude at which the relative-error model is trusted for
/// non-exact values: comfortably above the subnormal range (2⁻¹⁰¹⁵), so a
/// drifted value cannot fall where ulps stop scaling with magnitude.
pub const MIN_MAGNITUDE_GUARD: f64 = 2.872657220394559e-306;

/// Largest magnitude at which the relative-error model is trusted for
/// non-exact values (2¹⁰²⁰): far enough from overflow that a drifted value
/// cannot round to infinity.
pub const MAX_MAGNITUDE_GUARD: f64 = 1.1235582092889474e307;

/// How many ulps to nudge endpoints outward after a libm evaluation.
const LIBM_NUDGE: u32 = 8;

/// The outcome of one abstract operation.
#[derive(Clone, Copy, Debug)]
pub struct OpFlow {
    /// Result abstract value (interval, NaN flag, drift, exactness).
    pub val: AbsVal,
    /// Condition number per operand (`f64::INFINITY` = fail-closed).
    pub kappa: [f64; MAX_ARITY],
    /// The operation's own rounding in ulps (0 = exact operation).
    pub round_ulps: f64,
}

/// How the result's drift and exactness are derived.
enum Rounding {
    /// The result is exactly representable and equal to the exact real
    /// (e.g. small-integer arithmetic, `floor` of an exact value).
    ForceExact {
        /// The result is additionally an integer.
        int: bool,
    },
    /// The operation itself commits no rounding (`neg`, `fabs`); exactness
    /// and integrality carry over from the operands.
    ExactOp,
    /// The operation rounds; the result is never exact.
    Rounded,
}

/// Conservative failure: no information beyond "it is a float".
fn fail(arity: usize) -> OpFlow {
    let _ = arity;
    OpFlow {
        val: AbsVal::top(),
        kappa: [f64::INFINITY; MAX_ARITY],
        round_ulps: LIBM_ULPS,
    }
}

/// Assembles the result [`AbsVal`] from the interval, flags and the
/// first-order drift recurrence `E = round·u + Σ κᵢ·Eᵢ`, applying the
/// magnitude guards that keep the relative-error model honest.
fn finish(
    args: &[AbsVal],
    lo: f64,
    hi: f64,
    may_nan: bool,
    kappa: [f64; MAX_ARITY],
    round_ulps: f64,
    rounding: Rounding,
) -> OpFlow {
    let may_nan = may_nan || args.iter().any(|a| a.may_nan) || lo.is_nan() || hi.is_nan();
    let (err, exact, int) = match rounding {
        Rounding::ForceExact { int } => (0.0, !may_nan, int),
        Rounding::ExactOp => {
            let exact = args.iter().all(|a| a.exact) && !may_nan;
            let int = args.iter().all(|a| a.int);
            (propagated_err(args, &kappa, 0.0), exact, int)
        }
        Rounding::Rounded => (propagated_err(args, &kappa, round_ulps), false, false),
    };
    let mut val = AbsVal {
        lo,
        hi,
        may_nan,
        err,
        exact,
        int,
    };
    // Relative drift only converts to ulps while the value stays well
    // inside the normal range; outside it the bound is withdrawn. Exact
    // values are bit-for-bit and need no model.
    if !val.exact
        && (val.may_nan
            || !val.is_finite()
            || (val.min_abs() < MIN_MAGNITUDE_GUARD && val.err > 0.0)
            || val.max_abs() > MAX_MAGNITUDE_GUARD)
    {
        val.err = AbsVal::UNKNOWN_ERR;
    }
    OpFlow {
        val,
        kappa,
        round_ulps,
    }
}

/// The drift recurrence: `round·u + Σ κᵢ·Eᵢ`, with `κ·0 = 0` even for
/// infinite κ (an exact operand contributes nothing no matter how
/// ill-conditioned the operation is in its neighbourhood).
fn propagated_err(args: &[AbsVal], kappa: &[f64; MAX_ARITY], round_ulps: f64) -> f64 {
    // `round_ulps` ulps of error is at most `2·round_ulps·u` in relative
    // terms (one ulp at magnitude v is at most 2u·|v| for normal v).
    let mut err = 2.0 * round_ulps * UNIT_ROUNDOFF;
    for (arg, &k) in args.iter().zip(kappa.iter()) {
        if arg.err != 0.0 {
            err += k * KAPPA_PAD * arg.err;
        }
    }
    if err.is_nan() {
        AbsVal::UNKNOWN_ERR
    } else {
        err
    }
}

fn both_finite(a: &AbsVal, b: &AbsVal) -> bool {
    a.is_finite() && b.is_finite()
}

/// Endpoints of a nondecreasing libm function over `[lo, hi]`.
fn mono_up(f: impl Fn(f64) -> f64, a: &AbsVal) -> (f64, f64) {
    (down_n(f(a.lo), LIBM_NUDGE), up_n(f(a.hi), LIBM_NUDGE))
}

/// Min/max over the four corner products/quotients, nudged outward.
fn corners(f: impl Fn(f64, f64) -> f64, a: &AbsVal, b: &AbsVal, nudge: u32) -> (f64, f64) {
    let c = [f(a.lo, b.lo), f(a.lo, b.hi), f(a.hi, b.lo), f(a.hi, b.hi)];
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for x in c {
        lo = lo.min(x);
        hi = hi.max(x);
    }
    (down_n(lo, nudge), up_n(hi, nudge))
}

/// True when the interval `[lo, hi]`, widened by a few ulps, contains
/// `base + k·π` for some integer `k` (used for trig zero/pole detection).
fn contains_pi_multiple(lo: f64, hi: f64, base: f64) -> bool {
    if !(lo.is_finite() && hi.is_finite()) {
        return true;
    }
    let pi = std::f64::consts::PI;
    // Past 2^53 consecutive doubles are more than π apart, so some multiple
    // always lies inside (and the quotient below would overflow `i64`):
    // answer conservatively without computing the k-range.
    const EXACT_INT_LIMIT: f64 = 9007199254740992.0;
    if (lo - base).abs() >= EXACT_INT_LIMIT || (hi - base).abs() >= EXACT_INT_LIMIT {
        return true;
    }
    let k0 = ((lo - base) / pi).floor() as i64 - 1;
    let k1 = ((hi - base) / pi).ceil() as i64 + 1;
    if k1 - k0 > 64 {
        return true;
    }
    for k in k0..=k1 {
        let crit = base + (k as f64) * pi;
        if up_n(crit, 4) >= lo && down_n(crit, 4) <= hi {
            return true;
        }
    }
    false
}

/// Sound enclosure of `sin`/`cos` over `[lo, hi]`.
fn trig_interval(a: &AbsVal, is_sin: bool) -> (f64, f64) {
    if !a.is_finite() || a.hi - a.lo >= std::f64::consts::TAU {
        return (-1.0, 1.0);
    }
    let f = |x: f64| if is_sin { x.sin() } else { x.cos() };
    let mut mn = f(a.lo).min(f(a.hi));
    let mut mx = f(a.lo).max(f(a.hi));
    // Interior extremes of sin sit at π/2 + kπ (alternating ±1), of cos at
    // kπ; conservatively include ±1 whenever a critical point may be
    // inside.
    let base = if is_sin {
        std::f64::consts::FRAC_PI_2
    } else {
        0.0
    };
    if contains_pi_multiple(a.lo, a.hi, base) {
        mn = -1.0;
        mx = 1.0;
    }
    (
        down_n(mn, LIBM_NUDGE).max(-1.0),
        up_n(mx, LIBM_NUDGE).min(1.0),
    )
}

/// Lower bound on `|sin|` (or `|cos|`) over the box, zero when a zero of
/// the function may lie inside.
fn trig_min_abs(a: &AbsVal, is_sin: bool) -> f64 {
    if !a.is_finite() {
        return 0.0;
    }
    let zero_base = if is_sin {
        0.0
    } else {
        std::f64::consts::FRAC_PI_2
    };
    if contains_pi_multiple(a.lo, a.hi, zero_base) {
        return 0.0;
    }
    let f = |x: f64| if is_sin { x.sin() } else { x.cos() };
    down_n(f(a.lo).abs().min(f(a.hi).abs()), LIBM_NUDGE).max(0.0)
}

/// The abstract transfer of `op` over the given operand boxes.
///
/// # Panics
///
/// Panics if `args.len() != op.arity()` (the tape is validated before
/// analysis).
pub fn transfer(op: RealOp, args: &[AbsVal]) -> OpFlow {
    assert_eq!(args.len(), op.arity(), "arity mismatch for {op}");
    use RealOp::*;
    let mut k = [0.0f64; MAX_ARITY];
    match op {
        Add | Sub => {
            let (a, b) = (&args[0], &args[1]);
            if !both_finite(a, b) {
                return fail(2);
            }
            let (raw_lo, raw_hi) = if op == Add {
                (a.lo + b.lo, a.hi + b.hi)
            } else {
                (a.lo - b.hi, a.hi - b.lo)
            };
            // Small-integer arithmetic is exact: the loop-counter rule.
            // (Integer endpoints inside ±2⁵³ sum exactly, so the raw
            // endpoints need no outward nudge.)
            if a.exact
                && b.exact
                && a.int
                && b.int
                && raw_lo >= -EXACT_INT_LIMIT
                && raw_hi <= EXACT_INT_LIMIT
            {
                return finish(
                    args,
                    raw_lo,
                    raw_hi,
                    false,
                    k,
                    0.0,
                    Rounding::ForceExact { int: true },
                );
            }
            let (lo, hi) = (down(raw_lo), up(raw_hi));
            // No cancellation is possible when the two addends have the same
            // effective sign (for Sub, opposite operand signs): then
            // |result| = |a| + |b|, so each per-operand condition number
            // |operand|/|result| is at most 1 — independent of the interval
            // widths, which is what lets long well-conditioned sum chains
            // certify (the generic sup/inf quotient below compounds the
            // decorrelated endpoints instead).
            let no_cancel = if op == Add {
                (a.lo >= 0.0 && b.lo >= 0.0) || (a.hi <= 0.0 && b.hi <= 0.0)
            } else {
                (a.lo >= 0.0 && b.hi <= 0.0) || (a.hi <= 0.0 && b.lo >= 0.0)
            };
            if no_cancel {
                k[0] = 1.0;
                k[1] = 1.0;
            } else {
                // κ = sup|operand| / inf|result|: meaningful only when the
                // result interval excludes zero (otherwise cancellation can
                // be total and the bound fails closed).
                let res_min = AbsVal {
                    lo,
                    hi,
                    ..AbsVal::top()
                }
                .min_abs();
                if res_min > 0.0 {
                    k[0] = up(a.max_abs() / res_min);
                    k[1] = up(b.max_abs() / res_min);
                } else {
                    k[0] = f64::INFINITY;
                    k[1] = f64::INFINITY;
                }
            }
            finish(args, lo, hi, false, k, 1.0, Rounding::Rounded)
        }
        Mul => {
            let (a, b) = (&args[0], &args[1]);
            if !both_finite(a, b) {
                return fail(2);
            }
            let (raw_lo, raw_hi) = corners(|x, y| x * y, a, b, 0);
            if a.exact
                && b.exact
                && a.int
                && b.int
                && raw_lo >= -EXACT_INT_LIMIT
                && raw_hi <= EXACT_INT_LIMIT
            {
                return finish(
                    args,
                    raw_lo,
                    raw_hi,
                    false,
                    k,
                    0.0,
                    Rounding::ForceExact { int: true },
                );
            }
            let (lo, hi) = (down(raw_lo), up(raw_hi));
            k[0] = 1.0;
            k[1] = 1.0;
            finish(args, lo, hi, false, k, 1.0, Rounding::Rounded)
        }
        Div => {
            let (a, b) = (&args[0], &args[1]);
            if !both_finite(a, b) || (b.lo <= 0.0 && b.hi >= 0.0) {
                return fail(2);
            }
            let (lo, hi) = corners(|x, y| x / y, a, b, 1);
            k[0] = 1.0;
            k[1] = 1.0;
            finish(args, lo, hi, false, k, 1.0, Rounding::Rounded)
        }
        Neg => {
            let a = &args[0];
            k[0] = 1.0;
            finish(args, -a.hi, -a.lo, false, k, 0.0, Rounding::ExactOp)
        }
        Fabs => {
            let a = &args[0];
            let lo = a.min_abs();
            let hi = a.max_abs();
            k[0] = 1.0;
            finish(args, lo, hi, false, k, 0.0, Rounding::ExactOp)
        }
        Sqrt => {
            let a = &args[0];
            if !a.is_finite() || a.lo < 0.0 {
                return fail(1);
            }
            let (lo, hi) = (down(a.lo.sqrt()), up(a.hi.sqrt()));
            k[0] = 0.5;
            finish(args, lo.max(0.0), hi, false, k, 1.0, Rounding::Rounded)
        }
        Cbrt => {
            let a = &args[0];
            if !a.is_finite() {
                return fail(1);
            }
            let (lo, hi) = mono_up(f64::cbrt, a);
            k[0] = 0.334;
            finish(args, lo, hi, false, k, LIBM_ULPS, Rounding::Rounded)
        }
        Fma => {
            let (a, b, c) = (&args[0], &args[1], &args[2]);
            if !both_finite(a, b) || !c.is_finite() {
                return fail(3);
            }
            let (plo, phi) = corners(|x, y| x * y, a, b, 1);
            let (lo, hi) = (down(plo + c.lo), up(phi + c.hi));
            let res_min = AbsVal {
                lo,
                hi,
                ..AbsVal::top()
            }
            .min_abs();
            let sup_ab = up(a.max_abs() * b.max_abs());
            if res_min > 0.0 {
                k[0] = up(sup_ab / res_min);
                k[1] = k[0];
                k[2] = up(c.max_abs() / res_min);
            } else {
                k = [f64::INFINITY; MAX_ARITY];
            }
            finish(args, lo, hi, false, k, 1.0, Rounding::Rounded)
        }
        Exp | Exp2 => {
            let a = &args[0];
            if !a.is_finite() {
                return fail(1);
            }
            let (lo, hi) = if op == Exp {
                mono_up(f64::exp, a)
            } else {
                mono_up(f64::exp2, a)
            };
            let scale = if op == Exp {
                1.0
            } else {
                std::f64::consts::LN_2
            };
            k[0] = up(a.max_abs() * scale);
            finish(
                args,
                lo.max(0.0),
                hi,
                false,
                k,
                LIBM_ULPS,
                Rounding::Rounded,
            )
        }
        Expm1 => {
            let a = &args[0];
            if !a.is_finite() {
                return fail(1);
            }
            let (lo, hi) = mono_up(f64::exp_m1, a);
            // κ = |x·eˣ/(eˣ−1)| ≤ |x| + 1 on all of ℝ.
            k[0] = up(a.max_abs() + 1.0);
            finish(
                args,
                lo.max(-1.0),
                hi,
                false,
                k,
                LIBM_ULPS,
                Rounding::Rounded,
            )
        }
        Log | Log2 | Log10 => {
            let a = &args[0];
            if !a.is_finite() || a.lo <= 0.0 {
                return fail(1);
            }
            let f = match op {
                Log => f64::ln,
                Log2 => f64::log2,
                _ => f64::log10,
            };
            let (lo, hi) = mono_up(f, a);
            // κ = 1/|ln x|, which blows up across x = 1.
            k[0] = if a.lo > 1.0 || a.hi < 1.0 {
                let m = down_n(a.lo.ln().abs().min(a.hi.ln().abs()), LIBM_NUDGE);
                if m > 0.0 {
                    up(1.0 / m)
                } else {
                    f64::INFINITY
                }
            } else {
                f64::INFINITY
            };
            finish(args, lo, hi, false, k, LIBM_ULPS, Rounding::Rounded)
        }
        Log1p => {
            let a = &args[0];
            if !a.is_finite() || a.lo <= -1.0 {
                return fail(1);
            }
            let (lo, hi) = mono_up(f64::ln_1p, a);
            // κ = |x / ((1+x)·ln(1+x))| is decreasing on (−1, ∞) with
            // limit 1 at 0, so its sup over the box sits at the left
            // endpoint.
            let g = |x: f64| {
                if x == 0.0 {
                    1.0
                } else {
                    (x / ((1.0 + x) * x.ln_1p())).abs()
                }
            };
            k[0] = up_n(g(a.lo).max(g(a.hi)).max(1.0), LIBM_NUDGE);
            finish(args, lo, hi, false, k, LIBM_ULPS, Rounding::Rounded)
        }
        Pow => {
            let (a, b) = (&args[0], &args[1]);
            if !both_finite(a, b) || a.lo <= 0.0 {
                return fail(2);
            }
            // For x > 0, x^y is monotone in each coordinate, so the box
            // extremes sit at corners.
            let (lo, hi) = corners(f64::powf, a, b, LIBM_NUDGE);
            k[0] = up(b.max_abs());
            let sup_ln = up_n(a.lo.ln().abs().max(a.hi.ln().abs()), LIBM_NUDGE);
            k[1] = up(b.max_abs() * sup_ln);
            finish(
                args,
                lo.max(0.0),
                hi,
                false,
                k,
                LIBM_ULPS,
                Rounding::Rounded,
            )
        }
        Sin | Cos => {
            let a = &args[0];
            if !a.is_finite() {
                return fail(1);
            }
            let is_sin = op == Sin;
            let (lo, hi) = trig_interval(a, is_sin);
            let m = trig_min_abs(a, is_sin);
            // The f64 FRAC_PI_2 rounds below true π/2, so the closed f64
            // comparison stays inside the open real interval.
            let half_pi = std::f64::consts::FRAC_PI_2;
            k[0] = if is_sin && a.lo >= -half_pi && a.hi <= half_pi {
                // |x·cot x| ≤ 1 on (−π/2, π/2): rescues sin near its zero
                // at the origin (the haversine pattern).
                1.0
            } else if !is_sin && a.lo >= -1.0 && a.hi <= 1.0 {
                // |x·tan x| ≤ tan 1 < 1.6 on [−1, 1].
                1.6
            } else if m > 0.0 {
                up(a.max_abs() / m)
            } else {
                f64::INFINITY
            };
            finish(args, lo, hi, false, k, LIBM_ULPS, Rounding::Rounded)
        }
        Tan => {
            let a = &args[0];
            if !a.is_finite() || contains_pi_multiple(a.lo, a.hi, std::f64::consts::FRAC_PI_2) {
                return fail(1);
            }
            let (lo, hi) = mono_up(f64::tan, a);
            k[0] = if a.lo >= -0.5 && a.hi <= 0.5 {
                // |2x / sin 2x| ≤ 1/(sin 1) < 1.25 on [−½, ½].
                1.25
            } else {
                let ms = trig_min_abs(a, true);
                let mc = trig_min_abs(a, false);
                if ms > 0.0 && mc > 0.0 {
                    up(a.max_abs() / (ms * mc))
                } else {
                    f64::INFINITY
                }
            };
            finish(args, lo, hi, false, k, LIBM_ULPS, Rounding::Rounded)
        }
        Asin => {
            let a = &args[0];
            if !a.is_finite() || a.lo < -1.0 || a.hi > 1.0 {
                return fail(1);
            }
            let (lo, hi) = mono_up(f64::asin, a);
            // κ = |x / (√(1−x²)·asin x)| ≤ 1/√(1−s²) for |x| ≤ s < 1.
            let s = a.max_abs();
            let den = down_n((1.0 - s * s).sqrt(), LIBM_NUDGE);
            k[0] = if s < 1.0 && den > 0.0 {
                up(1.0 / den)
            } else {
                f64::INFINITY
            };
            finish(args, lo, hi, false, k, LIBM_ULPS, Rounding::Rounded)
        }
        Acos => {
            let a = &args[0];
            if !a.is_finite() || a.lo < -1.0 || a.hi > 1.0 {
                return fail(1);
            }
            // acos is decreasing.
            let (lo, hi) = (
                down_n(a.hi.acos(), LIBM_NUDGE).max(0.0),
                up_n(a.lo.acos(), LIBM_NUDGE),
            );
            let s = a.max_abs();
            let den_sqrt = down_n((1.0 - s * s).sqrt(), LIBM_NUDGE);
            let den_acos = down_n(a.hi.acos(), LIBM_NUDGE);
            k[0] = if s < 1.0 && den_sqrt > 0.0 && den_acos > 0.0 {
                up(s / (den_sqrt * den_acos))
            } else {
                f64::INFINITY
            };
            finish(args, lo, hi, false, k, LIBM_ULPS, Rounding::Rounded)
        }
        Atan => {
            let a = &args[0];
            if !a.is_finite() {
                return fail(1);
            }
            let (lo, hi) = mono_up(f64::atan, a);
            // κ = |x / ((1+x²)·atan x)| ≤ 1 everywhere.
            k[0] = 1.0;
            finish(args, lo, hi, false, k, LIBM_ULPS, Rounding::Rounded)
        }
        Atan2 => {
            let (y, x) = (&args[0], &args[1]);
            // Only the right half-plane away from the axis is certified:
            // there atan2(y, x) = atan(y/x), whose conditioning is tame.
            if !both_finite(y, x) || x.lo <= 0.0 {
                return fail(2);
            }
            let (lo, hi) = corners(f64::atan2, y, x, LIBM_NUDGE);
            k[0] = 1.0;
            k[1] = 1.0;
            finish(args, lo, hi, false, k, LIBM_ULPS, Rounding::Rounded)
        }
        Sinh => {
            let a = &args[0];
            if !a.is_finite() {
                return fail(1);
            }
            let (lo, hi) = mono_up(f64::sinh, a);
            // κ = |x·coth x| ≤ |x| + 1.
            k[0] = up(a.max_abs() + 1.0);
            finish(args, lo, hi, false, k, LIBM_ULPS, Rounding::Rounded)
        }
        Cosh => {
            let a = &args[0];
            if !a.is_finite() {
                return fail(1);
            }
            let lo = if a.lo <= 0.0 && a.hi >= 0.0 {
                1.0
            } else {
                down_n(a.lo.cosh().min(a.hi.cosh()), LIBM_NUDGE)
            };
            let hi = up_n(a.lo.cosh().max(a.hi.cosh()), LIBM_NUDGE);
            // κ = |x·tanh x| ≤ |x|.
            k[0] = up(a.max_abs());
            finish(
                args,
                lo.max(1.0),
                hi,
                false,
                k,
                LIBM_ULPS,
                Rounding::Rounded,
            )
        }
        Tanh => {
            let a = &args[0];
            if !a.is_finite() {
                return fail(1);
            }
            let (lo, hi) = mono_up(f64::tanh, a);
            // κ = |x / (sinh x · cosh x)| ≤ 1.
            k[0] = 1.0;
            finish(
                args,
                lo.max(-1.0),
                hi.min(1.0),
                false,
                k,
                LIBM_ULPS,
                Rounding::Rounded,
            )
        }
        Asinh => {
            let a = &args[0];
            if !a.is_finite() {
                return fail(1);
            }
            let (lo, hi) = mono_up(f64::asinh, a);
            k[0] = 1.0;
            finish(args, lo, hi, false, k, LIBM_ULPS, Rounding::Rounded)
        }
        Acosh => {
            let a = &args[0];
            if !a.is_finite() || a.lo <= 1.0 {
                return fail(1);
            }
            let (lo, hi) = mono_up(f64::acosh, a);
            // κ = |x / (√(x²−1)·acosh x)|, decreasing in x; sup at lo.
            let den = down_n((a.lo * a.lo - 1.0).sqrt() * a.lo.acosh(), LIBM_NUDGE);
            k[0] = if den > 0.0 {
                up(a.lo / den)
            } else {
                f64::INFINITY
            };
            finish(
                args,
                lo.max(0.0),
                hi,
                false,
                k,
                LIBM_ULPS,
                Rounding::Rounded,
            )
        }
        Atanh => {
            let a = &args[0];
            if !a.is_finite() || a.lo <= -1.0 || a.hi >= 1.0 {
                return fail(1);
            }
            let (lo, hi) = mono_up(f64::atanh, a);
            // κ = |x / ((1−x²)·atanh x)| ≤ 1/(1−s²).
            let s = a.max_abs();
            let den = down((1.0 - s * s).abs());
            k[0] = if den > 0.0 {
                up(1.0 / den)
            } else {
                f64::INFINITY
            };
            finish(args, lo, hi, false, k, LIBM_ULPS, Rounding::Rounded)
        }
        Hypot => {
            let (a, b) = (&args[0], &args[1]);
            if !both_finite(a, b) {
                return fail(2);
            }
            let lo = down_n(a.min_abs().hypot(b.min_abs()), LIBM_NUDGE).max(0.0);
            let hi = up_n(a.max_abs().hypot(b.max_abs()), LIBM_NUDGE);
            // κ_x = x²/(x²+y²) ≤ 1, likewise κ_y.
            k[0] = 1.0;
            k[1] = 1.0;
            finish(args, lo, hi, false, k, LIBM_ULPS, Rounding::Rounded)
        }
        Fmin | Fmax => {
            let (a, b) = (&args[0], &args[1]);
            // Selection between drifted values can flip between the client
            // and the exact execution; only the all-exact case is modelled.
            if !(a.exact && b.exact) || a.may_nan || b.may_nan {
                return fail(2);
            }
            let (lo, hi) = if op == Fmin {
                (a.lo.min(b.lo), a.hi.min(b.hi))
            } else {
                (a.lo.max(b.lo), a.hi.max(b.hi))
            };
            finish(args, lo, hi, false, k, 0.0, Rounding::ExactOp)
        }
        Copysign => {
            let (a, b) = (&args[0], &args[1]);
            // The sign donor's sign must be statically determined, and (if
            // drifted) unable to flip between the client and exact runs.
            let sign_fixed = !b.may_nan
                && (b.lo > 0.0 || b.hi < 0.0)
                && (b.exact || (b.has_err_bound() && b.err < 0.5));
            if !sign_fixed || a.may_nan {
                return fail(2);
            }
            let mag_lo = a.min_abs();
            let mag_hi = a.max_abs();
            let (lo, hi) = if b.lo > 0.0 {
                (mag_lo, mag_hi)
            } else {
                (-mag_hi, -mag_lo)
            };
            k[0] = 1.0;
            // Only the first operand's value flows into the result.
            let flow_args = [args[0], AbsVal::exact_point(1.0)];
            finish(&flow_args, lo, hi, false, k, 0.0, Rounding::ExactOp)
        }
        Floor | Ceil | Trunc | Round => {
            let a = &args[0];
            // A drift across an integer boundary changes the result by a
            // whole unit, so only exact arguments are modelled.
            if !a.exact || a.may_nan || !a.is_finite() {
                return fail(1);
            }
            let f = match op {
                Floor => f64::floor,
                Ceil => f64::ceil,
                Trunc => f64::trunc,
                _ => |x: f64| x.round(),
            };
            let int = a.max_abs() <= EXACT_INT_LIMIT;
            finish(
                args,
                f(a.lo),
                f(a.hi),
                false,
                k,
                0.0,
                Rounding::ForceExact { int },
            )
        }
        Fdim | Fmod => fail(2),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(x: f64) -> AbsVal {
        AbsVal::exact_point(x)
    }

    fn rng(lo: f64, hi: f64) -> AbsVal {
        AbsVal::range(lo, hi)
    }

    #[test]
    fn small_int_arithmetic_is_exact() {
        let f = transfer(RealOp::Add, &[pt(3.0), pt(4.0)]);
        assert!(f.val.exact && f.val.int);
        assert_eq!(f.val.err, 0.0);
        assert_eq!((f.val.lo, f.val.hi), (7.0, 7.0));
        let g = transfer(RealOp::Mul, &[rng(1.0, 10.0), pt(2.0)]);
        assert!(!g.val.exact, "range operand is not known integral");
    }

    #[test]
    fn loop_counter_increment_stays_exact_over_a_range() {
        let mut i = AbsVal::exact_int(1);
        i.hi = 1000.0; // widened counter range [1, 1000]
        let f = transfer(RealOp::Add, &[i, pt(1.0)]);
        assert!(f.val.exact && f.val.int, "{:?}", f.val);
        assert_eq!((f.val.lo, f.val.hi), (2.0, 1001.0));
    }

    #[test]
    fn subtraction_of_separated_ranges_is_well_conditioned() {
        // b² with b ∈ [10, 11] minus 4ac with ac ∈ [1, 2]: no cancellation.
        let f = transfer(RealOp::Sub, &[rng(100.0, 121.0), rng(4.0, 8.0)]);
        assert!(f.kappa[0].is_finite() && f.kappa[0] < 2.0, "{:?}", f.kappa);
        // Overlapping ranges fail closed.
        let g = transfer(RealOp::Sub, &[rng(0.0, 2.0), rng(0.0, 2.0)]);
        assert!(g.kappa[0].is_infinite());
    }

    #[test]
    fn division_excludes_zero_denominators() {
        let f = transfer(RealOp::Div, &[pt(1.0), rng(2.0, 4.0)]);
        assert!(f.val.lo <= 0.25 && f.val.hi >= 0.5);
        assert_eq!(f.kappa[1], 1.0);
        let g = transfer(RealOp::Div, &[pt(1.0), rng(-1.0, 1.0)]);
        assert!(g.val.may_nan);
    }

    #[test]
    fn sqrt_fails_closed_on_possibly_negative_input() {
        let ok = transfer(RealOp::Sqrt, &[rng(4.0, 9.0)]);
        assert!(ok.val.lo <= 2.0 && ok.val.hi >= 3.0 && !ok.val.may_nan);
        let bad = transfer(RealOp::Sqrt, &[rng(-1.0, 9.0)]);
        assert!(bad.val.may_nan);
    }

    #[test]
    fn log_across_one_fails_closed_but_interval_is_sound() {
        let f = transfer(RealOp::Log, &[rng(0.5, 2.0)]);
        assert!(f.kappa[0].is_infinite());
        assert!(f.val.lo <= (0.5f64).ln() && f.val.hi >= (2.0f64).ln());
        let g = transfer(RealOp::Log, &[rng(2.0, 8.0)]);
        assert!(g.kappa[0].is_finite());
    }

    #[test]
    fn sin_small_angle_window_has_unit_condition() {
        let f = transfer(RealOp::Sin, &[rng(-0.5, 0.5)]);
        assert_eq!(f.kappa[0], 1.0);
        assert!(f.val.lo >= -0.5 && f.val.hi <= 0.5);
        // Away from zero the κ bound uses min |sin|.
        let g = transfer(RealOp::Sin, &[rng(1.0, 2.0)]);
        assert!(g.kappa[0].is_finite());
        // Across a zero at π it fails closed.
        let h = transfer(RealOp::Sin, &[rng(3.0, 3.3)]);
        assert!(h.kappa[0].is_infinite());
    }

    #[test]
    fn interval_soundness_spot_checks() {
        // Exhaustive-ish sampling: every concrete result lies in the box.
        let cases = [
            (RealOp::Exp, rng(-2.0, 2.0)),
            (RealOp::Log1p, rng(-0.5, 3.0)),
            (RealOp::Cos, rng(-10.0, 10.0)),
            (RealOp::Tanh, rng(-5.0, 5.0)),
            (RealOp::Atan, rng(-100.0, 100.0)),
            (RealOp::Cbrt, rng(-8.0, 8.0)),
        ];
        for (op, a) in cases {
            let f = transfer(op, &[a]);
            for i in 0..=100 {
                let x = a.lo + (a.hi - a.lo) * (i as f64) / 100.0;
                let y = <f64 as shadowreal::Real>::apply(op, &[x]);
                assert!(
                    y >= f.val.lo && y <= f.val.hi,
                    "{op}({x}) = {y} outside [{}, {}]",
                    f.val.lo,
                    f.val.hi
                );
            }
        }
    }

    #[test]
    fn floor_of_exact_is_exact_and_integral() {
        let f = transfer(RealOp::Floor, &[rng(1.25, 3.75)]);
        assert!(f.val.exact && f.val.int);
        assert_eq!((f.val.lo, f.val.hi), (1.0, 3.0));
        let g = transfer(RealOp::Floor, &[non_exact(rng(1.25, 3.75))]);
        assert!(!g.val.exact && g.kappa[0].is_infinite());
    }

    fn non_exact(mut v: AbsVal) -> AbsVal {
        v.exact = false;
        v.err = 4.0 * UNIT_ROUNDOFF;
        v
    }

    #[test]
    fn drift_recurrence_amplifies_through_kappa() {
        let drifted = non_exact(rng(10.0, 11.0));
        let f = transfer(RealOp::Mul, &[drifted, pt(2.0)]);
        assert!(f.val.err > 4.0 * UNIT_ROUNDOFF);
        assert!(f.val.err < 10.0 * UNIT_ROUNDOFF);
        // Exact operands contribute nothing even under infinite κ (the
        // result interval must exclude zero for a relative bound to exist).
        let g = transfer(RealOp::Log, &[rng(2.0, 8.0)]);
        assert!(g.val.err.is_finite(), "exact arg → finite drift: {g:?}");
        // When the result interval straddles zero the relative bound is
        // withdrawn — downstream amplification cannot use it — but the op's
        // own rounding stays certifiable (all-exact-args leg in analyze).
        let h = transfer(RealOp::Log, &[rng(0.5, 2.0)]);
        assert_eq!(h.val.err, AbsVal::UNKNOWN_ERR);
    }
}

//! The abstract float machine of Herbgrind's analysis (Figure 2 of the paper).
//!
//! Herbgrind is a Valgrind tool: it instruments the VEX IR of a compiled
//! binary. This reproduction has no dynamic binary instrumentation framework
//! available, so — per the substitution documented in `DESIGN.md` — it
//! targets the *abstract machine* on which the paper actually defines its
//! analysis (§4.1): a flat memory of floats and integers, a program counter,
//! and three kinds of statements (compute, conditional jump, output), plus
//! float→integer conversions which the paper treats as spots.
//!
//! The crate provides:
//!
//! * [`program`] — the machine program representation,
//! * [`compile`] — a compiler from FPCore benchmarks to machine programs,
//! * [`interp`] — the interpreter, with a [`Tracer`](interp::Tracer) hook
//!   through which the `herbgrind` crate (and the baseline tools) observe
//!   every executed statement,
//! * [`batch`] — the lane-parallel batched interpreter: one tape pass drives
//!   a SIMD-width batch of inputs with struct-of-arrays lane memory, an
//!   active-lane mask for branch divergence, and a
//!   [`BatchTracer`](batch::BatchTracer) hook that observes whole lane
//!   groups,
//! * [`libm_lowering`] — expansion of math-library calls into sequences of
//!   primitive instructions, used to reproduce the library-wrapping ablation
//!   (§8.2).
//!
//! # Example
//!
//! ```
//! use fpcore::parse_core;
//! use fpvm::{compile::compile_core, interp::Machine};
//!
//! let core = parse_core("(FPCore (x y) (- (sqrt (+ (* x x) (* y y))) x))").unwrap();
//! let program = compile_core(&core, Default::default()).unwrap();
//! let outputs = Machine::new(&program).run(&[3.0, 4.0]).unwrap();
//! assert_eq!(outputs.outputs, vec![2.0]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod compile;
pub mod interp;
pub mod libm_lowering;
pub mod program;

pub use batch::{
    full_mask, lane_active, lane_indices, BatchMachine, BatchMemory, BatchOutcome, BatchTracer,
    LaneMask, LaneTracer, NullBatchTracer, MAX_LANES,
};
pub use compile::{compile_core, CompileError, CompileOptions};
pub use interp::{Machine, MachineError, NullTracer, RunResult, Tracer, MAX_ARITY};
pub use program::{Addr, Pred, Program, SourceLoc, Statement, Value};

//! Batched lane-parallel execution: one pass over the pre-decoded tape
//! drives a SIMD-width batch of inputs.
//!
//! The serial interpreter pays decode, dispatch, and tracer-callback cost
//! once *per input per statement*, even though every input of a sweep walks
//! the same execution tape. [`BatchMachine`] amortizes that: a batch of `W`
//! inputs (*lanes*) executes in lockstep, machine memory is laid out
//! struct-of-arrays (`Vec<[f64; W]>` — one lane array per address, so the
//! per-statement arithmetic is a contiguous lane loop the compiler can
//! vectorize), and a [`BatchTracer`] receives **one callback per statement
//! per convergent lane group**, not one per lane.
//!
//! # Divergence
//!
//! Lanes that disagree on a conditional branch are split into convergent
//! sub-groups tracked by an active-lane bitmask ([`LaneMask`]). The
//! scheduler always advances the group with the smallest program counter,
//! merging groups that meet at the same statement — the classic SIMT
//! reconvergence discipline, which restores full batches at loop exits and
//! `if`/`else` join points of structured programs. Each lane therefore
//! executes exactly the statement sequence the serial interpreter would have
//! executed for its input, in its serial order; only the interleaving
//! *between* disjoint lanes differs, which no per-lane observer can see.
//!
//! Lanes fail individually: a lane that exhausts its step budget (or leaves
//! the program) is masked out and its [`MachineError`] recorded in the
//! [`BatchOutcome`], while the surviving lanes continue — mirroring how the
//! sharded analysis driver treats per-input failures.

use crate::interp::{Inst, Machine, MachineError, RunResult, Tracer, MAX_ARITY};
use crate::program::{Addr, Program, Value};
use fpcore::CmpOp;
use shadowreal::RealOp;
use std::sync::Arc;

/// A bitmask of active lanes (bit `l` set = lane `l` participates).
pub type LaneMask = u32;

/// The widest supported batch: a [`LaneMask`] must have one bit per lane.
pub const MAX_LANES: usize = 32;

/// Iterates over the lane indices set in a mask, in ascending order.
#[derive(Clone, Copy, Debug)]
pub struct LaneIndices(LaneMask);

impl Iterator for LaneIndices {
    type Item = usize;
    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            return None;
        }
        let lane = self.0.trailing_zeros() as usize;
        self.0 &= self.0 - 1;
        Some(lane)
    }
}

/// The lanes set in `mask`, ascending.
#[inline]
pub fn lane_indices(mask: LaneMask) -> LaneIndices {
    LaneIndices(mask)
}

/// The mask with the `n` lowest lanes set.
#[inline]
pub fn full_mask(n: usize) -> LaneMask {
    debug_assert!(n <= MAX_LANES);
    if n >= MAX_LANES {
        LaneMask::MAX
    } else {
        (1u32 << n) - 1
    }
}

/// True if lane `l` is set in `mask`.
#[inline]
pub fn lane_active(mask: LaneMask, l: usize) -> bool {
    (mask >> l) & 1 == 1
}

/// A batched execution observer: the lane-parallel analogue of [`Tracer`].
///
/// Every hook receives the whole lane group that executed the statement —
/// per-lane values in `[_; W]` arrays plus the group's [`LaneMask`] — in one
/// call. **Entries of lanes outside the mask are unspecified** (they hold
/// whatever the struct-of-arrays memory held); observers must consult the
/// mask. As with [`Tracer`], hooks run *after* the statement's effect on
/// machine memory.
#[allow(unused_variables)]
pub trait BatchTracer<const W: usize> {
    /// A batch pass is starting. `lane_inputs[l]` is `Some(args)` for each
    /// participating lane; `mask` has the lanes that passed arity validation.
    fn on_start(&mut self, program: &Program, lane_inputs: &[Option<&[f64]>; W], mask: LaneMask) {}
    /// A floating-point operation executed for a lane group. `arg_values[i]`
    /// holds operand `i` for every lane; `results` the per-lane outcomes.
    #[allow(clippy::too_many_arguments)]
    fn on_compute(
        &mut self,
        pc: usize,
        op: RealOp,
        dest: Addr,
        args: &[Addr],
        arg_values: &[[f64; W]],
        results: &[f64; W],
        mask: LaneMask,
    ) {
    }
    /// A float constant was loaded by a lane group.
    fn on_const_f(&mut self, pc: usize, dest: Addr, value: f64, mask: LaneMask) {}
    /// An integer constant was loaded by a lane group.
    fn on_const_i(&mut self, pc: usize, dest: Addr, value: i64, mask: LaneMask) {}
    /// A value was copied between addresses by a lane group.
    fn on_copy(&mut self, pc: usize, dest: Addr, src: Addr, values: &[Value; W], mask: LaneMask) {}
    /// A float was converted to an integer by a lane group (a spot).
    #[allow(clippy::too_many_arguments)]
    fn on_cast_to_int(
        &mut self,
        pc: usize,
        dest: Addr,
        src: Addr,
        values: &[f64; W],
        results: &[i64; W],
        mask: LaneMask,
    ) {
    }
    /// A conditional branch was evaluated by a lane group (a spot). `taken`
    /// is the sub-mask of lanes whose predicate held; a `taken` that is
    /// neither empty nor the whole group splits the group.
    #[allow(clippy::too_many_arguments)]
    fn on_branch(
        &mut self,
        pc: usize,
        cmp: CmpOp,
        lhs: Addr,
        rhs: Addr,
        lhs_values: &[Value; W],
        rhs_values: &[Value; W],
        taken: LaneMask,
        mask: LaneMask,
    ) {
    }
    /// A value was output by a lane group (a spot).
    fn on_output(&mut self, pc: usize, src: Addr, values: &[f64; W], mask: LaneMask) {}
    /// The batch pass finished (every lane halted or failed).
    fn on_finish(&mut self, outcome: &BatchOutcome<W>) {}
    /// Cheap pass-level poll, checked once per scheduled lane group: `true`
    /// when at least one lane has a pending fault to report through
    /// [`BatchTracer::lane_fault`]. Must stay `true` until every pending
    /// lane fault has been drained.
    fn any_fault(&self) -> bool {
        false
    }
    /// Reports and clears the pending fault for one lane, if any. Only
    /// called while [`BatchTracer::any_fault`] returns `true`; a faulted
    /// lane is masked out before it executes another statement.
    fn lane_fault(&mut self, lane: usize) -> Option<MachineError> {
        None
    }
}

/// A batch tracer that observes nothing — the uninstrumented baseline.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullBatchTracer;

impl<const W: usize> BatchTracer<W> for NullBatchTracer {}

/// Adapts a serial [`Tracer`] to one lane of a batch: every group callback
/// is forwarded for the watched lane (when it is in the group's mask) with
/// that lane's values, reproducing exactly the callback sequence the serial
/// interpreter would deliver for that lane's input.
#[derive(Debug)]
pub struct LaneTracer<'t, T: ?Sized> {
    lane: usize,
    inner: &'t mut T,
}

impl<'t, T: Tracer + ?Sized> LaneTracer<'t, T> {
    /// Watches `lane` through the serial tracer `inner`.
    pub fn new(lane: usize, inner: &'t mut T) -> Self {
        LaneTracer { lane, inner }
    }
}

impl<T: Tracer + ?Sized, const W: usize> BatchTracer<W> for LaneTracer<'_, T> {
    fn on_start(&mut self, program: &Program, lane_inputs: &[Option<&[f64]>; W], mask: LaneMask) {
        if lane_active(mask, self.lane) {
            if let Some(args) = lane_inputs[self.lane] {
                self.inner.on_start(program, args);
            }
        }
    }
    fn on_compute(
        &mut self,
        pc: usize,
        op: RealOp,
        dest: Addr,
        args: &[Addr],
        arg_values: &[[f64; W]],
        results: &[f64; W],
        mask: LaneMask,
    ) {
        if lane_active(mask, self.lane) {
            let mut lane_args = [0.0f64; MAX_ARITY];
            for (slot, lanes) in lane_args.iter_mut().zip(arg_values) {
                *slot = lanes[self.lane];
            }
            self.inner.on_compute(
                pc,
                op,
                dest,
                args,
                &lane_args[..args.len()],
                results[self.lane],
            );
        }
    }
    fn on_const_f(&mut self, pc: usize, dest: Addr, value: f64, mask: LaneMask) {
        if lane_active(mask, self.lane) {
            self.inner.on_const_f(pc, dest, value);
        }
    }
    fn on_const_i(&mut self, pc: usize, dest: Addr, value: i64, mask: LaneMask) {
        if lane_active(mask, self.lane) {
            self.inner.on_const_i(pc, dest, value);
        }
    }
    fn on_copy(&mut self, pc: usize, dest: Addr, src: Addr, values: &[Value; W], mask: LaneMask) {
        if lane_active(mask, self.lane) {
            self.inner.on_copy(pc, dest, src, values[self.lane]);
        }
    }
    fn on_cast_to_int(
        &mut self,
        pc: usize,
        dest: Addr,
        src: Addr,
        values: &[f64; W],
        results: &[i64; W],
        mask: LaneMask,
    ) {
        if lane_active(mask, self.lane) {
            self.inner
                .on_cast_to_int(pc, dest, src, values[self.lane], results[self.lane]);
        }
    }
    fn on_branch(
        &mut self,
        pc: usize,
        cmp: CmpOp,
        lhs: Addr,
        rhs: Addr,
        lhs_values: &[Value; W],
        rhs_values: &[Value; W],
        taken: LaneMask,
        mask: LaneMask,
    ) {
        if lane_active(mask, self.lane) {
            self.inner.on_branch(
                pc,
                cmp,
                lhs,
                rhs,
                lhs_values[self.lane],
                rhs_values[self.lane],
                lane_active(taken, self.lane),
            );
        }
    }
    fn on_output(&mut self, pc: usize, src: Addr, values: &[f64; W], mask: LaneMask) {
        if lane_active(mask, self.lane) {
            self.inner.on_output(pc, src, values[self.lane]);
        }
    }
    fn on_finish(&mut self, outcome: &BatchOutcome<W>) {
        if outcome.errors[self.lane].is_none() {
            self.inner.on_finish(&outcome.lanes[self.lane]);
        }
    }
    fn any_fault(&self) -> bool {
        self.inner.has_fault()
    }
    fn lane_fault(&mut self, lane: usize) -> Option<MachineError> {
        if lane == self.lane {
            self.inner.fault()
        } else {
            None
        }
    }
}

/// Struct-of-arrays lane memory: one `[_; W]` lane array per address.
///
/// The float plane always mirrors [`Value::as_f64`] of every cell, so
/// numeric reads (compute operands, branch comparisons, outputs) are a
/// single contiguous lane-array load; the integer plane plus a per-address
/// lane bitmask preserve exact integer values and float/int kinds so
/// [`Value`]s can be reconstructed for observers and copies.
#[derive(Clone, Debug, Default)]
pub struct BatchMemory<const W: usize> {
    floats: Vec<[f64; W]>,
    ints: Vec<[i64; W]>,
    int_lanes: Vec<LaneMask>,
}

impl<const W: usize> BatchMemory<W> {
    /// An empty lane memory; [`BatchMachine::run_batch`] sizes it on entry.
    pub fn new() -> Self {
        BatchMemory {
            floats: Vec::new(),
            ints: Vec::new(),
            int_lanes: Vec::new(),
        }
    }

    /// Clears and re-zeroes the memory for `num_addrs` addresses, keeping
    /// the allocations (the serial machine's `Value::F(0.0)` init).
    fn reset(&mut self, num_addrs: usize) {
        self.floats.clear();
        self.floats.resize(num_addrs, [0.0; W]);
        self.ints.clear();
        self.ints.resize(num_addrs, [0; W]);
        self.int_lanes.clear();
        self.int_lanes.resize(num_addrs, 0);
    }

    /// The machine value of `addr` in lane `l`.
    pub fn value(&self, addr: Addr, l: usize) -> Value {
        if lane_active(self.int_lanes[addr], l) {
            Value::I(self.ints[addr][l])
        } else {
            Value::F(self.floats[addr][l])
        }
    }

    /// Reconstructs the per-lane [`Value`]s of one address. All-float
    /// addresses (the overwhelmingly common case — branches and copies hit
    /// this once per loop iteration) take a branch-free lane loop.
    fn values(&self, addr: Addr) -> [Value; W] {
        let ints = self.int_lanes[addr];
        if ints == 0 {
            let floats = &self.floats[addr];
            return std::array::from_fn(|l| Value::F(floats[l]));
        }
        let mut out = [Value::F(0.0); W];
        for (l, slot) in out.iter_mut().enumerate() {
            *slot = if lane_active(ints, l) {
                Value::I(self.ints[addr][l])
            } else {
                Value::F(self.floats[addr][l])
            };
        }
        out
    }
}

/// The observable result of one batch pass: per-lane run results plus
/// per-lane failures. A lane with an error stopped at that error (its
/// outputs so far are kept); lanes that were never supplied an input have a
/// default [`RunResult`] and no error.
#[derive(Clone, Debug)]
pub struct BatchOutcome<const W: usize> {
    /// Per-lane outputs and step counts, exactly what the serial
    /// interpreter's [`RunResult`] would hold for that lane's input.
    pub lanes: [RunResult; W],
    /// Per-lane failures (step budget, control flow leaving the program,
    /// arity mismatches).
    pub errors: [Option<MachineError>; W],
}

impl<const W: usize> BatchOutcome<W> {
    fn new() -> Self {
        BatchOutcome {
            lanes: std::array::from_fn(|_| RunResult::default()),
            errors: std::array::from_fn(|_| None),
        }
    }

    /// The lowest-indexed lane that failed, with its error — under the
    /// contiguous-chunk lane assignment the analysis drivers use, this is
    /// the failure the serial sweep would have stopped at first.
    pub fn first_error(&self) -> Option<(usize, &MachineError)> {
        self.errors
            .iter()
            .enumerate()
            .find_map(|(l, e)| e.as_ref().map(|e| (l, e)))
    }
}

/// One convergent sub-group of lanes: a program counter and the lanes
/// sitting at it.
#[derive(Clone, Copy, Debug)]
struct Group {
    pc: usize,
    mask: LaneMask,
}

/// The batched machine interpreter: the serial [`Machine`]'s tape, walked
/// with a lane mask. Construct via [`Machine::batched`], which shares the
/// already-decoded tape.
#[derive(Clone, Debug)]
pub struct BatchMachine<'p, const W: usize> {
    program: &'p Program,
    tape: Arc<[Inst]>,
    step_limit: u64,
    deadline_millis: Option<u64>,
}

impl<'p> Machine<'p> {
    /// A `W`-lane batched view of this machine, sharing the decoded tape.
    ///
    /// # Panics
    ///
    /// Panics if `W` is zero or exceeds [`MAX_LANES`].
    pub fn batched<const W: usize>(&self) -> BatchMachine<'p, W> {
        assert!(
            W >= 1 && W <= MAX_LANES,
            "batch width {W} outside 1..={MAX_LANES}"
        );
        BatchMachine {
            program: self.program,
            tape: Arc::clone(&self.tape),
            step_limit: self.step_limit,
            deadline_millis: self.deadline_millis,
        }
    }
}

impl<'p, const W: usize> BatchMachine<'p, W> {
    /// The program this machine executes.
    pub fn program(&self) -> &'p Program {
        self.program
    }

    /// Runs one batch pass: every `Some` lane of `lane_inputs` executes the
    /// program on its own arguments, in lockstep groups. `memory` is reset
    /// on entry and reused across passes, so a sweep performs no per-pass
    /// allocation beyond output collection.
    ///
    /// Failures are per-lane (see [`BatchOutcome`]); the pass itself always
    /// completes.
    pub fn run_batch<T: BatchTracer<W> + ?Sized>(
        &self,
        lane_inputs: &[Option<&[f64]>; W],
        tracer: &mut T,
        memory: &mut BatchMemory<W>,
    ) -> BatchOutcome<W> {
        let program = self.program;
        let mut outcome = BatchOutcome::new();
        let mut mask: LaneMask = 0;
        for (l, input) in lane_inputs.iter().enumerate() {
            let Some(args) = input else { continue };
            if args.len() != program.arg_addrs.len() {
                outcome.errors[l] = Some(MachineError::ArityMismatch {
                    expected: program.arg_addrs.len(),
                    actual: args.len(),
                });
            } else {
                mask |= 1 << l;
            }
        }
        memory.reset(program.num_addrs);
        for l in lane_indices(mask) {
            let args = lane_inputs[l].expect("masked lane has input");
            for (&addr, &value) in program.arg_addrs.iter().zip(args) {
                memory.floats[addr][l] = value;
            }
        }
        tracer.on_start(program, lane_inputs, mask);

        let deadline = self.deadline_millis.map(|ms| {
            (
                std::time::Instant::now() + std::time::Duration::from_millis(ms),
                ms,
            )
        });
        let mut ticks = 0u64;
        let mut steps = [0u64; W];
        // Telemetry accumulators: plain locals bumped only on the (rare)
        // split/merge events, flushed once at pass end behind a single
        // `telemetry::enabled()` check — nothing per-instruction.
        let mut divergences = 0u64;
        let mut reconverges = 0u64;
        let mut pending: Vec<Group> = Vec::new();
        if mask != 0 {
            pending.push(Group { pc: 0, mask });
        }

        // Outer scheduling loop: pick the group with the smallest pc (SIMT
        // reconvergence — the trailing group always catches up before the
        // leader moves on).
        'schedule: while let Some(next) = pending
            .iter()
            .enumerate()
            .min_by_key(|(_, g)| g.pc)
            .map(|(i, _)| i)
        {
            let mut cur = pending.swap_remove(next);
            // Smallest pc among the parked groups: the current group runs
            // scan-free until its pc reaches it (between pushes, `cur.pc`
            // only moves by +1 or an already-minimal jump), so convergent
            // stretches pay no per-instruction scheduling cost.
            let mut min_pending = pending.iter().map(|g| g.pc).min().unwrap_or(usize::MAX);
            loop {
                // Merge any group that reached the same statement, and yield
                // to any group that fell behind the current pc.
                if min_pending <= cur.pc {
                    let mut min_other = usize::MAX;
                    pending.retain(|g| {
                        if g.pc == cur.pc {
                            cur.mask |= g.mask;
                            reconverges += 1;
                            false
                        } else {
                            min_other = min_other.min(g.pc);
                            true
                        }
                    });
                    min_pending = min_other;
                    if min_other < cur.pc {
                        pending.push(cur);
                        continue 'schedule;
                    }
                }

                // Per-lane step budget, checked before execution exactly as
                // the serial interpreter does.
                for l in lane_indices(cur.mask) {
                    if steps[l] >= self.step_limit {
                        outcome.errors[l] = Some(MachineError::StepBudgetExceeded {
                            limit: self.step_limit,
                        });
                        cur.mask &= !(1 << l);
                    }
                }
                // Pass-level wall-clock deadline: every still-active lane —
                // the current group and every parked one — fails together,
                // and the pass completes with per-lane errors.
                if ticks & 1023 == 0 {
                    if let Some((at, millis)) = deadline {
                        if std::time::Instant::now() >= at {
                            for l in lane_indices(cur.mask) {
                                outcome.errors[l] = Some(MachineError::DeadlineExceeded { millis });
                            }
                            for g in pending.drain(..) {
                                for l in lane_indices(g.mask) {
                                    outcome.errors[l] =
                                        Some(MachineError::DeadlineExceeded { millis });
                                }
                            }
                            continue 'schedule;
                        }
                    }
                }
                ticks += 1;
                // Tracer faults (analysis-side budgets, injected failures):
                // drained before the lane executes another statement.
                if tracer.any_fault() {
                    for l in lane_indices(cur.mask) {
                        if let Some(err) = tracer.lane_fault(l) {
                            outcome.errors[l] = Some(err);
                            cur.mask &= !(1 << l);
                        }
                    }
                }
                if cur.mask == 0 {
                    continue 'schedule;
                }
                for (l, count) in steps.iter_mut().enumerate() {
                    *count += u64::from((cur.mask >> l) & 1);
                }

                let pc = cur.pc;
                let Some(inst) = self.tape.get(pc) else {
                    for l in lane_indices(cur.mask) {
                        outcome.errors[l] = Some(MachineError::PcOutOfRange { pc });
                    }
                    continue 'schedule;
                };
                match inst {
                    Inst::Halt => continue 'schedule,
                    Inst::ConstF { dest, value } => {
                        let lanes = &mut memory.floats[*dest];
                        for (l, lane) in lanes.iter_mut().enumerate() {
                            if lane_active(cur.mask, l) {
                                *lane = *value;
                            }
                        }
                        memory.int_lanes[*dest] &= !cur.mask;
                        tracer.on_const_f(pc, *dest, *value, cur.mask);
                        cur.pc += 1;
                    }
                    Inst::ConstI { dest, value } => {
                        for l in 0..W {
                            if lane_active(cur.mask, l) {
                                memory.ints[*dest][l] = *value;
                                memory.floats[*dest][l] = *value as f64;
                            }
                        }
                        memory.int_lanes[*dest] |= cur.mask;
                        tracer.on_const_i(pc, *dest, *value, cur.mask);
                        cur.pc += 1;
                    }
                    Inst::Copy { dest, src } => {
                        let src_floats = memory.floats[*src];
                        let src_ints = memory.ints[*src];
                        let src_int_lanes = memory.int_lanes[*src];
                        let values = memory.values(*src);
                        for l in 0..W {
                            if lane_active(cur.mask, l) {
                                memory.floats[*dest][l] = src_floats[l];
                                memory.ints[*dest][l] = src_ints[l];
                            }
                        }
                        memory.int_lanes[*dest] =
                            (memory.int_lanes[*dest] & !cur.mask) | (src_int_lanes & cur.mask);
                        tracer.on_copy(pc, *dest, *src, &values, cur.mask);
                        cur.pc += 1;
                    }
                    Inst::Compute {
                        dest,
                        op,
                        arity,
                        args,
                    } => {
                        let addrs = &args[..*arity as usize];
                        let mut values = [[0.0f64; W]; MAX_ARITY];
                        for (lanes, &addr) in values.iter_mut().zip(addrs) {
                            *lanes = memory.floats[addr];
                        }
                        let results = apply_lanewise_f64(*op, &values[..addrs.len()]);
                        if cur.mask == full_mask(W) {
                            memory.floats[*dest] = results;
                        } else {
                            let lanes = &mut memory.floats[*dest];
                            for l in 0..W {
                                if lane_active(cur.mask, l) {
                                    lanes[l] = results[l];
                                }
                            }
                        }
                        memory.int_lanes[*dest] &= !cur.mask;
                        tracer.on_compute(
                            pc,
                            *op,
                            *dest,
                            addrs,
                            &values[..addrs.len()],
                            &results,
                            cur.mask,
                        );
                        cur.pc += 1;
                    }
                    Inst::CastToInt { dest, src } => {
                        let values = memory.floats[*src];
                        let mut results = [0i64; W];
                        for (r, v) in results.iter_mut().zip(&values) {
                            *r = v.trunc() as i64;
                        }
                        for (l, &result) in results.iter().enumerate() {
                            if lane_active(cur.mask, l) {
                                memory.ints[*dest][l] = result;
                                memory.floats[*dest][l] = result as f64;
                            }
                        }
                        memory.int_lanes[*dest] |= cur.mask;
                        tracer.on_cast_to_int(pc, *dest, *src, &values, &results, cur.mask);
                        cur.pc += 1;
                    }
                    Inst::Jump { target } => {
                        cur.pc = *target;
                    }
                    Inst::BranchCmp {
                        cmp,
                        lhs,
                        rhs,
                        target,
                    } => {
                        let lhs_floats = memory.floats[*lhs];
                        let rhs_floats = memory.floats[*rhs];
                        // Branch-free lane comparison: the IEEE comparison
                        // operators encode exactly `cmp.holds(partial_cmp)`
                        // including the NaN cases (NaN is false for every
                        // operator except `!=`).
                        let mut taken: LaneMask = 0;
                        match cmp {
                            CmpOp::Lt => {
                                for l in 0..W {
                                    taken |= LaneMask::from(lhs_floats[l] < rhs_floats[l]) << l;
                                }
                            }
                            CmpOp::Le => {
                                for l in 0..W {
                                    taken |= LaneMask::from(lhs_floats[l] <= rhs_floats[l]) << l;
                                }
                            }
                            CmpOp::Gt => {
                                for l in 0..W {
                                    taken |= LaneMask::from(lhs_floats[l] > rhs_floats[l]) << l;
                                }
                            }
                            CmpOp::Ge => {
                                for l in 0..W {
                                    taken |= LaneMask::from(lhs_floats[l] >= rhs_floats[l]) << l;
                                }
                            }
                            CmpOp::Eq => {
                                for l in 0..W {
                                    taken |= LaneMask::from(lhs_floats[l] == rhs_floats[l]) << l;
                                }
                            }
                            CmpOp::Ne => {
                                for l in 0..W {
                                    taken |= LaneMask::from(lhs_floats[l] != rhs_floats[l]) << l;
                                }
                            }
                        }
                        taken &= cur.mask;
                        let lhs_values = memory.values(*lhs);
                        let rhs_values = memory.values(*rhs);
                        tracer.on_branch(
                            pc,
                            *cmp,
                            *lhs,
                            *rhs,
                            &lhs_values,
                            &rhs_values,
                            taken,
                            cur.mask,
                        );
                        let fallthrough = cur.mask & !taken;
                        if taken == 0 {
                            cur.pc += 1;
                        } else if fallthrough == 0 {
                            cur.pc = *target;
                        } else {
                            // Divergence: continue with the smaller pc
                            // (min-pc-first), park the other sub-group.
                            let parked = if *target < pc + 1 {
                                cur.pc = *target;
                                cur.mask = taken;
                                Group {
                                    pc: pc + 1,
                                    mask: fallthrough,
                                }
                            } else {
                                cur.pc = pc + 1;
                                cur.mask = fallthrough;
                                Group {
                                    pc: *target,
                                    mask: taken,
                                }
                            };
                            divergences += 1;
                            min_pending = min_pending.min(parked.pc);
                            pending.push(parked);
                        }
                    }
                    Inst::Output { src } => {
                        let values = memory.floats[*src];
                        for l in lane_indices(cur.mask) {
                            outcome.lanes[l].outputs.push(values[l]);
                        }
                        tracer.on_output(pc, *src, &values, cur.mask);
                        cur.pc += 1;
                    }
                }
            }
        }

        for (l, result) in outcome.lanes.iter_mut().enumerate() {
            result.steps = steps[l];
        }
        if telemetry::enabled() {
            let total_steps: u64 = steps.iter().sum();
            telemetry::FPVM_BATCH_PASSES.add(1);
            telemetry::FPVM_BATCH_DISPATCHES.add(ticks);
            telemetry::FPVM_BATCH_ACTIVE_LANE_SLOTS.add(total_steps);
            telemetry::FPVM_STEPS.add(total_steps);
            // The per-lane step-budget check runs once per active lane slot.
            telemetry::FPVM_BUDGET_CHECKS.add(total_steps);
            telemetry::FPVM_BRANCH_DIVERGENCE.add(divergences);
            telemetry::FPVM_BRANCH_RECONVERGE.add(reconverges);
            telemetry::HIST_BATCH_GROUP_SIZE.observe(u64::from(mask.count_ones()));
            for l in lane_indices(mask) {
                telemetry::HIST_RUN_STEPS.observe(steps[l]);
            }
        }
        tracer.on_finish(&outcome);
        outcome
    }
}

/// Evaluates `op` elementwise over lane arrays — the batched analogue of the
/// serial interpreter's per-statement `f64` evaluation, delegating to the
/// vectorized lane kernels in `shadowreal`. Every lane is computed, active
/// or not: results of inactive lanes are unspecified garbage that callers
/// must mask.
#[inline]
fn apply_lanewise_f64<const W: usize>(op: RealOp, args: &[[f64; W]]) -> [f64; W] {
    shadowreal::apply_f64_lanes(op, args)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile_core;
    use crate::program::{Pred, SourceLoc, Statement};
    use fpcore::parse_core;

    fn compile(src: &str) -> Program {
        compile_core(&parse_core(src).unwrap(), Default::default()).unwrap()
    }

    /// Runs `inputs` through a `W`-lane batch and checks every lane matches
    /// the serial interpreter bit for bit (outputs and step counts).
    fn assert_lanes_match_serial<const W: usize>(program: &Program, inputs: &[Vec<f64>]) {
        let machine = Machine::new(program);
        let batch = machine.batched::<W>();
        let mut memory = BatchMemory::new();
        for chunk in inputs.chunks(W) {
            let mut lane_inputs: [Option<&[f64]>; W] = [None; W];
            for (l, input) in chunk.iter().enumerate() {
                lane_inputs[l] = Some(input.as_slice());
            }
            let outcome = batch.run_batch(&lane_inputs, &mut NullBatchTracer, &mut memory);
            for (l, input) in chunk.iter().enumerate() {
                let serial = machine.run(input);
                match serial {
                    Ok(expected) => {
                        assert!(
                            outcome.errors[l].is_none(),
                            "lane {l}: {:?}",
                            outcome.errors
                        );
                        assert_eq!(outcome.lanes[l], expected, "lane {l} of {:?}", chunk);
                    }
                    Err(expected) => {
                        assert_eq!(outcome.errors[l].as_ref(), Some(&expected), "lane {l}");
                    }
                }
            }
        }
    }

    #[test]
    fn straight_line_batches_match_serial() {
        let p = compile("(FPCore (x y) (- (sqrt (+ (* x x) (* y y))) x))");
        let inputs: Vec<Vec<f64>> = (1..20).map(|i| vec![i as f64, 0.5 / i as f64]).collect();
        assert_lanes_match_serial::<1>(&p, &inputs);
        assert_lanes_match_serial::<4>(&p, &inputs);
        assert_lanes_match_serial::<8>(&p, &inputs);
    }

    #[test]
    fn divergent_loop_trip_counts_match_serial() {
        // Lanes exit the loop after different trip counts, so the batch
        // splits at the loop branch and reconverges at the exit.
        let p = compile("(FPCore (n) (while (< i n) ((s 0 (+ s (/ 1 i))) (i 1 (+ i 1))) s))");
        let inputs: Vec<Vec<f64>> = (0..13).map(|i| vec![(i * 3) as f64]).collect();
        assert_lanes_match_serial::<1>(&p, &inputs);
        assert_lanes_match_serial::<2>(&p, &inputs);
        assert_lanes_match_serial::<8>(&p, &inputs);
        assert_lanes_match_serial::<13>(&p, &inputs);
    }

    #[test]
    fn data_dependent_branches_match_serial() {
        let p = compile("(FPCore (x) (if (< x 0) (- 0 x) (sqrt x)))");
        let inputs: Vec<Vec<f64>> = (-8..8).map(|i| vec![i as f64 * 1.5]).collect();
        assert_lanes_match_serial::<4>(&p, &inputs);
        assert_lanes_match_serial::<8>(&p, &inputs);
    }

    #[test]
    fn lane_group_splits_and_reconverges() {
        // Two lanes take the branch, two fall through; the tracer must see
        // one split group per side and a reconverged full group afterwards.
        #[derive(Default)]
        struct Masks {
            compute_masks: Vec<LaneMask>,
            branch_taken: Vec<(LaneMask, LaneMask)>,
        }
        impl BatchTracer<4> for Masks {
            fn on_compute(
                &mut self,
                _pc: usize,
                _op: RealOp,
                _dest: Addr,
                _args: &[Addr],
                _values: &[[f64; 4]],
                _results: &[f64; 4],
                mask: LaneMask,
            ) {
                self.compute_masks.push(mask);
            }
            fn on_branch(
                &mut self,
                _pc: usize,
                _cmp: CmpOp,
                _lhs: Addr,
                _rhs: Addr,
                _l: &[Value; 4],
                _r: &[Value; 4],
                taken: LaneMask,
                mask: LaneMask,
            ) {
                self.branch_taken.push((taken, mask));
            }
        }
        let p = compile("(FPCore (x) (* 2 (if (< x 0) (* x x) (+ x 1))))");
        let machine = Machine::new(&p);
        let mut memory = BatchMemory::new();
        let inputs: Vec<Vec<f64>> = vec![vec![-1.0], vec![2.0], vec![-3.0], vec![4.0]];
        let mut tracer = Masks::default();
        let lane_inputs: [Option<&[f64]>; 4] = std::array::from_fn(|l| Some(inputs[l].as_slice()));
        let outcome = machine
            .batched::<4>()
            .run_batch(&lane_inputs, &mut tracer, &mut memory);
        assert!(outcome.errors.iter().all(Option::is_none));
        // The branch saw the full group, with lanes 0 and 2 (negative)
        // diverging from lanes 1 and 3.
        let (taken, mask) = tracer.branch_taken[0];
        assert_eq!(mask, 0b1111);
        assert_eq!(taken & 0b0101, taken, "negative lanes take the branch");
        // Some compute ran on a sub-group, and the final doubling ran on the
        // reconverged full group.
        assert!(tracer.compute_masks.iter().any(|&m| m != 0b1111));
        assert_eq!(*tracer.compute_masks.last().unwrap(), 0b1111);
    }

    #[test]
    fn per_lane_step_budget_failures_are_isolated() {
        // Lane 1 spins forever; lanes 0 and 2 halt normally and must still
        // produce their outputs.
        let p = compile("(FPCore (n) (while (< i n) ((i 0 (+ i 1))) i))");
        let machine = Machine::new(&p).with_step_limit(200);
        let inputs: Vec<Vec<f64>> = vec![vec![3.0], vec![1e18], vec![5.0]];
        let lane_inputs: [Option<&[f64]>; 4] = [
            Some(inputs[0].as_slice()),
            Some(inputs[1].as_slice()),
            Some(inputs[2].as_slice()),
            None,
        ];
        let mut memory = BatchMemory::new();
        let outcome =
            machine
                .batched::<4>()
                .run_batch(&lane_inputs, &mut NullBatchTracer, &mut memory);
        assert_eq!(outcome.lanes[0].outputs, vec![3.0]);
        assert_eq!(
            outcome.errors[1],
            Some(MachineError::StepBudgetExceeded { limit: 200 })
        );
        assert_eq!(outcome.lanes[2].outputs, vec![5.0]);
        assert!(outcome.errors[3].is_none());
        assert_eq!(outcome.lanes[3].steps, 0);
        assert_eq!(outcome.first_error().unwrap().0, 1);
    }

    #[test]
    fn arity_mismatch_is_per_lane() {
        let p = compile("(FPCore (x y) (+ x y))");
        let machine = Machine::new(&p);
        let good = vec![1.0, 2.0];
        let bad = vec![1.0];
        let lane_inputs: [Option<&[f64]>; 2] = [Some(bad.as_slice()), Some(good.as_slice())];
        let mut memory = BatchMemory::new();
        let outcome =
            machine
                .batched::<2>()
                .run_batch(&lane_inputs, &mut NullBatchTracer, &mut memory);
        assert_eq!(
            outcome.errors[0],
            Some(MachineError::ArityMismatch {
                expected: 2,
                actual: 1
            })
        );
        assert_eq!(outcome.lanes[1].outputs, vec![3.0]);
    }

    #[test]
    fn integer_values_keep_their_kind_across_lanes() {
        // CastToInt then Output: the float plane must mirror `as_f64` and the
        // tracer must see integer-kinded values for active lanes.
        let p = Program {
            name: "cast".into(),
            statements: vec![
                Statement::CastToInt { dest: 1, src: 0 },
                Statement::Copy { dest: 2, src: 1 },
                Statement::Output { src: 2 },
                Statement::Halt,
            ],
            locations: vec![SourceLoc::default(); 4],
            num_addrs: 3,
            arg_addrs: vec![0],
        };
        #[derive(Default)]
        struct CopiedValues(Vec<[Value; 2]>);
        impl BatchTracer<2> for CopiedValues {
            fn on_copy(
                &mut self,
                _pc: usize,
                _dest: Addr,
                _src: Addr,
                values: &[Value; 2],
                _mask: LaneMask,
            ) {
                self.0.push(*values);
            }
        }
        let machine = Machine::new(&p);
        let a = vec![3.9];
        let b = vec![-2.7];
        let mut tracer = CopiedValues::default();
        let mut memory = BatchMemory::new();
        let outcome = machine.batched::<2>().run_batch(
            &[Some(a.as_slice()), Some(b.as_slice())],
            &mut tracer,
            &mut memory,
        );
        assert_eq!(outcome.lanes[0].outputs, vec![3.0]);
        assert_eq!(outcome.lanes[1].outputs, vec![-2.0]);
        assert_eq!(tracer.0[0], [Value::I(3), Value::I(-2)]);
    }

    #[test]
    fn lane_tracer_adapts_serial_tracers_per_lane() {
        // Attaching a serial tracer to one lane through `LaneTracer` must
        // reproduce the exact event stream of a serial run of that input.
        #[derive(Default, PartialEq, Debug)]
        struct Events(Vec<String>);
        impl Tracer for Events {
            fn on_compute(
                &mut self,
                pc: usize,
                op: RealOp,
                _d: Addr,
                _a: &[Addr],
                args: &[f64],
                result: f64,
            ) {
                self.0.push(format!("c{pc}:{op}:{args:?}={result}"));
            }
            fn on_output(&mut self, pc: usize, _src: Addr, value: f64) {
                self.0.push(format!("o{pc}:{value}"));
            }
            fn on_branch(
                &mut self,
                pc: usize,
                _cmp: CmpOp,
                _l: Addr,
                _r: Addr,
                lv: Value,
                rv: Value,
                taken: bool,
            ) {
                self.0
                    .push(format!("b{pc}:{}:{}:{taken}", lv.as_f64(), rv.as_f64()));
            }
        }
        let p = compile("(FPCore (n) (while (< i n) ((s 0 (+ s (/ 1 i))) (i 1 (+ i 1))) s))");
        let machine = Machine::new(&p);
        let inputs: Vec<Vec<f64>> = vec![vec![2.0], vec![5.0], vec![0.0]];
        for (lane, input) in inputs.iter().enumerate() {
            let mut serial = Events::default();
            machine.run_traced(input, &mut serial).unwrap();
            let mut batched = Events::default();
            let lane_inputs: [Option<&[f64]>; 4] =
                std::array::from_fn(|l| inputs.get(l).map(|v| v.as_slice()));
            let mut memory = BatchMemory::new();
            machine.batched::<4>().run_batch(
                &lane_inputs,
                &mut LaneTracer::new(lane, &mut batched),
                &mut memory,
            );
            assert_eq!(batched, serial, "lane {lane}");
        }
    }

    #[test]
    fn unconditional_jumps_and_empty_batches() {
        let p = Program {
            name: "jump".into(),
            statements: vec![
                Statement::Branch {
                    pred: Pred::Always,
                    target: 2,
                },
                Statement::Output { src: 0 },
                Statement::Halt,
            ],
            locations: vec![SourceLoc::default(); 3],
            num_addrs: 1,
            arg_addrs: vec![0],
        };
        let machine = Machine::new(&p);
        let mut memory = BatchMemory::new();
        // All-empty batch: no lanes, no errors, nothing executed.
        let outcome =
            machine
                .batched::<2>()
                .run_batch(&[None, None], &mut NullBatchTracer, &mut memory);
        assert!(outcome.errors.iter().all(Option::is_none));
        assert!(outcome.lanes.iter().all(|l| l.steps == 0));
        // The jump skips the output.
        let args = vec![7.0];
        let outcome = machine.batched::<2>().run_batch(
            &[Some(args.as_slice()), None],
            &mut NullBatchTracer,
            &mut memory,
        );
        assert!(outcome.lanes[0].outputs.is_empty());
    }
}

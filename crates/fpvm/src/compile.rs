//! Compilation of FPCore benchmarks to machine programs.
//!
//! The compiler plays the role of the FPCore→C compiler plus GCC in the
//! paper's evaluation pipeline (§8.1): it turns each benchmark into
//! straight-line machine code with explicit control flow, so that the
//! analysis observes the same kind of instruction stream a binary would
//! produce — including re-executed loop bodies, branches as spots, and copies
//! that symbolic expressions must see through.

use crate::libm_lowering::{self, Emitter};
use crate::program::{Addr, Pred, Program, SourceLoc, Statement};
use fpcore::ast::{Constant, Expr, FPCore};
use shadowreal::RealOp;
use std::collections::HashMap;
use std::fmt;

/// Errors produced during compilation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CompileError {
    /// A variable was referenced that is not in scope.
    UnboundVariable(String),
    /// A boolean expression appeared where a number is required.
    BooleanInNumericPosition,
    /// A numeric expression appeared where a boolean is required.
    NumericInBooleanPosition,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::UnboundVariable(name) => write!(f, "unbound variable {name}"),
            CompileError::BooleanInNumericPosition => {
                write!(f, "boolean expression used as a number")
            }
            CompileError::NumericInBooleanPosition => {
                write!(f, "numeric expression used as a condition")
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// Options controlling compilation.
#[derive(Clone, Debug, Default)]
pub struct CompileOptions {
    /// When true, calls to math-library operations (`sin`, `exp`, `pow`, ...)
    /// are expanded into sequences of primitive instructions, modelling what
    /// the analysis sees when library wrapping is disabled (§8.2). When
    /// false (the default), library calls remain single instructions.
    pub lower_library_calls: bool,
    /// The file name used in generated source locations.
    pub source_file: Option<String>,
}

/// A branch label, resolved during finalization.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Label(usize);

struct Compiler {
    statements: Vec<Statement>,
    lines: Vec<u32>,
    next_addr: Addr,
    scopes: Vec<HashMap<String, Addr>>,
    labels: Vec<Option<usize>>,
    pending: Vec<(usize, Label)>,
    options: CompileOptions,
    current_line: u32,
}

impl Emitter for Compiler {
    fn fresh(&mut self) -> Addr {
        let a = self.next_addr;
        self.next_addr += 1;
        a
    }

    fn emit_const(&mut self, value: f64) -> Addr {
        let dest = self.fresh();
        self.push(Statement::ConstF { dest, value });
        dest
    }

    fn emit_op(&mut self, op: RealOp, args: Vec<Addr>) -> Addr {
        let dest = self.fresh();
        self.push(Statement::Compute { dest, op, args });
        dest
    }
}

impl Compiler {
    fn new(options: CompileOptions) -> Compiler {
        Compiler {
            statements: Vec::new(),
            lines: Vec::new(),
            next_addr: 0,
            scopes: vec![HashMap::new()],
            labels: Vec::new(),
            pending: Vec::new(),
            options,
            current_line: 1,
        }
    }

    fn push(&mut self, stmt: Statement) -> usize {
        self.statements.push(stmt);
        self.lines.push(self.current_line);
        self.statements.len() - 1
    }

    fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    fn bind(&mut self, label: Label) {
        self.labels[label.0] = Some(self.statements.len());
    }

    fn branch_to(&mut self, pred: Pred, label: Label) {
        let index = self.push(Statement::Branch {
            pred,
            target: usize::MAX,
        });
        self.pending.push((index, label));
    }

    fn lookup(&self, name: &str) -> Option<Addr> {
        self.scopes.iter().rev().find_map(|s| s.get(name).copied())
    }

    fn define(&mut self, name: &str, addr: Addr) {
        self.scopes
            .last_mut()
            .expect("at least one scope")
            .insert(name.to_string(), addr);
    }

    fn compile_number(&mut self, value: f64) -> Addr {
        self.emit_const(value)
    }

    /// Compiles an expression in numeric position, returning the address of
    /// its value.
    fn compile_expr(&mut self, expr: &Expr) -> Result<Addr, CompileError> {
        self.current_line += 1;
        match expr {
            Expr::Number(n) => Ok(self.compile_number(*n)),
            Expr::Const(Constant::True) | Expr::Const(Constant::False) => {
                Err(CompileError::BooleanInNumericPosition)
            }
            Expr::Const(c) => Ok(self.compile_number(c.value())),
            Expr::Var(name) => self
                .lookup(name)
                .ok_or_else(|| CompileError::UnboundVariable(name.clone())),
            Expr::Op(op, args) => {
                let call_line = self.current_line;
                let mut addrs = Vec::with_capacity(args.len());
                for a in args {
                    addrs.push(self.compile_expr(a)?);
                }
                if self.options.lower_library_calls && op.is_library_call() {
                    // The lowered instruction sequence carries the *call
                    // site's* line, not whatever line the last argument
                    // subexpression advanced the cursor to — reports and
                    // static lints must point at the user's `exp`/`log`
                    // call, never at lowered internals.
                    let after_args = self.current_line;
                    self.current_line = call_line;
                    let lowered = libm_lowering::lower_call(self, *op, &addrs);
                    self.current_line = after_args;
                    if let Some(result) = lowered {
                        return Ok(result);
                    }
                }
                Ok(self.emit_op(*op, addrs))
            }
            Expr::Cmp(..) | Expr::And(..) | Expr::Or(..) | Expr::Not(..) => {
                // Materialize a boolean as 1.0 / 0.0 (rare in benchmarks, but
                // legal FPCore).
                let result = self.fresh();
                let true_label = self.new_label();
                let false_label = self.new_label();
                let end = self.new_label();
                self.compile_cond(expr, true_label, false_label)?;
                self.bind(true_label);
                self.push(Statement::ConstF {
                    dest: result,
                    value: 1.0,
                });
                self.branch_to(Pred::Always, end);
                self.bind(false_label);
                self.push(Statement::ConstF {
                    dest: result,
                    value: 0.0,
                });
                self.bind(end);
                Ok(result)
            }
            Expr::If {
                cond,
                then,
                otherwise,
            } => {
                let result = self.fresh();
                let true_label = self.new_label();
                let false_label = self.new_label();
                let end = self.new_label();
                self.compile_cond(cond, true_label, false_label)?;
                self.bind(true_label);
                let then_addr = self.compile_expr(then)?;
                self.push(Statement::Copy {
                    dest: result,
                    src: then_addr,
                });
                self.branch_to(Pred::Always, end);
                self.bind(false_label);
                let else_addr = self.compile_expr(otherwise)?;
                self.push(Statement::Copy {
                    dest: result,
                    src: else_addr,
                });
                self.bind(end);
                Ok(result)
            }
            Expr::Let {
                sequential,
                bindings,
                body,
            } => {
                if *sequential {
                    self.scopes.push(HashMap::new());
                    for (name, e) in bindings {
                        let addr = self.compile_expr(e)?;
                        self.define(name, addr);
                    }
                } else {
                    let mut addrs = Vec::with_capacity(bindings.len());
                    for (_, e) in bindings {
                        addrs.push(self.compile_expr(e)?);
                    }
                    self.scopes.push(HashMap::new());
                    for ((name, _), addr) in bindings.iter().zip(addrs) {
                        self.define(name, addr);
                    }
                }
                let result = self.compile_expr(body)?;
                self.scopes.pop();
                Ok(result)
            }
            Expr::While {
                sequential,
                cond,
                vars,
                body,
            } => {
                // Allocate a stable address per loop variable; initializers
                // are evaluated in the outer scope.
                let var_addrs: Vec<Addr> = vars.iter().map(|_| self.fresh()).collect();
                let mut init_addrs = Vec::with_capacity(vars.len());
                for (_, init, _) in vars {
                    init_addrs.push(self.compile_expr(init)?);
                }
                for (&dest, src) in var_addrs.iter().zip(init_addrs) {
                    self.push(Statement::Copy { dest, src });
                }
                self.scopes.push(HashMap::new());
                for ((name, _, _), &addr) in vars.iter().zip(&var_addrs) {
                    self.define(name, addr);
                }
                let head = self.new_label();
                let body_label = self.new_label();
                let exit = self.new_label();
                self.bind(head);
                self.compile_cond(cond, body_label, exit)?;
                self.bind(body_label);
                if *sequential {
                    for ((_, _, update), &addr) in vars.iter().zip(&var_addrs) {
                        let next = self.compile_expr(update)?;
                        self.push(Statement::Copy {
                            dest: addr,
                            src: next,
                        });
                    }
                } else {
                    let mut next_addrs = Vec::with_capacity(vars.len());
                    for (_, _, update) in vars {
                        next_addrs.push(self.compile_expr(update)?);
                    }
                    for (&addr, next) in var_addrs.iter().zip(next_addrs) {
                        self.push(Statement::Copy {
                            dest: addr,
                            src: next,
                        });
                    }
                }
                self.branch_to(Pred::Always, head);
                self.bind(exit);
                let result = self.compile_expr(body)?;
                self.scopes.pop();
                Ok(result)
            }
        }
    }

    /// Compiles an expression in boolean position as control flow to one of
    /// two labels.
    fn compile_cond(
        &mut self,
        expr: &Expr,
        true_label: Label,
        false_label: Label,
    ) -> Result<(), CompileError> {
        match expr {
            Expr::Const(Constant::True) => {
                self.branch_to(Pred::Always, true_label);
                Ok(())
            }
            Expr::Const(Constant::False) => {
                self.branch_to(Pred::Always, false_label);
                Ok(())
            }
            Expr::Not(inner) => self.compile_cond(inner, false_label, true_label),
            Expr::And(args) => {
                for (i, arg) in args.iter().enumerate() {
                    if i + 1 == args.len() {
                        self.compile_cond(arg, true_label, false_label)?;
                    } else {
                        let next = self.new_label();
                        self.compile_cond(arg, next, false_label)?;
                        self.bind(next);
                    }
                }
                if args.is_empty() {
                    self.branch_to(Pred::Always, true_label);
                }
                Ok(())
            }
            Expr::Or(args) => {
                for (i, arg) in args.iter().enumerate() {
                    if i + 1 == args.len() {
                        self.compile_cond(arg, true_label, false_label)?;
                    } else {
                        let next = self.new_label();
                        self.compile_cond(arg, true_label, next)?;
                        self.bind(next);
                    }
                }
                if args.is_empty() {
                    self.branch_to(Pred::Always, false_label);
                }
                Ok(())
            }
            Expr::Cmp(op, args) => {
                // Chained comparison: every adjacent pair must hold.
                let mut addrs = Vec::with_capacity(args.len());
                for a in args {
                    addrs.push(self.compile_expr(a)?);
                }
                for pair in addrs.windows(2) {
                    let keep_going = self.new_label();
                    self.branch_to(Pred::Cmp(*op, pair[0], pair[1]), keep_going);
                    self.branch_to(Pred::Always, false_label);
                    self.bind(keep_going);
                }
                self.branch_to(Pred::Always, true_label);
                Ok(())
            }
            Expr::If {
                cond,
                then,
                otherwise,
            } => {
                // An `if` returning booleans in condition position.
                let then_label = self.new_label();
                let else_label = self.new_label();
                self.compile_cond(cond, then_label, else_label)?;
                self.bind(then_label);
                self.compile_cond(then, true_label, false_label)?;
                self.bind(else_label);
                self.compile_cond(otherwise, true_label, false_label)
            }
            Expr::Number(_)
            | Expr::Const(_)
            | Expr::Var(_)
            | Expr::Op(..)
            | Expr::Let { .. }
            | Expr::While { .. } => Err(CompileError::NumericInBooleanPosition),
        }
    }

    fn finalize(mut self, name: &str, arg_addrs: Vec<Addr>) -> Program {
        // Resolve pending branch targets.
        for (index, label) in std::mem::take(&mut self.pending) {
            let target = self.labels[label.0].expect("label bound before finalize");
            if let Statement::Branch { target: t, .. } = &mut self.statements[index] {
                *t = target;
            }
        }
        let file = self
            .options
            .source_file
            .clone()
            .unwrap_or_else(|| format!("{name}.fpcore"));
        let locations = self
            .lines
            .iter()
            .map(|&line| SourceLoc::new(file.clone(), line, name.to_string()))
            .collect();
        Program {
            name: name.to_string(),
            statements: self.statements,
            locations,
            num_addrs: self.next_addr,
            arg_addrs,
        }
    }
}

/// Compiles an FPCore benchmark into a machine program whose single output is
/// the benchmark's result.
///
/// # Errors
///
/// Returns a [`CompileError`] for unbound variables or misuse of booleans.
pub fn compile_core(core: &FPCore, options: CompileOptions) -> Result<Program, CompileError> {
    let mut compiler = Compiler::new(options);
    let mut arg_addrs = Vec::with_capacity(core.arguments.len());
    for name in &core.arguments {
        let addr = compiler.fresh();
        compiler.define(name, addr);
        arg_addrs.push(addr);
    }
    let result = compiler.compile_expr(&core.body)?;
    compiler.push(Statement::Output { src: result });
    compiler.push(Statement::Halt);
    let program = compiler.finalize(core.display_name(), arg_addrs);
    debug_assert_eq!(program.validate(), Ok(()));
    Ok(program)
}

/// Compiles a bare expression (used by tests and by the Herbie-lite oracle to
/// execute candidate rewrites on the machine).
///
/// # Errors
///
/// Returns a [`CompileError`] for unbound variables or misuse of booleans.
pub fn compile_expr_program(
    name: &str,
    arguments: &[String],
    expr: &Expr,
    options: CompileOptions,
) -> Result<Program, CompileError> {
    let core = FPCore {
        arguments: arguments.to_vec(),
        name: Some(name.to_string()),
        pre: None,
        properties: Default::default(),
        body: expr.clone(),
    };
    compile_core(&core, options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Machine;
    use fpcore::eval::eval_f64;
    use fpcore::parse_core;

    /// Compiles and runs a core, checking the machine agrees with the
    /// reference FPCore evaluator on every supplied input.
    fn check_against_reference(src: &str, inputs: &[Vec<f64>]) {
        let core = parse_core(src).expect("parse");
        let program = compile_core(&core, CompileOptions::default()).expect("compile");
        program.validate().expect("valid program");
        for input in inputs {
            let expected = eval_f64(&core, input).expect("reference eval");
            let got = Machine::new(&program)
                .run(input)
                .expect("machine run")
                .outputs[0];
            if expected.is_nan() {
                assert!(got.is_nan(), "{src} on {input:?}: {got} vs NaN");
            } else {
                assert_eq!(got, expected, "{src} on {input:?}");
            }
        }
    }

    #[test]
    fn straight_line_arithmetic_matches_reference() {
        check_against_reference(
            "(FPCore (x y) (- (sqrt (+ (* x x) (* y y))) x))",
            &[vec![3.0, 4.0], vec![1e-9, 2e-9], vec![0.0, 0.0]],
        );
    }

    #[test]
    fn conditionals_match_reference() {
        check_against_reference(
            "(FPCore (x) (if (< x 0) (- x) (sqrt x)))",
            &[vec![-4.0], vec![4.0], vec![0.0]],
        );
    }

    #[test]
    fn nested_conditionals_and_boolean_operators() {
        check_against_reference(
            "(FPCore (x y) (if (and (< 0 x) (or (< y 0) (< 1 y))) (/ x y) (* x y)))",
            &[
                vec![1.0, -2.0],
                vec![1.0, 2.0],
                vec![1.0, 0.5],
                vec![-1.0, 5.0],
            ],
        );
    }

    #[test]
    fn let_bindings_match_reference() {
        check_against_reference(
            "(FPCore (x) (let ((z (/ 1 (- x 113)))) (- (+ z PI) z)))",
            &[vec![113.5], vec![200.0], vec![0.0]],
        );
        check_against_reference(
            "(FPCore (a) (let* ((b (+ a 1)) (c (* b b))) (- c b)))",
            &[vec![2.0], vec![-7.5]],
        );
    }

    #[test]
    fn while_loops_match_reference() {
        check_against_reference(
            "(FPCore (n) (while (<= i n) ((i 1 (+ i 1)) (s 0 (+ s (/ 1 i)))) s))",
            &[vec![1.0], vec![10.0], vec![0.0]],
        );
        // The PID-controller-style loop with a float counter.
        check_against_reference(
            "(FPCore (n) (while (< t n) ((t 0 (+ t 0.2)) (c 0 (+ c 1))) c))",
            &[vec![10.0], vec![1.0]],
        );
    }

    #[test]
    fn chained_comparisons() {
        check_against_reference(
            "(FPCore (x) (if (< 0 x 1) 1 0))",
            &[vec![0.5], vec![2.0], vec![-1.0], vec![0.0]],
        );
    }

    #[test]
    fn not_and_nan_semantics() {
        // NaN makes (< x 0) false and (not (< x 0)) true.
        check_against_reference(
            "(FPCore (x) (if (not (< x 0)) 1 2))",
            &[vec![f64::NAN], vec![-1.0], vec![1.0]],
        );
    }

    #[test]
    fn unbound_variable_is_a_compile_error() {
        let core = parse_core("(FPCore (x) (+ x ghost))").unwrap();
        assert_eq!(
            compile_core(&core, CompileOptions::default()).unwrap_err(),
            CompileError::UnboundVariable("ghost".to_string())
        );
    }

    #[test]
    fn branches_are_spots_in_compiled_code() {
        let core = parse_core("(FPCore (x) (if (< x 1) x (* x 2)))").unwrap();
        let program = compile_core(&core, CompileOptions::default()).unwrap();
        assert!(program.statements.iter().any(Statement::is_spot));
    }

    #[test]
    fn lowering_library_calls_grows_the_program() {
        let core = parse_core("(FPCore (x) (- (exp x) 1))").unwrap();
        let wrapped = compile_core(&core, CompileOptions::default()).unwrap();
        let lowered = compile_core(
            &core,
            CompileOptions {
                lower_library_calls: true,
                source_file: None,
            },
        )
        .unwrap();
        assert!(
            lowered.compute_count() > wrapped.compute_count() + 5,
            "lowered {} vs wrapped {}",
            lowered.compute_count(),
            wrapped.compute_count()
        );
    }

    #[test]
    fn boolean_in_numeric_position_is_rejected() {
        let core = parse_core("(FPCore (x) (+ x TRUE))").unwrap();
        assert_eq!(
            compile_core(&core, CompileOptions::default()).unwrap_err(),
            CompileError::BooleanInNumericPosition
        );
    }

    #[test]
    fn lowered_statements_carry_the_call_site_location() {
        // `exp`'s argument is a deep subexpression, so by the time the
        // lowering runs, the line cursor has moved well past the call site.
        // Every statement the lowering emits must still carry the `exp`
        // call's own line — reports and static lints point at user code,
        // not at lowered libm internals.
        let src = "(FPCore (x y) (exp (+ x (* y (+ y 1)))))";
        let core = parse_core(src).unwrap();
        let wrapped = compile_core(&core, CompileOptions::default()).unwrap();
        let lowered = compile_core(
            &core,
            CompileOptions {
                lower_library_calls: true,
                source_file: None,
            },
        )
        .unwrap();
        // `exp` is the body's outermost expression, so its call site is the
        // first line the cursor assigns (the cursor starts at 1 and steps on
        // every expression entry).
        let call_line = 2;
        // The argument prefix is identical in both programs; it ends where
        // the wrapped program's single Exp compute sits. Everything past it
        // in the lowered program belongs to the lowering.
        let prefix_len = wrapped
            .statements
            .iter()
            .position(|stmt| matches!(stmt, Statement::Compute { op, .. } if *op == RealOp::Exp))
            .expect("exp compute present");
        let arg_lines: Vec<u32> = (0..prefix_len)
            .map(|pc| lowered.location(pc).line)
            .collect();
        assert!(
            arg_lines.iter().any(|&line| line > call_line),
            "argument subexpressions advance the cursor past the call: {arg_lines:?}"
        );
        let lowered_body: Vec<usize> = (prefix_len..lowered.statements.len())
            .filter(|&pc| {
                matches!(
                    lowered.statements[pc],
                    Statement::Compute { .. } | Statement::ConstF { .. }
                )
            })
            .collect();
        assert!(lowered_body.len() > 10, "lowering expands the call");
        for pc in lowered_body {
            assert_eq!(
                lowered.location(pc).line,
                call_line,
                "pc {pc} ({:?}) should carry the exp call site",
                lowered.statements[pc]
            );
        }
    }
}

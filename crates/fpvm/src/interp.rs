//! The machine interpreter and the tracer hook through which analyses
//! observe execution.
//!
//! The interpreter executes the client semantics — plain double precision —
//! exactly as a compiled binary would. Analyses (Herbgrind proper and the
//! baseline tools) are [`Tracer`] implementations: they are invoked after
//! every executed statement with the concrete values involved, which mirrors
//! the way Valgrind instrumentation observes the client without altering it.

use crate::program::{Addr, Pred, Program, Statement, Value};
use fpcore::CmpOp;
use shadowreal::RealOp;
use std::fmt;

/// Errors produced while running a program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MachineError {
    /// The supplied argument count does not match the program.
    ArityMismatch {
        /// Number of argument addresses in the program.
        expected: usize,
        /// Number of arguments supplied.
        actual: usize,
    },
    /// Execution exceeded the step budget (runaway loop).
    StepBudgetExceeded {
        /// The configured budget.
        limit: u64,
    },
    /// The program counter left the program without reaching `Halt`.
    PcOutOfRange {
        /// The offending program counter.
        pc: usize,
    },
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::ArityMismatch { expected, actual } => {
                write!(f, "program takes {expected} arguments, got {actual}")
            }
            MachineError::StepBudgetExceeded { limit } => {
                write!(f, "execution exceeded the {limit}-step budget")
            }
            MachineError::PcOutOfRange { pc } => write!(f, "program counter {pc} out of range"),
        }
    }
}

impl std::error::Error for MachineError {}

/// The observable result of a run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunResult {
    /// Values printed by `Output` statements, in order.
    pub outputs: Vec<f64>,
    /// Number of statements executed.
    pub steps: u64,
}

/// An execution observer.
///
/// Every method has a default empty implementation so tracers only override
/// what they need. The interpreter calls the hook *after* the statement's
/// effect on machine memory, passing the concrete double values read and
/// written, which is exactly the information a Valgrind tool sees.
#[allow(unused_variables)]
pub trait Tracer {
    /// A floating-point operation was executed.
    fn on_compute(
        &mut self,
        pc: usize,
        op: RealOp,
        dest: Addr,
        args: &[Addr],
        arg_values: &[f64],
        result: f64,
    ) {
    }
    /// A float constant was loaded.
    fn on_const_f(&mut self, pc: usize, dest: Addr, value: f64) {}
    /// An integer constant was loaded.
    fn on_const_i(&mut self, pc: usize, dest: Addr, value: i64) {}
    /// A value was copied between addresses.
    fn on_copy(&mut self, pc: usize, dest: Addr, src: Addr, value: Value) {}
    /// A float was converted to an integer (a spot).
    fn on_cast_to_int(&mut self, pc: usize, dest: Addr, src: Addr, value: f64, result: i64) {}
    /// A conditional branch over floats was evaluated (a spot).
    #[allow(clippy::too_many_arguments)]
    fn on_branch(
        &mut self,
        pc: usize,
        cmp: CmpOp,
        lhs: Addr,
        rhs: Addr,
        lhs_value: Value,
        rhs_value: Value,
        taken: bool,
    ) {
    }
    /// A value was output (a spot).
    fn on_output(&mut self, pc: usize, src: Addr, value: f64) {}
    /// The program produced its arguments (called once, before execution).
    fn on_start(&mut self, program: &Program, args: &[f64]) {}
    /// Execution finished.
    fn on_finish(&mut self, result: &RunResult) {}
}

/// A tracer that observes nothing — the uninstrumented baseline.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullTracer;

impl Tracer for NullTracer {}

/// The machine interpreter.
#[derive(Clone, Debug)]
pub struct Machine<'p> {
    program: &'p Program,
    step_limit: u64,
}

/// Default step budget per run (generous; FPBench loop benchmarks stay far
/// below this).
pub const DEFAULT_STEP_LIMIT: u64 = 50_000_000;

impl<'p> Machine<'p> {
    /// Creates an interpreter for a program.
    pub fn new(program: &'p Program) -> Machine<'p> {
        Machine {
            program,
            step_limit: DEFAULT_STEP_LIMIT,
        }
    }

    /// Overrides the step budget.
    pub fn with_step_limit(mut self, limit: u64) -> Machine<'p> {
        self.step_limit = limit;
        self
    }

    /// Runs the program without instrumentation.
    ///
    /// # Errors
    ///
    /// Returns a [`MachineError`] for argument arity mismatches, runaway
    /// loops, and malformed control flow.
    pub fn run(&self, args: &[f64]) -> Result<RunResult, MachineError> {
        self.run_traced(args, &mut NullTracer)
    }

    /// Runs the program, reporting every executed statement to `tracer`.
    ///
    /// # Errors
    ///
    /// Returns a [`MachineError`] for argument arity mismatches, runaway
    /// loops, and malformed control flow.
    pub fn run_traced<T: Tracer + ?Sized>(
        &self,
        args: &[f64],
        tracer: &mut T,
    ) -> Result<RunResult, MachineError> {
        let program = self.program;
        if args.len() != program.arg_addrs.len() {
            return Err(MachineError::ArityMismatch {
                expected: program.arg_addrs.len(),
                actual: args.len(),
            });
        }
        let mut memory: Vec<Value> = vec![Value::F(0.0); program.num_addrs];
        for (&addr, &value) in program.arg_addrs.iter().zip(args) {
            memory[addr] = Value::F(value);
        }
        tracer.on_start(program, args);

        let mut result = RunResult::default();
        let mut pc = 0usize;
        loop {
            if result.steps >= self.step_limit {
                return Err(MachineError::StepBudgetExceeded {
                    limit: self.step_limit,
                });
            }
            result.steps += 1;
            let Some(stmt) = program.statements.get(pc) else {
                return Err(MachineError::PcOutOfRange { pc });
            };
            match stmt {
                Statement::Halt => break,
                Statement::ConstF { dest, value } => {
                    memory[*dest] = Value::F(*value);
                    tracer.on_const_f(pc, *dest, *value);
                    pc += 1;
                }
                Statement::ConstI { dest, value } => {
                    memory[*dest] = Value::I(*value);
                    tracer.on_const_i(pc, *dest, *value);
                    pc += 1;
                }
                Statement::Copy { dest, src } => {
                    let v = memory[*src];
                    memory[*dest] = v;
                    tracer.on_copy(pc, *dest, *src, v);
                    pc += 1;
                }
                Statement::Compute { dest, op, args } => {
                    let arg_values: Vec<f64> = args.iter().map(|&a| memory[a].as_f64()).collect();
                    let value = <f64 as shadowreal::Real>::apply(*op, &arg_values);
                    memory[*dest] = Value::F(value);
                    tracer.on_compute(pc, *op, *dest, args, &arg_values, value);
                    pc += 1;
                }
                Statement::CastToInt { dest, src } => {
                    let v = memory[*src].as_f64();
                    let as_int = v.trunc() as i64;
                    memory[*dest] = Value::I(as_int);
                    tracer.on_cast_to_int(pc, *dest, *src, v, as_int);
                    pc += 1;
                }
                Statement::Branch { pred, target } => match pred {
                    Pred::Always => {
                        pc = *target;
                    }
                    Pred::Cmp(op, a, b) => {
                        let va = memory[*a];
                        let vb = memory[*b];
                        let taken = op.holds(va.as_f64().partial_cmp(&vb.as_f64()));
                        tracer.on_branch(pc, *op, *a, *b, va, vb, taken);
                        pc = if taken { *target } else { pc + 1 };
                    }
                },
                Statement::Output { src } => {
                    let v = memory[*src].as_f64();
                    result.outputs.push(v);
                    tracer.on_output(pc, *src, v);
                    pc += 1;
                }
            }
        }
        tracer.on_finish(&result);
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::SourceLoc;

    fn straight_line_program() -> Program {
        // out (a + b) * a
        Program {
            name: "straight".into(),
            statements: vec![
                Statement::Compute {
                    dest: 2,
                    op: RealOp::Add,
                    args: vec![0, 1],
                },
                Statement::Compute {
                    dest: 3,
                    op: RealOp::Mul,
                    args: vec![2, 0],
                },
                Statement::Output { src: 3 },
                Statement::Halt,
            ],
            locations: vec![SourceLoc::default(); 4],
            num_addrs: 4,
            arg_addrs: vec![0, 1],
        }
    }

    #[test]
    fn executes_straight_line_code() {
        let p = straight_line_program();
        let r = Machine::new(&p).run(&[2.0, 3.0]).unwrap();
        assert_eq!(r.outputs, vec![10.0]);
        assert_eq!(r.steps, 4);
    }

    #[test]
    fn arity_is_checked() {
        let p = straight_line_program();
        assert_eq!(
            Machine::new(&p).run(&[1.0]).unwrap_err(),
            MachineError::ArityMismatch {
                expected: 2,
                actual: 1
            }
        );
    }

    #[test]
    fn branch_and_loop_execution() {
        // Count down from the argument to zero, outputting the final counter.
        let p = Program {
            name: "loop".into(),
            statements: vec![
                // 0: const 0.0 -> addr1
                Statement::ConstF {
                    dest: 1,
                    value: 0.0,
                },
                // 1: const 1.0 -> addr2
                Statement::ConstF {
                    dest: 2,
                    value: 1.0,
                },
                // 2: if arg <= 0 goto 5
                Statement::Branch {
                    pred: Pred::Cmp(CmpOp::Le, 0, 1),
                    target: 5,
                },
                // 3: arg = arg - 1
                Statement::Compute {
                    dest: 0,
                    op: RealOp::Sub,
                    args: vec![0, 2],
                },
                // 4: goto 2
                Statement::Branch {
                    pred: Pred::Always,
                    target: 2,
                },
                // 5: out arg
                Statement::Output { src: 0 },
                Statement::Halt,
            ],
            locations: vec![SourceLoc::default(); 7],
            num_addrs: 3,
            arg_addrs: vec![0],
        };
        p.validate().unwrap();
        let r = Machine::new(&p).run(&[5.0]).unwrap();
        assert_eq!(r.outputs, vec![0.0]);
    }

    #[test]
    fn step_budget_stops_runaway_loops() {
        let p = Program {
            name: "spin".into(),
            statements: vec![Statement::Branch {
                pred: Pred::Always,
                target: 0,
            }],
            locations: vec![SourceLoc::default()],
            num_addrs: 1,
            arg_addrs: vec![],
        };
        let err = Machine::new(&p).with_step_limit(100).run(&[]).unwrap_err();
        assert_eq!(err, MachineError::StepBudgetExceeded { limit: 100 });
    }

    #[test]
    fn cast_to_int_truncates() {
        let p = Program {
            name: "cast".into(),
            statements: vec![
                Statement::CastToInt { dest: 1, src: 0 },
                Statement::Output { src: 1 },
                Statement::Halt,
            ],
            locations: vec![SourceLoc::default(); 3],
            num_addrs: 2,
            arg_addrs: vec![0],
        };
        let r = Machine::new(&p).run(&[3.9]).unwrap();
        assert_eq!(r.outputs, vec![3.0]);
        let r = Machine::new(&p).run(&[-3.9]).unwrap();
        assert_eq!(r.outputs, vec![-3.0]);
    }

    #[test]
    fn tracer_sees_every_compute_and_spot() {
        #[derive(Default)]
        struct Counter {
            computes: usize,
            outputs: usize,
            branches: usize,
        }
        impl Tracer for Counter {
            fn on_compute(&mut self, _: usize, _: RealOp, _: Addr, _: &[Addr], _: &[f64], _: f64) {
                self.computes += 1;
            }
            fn on_output(&mut self, _: usize, _: Addr, _: f64) {
                self.outputs += 1;
            }
            fn on_branch(
                &mut self,
                _: usize,
                _: CmpOp,
                _: Addr,
                _: Addr,
                _: Value,
                _: Value,
                _: bool,
            ) {
                self.branches += 1;
            }
        }
        let p = straight_line_program();
        let mut tracer = Counter::default();
        Machine::new(&p)
            .run_traced(&[1.0, 2.0], &mut tracer)
            .unwrap();
        assert_eq!(tracer.computes, 2);
        assert_eq!(tracer.outputs, 1);
        assert_eq!(tracer.branches, 0);
    }

    #[test]
    fn pc_out_of_range_is_an_error() {
        let p = Program {
            name: "fallthrough".into(),
            statements: vec![Statement::ConstF {
                dest: 0,
                value: 1.0,
            }],
            locations: vec![SourceLoc::default()],
            num_addrs: 1,
            arg_addrs: vec![],
        };
        assert_eq!(
            Machine::new(&p).run(&[]).unwrap_err(),
            MachineError::PcOutOfRange { pc: 1 }
        );
    }
}

//! The machine interpreter and the tracer hook through which analyses
//! observe execution.
//!
//! The interpreter executes the client semantics — plain double precision —
//! exactly as a compiled binary would. Analyses (Herbgrind proper and the
//! baseline tools) are [`Tracer`] implementations: they are invoked after
//! every executed statement with the concrete values involved, which mirrors
//! the way Valgrind instrumentation observes the client without altering it.

use crate::program::{Addr, Pred, Program, Statement, Value};
use fpcore::CmpOp;
use shadowreal::RealOp;
use std::fmt;

/// Errors produced while running a program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MachineError {
    /// The supplied argument count does not match the program.
    ArityMismatch {
        /// Number of argument addresses in the program.
        expected: usize,
        /// Number of arguments supplied.
        actual: usize,
    },
    /// Execution exceeded the step budget (runaway loop).
    StepBudgetExceeded {
        /// The configured budget.
        limit: u64,
    },
    /// The program counter left the program without reaching `Halt`.
    PcOutOfRange {
        /// The offending program counter.
        pc: usize,
    },
    /// Execution exceeded the wall-clock deadline
    /// ([`Machine::with_deadline_millis`]).
    DeadlineExceeded {
        /// The configured deadline, in milliseconds.
        millis: u64,
    },
    /// An attached analysis exhausted its trace-memory budget (interned
    /// expression nodes); surfaced through [`Tracer::fault`].
    TraceBudgetExceeded {
        /// The configured budget, in interned nodes.
        limit: usize,
    },
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::ArityMismatch { expected, actual } => {
                write!(f, "program takes {expected} arguments, got {actual}")
            }
            MachineError::StepBudgetExceeded { limit } => {
                write!(f, "execution exceeded the {limit}-step budget")
            }
            MachineError::PcOutOfRange { pc } => write!(f, "program counter {pc} out of range"),
            MachineError::DeadlineExceeded { millis } => {
                write!(f, "execution exceeded the {millis} ms deadline")
            }
            MachineError::TraceBudgetExceeded { limit } => {
                write!(f, "analysis exceeded the {limit}-node trace budget")
            }
        }
    }
}

impl std::error::Error for MachineError {}

/// The observable result of a run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunResult {
    /// Values printed by `Output` statements, in order.
    pub outputs: Vec<f64>,
    /// Number of statements executed.
    pub steps: u64,
}

/// An execution observer.
///
/// Every method has a default empty implementation so tracers only override
/// what they need. The interpreter calls the hook *after* the statement's
/// effect on machine memory, passing the concrete double values read and
/// written, which is exactly the information a Valgrind tool sees.
#[allow(unused_variables)]
pub trait Tracer {
    /// A floating-point operation was executed.
    fn on_compute(
        &mut self,
        pc: usize,
        op: RealOp,
        dest: Addr,
        args: &[Addr],
        arg_values: &[f64],
        result: f64,
    ) {
    }
    /// A float constant was loaded.
    fn on_const_f(&mut self, pc: usize, dest: Addr, value: f64) {}
    /// An integer constant was loaded.
    fn on_const_i(&mut self, pc: usize, dest: Addr, value: i64) {}
    /// A value was copied between addresses.
    fn on_copy(&mut self, pc: usize, dest: Addr, src: Addr, value: Value) {}
    /// A float was converted to an integer (a spot).
    fn on_cast_to_int(&mut self, pc: usize, dest: Addr, src: Addr, value: f64, result: i64) {}
    /// A conditional branch over floats was evaluated (a spot).
    #[allow(clippy::too_many_arguments)]
    fn on_branch(
        &mut self,
        pc: usize,
        cmp: CmpOp,
        lhs: Addr,
        rhs: Addr,
        lhs_value: Value,
        rhs_value: Value,
        taken: bool,
    ) {
    }
    /// A value was output (a spot).
    fn on_output(&mut self, pc: usize, src: Addr, value: f64) {}
    /// The program produced its arguments (called once, before execution).
    fn on_start(&mut self, program: &Program, args: &[f64]) {}
    /// Execution finished.
    fn on_finish(&mut self, result: &RunResult) {}
    /// Polled once per executed statement: a tracer that has exhausted one
    /// of its own resource budgets (e.g. trace memory) returns the error
    /// here and the interpreter aborts the run with it. Take semantics: the
    /// tracer should clear its pending fault when reporting it.
    fn fault(&mut self) -> Option<MachineError> {
        None
    }
    /// Non-mutating peek used by adapters (e.g.
    /// [`LaneTracer`](crate::batch::LaneTracer)) that must know whether
    /// [`Tracer::fault`] would report without taking it. Must agree with
    /// `fault`: `true` iff a fault is pending.
    fn has_fault(&self) -> bool {
        false
    }
}

/// A tracer that observes nothing — the uninstrumented baseline.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullTracer;

impl Tracer for NullTracer {}

/// The widest [`RealOp`] arity (re-exported from `shadowreal`, where the
/// operation set is defined); compute instructions carry their operand
/// addresses inline in an array of this size instead of a heap `Vec`.
pub use shadowreal::MAX_ARITY;

/// A pre-decoded statement: the executable form of one [`Statement`], with
/// operand addresses stored inline and branch predicates split by kind so
/// the dispatch loop does no nested matching and no pointer chasing.
/// Shared with the batched engine ([`crate::batch`]), which walks the same
/// tape with a lane mask instead of a single program counter.
#[derive(Clone, Debug)]
pub(crate) enum Inst {
    ConstF {
        dest: Addr,
        value: f64,
    },
    ConstI {
        dest: Addr,
        value: i64,
    },
    Copy {
        dest: Addr,
        src: Addr,
    },
    Compute {
        dest: Addr,
        op: RealOp,
        arity: u8,
        args: [Addr; MAX_ARITY],
    },
    CastToInt {
        dest: Addr,
        src: Addr,
    },
    Jump {
        target: usize,
    },
    BranchCmp {
        cmp: CmpOp,
        lhs: Addr,
        rhs: Addr,
        target: usize,
    },
    Output {
        src: Addr,
    },
    Halt,
}

/// Decodes a program into its execution tape. Done once per [`Machine`], so
/// an input sweep pays O(program) setup instead of re-interpreting the
/// `Statement` representation (with its heap-allocated operand lists) on
/// every executed instruction.
pub(crate) fn decode(program: &Program) -> Vec<Inst> {
    program
        .statements
        .iter()
        .map(|stmt| match stmt {
            Statement::ConstF { dest, value } => Inst::ConstF {
                dest: *dest,
                value: *value,
            },
            Statement::ConstI { dest, value } => Inst::ConstI {
                dest: *dest,
                value: *value,
            },
            Statement::Copy { dest, src } => Inst::Copy {
                dest: *dest,
                src: *src,
            },
            Statement::Compute { dest, op, args } => {
                assert!(
                    args.len() <= MAX_ARITY,
                    "compute statement has {} operands; RealOp arity is at most {MAX_ARITY}",
                    args.len()
                );
                let mut inline = [0 as Addr; MAX_ARITY];
                inline[..args.len()].copy_from_slice(args);
                Inst::Compute {
                    dest: *dest,
                    op: *op,
                    arity: args.len() as u8,
                    args: inline,
                }
            }
            Statement::CastToInt { dest, src } => Inst::CastToInt {
                dest: *dest,
                src: *src,
            },
            Statement::Branch { pred, target } => match pred {
                Pred::Always => Inst::Jump { target: *target },
                Pred::Cmp(cmp, lhs, rhs) => Inst::BranchCmp {
                    cmp: *cmp,
                    lhs: *lhs,
                    rhs: *rhs,
                    target: *target,
                },
            },
            Statement::Output { src } => Inst::Output { src: *src },
            Statement::Halt => Inst::Halt,
        })
        .collect()
}

/// The machine interpreter.
///
/// Construction pre-decodes the program into an execution tape (see
/// [`decode`]); running is then a dispatch loop over fixed-size instructions
/// that performs no per-instruction heap allocation. The tape is held behind
/// an [`Arc`](std::sync::Arc), so cloning a machine — one per analysis shard,
/// or to seed a [`crate::batch::BatchMachine`] — shares the decoded tape
/// instead of re-decoding the program.
#[derive(Clone, Debug)]
pub struct Machine<'p> {
    pub(crate) program: &'p Program,
    pub(crate) tape: std::sync::Arc<[Inst]>,
    pub(crate) step_limit: u64,
    pub(crate) deadline_millis: Option<u64>,
}

/// Default step budget per run (generous; FPBench loop benchmarks stay far
/// below this).
pub const DEFAULT_STEP_LIMIT: u64 = 50_000_000;

impl<'p> Machine<'p> {
    /// Creates an interpreter for a program, pre-decoding it into the
    /// execution tape.
    pub fn new(program: &'p Program) -> Machine<'p> {
        Machine {
            program,
            tape: decode(program).into(),
            step_limit: DEFAULT_STEP_LIMIT,
            deadline_millis: None,
        }
    }

    /// Overrides the step budget.
    pub fn with_step_limit(mut self, limit: u64) -> Machine<'p> {
        self.step_limit = limit;
        self
    }

    /// Sets a per-run wall-clock deadline in milliseconds (`0` disables it,
    /// the default). The clock starts when a run begins and is checked every
    /// 1024 steps, so a runaway transcendental-heavy loop is caught within
    /// microseconds of the deadline without a per-step `Instant` read.
    /// Unlike the step budget, where a run trips the deadline is
    /// machine-load-dependent; sweeps that must be reproducible should
    /// prefer [`Machine::with_step_limit`].
    pub fn with_deadline_millis(mut self, millis: u64) -> Machine<'p> {
        self.deadline_millis = if millis == 0 { None } else { Some(millis) };
        self
    }

    /// Runs the program without instrumentation.
    ///
    /// # Errors
    ///
    /// Returns a [`MachineError`] for argument arity mismatches, runaway
    /// loops, and malformed control flow.
    pub fn run(&self, args: &[f64]) -> Result<RunResult, MachineError> {
        self.run_traced(args, &mut NullTracer)
    }

    /// Runs the program, reporting every executed statement to `tracer`.
    ///
    /// # Errors
    ///
    /// Returns a [`MachineError`] for argument arity mismatches, runaway
    /// loops, and malformed control flow.
    pub fn run_traced<T: Tracer + ?Sized>(
        &self,
        args: &[f64],
        tracer: &mut T,
    ) -> Result<RunResult, MachineError> {
        let mut memory = Vec::new();
        self.run_traced_reusing(args, tracer, &mut memory)
    }

    /// Runs the program like [`Machine::run_traced`], reusing `memory` as the
    /// machine's flat memory so an input sweep performs no per-run
    /// allocation. The buffer is cleared and reinitialized on entry; its
    /// contents afterwards are the final machine memory.
    ///
    /// # Errors
    ///
    /// Returns a [`MachineError`] for argument arity mismatches, runaway
    /// loops, and malformed control flow.
    pub fn run_traced_reusing<T: Tracer + ?Sized>(
        &self,
        args: &[f64],
        tracer: &mut T,
        memory: &mut Vec<Value>,
    ) -> Result<RunResult, MachineError> {
        let program = self.program;
        if args.len() != program.arg_addrs.len() {
            return Err(MachineError::ArityMismatch {
                expected: program.arg_addrs.len(),
                actual: args.len(),
            });
        }
        memory.clear();
        memory.resize(program.num_addrs, Value::F(0.0));
        for (&addr, &value) in program.arg_addrs.iter().zip(args) {
            memory[addr] = Value::F(value);
        }
        tracer.on_start(program, args);

        let deadline = self.deadline_millis.map(|ms| {
            (
                std::time::Instant::now() + std::time::Duration::from_millis(ms),
                ms,
            )
        });
        let mut result = RunResult::default();
        let mut pc = 0usize;
        loop {
            if result.steps >= self.step_limit {
                flush_run_telemetry(result.steps);
                return Err(MachineError::StepBudgetExceeded {
                    limit: self.step_limit,
                });
            }
            if result.steps & 1023 == 0 {
                if let Some((at, millis)) = deadline {
                    if std::time::Instant::now() >= at {
                        flush_run_telemetry(result.steps);
                        return Err(MachineError::DeadlineExceeded { millis });
                    }
                }
            }
            if tracer.has_fault() {
                if let Some(err) = tracer.fault() {
                    flush_run_telemetry(result.steps);
                    return Err(err);
                }
            }
            result.steps += 1;
            let Some(inst) = self.tape.get(pc) else {
                flush_run_telemetry(result.steps);
                return Err(MachineError::PcOutOfRange { pc });
            };
            match inst {
                Inst::Halt => break,
                Inst::ConstF { dest, value } => {
                    memory[*dest] = Value::F(*value);
                    tracer.on_const_f(pc, *dest, *value);
                    pc += 1;
                }
                Inst::ConstI { dest, value } => {
                    memory[*dest] = Value::I(*value);
                    tracer.on_const_i(pc, *dest, *value);
                    pc += 1;
                }
                Inst::Copy { dest, src } => {
                    let v = memory[*src];
                    memory[*dest] = v;
                    tracer.on_copy(pc, *dest, *src, v);
                    pc += 1;
                }
                Inst::Compute {
                    dest,
                    op,
                    arity,
                    args,
                } => {
                    let addrs = &args[..*arity as usize];
                    let mut values = [0.0f64; MAX_ARITY];
                    for (value, &addr) in values.iter_mut().zip(addrs) {
                        *value = memory[addr].as_f64();
                    }
                    let arg_values = &values[..addrs.len()];
                    let value = <f64 as shadowreal::Real>::apply(*op, arg_values);
                    memory[*dest] = Value::F(value);
                    tracer.on_compute(pc, *op, *dest, addrs, arg_values, value);
                    pc += 1;
                }
                Inst::CastToInt { dest, src } => {
                    let v = memory[*src].as_f64();
                    let as_int = v.trunc() as i64;
                    memory[*dest] = Value::I(as_int);
                    tracer.on_cast_to_int(pc, *dest, *src, v, as_int);
                    pc += 1;
                }
                Inst::Jump { target } => {
                    pc = *target;
                }
                Inst::BranchCmp {
                    cmp,
                    lhs,
                    rhs,
                    target,
                } => {
                    let va = memory[*lhs];
                    let vb = memory[*rhs];
                    let taken = cmp.holds(va.as_f64().partial_cmp(&vb.as_f64()));
                    tracer.on_branch(pc, *cmp, *lhs, *rhs, va, vb, taken);
                    pc = if taken { *target } else { pc + 1 };
                }
                Inst::Output { src } => {
                    let v = memory[*src].as_f64();
                    result.outputs.push(v);
                    tracer.on_output(pc, *src, v);
                    pc += 1;
                }
            }
        }
        tracer.on_finish(&result);
        flush_run_telemetry(result.steps);
        Ok(result)
    }
}

/// Flush one serial run's step count into the telemetry registry. The hot
/// loop counts into `result.steps` anyway, so off-mode cost is the single
/// gate check inside each `Counter::add`. The step-limit check runs once per
/// iteration, so the budget-check count equals the step count.
#[inline]
fn flush_run_telemetry(steps: u64) {
    telemetry::FPVM_STEPS.add(steps);
    telemetry::FPVM_BUDGET_CHECKS.add(steps);
    telemetry::HIST_RUN_STEPS.observe(steps);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::SourceLoc;

    fn straight_line_program() -> Program {
        // out (a + b) * a
        Program {
            name: "straight".into(),
            statements: vec![
                Statement::Compute {
                    dest: 2,
                    op: RealOp::Add,
                    args: vec![0, 1],
                },
                Statement::Compute {
                    dest: 3,
                    op: RealOp::Mul,
                    args: vec![2, 0],
                },
                Statement::Output { src: 3 },
                Statement::Halt,
            ],
            locations: vec![SourceLoc::default(); 4],
            num_addrs: 4,
            arg_addrs: vec![0, 1],
        }
    }

    #[test]
    fn executes_straight_line_code() {
        let p = straight_line_program();
        let r = Machine::new(&p).run(&[2.0, 3.0]).unwrap();
        assert_eq!(r.outputs, vec![10.0]);
        assert_eq!(r.steps, 4);
    }

    #[test]
    fn arity_is_checked() {
        let p = straight_line_program();
        assert_eq!(
            Machine::new(&p).run(&[1.0]).unwrap_err(),
            MachineError::ArityMismatch {
                expected: 2,
                actual: 1
            }
        );
    }

    #[test]
    fn branch_and_loop_execution() {
        // Count down from the argument to zero, outputting the final counter.
        let p = Program {
            name: "loop".into(),
            statements: vec![
                // 0: const 0.0 -> addr1
                Statement::ConstF {
                    dest: 1,
                    value: 0.0,
                },
                // 1: const 1.0 -> addr2
                Statement::ConstF {
                    dest: 2,
                    value: 1.0,
                },
                // 2: if arg <= 0 goto 5
                Statement::Branch {
                    pred: Pred::Cmp(CmpOp::Le, 0, 1),
                    target: 5,
                },
                // 3: arg = arg - 1
                Statement::Compute {
                    dest: 0,
                    op: RealOp::Sub,
                    args: vec![0, 2],
                },
                // 4: goto 2
                Statement::Branch {
                    pred: Pred::Always,
                    target: 2,
                },
                // 5: out arg
                Statement::Output { src: 0 },
                Statement::Halt,
            ],
            locations: vec![SourceLoc::default(); 7],
            num_addrs: 3,
            arg_addrs: vec![0],
        };
        p.validate().unwrap();
        let r = Machine::new(&p).run(&[5.0]).unwrap();
        assert_eq!(r.outputs, vec![0.0]);
    }

    #[test]
    fn step_budget_stops_runaway_loops() {
        let p = Program {
            name: "spin".into(),
            statements: vec![Statement::Branch {
                pred: Pred::Always,
                target: 0,
            }],
            locations: vec![SourceLoc::default()],
            num_addrs: 1,
            arg_addrs: vec![],
        };
        let err = Machine::new(&p).with_step_limit(100).run(&[]).unwrap_err();
        assert_eq!(err, MachineError::StepBudgetExceeded { limit: 100 });
    }

    #[test]
    fn cast_to_int_truncates() {
        let p = Program {
            name: "cast".into(),
            statements: vec![
                Statement::CastToInt { dest: 1, src: 0 },
                Statement::Output { src: 1 },
                Statement::Halt,
            ],
            locations: vec![SourceLoc::default(); 3],
            num_addrs: 2,
            arg_addrs: vec![0],
        };
        let r = Machine::new(&p).run(&[3.9]).unwrap();
        assert_eq!(r.outputs, vec![3.0]);
        let r = Machine::new(&p).run(&[-3.9]).unwrap();
        assert_eq!(r.outputs, vec![-3.0]);
    }

    #[test]
    fn tracer_sees_every_compute_and_spot() {
        #[derive(Default)]
        struct Counter {
            computes: usize,
            outputs: usize,
            branches: usize,
        }
        impl Tracer for Counter {
            fn on_compute(&mut self, _: usize, _: RealOp, _: Addr, _: &[Addr], _: &[f64], _: f64) {
                self.computes += 1;
            }
            fn on_output(&mut self, _: usize, _: Addr, _: f64) {
                self.outputs += 1;
            }
            fn on_branch(
                &mut self,
                _: usize,
                _: CmpOp,
                _: Addr,
                _: Addr,
                _: Value,
                _: Value,
                _: bool,
            ) {
                self.branches += 1;
            }
        }
        let p = straight_line_program();
        let mut tracer = Counter::default();
        Machine::new(&p)
            .run_traced(&[1.0, 2.0], &mut tracer)
            .unwrap();
        assert_eq!(tracer.computes, 2);
        assert_eq!(tracer.outputs, 1);
        assert_eq!(tracer.branches, 0);
    }

    #[test]
    fn reused_memory_buffer_matches_fresh_runs() {
        // The same scratch buffer serves runs of different programs and
        // sizes; every run must behave exactly like a fresh allocation.
        let p1 = straight_line_program();
        let p2 = Program {
            name: "cast".into(),
            statements: vec![
                Statement::CastToInt { dest: 1, src: 0 },
                Statement::Output { src: 1 },
                Statement::Halt,
            ],
            locations: vec![SourceLoc::default(); 3],
            num_addrs: 2,
            arg_addrs: vec![0],
        };
        let mut memory = Vec::new();
        let m1 = Machine::new(&p1);
        let m2 = Machine::new(&p2);
        for i in 0..4 {
            let a = 1.0 + i as f64;
            let fresh = m1.run(&[a, 2.0]).unwrap();
            let reused = m1
                .run_traced_reusing(&[a, 2.0], &mut NullTracer, &mut memory)
                .unwrap();
            assert_eq!(fresh, reused);
            let fresh = m2.run(&[a + 0.9]).unwrap();
            let reused = m2
                .run_traced_reusing(&[a + 0.9], &mut NullTracer, &mut memory)
                .unwrap();
            assert_eq!(fresh, reused);
        }
    }

    #[test]
    fn pc_out_of_range_is_an_error() {
        let p = Program {
            name: "fallthrough".into(),
            statements: vec![Statement::ConstF {
                dest: 0,
                value: 1.0,
            }],
            locations: vec![SourceLoc::default()],
            num_addrs: 1,
            arg_addrs: vec![],
        };
        assert_eq!(
            Machine::new(&p).run(&[]).unwrap_err(),
            MachineError::PcOutOfRange { pc: 1 }
        );
    }
}

//! The machine program representation (Figure 2 of the paper).

use fpcore::CmpOp;
use shadowreal::RealOp;
use std::fmt;

/// A memory address (index into the machine's flat memory).
pub type Addr = usize;

/// A value stored in machine memory: a double or an integer.
///
/// The paper's abstract machine stores `F | Z`; integer values arise from
/// float→integer conversions and loop counters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Value {
    /// A double-precision float.
    F(f64),
    /// A 64-bit integer.
    I(i64),
}

impl Value {
    /// The value viewed as a double (integers are converted).
    pub fn as_f64(self) -> f64 {
        match self {
            Value::F(x) => x,
            Value::I(i) => i as f64,
        }
    }

    /// True if this cell currently holds a float.
    pub fn is_float(self) -> bool {
        matches!(self, Value::F(_))
    }
}

impl Default for Value {
    fn default() -> Self {
        Value::F(0.0)
    }
}

/// The predicate of a conditional branch.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Pred {
    /// Always taken (an unconditional jump).
    Always,
    /// A comparison between two memory locations.
    Cmp(CmpOp, Addr, Addr),
}

/// A single machine statement.
#[derive(Clone, Debug, PartialEq)]
pub enum Statement {
    /// Load a floating-point constant.
    ConstF {
        /// Destination address.
        dest: Addr,
        /// The constant.
        value: f64,
    },
    /// Load an integer constant.
    ConstI {
        /// Destination address.
        dest: Addr,
        /// The constant.
        value: i64,
    },
    /// Copy a value between addresses (models moves through registers, the
    /// stack, and heap data structures — the operations concrete expressions
    /// must see *through*).
    Copy {
        /// Destination address.
        dest: Addr,
        /// Source address.
        src: Addr,
    },
    /// Apply a floating-point operation.
    Compute {
        /// Destination address.
        dest: Addr,
        /// The operation.
        op: RealOp,
        /// Argument addresses.
        args: Vec<Addr>,
    },
    /// Convert a float to an integer (truncation). This is one of the three
    /// kinds of *spots* in the analysis.
    CastToInt {
        /// Destination address.
        dest: Addr,
        /// Source address (a float).
        src: Addr,
    },
    /// Conditional jump: if the predicate holds, set the program counter to
    /// `target`. Branches whose predicate reads floats are spots.
    Branch {
        /// The predicate.
        pred: Pred,
        /// The statement index jumped to when the predicate holds.
        target: usize,
    },
    /// Emit a program output. Outputs are spots.
    Output {
        /// The address whose value is printed.
        src: Addr,
    },
    /// Stop execution.
    Halt,
}

impl Statement {
    /// True for statements the analysis treats as spots (outputs, branches
    /// over floats, float→int conversions) — §4.2 of the paper.
    pub fn is_spot(&self) -> bool {
        matches!(
            self,
            Statement::Output { .. }
                | Statement::Branch {
                    pred: Pred::Cmp(..),
                    ..
                }
                | Statement::CastToInt { .. }
        )
    }
}

/// A source location attached to a statement, mimicking the
/// file/line/function locations Herbgrind reports from DWARF debug info.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct SourceLoc {
    /// Source file name.
    pub file: String,
    /// Line number.
    pub line: u32,
    /// Enclosing function name.
    pub function: String,
}

impl SourceLoc {
    /// Creates a source location.
    pub fn new(file: impl Into<String>, line: u32, function: impl Into<String>) -> SourceLoc {
        SourceLoc {
            file: file.into(),
            line,
            function: function.into(),
        }
    }

    /// A statically allocated default location, for lookup paths that return
    /// locations by reference (cloning a `SourceLoc` is two `String` clones,
    /// which used to happen once per traced event).
    pub fn static_default() -> &'static SourceLoc {
        static DEFAULT: SourceLoc = SourceLoc {
            file: String::new(),
            line: 0,
            function: String::new(),
        };
        &DEFAULT
    }
}

impl fmt::Display for SourceLoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{} in {}", self.file, self.line, self.function)
    }
}

/// A compiled machine program.
#[derive(Clone, Debug, Default)]
pub struct Program {
    /// A human-readable name (usually the benchmark's `:name`).
    pub name: String,
    /// The statements, executed from index 0.
    pub statements: Vec<Statement>,
    /// One source location per statement.
    pub locations: Vec<SourceLoc>,
    /// The number of memory addresses the program uses.
    pub num_addrs: usize,
    /// The addresses that hold the program arguments at startup.
    pub arg_addrs: Vec<Addr>,
}

impl Program {
    /// The number of statements.
    pub fn len(&self) -> usize {
        self.statements.len()
    }

    /// True if the program has no statements.
    pub fn is_empty(&self) -> bool {
        self.statements.is_empty()
    }

    /// The source location of a statement (a default location if none was
    /// recorded). Returned by reference: locations are consulted once per
    /// traced event, and cloning two `String`s per event was a measurable
    /// part of the per-op analysis overhead.
    pub fn location(&self, pc: usize) -> &SourceLoc {
        self.locations
            .get(pc)
            .unwrap_or(SourceLoc::static_default())
    }

    /// The number of statements that are floating-point computations.
    pub fn compute_count(&self) -> usize {
        self.statements
            .iter()
            .filter(|s| matches!(s, Statement::Compute { .. }))
            .count()
    }

    /// Checks structural invariants: branch targets in range, addresses below
    /// `num_addrs`, and one location per statement. Returns a description of
    /// the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.locations.len() != self.statements.len() {
            return Err(format!(
                "{} locations for {} statements",
                self.locations.len(),
                self.statements.len()
            ));
        }
        let check_addr = |a: Addr, what: &str, pc: usize| -> Result<(), String> {
            if a >= self.num_addrs {
                Err(format!("statement {pc}: {what} address {a} out of range"))
            } else {
                Ok(())
            }
        };
        for (pc, stmt) in self.statements.iter().enumerate() {
            match stmt {
                Statement::ConstF { dest, .. } | Statement::ConstI { dest, .. } => {
                    check_addr(*dest, "dest", pc)?;
                }
                Statement::Copy { dest, src } | Statement::CastToInt { dest, src } => {
                    check_addr(*dest, "dest", pc)?;
                    check_addr(*src, "src", pc)?;
                }
                Statement::Compute { dest, op, args } => {
                    check_addr(*dest, "dest", pc)?;
                    if args.len() != op.arity() {
                        return Err(format!(
                            "statement {pc}: {op} expects {} args, has {}",
                            op.arity(),
                            args.len()
                        ));
                    }
                    for &a in args {
                        check_addr(a, "arg", pc)?;
                    }
                }
                Statement::Branch { pred, target } => {
                    if *target > self.statements.len() {
                        return Err(format!(
                            "statement {pc}: branch target {target} out of range"
                        ));
                    }
                    if let Pred::Cmp(_, a, b) = pred {
                        check_addr(*a, "cmp lhs", pc)?;
                        check_addr(*b, "cmp rhs", pc)?;
                    }
                }
                Statement::Output { src } => check_addr(*src, "output", pc)?,
                Statement::Halt => {}
            }
        }
        for &a in &self.arg_addrs {
            check_addr(a, "argument", usize::MAX)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_conversions() {
        assert_eq!(Value::F(2.5).as_f64(), 2.5);
        assert_eq!(Value::I(3).as_f64(), 3.0);
        assert!(Value::F(1.0).is_float());
        assert!(!Value::I(1).is_float());
    }

    #[test]
    fn spot_classification() {
        assert!(Statement::Output { src: 0 }.is_spot());
        assert!(Statement::CastToInt { dest: 0, src: 1 }.is_spot());
        assert!(Statement::Branch {
            pred: Pred::Cmp(CmpOp::Lt, 0, 1),
            target: 0
        }
        .is_spot());
        assert!(!Statement::Branch {
            pred: Pred::Always,
            target: 0
        }
        .is_spot());
        assert!(!Statement::Compute {
            dest: 0,
            op: RealOp::Add,
            args: vec![0, 1]
        }
        .is_spot());
    }

    #[test]
    fn validation_catches_bad_addresses() {
        let mut p = Program {
            name: "bad".into(),
            statements: vec![Statement::Output { src: 5 }],
            locations: vec![SourceLoc::default()],
            num_addrs: 2,
            arg_addrs: vec![],
        };
        assert!(p.validate().is_err());
        p.statements = vec![Statement::Output { src: 1 }];
        assert!(p.validate().is_ok());
    }

    #[test]
    fn validation_catches_arity_mismatch() {
        let p = Program {
            name: "bad".into(),
            statements: vec![Statement::Compute {
                dest: 0,
                op: RealOp::Add,
                args: vec![0],
            }],
            locations: vec![SourceLoc::default()],
            num_addrs: 2,
            arg_addrs: vec![],
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn location_lookup_is_by_reference_with_default() {
        let p = Program {
            name: "loc".into(),
            statements: vec![Statement::Halt],
            locations: vec![SourceLoc::new("main.c", 7, "f")],
            num_addrs: 0,
            arg_addrs: vec![],
        };
        assert_eq!(p.location(0).line, 7);
        assert_eq!(p.location(0).file, "main.c");
        // Out-of-range lookups yield the (static) default location.
        assert_eq!(p.location(42), &SourceLoc::default());
    }

    #[test]
    fn source_locations_display() {
        let loc = SourceLoc::new("main.cpp", 24, "run(int, int)");
        assert_eq!(loc.to_string(), "main.cpp:24 in run(int, int)");
    }
}

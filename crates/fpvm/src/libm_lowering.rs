//! Expansion of math-library calls into primitive instruction sequences.
//!
//! Herbgrind by default *wraps* calls to `libm`: the call is recorded as one
//! atomic operation and evaluated exactly on the shadow reals (§5.3). The
//! evaluation then measures what happens when wrapping is turned off (§8.2):
//! the analysis sees the library's internal instructions — argument-reduction
//! tricks with magic constants, polynomial kernels, and bit manipulations —
//! and reports much larger, much less useful expressions.
//!
//! This module reproduces that configuration. Each lowering mimics the
//! structure of a real `libm` implementation (fdlibm/openlibm style): the
//! round-to-nearest-integer trick via the 1.5·2^52 magic constant, split
//! high/low reduction constants, and Horner-form polynomial kernels. The
//! polynomials are accurate enough for the benchmarks' input ranges, but the
//! point is their *shape*: the paper's example of an unwrapped `exp` shows
//! exactly the `(x − 0.6931472·(y − 6.755399e15) + …)` pattern produced here.

use crate::program::Addr;
use shadowreal::RealOp;

/// The 1.5·2^52 constant used by libm implementations to round a double to
/// the nearest integer by addition and subtraction.
pub const ROUND_MAGIC: f64 = 6_755_399_441_055_744.0;

/// High part of ln 2 used in two-part argument reduction.
pub const LN2_HI: f64 = 6.931_471_803_691_238e-1;
/// Low part of ln 2 used in two-part argument reduction.
pub const LN2_LO: f64 = 1.908_214_929_270_587_7e-10;
/// High part of π used in two-part argument reduction.
#[allow(clippy::approx_constant)]
pub const PI_HI: f64 = 3.141_592_653_589_793;
/// Low part of π used in two-part argument reduction.
pub const PI_LO: f64 = 1.224_646_799_147_353_2e-16;

/// The code-emission interface the compiler exposes to lowerings.
pub trait Emitter {
    /// Allocates a fresh memory address.
    fn fresh(&mut self) -> Addr;
    /// Emits a float-constant load and returns its address.
    fn emit_const(&mut self, value: f64) -> Addr;
    /// Emits a primitive operation and returns the result address.
    fn emit_op(&mut self, op: RealOp, args: Vec<Addr>) -> Addr;
}

/// Emits the instruction sequence for a library call, returning the result
/// address, or `None` when the operation has no lowering (it then stays a
/// single instruction).
pub fn lower_call<E: Emitter + ?Sized>(e: &mut E, op: RealOp, args: &[Addr]) -> Option<Addr> {
    match op {
        RealOp::Exp => Some(lower_exp(e, args[0])),
        RealOp::Expm1 => {
            let exp = lower_exp(e, args[0]);
            let one = e.emit_const(1.0);
            Some(e.emit_op(RealOp::Sub, vec![exp, one]))
        }
        RealOp::Exp2 => {
            let ln2 = e.emit_const(std::f64::consts::LN_2);
            let scaled = e.emit_op(RealOp::Mul, vec![args[0], ln2]);
            Some(lower_exp(e, scaled))
        }
        RealOp::Log => Some(lower_log(e, args[0])),
        RealOp::Log1p => {
            let one = e.emit_const(1.0);
            let xp1 = e.emit_op(RealOp::Add, vec![args[0], one]);
            Some(lower_log(e, xp1))
        }
        RealOp::Log2 => {
            let l = lower_log(e, args[0]);
            let inv_ln2 = e.emit_const(std::f64::consts::LOG2_E);
            Some(e.emit_op(RealOp::Mul, vec![l, inv_ln2]))
        }
        RealOp::Log10 => {
            let l = lower_log(e, args[0]);
            let inv_ln10 = e.emit_const(std::f64::consts::LOG10_E);
            Some(e.emit_op(RealOp::Mul, vec![l, inv_ln10]))
        }
        RealOp::Pow => Some(lower_pow(e, args[0], args[1])),
        RealOp::Cbrt => {
            let l = lower_log(e, args[0]);
            let third = e.emit_const(1.0 / 3.0);
            let scaled = e.emit_op(RealOp::Mul, vec![l, third]);
            Some(lower_exp(e, scaled))
        }
        RealOp::Sin => Some(lower_sin(e, args[0])),
        RealOp::Cos => {
            // cos(x) = sin(x + π/2), reduced the same way.
            let half_pi = e.emit_const(std::f64::consts::FRAC_PI_2);
            let shifted = e.emit_op(RealOp::Add, vec![args[0], half_pi]);
            Some(lower_sin(e, shifted))
        }
        RealOp::Tan => {
            let s = lower_sin(e, args[0]);
            let half_pi = e.emit_const(std::f64::consts::FRAC_PI_2);
            let shifted = e.emit_op(RealOp::Add, vec![args[0], half_pi]);
            let c = lower_sin(e, shifted);
            Some(e.emit_op(RealOp::Div, vec![s, c]))
        }
        RealOp::Sinh => {
            let ex = lower_exp(e, args[0]);
            let one = e.emit_const(1.0);
            let inv = e.emit_op(RealOp::Div, vec![one, ex]);
            let diff = e.emit_op(RealOp::Sub, vec![ex, inv]);
            let half = e.emit_const(0.5);
            Some(e.emit_op(RealOp::Mul, vec![diff, half]))
        }
        RealOp::Cosh => {
            let ex = lower_exp(e, args[0]);
            let one = e.emit_const(1.0);
            let inv = e.emit_op(RealOp::Div, vec![one, ex]);
            let sum = e.emit_op(RealOp::Add, vec![ex, inv]);
            let half = e.emit_const(0.5);
            Some(e.emit_op(RealOp::Mul, vec![sum, half]))
        }
        RealOp::Tanh => {
            let two = e.emit_const(2.0);
            let scaled = e.emit_op(RealOp::Mul, vec![args[0], two]);
            let e2x = lower_exp(e, scaled);
            let one = e.emit_const(1.0);
            let num = e.emit_op(RealOp::Sub, vec![e2x, one]);
            let den = e.emit_op(RealOp::Add, vec![e2x, one]);
            Some(e.emit_op(RealOp::Div, vec![num, den]))
        }
        RealOp::Atan => Some(lower_atan(e, args[0])),
        RealOp::Asin => {
            // asin(x) = atan(x / sqrt(1 - x²))
            let one = e.emit_const(1.0);
            let xx = e.emit_op(RealOp::Mul, vec![args[0], args[0]]);
            let om = e.emit_op(RealOp::Sub, vec![one, xx]);
            let root = e.emit_op(RealOp::Sqrt, vec![om]);
            let ratio = e.emit_op(RealOp::Div, vec![args[0], root]);
            Some(lower_atan(e, ratio))
        }
        RealOp::Acos => {
            let one = e.emit_const(1.0);
            let xx = e.emit_op(RealOp::Mul, vec![args[0], args[0]]);
            let om = e.emit_op(RealOp::Sub, vec![one, xx]);
            let root = e.emit_op(RealOp::Sqrt, vec![om]);
            let ratio = e.emit_op(RealOp::Div, vec![args[0], root]);
            let at = lower_atan(e, ratio);
            let half_pi = e.emit_const(std::f64::consts::FRAC_PI_2);
            Some(e.emit_op(RealOp::Sub, vec![half_pi, at]))
        }
        RealOp::Asinh => {
            // ln(x + sqrt(x² + 1))
            let one = e.emit_const(1.0);
            let xx = e.emit_op(RealOp::Mul, vec![args[0], args[0]]);
            let sum = e.emit_op(RealOp::Add, vec![xx, one]);
            let root = e.emit_op(RealOp::Sqrt, vec![sum]);
            let arg = e.emit_op(RealOp::Add, vec![args[0], root]);
            Some(lower_log(e, arg))
        }
        RealOp::Acosh => {
            let one = e.emit_const(1.0);
            let xx = e.emit_op(RealOp::Mul, vec![args[0], args[0]]);
            let diff = e.emit_op(RealOp::Sub, vec![xx, one]);
            let root = e.emit_op(RealOp::Sqrt, vec![diff]);
            let arg = e.emit_op(RealOp::Add, vec![args[0], root]);
            Some(lower_log(e, arg))
        }
        RealOp::Atanh => {
            // 0.5 · ln((1+x)/(1−x))
            let one = e.emit_const(1.0);
            let num = e.emit_op(RealOp::Add, vec![one, args[0]]);
            let den = e.emit_op(RealOp::Sub, vec![one, args[0]]);
            let ratio = e.emit_op(RealOp::Div, vec![num, den]);
            let l = lower_log(e, ratio);
            let half = e.emit_const(0.5);
            Some(e.emit_op(RealOp::Mul, vec![l, half]))
        }
        RealOp::Hypot => {
            let xx = e.emit_op(RealOp::Mul, vec![args[0], args[0]]);
            let yy = e.emit_op(RealOp::Mul, vec![args[1], args[1]]);
            let sum = e.emit_op(RealOp::Add, vec![xx, yy]);
            Some(e.emit_op(RealOp::Sqrt, vec![sum]))
        }
        // Remaining library calls (atan2 and the simple rounding/selection
        // helpers) keep their single-instruction form even when lowering is
        // requested; real libms implement them mostly with branches and sign
        // manipulation rather than polynomial kernels.
        _ => None,
    }
}

/// Rounds `x` to the nearest integer using the add-then-subtract magic
/// constant trick — the exact pattern the paper shows leaking into reports
/// when wrapping is disabled.
fn magic_round<E: Emitter + ?Sized>(e: &mut E, x: Addr) -> Addr {
    let magic = e.emit_const(ROUND_MAGIC);
    let shifted = e.emit_op(RealOp::Add, vec![x, magic]);
    e.emit_op(RealOp::Sub, vec![shifted, magic])
}

/// Evaluates a polynomial in Horner form: c0 + t·(c1 + t·(c2 + ...)).
fn horner<E: Emitter + ?Sized>(e: &mut E, t: Addr, coefficients: &[f64]) -> Addr {
    let mut acc = e.emit_const(*coefficients.last().expect("non-empty polynomial"));
    for &c in coefficients.iter().rev().skip(1) {
        let prod = e.emit_op(RealOp::Mul, vec![acc, t]);
        let cc = e.emit_const(c);
        acc = e.emit_op(RealOp::Add, vec![cc, prod]);
    }
    acc
}

/// exp(x) = 2^n · P(r) with n = round(x/ln2), r = x − n·ln2 (split constant).
fn lower_exp<E: Emitter + ?Sized>(e: &mut E, x: Addr) -> Addr {
    let inv_ln2 = e.emit_const(std::f64::consts::LOG2_E);
    let scaled = e.emit_op(RealOp::Mul, vec![x, inv_ln2]);
    let n = magic_round(e, scaled);
    let ln2_hi = e.emit_const(LN2_HI);
    let ln2_lo = e.emit_const(LN2_LO);
    let n_hi = e.emit_op(RealOp::Mul, vec![n, ln2_hi]);
    let r1 = e.emit_op(RealOp::Sub, vec![x, n_hi]);
    let n_lo = e.emit_op(RealOp::Mul, vec![n, ln2_lo]);
    let r = e.emit_op(RealOp::Sub, vec![r1, n_lo]);
    // Degree-9 Taylor kernel for exp on [-ln2/2, ln2/2].
    let poly = horner(
        e,
        r,
        &[
            1.0,
            1.0,
            0.5,
            1.0 / 6.0,
            1.0 / 24.0,
            1.0 / 120.0,
            1.0 / 720.0,
            1.0 / 5040.0,
            1.0 / 40_320.0,
            1.0 / 362_880.0,
        ],
    );
    // Scale by 2^n; the exponent-field manipulation a real libm performs is
    // modelled as a primitive exp2 of the (integral) n.
    let scale = e.emit_op(RealOp::Exp2, vec![n]);
    e.emit_op(RealOp::Mul, vec![poly, scale])
}

/// log(x) via repeated square-root reduction and the atanh series kernel.
fn lower_log<E: Emitter + ?Sized>(e: &mut E, x: Addr) -> Addr {
    // y = x^(1/64) brings any double into a narrow band around 1.
    let mut y = x;
    let reductions = 6u32;
    for _ in 0..reductions {
        y = e.emit_op(RealOp::Sqrt, vec![y]);
    }
    let one = e.emit_const(1.0);
    let num = e.emit_op(RealOp::Sub, vec![y, one]);
    let den = e.emit_op(RealOp::Add, vec![y, one]);
    let t = e.emit_op(RealOp::Div, vec![num, den]);
    let t2 = e.emit_op(RealOp::Mul, vec![t, t]);
    // 2·(t + t³/3 + t⁵/5 + t⁷/7 + t⁹/9) = 2t·(1 + t²/3 + t⁴/5 + ...)
    let poly = horner(e, t2, &[1.0, 1.0 / 3.0, 1.0 / 5.0, 1.0 / 7.0, 1.0 / 9.0]);
    let tp = e.emit_op(RealOp::Mul, vec![t, poly]);
    let two_to_reductions_plus_one = e.emit_const((1u64 << (reductions + 1)) as f64);
    e.emit_op(RealOp::Mul, vec![tp, two_to_reductions_plus_one])
}

/// pow(x, y) = exp(y · log(x)) with both kernels expanded.
fn lower_pow<E: Emitter + ?Sized>(e: &mut E, x: Addr, y: Addr) -> Addr {
    let lx = lower_log(e, x);
    let prod = e.emit_op(RealOp::Mul, vec![y, lx]);
    lower_exp(e, prod)
}

/// sin(x) = (−1)^n · P(r) with n = round(x/π), r = x − n·π (split constant).
fn lower_sin<E: Emitter + ?Sized>(e: &mut E, x: Addr) -> Addr {
    let inv_pi = e.emit_const(std::f64::consts::FRAC_1_PI);
    let scaled = e.emit_op(RealOp::Mul, vec![x, inv_pi]);
    let n = magic_round(e, scaled);
    let pi_hi = e.emit_const(PI_HI);
    let pi_lo = e.emit_const(PI_LO);
    let n_hi = e.emit_op(RealOp::Mul, vec![n, pi_hi]);
    let r1 = e.emit_op(RealOp::Sub, vec![x, n_hi]);
    let n_lo = e.emit_op(RealOp::Mul, vec![n, pi_lo]);
    let r = e.emit_op(RealOp::Sub, vec![r1, n_lo]);
    // sign = 1 − 2·(n − 2·floor(n/2))   — +1 for even n, −1 for odd n.
    let half = e.emit_const(0.5);
    let n_half = e.emit_op(RealOp::Mul, vec![n, half]);
    let floored = e.emit_op(RealOp::Floor, vec![n_half]);
    let two = e.emit_const(2.0);
    let twice = e.emit_op(RealOp::Mul, vec![floored, two]);
    let parity = e.emit_op(RealOp::Sub, vec![n, twice]);
    let parity2 = e.emit_op(RealOp::Mul, vec![parity, two]);
    let one = e.emit_const(1.0);
    let sign = e.emit_op(RealOp::Sub, vec![one, parity2]);
    // sin kernel on [-π/2, π/2]: r·(1 − r²/6 + r⁴/120 − r⁶/5040 + r⁸/362880).
    let r2 = e.emit_op(RealOp::Mul, vec![r, r]);
    let poly = horner(
        e,
        r2,
        &[
            1.0,
            -1.0 / 6.0,
            1.0 / 120.0,
            -1.0 / 5040.0,
            1.0 / 362_880.0,
            -1.0 / 39_916_800.0,
        ],
    );
    let rp = e.emit_op(RealOp::Mul, vec![r, poly]);
    e.emit_op(RealOp::Mul, vec![sign, rp])
}

/// atan(x) via two half-angle reductions and the Gregory kernel. Accurate on
/// moderate arguments; real libms use table lookups here.
fn lower_atan<E: Emitter + ?Sized>(e: &mut E, x: Addr) -> Addr {
    let one = e.emit_const(1.0);
    let mut t = x;
    let halvings = 3u32;
    for _ in 0..halvings {
        let tt = e.emit_op(RealOp::Mul, vec![t, t]);
        let sum = e.emit_op(RealOp::Add, vec![one, tt]);
        let root = e.emit_op(RealOp::Sqrt, vec![sum]);
        let denom = e.emit_op(RealOp::Add, vec![one, root]);
        t = e.emit_op(RealOp::Div, vec![t, denom]);
    }
    let t2 = e.emit_op(RealOp::Mul, vec![t, t]);
    let poly = horner(
        e,
        t2,
        &[
            1.0,
            -1.0 / 3.0,
            1.0 / 5.0,
            -1.0 / 7.0,
            1.0 / 9.0,
            -1.0 / 11.0,
        ],
    );
    let tp = e.emit_op(RealOp::Mul, vec![t, poly]);
    let scale = e.emit_const((1u32 << halvings) as f64);
    e.emit_op(RealOp::Mul, vec![tp, scale])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{compile_core, CompileOptions};
    use crate::interp::Machine;
    use fpcore::parse_core;

    /// Compiles a single-op core with lowering enabled and checks the lowered
    /// sequence approximates the library function on a grid.
    fn check_lowering(op_src: &str, inputs: &[f64], reference: impl Fn(f64) -> f64, rtol: f64) {
        let core = parse_core(&format!("(FPCore (x) ({op_src} x))")).expect("parse");
        let program = compile_core(
            &core,
            CompileOptions {
                lower_library_calls: true,
                source_file: None,
            },
        )
        .expect("compile");
        for &x in inputs {
            let got = Machine::new(&program).run(&[x]).expect("run").outputs[0];
            let expect = reference(x);
            let scale = expect.abs().max(1e-12);
            assert!(
                (got - expect).abs() / scale < rtol,
                "{op_src}({x}) = {got}, reference {expect}"
            );
        }
    }

    #[test]
    fn lowered_exp_is_accurate_in_range() {
        check_lowering(
            "exp",
            &[-10.0, -1.0, -0.1, 0.0, 0.3, 1.0, 5.0, 20.0],
            f64::exp,
            1e-9,
        );
    }

    #[test]
    fn lowered_log_is_accurate_in_range() {
        check_lowering("log", &[1e-6, 0.1, 0.5, 1.0, 2.0, 10.0, 1e6], f64::ln, 1e-9);
    }

    #[test]
    fn lowered_sin_is_accurate_in_range() {
        check_lowering(
            "sin",
            &[-3.0, -1.0, -0.1, 0.0, 0.5, 1.5, 3.0, 10.0],
            f64::sin,
            1e-6,
        );
    }

    #[test]
    fn lowered_cos_and_tan_follow_sin() {
        check_lowering("cos", &[-2.0, -0.5, 0.0, 0.7, 2.5], f64::cos, 1e-6);
        check_lowering("tan", &[-1.0, -0.3, 0.2, 1.0], f64::tan, 1e-6);
    }

    #[test]
    fn lowered_atan_asin_acos() {
        check_lowering(
            "atan",
            &[-5.0, -1.0, -0.2, 0.0, 0.4, 1.0, 5.0],
            f64::atan,
            1e-6,
        );
        check_lowering("asin", &[-0.9, -0.3, 0.0, 0.5, 0.9], f64::asin, 1e-6);
        check_lowering("acos", &[-0.9, -0.3, 0.0, 0.5, 0.9], f64::acos, 1e-6);
    }

    #[test]
    fn lowered_hyperbolics() {
        check_lowering("sinh", &[-3.0, -0.5, 0.5, 3.0], f64::sinh, 1e-8);
        check_lowering("cosh", &[-3.0, -0.5, 0.0, 0.5, 3.0], f64::cosh, 1e-8);
        check_lowering("tanh", &[-3.0, -0.5, 0.0, 0.5, 3.0], f64::tanh, 1e-8);
    }

    #[test]
    fn lowered_pow_multiplies_kernels() {
        let core = parse_core("(FPCore (x y) (pow x y))").expect("parse");
        let program = compile_core(
            &core,
            CompileOptions {
                lower_library_calls: true,
                source_file: None,
            },
        )
        .expect("compile");
        for (x, y) in [(2.0, 3.0), (10.0, 0.5), (0.3, 2.0), (5.0, -1.0)] {
            let got = Machine::new(&program).run(&[x, y]).expect("run").outputs[0];
            let expect = x.powf(y);
            assert!(
                (got - expect).abs() / expect.abs() < 1e-8,
                "pow({x},{y}) = {got}, reference {expect}"
            );
        }
        // The lowered pow is a big expression — the point of §8.2.
        assert!(program.compute_count() > 40);
    }

    #[test]
    fn unlowered_operations_return_none() {
        struct Dummy {
            next: Addr,
        }
        impl Emitter for Dummy {
            fn fresh(&mut self) -> Addr {
                self.next += 1;
                self.next
            }
            fn emit_const(&mut self, _: f64) -> Addr {
                self.fresh()
            }
            fn emit_op(&mut self, _: RealOp, _: Vec<Addr>) -> Addr {
                self.fresh()
            }
        }
        let mut d = Dummy { next: 0 };
        assert!(lower_call(&mut d, RealOp::Atan2, &[0, 1]).is_none());
        assert!(lower_call(&mut d, RealOp::Fmin, &[0, 1]).is_none());
        assert!(lower_call(&mut d, RealOp::Floor, &[0]).is_none());
    }
}

//! `analysis_sweep`: end-to-end throughput of the full analysis over an
//! input sweep — the Table 1 overhead analogue for the per-operation
//! bookkeeping around the shadow arithmetic.
//!
//! Three configurations run over the same benchmark slice and inputs:
//!
//! * `native` — the uninstrumented interpreter (`NullTracer`), the
//!   overhead-factor baseline;
//! * `flat` — the production analysis (`herbgrind::analyze_with_shadow`):
//!   flat generation-stamped shadow slots, pc-indexed record slots,
//!   clone-free operand handling, pre-decoded execution tape;
//! * `reference` — the retained map-based path
//!   (`herbgrind::reference::analyze_with_shadow_reference`): `HashMap`
//!   shadow memory, `BTreeMap` records, per-operand `Shadow::clone`,
//!   per-event `SourceLoc` clone, per-op `AnalysisConfig` clone.
//!
//! The analysis paths run at 64- and 256-bit shadow precision, so the
//! speedup of the flat layout is visible both when shadow arithmetic is
//! cheap and when it dominates.
//!
//! The kernel slice mirrors where analysis time goes in real programs:
//! hardware-arithmetic kernels and a loop kernel dominate the executed-op
//! count (as they do in the paper's Table 1 programs), plus one libm kernel
//! for coverage — the per-call cost of shadow transcendentals is the same
//! on both paths and is measured separately by `shadow_ops`.
//!
//! Output is human-readable rows plus a machine-readable JSON document
//! between `ANALYSIS_SWEEP_JSON_BEGIN`/`END` markers; set
//! `ANALYSIS_SWEEP_JSON=path` to also write the JSON to a file (the
//! committed `BENCH_analysis_sweep.json` baseline is produced that way).
//! `BENCH_SMOKE=1` switches to one short iteration per measurement for CI
//! smoke coverage.

use fpvm::{Addr, Machine, Program, Tracer};
#[cfg(feature = "reference-analysis")]
use herbgrind::reference::analyze_with_shadow_reference;
use herbgrind::{analyze_with_shadow, AnalysisConfig};
use shadowreal::{BigFloat, RealOp};
use std::hint::black_box;
use std::time::Instant;

/// Counts executed floating-point operations (the denominator of every
/// ops/sec figure below; identical across configurations because the
/// analysis follows the client's control flow).
#[derive(Default)]
struct OpCounter {
    computes: u64,
}

impl Tracer for OpCounter {
    fn on_compute(&mut self, _: usize, _: RealOp, _: Addr, _: &[Addr], _: &[f64], _: f64) {
        self.computes += 1;
    }
}

/// One measured configuration.
struct Row {
    path: &'static str,
    bits: u32,
    ns_per_op: f64,
    overhead_x: f64,
}

impl Row {
    fn ops_per_sec(&self) -> f64 {
        1e9 / self.ns_per_op
    }
}

/// Best-of-`reps` ns per analyzed op for one full sweep over `prepared`.
fn measure<F: FnMut()>(total_ops: u64, reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        let ns = start.elapsed().as_nanos() as f64 / total_ops as f64;
        if ns < best {
            best = ns;
        }
    }
    best
}

/// One kernel of the sweep: a compiled program plus its input set.
struct SweepKernel {
    /// Used by the differential agreement check, which is feature-gated.
    #[cfg_attr(not(feature = "reference-analysis"), allow(dead_code))]
    name: &'static str,
    program: Program,
    inputs: Vec<Vec<f64>>,
}

fn kernel(name: &'static str, src: &str, inputs: Vec<Vec<f64>>) -> SweepKernel {
    let core = fpcore::parse_core(src).expect("kernel parses");
    let program = fpvm::compile_core(&core, Default::default()).expect("kernel compiles");
    SweepKernel {
        name,
        program,
        inputs,
    }
}

fn sweep_kernels(smoke: bool) -> Vec<SweepKernel> {
    let n = if smoke { 4 } else { 200 };
    let loop_n = if smoke { 2 } else { 20 };
    vec![
        // The §3 complex-plotter kernel: straight-line hardware arithmetic
        // with a genuine cancellation (erroneous records and influences).
        kernel(
            "plotter",
            "(FPCore (x y) (- (sqrt (+ (* x x) (* y y))) x))",
            (1..=n).map(|i| vec![0.25 / i as f64, 1e-9 / i as f64]).collect(),
        ),
        // Horner-form polynomial: the add/mul-dominated steady state.
        kernel(
            "poly",
            "(FPCore (x) (+ (* x (+ (* x (+ (* x (+ (* x (+ (* x (+ (* x 1.0) 2.0)) 3.0)) 4.0)) 5.0)) 6.0)) 7.0))",
            (1..=n).map(|i| vec![i as f64 * 0.017]).collect(),
        ),
        // Loop-carried accumulation: deep traces, the truncation-heavy case.
        kernel(
            "harmonic_loop",
            "(FPCore (n) (while (< i n) ((s 0 (+ s (/ 1 i))) (i 1 (+ i 1))) s))",
            (1..=loop_n).map(|i| vec![(i * 20) as f64]).collect(),
        ),
        // One libm kernel for coverage (identical shadow-evaluation cost on
        // both paths; see `shadow_ops` for the per-call numbers).
        kernel(
            "sine",
            "(FPCore (x) (sin x))",
            (1..=loop_n).map(|i| vec![i as f64 * 0.17]).collect(),
        ),
    ]
}

fn main() {
    let smoke = std::env::var_os("BENCH_SMOKE").is_some();
    let reps = if smoke { 1 } else { 5 };
    let prepared = sweep_kernels(smoke);

    // The per-op denominator: every configuration executes the same client
    // operations on the same inputs.
    let mut total_ops = 0u64;
    for p in &prepared {
        let machine = Machine::new(&p.program);
        for input in &p.inputs {
            let mut counter = OpCounter::default();
            machine
                .run_traced(input, &mut counter)
                .expect("benchmark runs");
            total_ops += counter.computes;
        }
    }

    let mut rows: Vec<Row> = Vec::new();

    // --- Native baseline (uninstrumented interpretation) ------------------
    // Reuses the machine-memory buffer across runs, exactly as the analysis
    // paths do, so the overhead factor compares like against like.
    let machines: Vec<Machine<'_>> = prepared.iter().map(|p| Machine::new(&p.program)).collect();
    let mut memory = Vec::new();
    let native_ns = measure(total_ops, reps, || {
        for (p, machine) in prepared.iter().zip(&machines) {
            for input in &p.inputs {
                black_box(
                    machine
                        .run_traced_reusing(input, &mut fpvm::NullTracer, &mut memory)
                        .expect("native"),
                );
            }
        }
    });
    rows.push(Row {
        path: "native",
        bits: 0,
        ns_per_op: native_ns,
        overhead_x: 1.0,
    });

    // --- Flat and reference analysis paths at both precisions -------------
    // One analysis thread: this bench measures per-op overhead, not sweep
    // parallelism (`parallel_scaling` covers that).
    for bits in [64u32, 256] {
        let config = AnalysisConfig {
            shadow_precision: bits,
            ..AnalysisConfig::default().with_threads(1)
        };
        let flat_ns = measure(total_ops, reps, || {
            for p in &prepared {
                black_box(
                    analyze_with_shadow::<BigFloat>(&p.program, &p.inputs, &config)
                        .expect("flat analysis"),
                );
            }
        });
        rows.push(Row {
            path: "flat",
            bits,
            ns_per_op: flat_ns,
            overhead_x: flat_ns / native_ns,
        });
        #[cfg(feature = "reference-analysis")]
        {
            let reference_ns = measure(total_ops, reps, || {
                for p in &prepared {
                    black_box(
                        analyze_with_shadow_reference::<BigFloat>(&p.program, &p.inputs, &config)
                            .expect("reference analysis"),
                    );
                }
            });
            rows.push(Row {
                path: "reference",
                bits,
                ns_per_op: reference_ns,
                overhead_x: reference_ns / native_ns,
            });
        }
    }

    // The two paths must agree bit for bit even while being timed.
    #[cfg(feature = "reference-analysis")]
    for p in &prepared {
        let config = AnalysisConfig::default().with_threads(1);
        let flat = analyze_with_shadow::<BigFloat>(&p.program, &p.inputs, &config).unwrap();
        let reference =
            analyze_with_shadow_reference::<BigFloat>(&p.program, &p.inputs, &config).unwrap();
        assert_eq!(
            format!("{flat:?}"),
            format!("{reference:?}"),
            "flat and reference reports diverged on {}",
            p.name
        );
    }

    // --- Report -----------------------------------------------------------
    for row in &rows {
        println!(
            "bench analysis_sweep/{}/{}: {:.1} ns/op  ({:.2e} analyzed ops/s, {:.1}x native)",
            row.path,
            row.bits,
            row.ns_per_op,
            row.ops_per_sec(),
            row.overhead_x
        );
    }
    let speedups = if cfg!(feature = "reference-analysis") {
        let find = |path: &str, bits: u32| {
            rows.iter()
                .find(|r| r.path == path && r.bits == bits)
                .expect("row present")
                .ns_per_op
        };
        let speedup_64 = find("reference", 64) / find("flat", 64);
        let speedup_256 = find("reference", 256) / find("flat", 256);
        println!(
            "bench analysis_sweep: flat vs reference: {speedup_64:.2}x at 64 bits, {speedup_256:.2}x at 256 bits ({total_ops} analyzed ops per sweep)"
        );
        Some((speedup_64, speedup_256))
    } else {
        println!(
            "bench analysis_sweep: reference rows skipped (built without the `reference-analysis` feature; {total_ops} analyzed ops per sweep)"
        );
        None
    };

    let mut json = String::from("{\n  \"bench\": \"analysis_sweep\",\n  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"path\": \"{}\", \"bits\": {}, \"ns_per_op\": {:.2}, \"ops_per_sec\": {:.0}, \"overhead_x\": {:.2}}}{}\n",
            row.path,
            row.bits,
            row.ns_per_op,
            row.ops_per_sec(),
            row.overhead_x,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    match speedups {
        Some((speedup_64, speedup_256)) => json.push_str(&format!(
            "  \"analyzed_ops_per_sweep\": {total_ops},\n  \"speedup_vs_reference\": {{\"p64\": {speedup_64:.2}, \"p256\": {speedup_256:.2}}}\n}}\n"
        )),
        None => json.push_str(&format!("  \"analyzed_ops_per_sweep\": {total_ops}\n}}\n")),
    }
    println!("ANALYSIS_SWEEP_JSON_BEGIN");
    print!("{json}");
    println!("ANALYSIS_SWEEP_JSON_END");
    if let Some(path) = std::env::var_os("ANALYSIS_SWEEP_JSON") {
        std::fs::write(&path, json).expect("write ANALYSIS_SWEEP_JSON file");
    }
}

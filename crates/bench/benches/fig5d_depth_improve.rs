//! Figure 5d: benchmarks improved as a function of the maximum expression
//! depth (depth 1 reproduces FpDebug-style single-operation reports, which
//! the improvement oracle cannot act on).

use criterion::{criterion_group, criterion_main, Criterion};
use herbgrind_bench::quality_benchmarks;
use std::hint::black_box;

fn fig5d(c: &mut Criterion) {
    let suite = quality_benchmarks(30);
    let depths = [1usize, 2, 3, 5, 10];
    let points = fpbench::depth_sweep(&suite, 40, 2024, &depths);
    println!("[figure 5d] max expression depth -> improvable root causes / significant (runtime)");
    for p in &points {
        println!(
            "[figure 5d] depth {:>2}: {} / {} ({:.1}s analysis)",
            p.depth, p.improvable_root_causes, p.significant, p.analysis_seconds
        );
    }

    let small = quality_benchmarks(6);
    let mut group = c.benchmark_group("fig5d_depth_improve");
    group.sample_size(10);
    for depth in [1usize, 5] {
        group.bench_function(format!("depth_{depth}"), |b| {
            b.iter(|| black_box(fpbench::depth_sweep(&small, 20, 2024, &[depth])))
        });
    }
    group.finish();
}

criterion_group!(benches, fig5d);
criterion_main!(benches);

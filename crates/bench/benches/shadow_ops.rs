//! `shadow_ops`: microbenchmarks of the shadow-value hot path.
//!
//! The analysis re-executes every client operation on a shadow real, so the
//! per-operation cost of `shadowreal` *is* the analysis overhead (the
//! paper's Table 1). This bench tracks that cost from PR 2 onward:
//!
//! * `BigFloat` add / mul / div / exp / sin at 64, 256 (default) and 1024
//!   bits — the inline-limb representation covers the first two, the heap
//!   fallback the last;
//! * `DoubleDouble` add / mul (the fast fixed-precision shadow);
//! * a retained copy of the pre-PR `Vec<u64>`-mantissa kernels
//!   ([`vec_baseline`]), measured in the same run, so the speedup of the
//!   inline representation is reproducible anywhere;
//! * traced-op throughput: operations per second through `fpvm` with the
//!   full `Herbgrind<BigFloat>` tracer attached (shadow arithmetic plus
//!   trace interning plus record upkeep).
//!
//! Output is human-readable rows plus a machine-readable JSON document
//! between `SHADOW_OPS_JSON_BEGIN`/`END` markers; set `SHADOW_OPS_JSON=path`
//! to also write the JSON to a file (the committed `BENCH_shadow_ops.json`
//! baseline is produced that way). `BENCH_SMOKE=1` switches to one short
//! iteration per measurement for CI smoke coverage.

use herbgrind::{AnalysisConfig, Herbgrind};
use shadowreal::{BigFloat, DoubleDouble, Real, RealOp};
use std::hint::black_box;
use std::time::Instant;

/// The pre-PR shadow arithmetic, kept as an in-run baseline: `Vec<u64>`
/// mantissas, freshly allocated working vectors in every kernel. The
/// algorithms are copied verbatim from the seed implementation so the
/// comparison isolates the representation change.
mod vec_baseline {
    /// A positive finite value: fraction in [0.5, 1) * 2^exp, little-endian
    /// limbs with the top bit set.
    #[derive(Clone, Debug)]
    pub struct VecFloat {
        pub neg: bool,
        pub exp: i64,
        pub limbs: Vec<u64>,
        pub prec: u32,
    }

    fn limbs_for(prec: u32) -> usize {
        (prec as usize).div_ceil(64)
    }

    fn leading_zeros(a: &[u64]) -> u64 {
        let mut zeros = 0u64;
        for &limb in a.iter().rev() {
            if limb == 0 {
                zeros += 64;
            } else {
                zeros += limb.leading_zeros() as u64;
                break;
            }
        }
        zeros
    }

    fn cmp(a: &[u64], b: &[u64]) -> std::cmp::Ordering {
        for i in (0..a.len()).rev() {
            match a[i].cmp(&b[i]) {
                std::cmp::Ordering::Equal => continue,
                ord => return ord,
            }
        }
        std::cmp::Ordering::Equal
    }

    fn add_in_place(a: &mut [u64], b: &[u64]) -> bool {
        let mut carry = false;
        for i in 0..a.len() {
            let (s1, c1) = a[i].overflowing_add(b[i]);
            let (s2, c2) = s1.overflowing_add(carry as u64);
            a[i] = s2;
            carry = c1 || c2;
        }
        carry
    }

    fn sub_in_place(a: &mut [u64], b: &[u64]) {
        let mut borrow = false;
        for i in 0..a.len() {
            let (d1, b1) = a[i].overflowing_sub(b[i]);
            let (d2, b2) = d1.overflowing_sub(borrow as u64);
            a[i] = d2;
            borrow = b1 || b2;
        }
    }

    fn add_bit_in_place(a: &mut [u64], bit: u32) -> bool {
        let limb = (bit / 64) as usize;
        let offset = bit % 64;
        if limb >= a.len() {
            return false;
        }
        let (s, mut carry) = a[limb].overflowing_add(1u64 << offset);
        a[limb] = s;
        let mut i = limb + 1;
        while carry && i < a.len() {
            let (s, c) = a[i].overflowing_add(1);
            a[i] = s;
            carry = c;
            i += 1;
        }
        carry
    }

    fn shr_in_place(a: &mut [u64], bits: u64) -> bool {
        let len = a.len();
        if bits == 0 {
            return false;
        }
        if bits >= (len as u64) * 64 {
            let sticky = a.iter().any(|&l| l != 0);
            a.iter_mut().for_each(|l| *l = 0);
            return sticky;
        }
        let limb_shift = (bits / 64) as usize;
        let bit_shift = (bits % 64) as u32;
        let mut sticky = a[..limb_shift].iter().any(|&l| l != 0);
        if bit_shift > 0 {
            sticky |= limb_shift < len && (a[limb_shift] << (64 - bit_shift)) != 0;
        }
        for i in 0..len {
            let src = i + limb_shift;
            let low = if src < len { a[src] } else { 0 };
            let high = if src + 1 < len { a[src + 1] } else { 0 };
            a[i] = if bit_shift == 0 {
                low
            } else {
                (low >> bit_shift) | (high << (64 - bit_shift))
            };
        }
        sticky
    }

    fn shl_in_place(a: &mut [u64], bits: u64) {
        let len = a.len();
        if bits == 0 || len == 0 {
            return;
        }
        let limb_shift = (bits / 64) as usize;
        let bit_shift = (bits % 64) as u32;
        for i in (0..len).rev() {
            let src = i as isize - limb_shift as isize;
            let low = if src >= 0 { a[src as usize] } else { 0 };
            let lower = if src >= 1 { a[(src - 1) as usize] } else { 0 };
            a[i] = if bit_shift == 0 {
                low
            } else {
                (low << bit_shift) | (lower >> (64 - bit_shift))
            };
        }
    }

    fn mul(a: &[u64], b: &[u64]) -> Vec<u64> {
        let mut out = vec![0u64; a.len() + b.len()];
        for (i, &ai) in a.iter().enumerate() {
            if ai == 0 {
                continue;
            }
            let mut carry = 0u128;
            for (j, &bj) in b.iter().enumerate() {
                let cur = out[i + j] as u128 + (ai as u128) * (bj as u128) + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + b.len();
            while carry > 0 {
                let cur = out[k] as u128 + carry;
                out[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        out
    }

    fn round(
        neg: bool,
        mut limbs: Vec<u64>,
        mut exp: i64,
        prec: u32,
        mut sticky: bool,
    ) -> VecFloat {
        let nl = limbs_for(prec);
        let extra_low_bits = (nl as u32) * 64 - prec;
        if limbs.len() < nl {
            let mut padded = vec![0u64; nl - limbs.len()];
            padded.extend_from_slice(&limbs);
            limbs = padded;
        }
        let drop_limbs = limbs.len() - nl;
        let p = (drop_limbs as u64) * 64 + extra_low_bits as u64;
        let mut round_bit = false;
        if p > 0 {
            let rb_index = p - 1;
            let rb_limb = (rb_index / 64) as usize;
            let rb_off = (rb_index % 64) as u32;
            round_bit = (limbs[rb_limb] >> rb_off) & 1 == 1;
            'outer: for (i, &l) in limbs.iter().enumerate().take(rb_limb + 1) {
                let masked = if i == rb_limb {
                    if rb_off == 0 {
                        0
                    } else {
                        l & ((1u64 << rb_off) - 1)
                    }
                } else {
                    l
                };
                if masked != 0 {
                    sticky = true;
                    break 'outer;
                }
            }
        }
        let mut kept: Vec<u64> = limbs[drop_limbs..].to_vec();
        if extra_low_bits > 0 {
            kept[0] &= !((1u64 << extra_low_bits) - 1);
        }
        let lsb_set = (kept[0] >> extra_low_bits) & 1 == 1;
        if round_bit && (sticky || lsb_set) {
            let carry = add_bit_in_place(&mut kept, extra_low_bits);
            if carry {
                for l in kept.iter_mut() {
                    *l = 0;
                }
                *kept.last_mut().expect("non-empty") = 1u64 << 63;
                exp += 1;
            }
        }
        VecFloat {
            neg,
            exp,
            limbs: kept,
            prec,
        }
    }

    fn normalize_and_round(
        neg: bool,
        mut limbs: Vec<u64>,
        mut exp: i64,
        prec: u32,
        sticky: bool,
    ) -> VecFloat {
        let lz = leading_zeros(&limbs);
        if lz > 0 {
            shl_in_place(&mut limbs, lz);
            exp -= lz as i64;
        }
        round(neg, limbs, exp, prec, sticky)
    }

    impl VecFloat {
        pub fn from_f64(x: f64, prec: u32) -> VecFloat {
            assert!(x.is_finite() && x != 0.0);
            let bits = x.to_bits();
            let neg = bits >> 63 == 1;
            let biased = ((bits >> 52) & 0x7ff) as i64;
            let frac = bits & 0x000f_ffff_ffff_ffff;
            let (sig, pow): (u64, i64) = if biased == 0 {
                (frac, -1074)
            } else {
                ((1u64 << 52) | frac, biased - 1075)
            };
            let sig_bits = 64 - sig.leading_zeros() as i64;
            let exp = pow + sig_bits;
            let mut limbs = vec![0u64; limbs_for(prec)];
            let top = limbs.len() - 1;
            limbs[top] = sig << (64 - sig_bits);
            VecFloat {
                neg,
                exp,
                limbs,
                prec,
            }
        }

        pub fn add(&self, other: &VecFloat) -> VecFloat {
            let prec = self.prec.max(other.prec);
            let wl = limbs_for(prec) + 1;
            let (hi, lo) = if self.exp >= other.exp {
                (self, other)
            } else {
                (other, self)
            };
            let diff = (hi.exp - lo.exp) as u64;
            let widen = |f: &VecFloat| -> Vec<u64> {
                let mut v = vec![0u64; wl];
                let src = &f.limbs;
                let offset = wl - src.len().min(wl);
                let start = src.len().saturating_sub(wl);
                v[offset..].copy_from_slice(&src[start..]);
                v
            };
            let mut acc = widen(hi);
            let mut small = widen(lo);
            let sticky = shr_in_place(&mut small, diff);
            if hi.neg == lo.neg {
                let carry = add_in_place(&mut acc, &small);
                let mut exp = hi.exp;
                let mut sticky = sticky;
                if carry {
                    sticky |= shr_in_place(&mut acc, 1);
                    let top = acc.len() - 1;
                    acc[top] |= 1u64 << 63;
                    exp += 1;
                }
                normalize_and_round(hi.neg, acc, exp, prec, sticky)
            } else {
                match cmp(&acc, &small) {
                    std::cmp::Ordering::Greater | std::cmp::Ordering::Equal => {
                        sub_in_place(&mut acc, &small);
                        normalize_and_round(hi.neg, acc, hi.exp, prec, sticky)
                    }
                    std::cmp::Ordering::Less => {
                        sub_in_place(&mut small, &acc);
                        normalize_and_round(lo.neg, small, hi.exp, prec, sticky)
                    }
                }
            }
        }

        pub fn mul(&self, other: &VecFloat) -> VecFloat {
            let prec = self.prec.max(other.prec);
            let sign = self.neg != other.neg;
            let product = mul(&self.limbs, &other.limbs);
            let exp = self.exp + other.exp;
            normalize_and_round(sign, product, exp, prec, false)
        }
    }
}

/// One measured benchmark row.
struct Row {
    group: &'static str,
    op: &'static str,
    bits: u32,
    ns_per_op: f64,
}

impl Row {
    fn ops_per_sec(&self) -> f64 {
        1e9 / self.ns_per_op
    }
}

/// Best-of-`reps` ns per operation: each rep times one call of `f`, which
/// performs `ops_per_pass` operations.
fn measure<F: FnMut()>(ops_per_pass: u64, reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        let ns = start.elapsed().as_nanos() as f64 / ops_per_pass as f64;
        if ns < best {
            best = ns;
        }
    }
    best
}

/// Dense-mantissa operand pairs at a given precision (division results, so
/// every limb is populated and the rounding paths are exercised).
fn operand_pairs(prec: u32, count: usize) -> Vec<(BigFloat, BigFloat)> {
    (0..count)
        .map(|i| {
            let a = BigFloat::from_f64_prec(1.0 + i as f64 * 0.37, prec)
                .div(&BigFloat::from_f64_prec(3.0, prec));
            let b = BigFloat::from_f64_prec(0.25 + i as f64 * 1.13e-3, prec)
                .div(&BigFloat::from_f64_prec(7.0, prec));
            (a, b)
        })
        .collect()
}

fn main() {
    let smoke = std::env::var_os("BENCH_SMOKE").is_some();
    let (pair_count, reps) = if smoke { (16, 1) } else { (512, 20) };
    let fn_reps = if smoke { 1 } else { 3 };
    let mut rows: Vec<Row> = Vec::new();

    // --- BigFloat kernels across the precision boundary -------------------
    for bits in [64u32, 256, 1024] {
        let pairs = operand_pairs(bits, pair_count);
        let ops = pairs.len() as u64;
        rows.push(Row {
            group: "bigfloat",
            op: "add",
            bits,
            ns_per_op: measure(ops, reps, || {
                for (a, b) in &pairs {
                    black_box(black_box(a).add(black_box(b)));
                }
            }),
        });
        rows.push(Row {
            group: "bigfloat",
            op: "mul",
            bits,
            ns_per_op: measure(ops, reps, || {
                for (a, b) in &pairs {
                    black_box(black_box(a).mul(black_box(b)));
                }
            }),
        });
        // div/exp/sin are far slower; fewer repetitions keep the bench short.
        let few: Vec<_> = pairs.iter().take(if smoke { 2 } else { 32 }).collect();
        let few_iters = few.len() as u64;
        rows.push(Row {
            group: "bigfloat",
            op: "div",
            bits,
            ns_per_op: measure(few_iters, fn_reps, || {
                for (a, b) in &few {
                    black_box(black_box(a).div(black_box(b)));
                }
            }),
        });
        rows.push(Row {
            group: "bigfloat",
            op: "exp",
            bits,
            ns_per_op: measure(few_iters, fn_reps, || {
                for (a, _) in &few {
                    black_box(black_box(a).exp());
                }
            }),
        });
        rows.push(Row {
            group: "bigfloat",
            op: "sin",
            bits,
            ns_per_op: measure(few_iters, fn_reps, || {
                for (a, _) in &few {
                    black_box(black_box(a).sin());
                }
            }),
        });
    }

    // --- DoubleDouble fast shadow ----------------------------------------
    let dd_pairs: Vec<(DoubleDouble, DoubleDouble)> = (0..pair_count)
        .map(|i| {
            (
                DoubleDouble::from_f64(1.0 + i as f64 * 0.37),
                DoubleDouble::from_f64(0.25 + i as f64 * 1.13e-3),
            )
        })
        .collect();
    for (op, realop) in [
        ("add", RealOp::Add),
        ("mul", RealOp::Mul),
        ("div", RealOp::Div),
        ("exp", RealOp::Exp),
        ("sin", RealOp::Sin),
    ] {
        let unary = realop.arity() == 1;
        rows.push(Row {
            group: "doubledouble",
            op,
            bits: 106,
            ns_per_op: measure(dd_pairs.len() as u64, reps, || {
                for (a, b) in &dd_pairs {
                    if unary {
                        black_box(DoubleDouble::apply(realop, &[black_box(*a)]));
                    } else {
                        black_box(DoubleDouble::apply(realop, &[black_box(*a), black_box(*b)]));
                    }
                }
            }),
        });
    }

    // --- Retained pre-PR Vec<u64> baseline, same run ----------------------
    let vec_pairs: Vec<(vec_baseline::VecFloat, vec_baseline::VecFloat)> =
        operand_pairs(256, pair_count)
            .iter()
            .map(|(a, b)| {
                // Seed the baseline from the same operand values (the baseline
                // keeps 53-bit inputs; both sides then run dense mantissas
                // through one division-free mul/add workload).
                (
                    vec_baseline::VecFloat::from_f64(a.to_f64(), 256),
                    vec_baseline::VecFloat::from_f64(b.to_f64(), 256),
                )
            })
            .collect();
    // Densify the baseline mantissas the same way (one multiplication round
    // fills the low limbs via rounding of the 512-bit product).
    let vec_pairs: Vec<_> = vec_pairs
        .iter()
        .map(|(a, b)| (a.mul(b), b.mul(a).add(b)))
        .collect();
    let baseline_add = measure(vec_pairs.len() as u64, reps, || {
        for (a, b) in &vec_pairs {
            black_box(black_box(a).add(black_box(b)));
        }
    });
    let baseline_mul = measure(vec_pairs.len() as u64, reps, || {
        for (a, b) in &vec_pairs {
            black_box(black_box(a).mul(black_box(b)));
        }
    });
    rows.push(Row {
        group: "vec_baseline",
        op: "add",
        bits: 256,
        ns_per_op: baseline_add,
    });
    rows.push(Row {
        group: "vec_baseline",
        op: "mul",
        bits: 256,
        ns_per_op: baseline_mul,
    });

    // --- Traced-op throughput through fpvm --------------------------------
    let core = fpcore::parse_core("(FPCore (x y) (- (sqrt (+ (* x x) (* y y))) x))")
        .expect("bench kernel parses");
    let program = fpvm::compile_core(&core, Default::default()).expect("bench kernel compiles");
    let inputs: Vec<Vec<f64>> = (1..=if smoke { 4u32 } else { 64 })
        .map(|i| vec![0.25 / i as f64, 1e-9 / i as f64])
        .collect();
    let config = AnalysisConfig::default().with_threads(1);
    let machine = fpvm::Machine::new(&program).with_step_limit(config.step_limit);
    let mut traced_ops = 0u64;
    let traced_ns = {
        let mut total_ns = f64::INFINITY;
        for _ in 0..fn_reps {
            let mut analysis = Herbgrind::<BigFloat>::new(config.clone());
            let start = Instant::now();
            for input in &inputs {
                machine
                    .run_traced(input, &mut analysis)
                    .expect("bench kernel runs");
            }
            let elapsed = start.elapsed().as_nanos() as f64;
            traced_ops = analysis.op_records().values().map(|r| r.total).sum();
            let ns = elapsed / traced_ops as f64;
            if ns < total_ns {
                total_ns = ns;
            }
        }
        total_ns
    };
    rows.push(Row {
        group: "traced",
        op: "herbgrind_op",
        bits: 256,
        ns_per_op: traced_ns,
    });

    // --- Report -----------------------------------------------------------
    let add_256 = rows
        .iter()
        .find(|r| r.group == "bigfloat" && r.op == "add" && r.bits == 256)
        .expect("row present")
        .ns_per_op;
    let mul_256 = rows
        .iter()
        .find(|r| r.group == "bigfloat" && r.op == "mul" && r.bits == 256)
        .expect("row present")
        .ns_per_op;
    let speedup_add = baseline_add / add_256;
    let speedup_mul = baseline_mul / mul_256;

    for row in &rows {
        println!(
            "bench shadow_ops/{}/{}/{}: {:.1} ns/op  ({:.2e} ops/s)",
            row.group,
            row.op,
            row.bits,
            row.ns_per_op,
            row.ops_per_sec()
        );
    }
    println!(
        "bench shadow_ops: inline vs vec baseline at 256 bits: add {speedup_add:.2}x, mul {speedup_mul:.2}x ({traced_ops} traced ops)"
    );

    let mut json = String::from("{\n  \"bench\": \"shadow_ops\",\n  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"group\": \"{}\", \"op\": \"{}\", \"bits\": {}, \"ns_per_op\": {:.2}, \"ops_per_sec\": {:.0}}}{}\n",
            row.group,
            row.op,
            row.bits,
            row.ns_per_op,
            row.ops_per_sec(),
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"speedup_vs_vec_baseline\": {{\"add_256\": {speedup_add:.2}, \"mul_256\": {speedup_mul:.2}}}\n}}\n"
    ));
    println!("SHADOW_OPS_JSON_BEGIN");
    print!("{json}");
    println!("SHADOW_OPS_JSON_END");
    if let Some(path) = std::env::var_os("SHADOW_OPS_JSON") {
        std::fs::write(&path, json).expect("write SHADOW_OPS_JSON file");
    }
}

//! Table 1 (overhead row): native interpretation vs FpDebug-, BZ-, Verrou-
//! style baselines vs Herbgrind, over the same benchmark slice.
//!
//! The paper reports 395x (FpDebug), 7.91x (BZ), 7x (Verrou), and 574x
//! (Herbgrind) over native binaries; here every configuration runs on the
//! same abstract machine, so the regenerated row is the relative ordering
//! and rough magnitudes of the per-group timings below.

use baselines::{verrou_compare, BzDetector, FpDebugDetector};
use criterion::{criterion_group, criterion_main, Criterion};
use herbgrind::AnalysisConfig;
use herbgrind_bench::prepared_timing_benchmarks;
use std::hint::black_box;

fn table1_overhead(c: &mut Criterion) {
    let prepared = prepared_timing_benchmarks(40);
    // Pin Herbgrind to one analysis thread: this bench compares per-work
    // overhead against single-threaded baselines, and letting the sweep
    // shard across cores would shrink the Herbgrind row by the core count.
    // (The report is bit-identical either way; `parallel_scaling` is the
    // bench that measures the multi-threaded wall clock.)
    let config = AnalysisConfig::default().with_threads(1);

    let mut group = c.benchmark_group("table1_overhead");
    group.sample_size(10);

    group.bench_function("native", |b| {
        b.iter(|| {
            for p in &prepared {
                black_box(p.run_native().expect("native"));
            }
        })
    });
    group.bench_function("bz_heuristic", |b| {
        b.iter(|| {
            for p in &prepared {
                black_box(BzDetector::analyze(&p.program, &p.inputs).expect("bz"));
            }
        })
    });
    group.bench_function("verrou_perturbation", |b| {
        b.iter(|| {
            for p in &prepared {
                black_box(verrou_compare(&p.program, &p.inputs, 2, 7).expect("verrou"));
            }
        })
    });
    group.bench_function("fpdebug_shadow", |b| {
        b.iter(|| {
            for p in &prepared {
                black_box(FpDebugDetector::analyze(&p.program, &p.inputs).expect("fpdebug"));
            }
        })
    });
    group.bench_function("herbgrind", |b| {
        b.iter(|| {
            for p in &prepared {
                black_box(p.run_herbgrind(&config).expect("herbgrind"));
            }
        })
    });
    group.finish();
}

criterion_group!(benches, table1_overhead);
criterion_main!(benches);

//! §8.1 improvability: the headline numbers of the evaluation.
//!
//! Regenerates the "N benchmarks / M with significant error / detected /
//! improvable root causes" counts over the embedded suite, and times one
//! pass of the experiment.

use criterion::{criterion_group, criterion_main, Criterion};
use herbgrind::AnalysisConfig;
use herbgrind_bench::quality_benchmarks;
use std::hint::black_box;

fn improvability(c: &mut Criterion) {
    // Print the regenerated §8.1 counts once, over a substantial slice of the
    // suite (the paper's corpus has 86 benchmarks; ours is the same order of
    // magnitude — see the experiment index in DESIGN.md).
    let suite = fpbench::suite();
    let summary = fpbench::improvability(&suite, 60, 2024, &AnalysisConfig::default());
    println!("[section 8.1] {}", summary.to_text());

    // Time the experiment itself on a smaller slice so Criterion can iterate.
    let small = quality_benchmarks(8);
    let mut group = c.benchmark_group("improvability");
    group.sample_size(10);
    group.bench_function("suite_subset_8", |b| {
        b.iter(|| {
            black_box(fpbench::improvability(
                &small,
                30,
                2024,
                &AnalysisConfig::default(),
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, improvability);
criterion_main!(benches);

//! `tiered_sweep`: throughput of the tiered adaptive-precision driver
//! (`herbgrind::analyze_tiered`) against the all-`BigFloat` full-report
//! analysis it is bit-identical to, in analyzed ops per second.
//!
//! The kernels are transcendental-heavy — `sin`/`cos` products, `exp`
//! decay, `log` ratios, a Gaussian exponent — because that is where the
//! tiers matter most: the BigFloat shadow pays a software multiprecision
//! libm call per operation, while the certify probe proves (for the vast
//! majority of these inputs) that the `DoubleDouble` shadow's decisions are
//! identical, so the full record-keeping pass runs on the cheap tier.
//! Inputs sit inside the certificate domains; the in-run `TierStats`
//! assertion keeps the kernels honest about that, and the in-run report
//! comparison keeps the speedup honest about bit-identity.
//!
//! Three measurement modes over the same kernels and inputs, all at one
//! analysis thread (this bench measures the tiering, not sweep
//! parallelism):
//!
//! * `full-report` — `herbgrind::analyze`: the complete analysis on the
//!   `BigFloat` shadow for every input (what the tiered driver replaces).
//! * `tiered` — `herbgrind::analyze_tiered`: batched certify probe, then
//!   the full analysis on `DoubleDouble` for certified inputs and on
//!   `BigFloat` for the escalated remainder.
//! * `dd-full` — `analyze_with_shadow::<DoubleDouble>`: the (uncertified)
//!   all-dd analysis, as context for how much of the remaining gap is
//!   probe overhead vs. shadow arithmetic.
//!
//! Output is human-readable rows plus machine-readable JSON between
//! `TIERED_SWEEP_JSON_BEGIN`/`END` markers; `TIERED_SWEEP_JSON=path` also
//! writes the JSON to a file (the committed `BENCH_tiered_sweep.json`
//! baseline is produced that way), and `BENCH_SMOKE=1` switches to one
//! short iteration per measurement for CI.

use fpvm::{Addr, Machine, Program, Tracer};
use herbgrind::{
    analyze, analyze_tiered, analyze_tiered_with_stats, analyze_with_shadow, AnalysisConfig,
};
use shadowreal::{DoubleDouble, RealOp};
use std::hint::black_box;
use std::time::Instant;

/// Counts executed floating-point operations (the denominator of every
/// ops/sec figure; identical across modes because the analysis follows the
/// client's control flow).
#[derive(Default)]
struct OpCounter {
    computes: u64,
}

impl Tracer for OpCounter {
    fn on_compute(&mut self, _: usize, _: RealOp, _: Addr, _: &[Addr], _: &[f64], _: f64) {
        self.computes += 1;
    }
}

struct Row {
    mode: &'static str,
    ns_per_op: f64,
}

impl Row {
    fn ops_per_sec(&self) -> f64 {
        1e9 / self.ns_per_op
    }
}

/// Best-of-`reps` ns per analyzed op for one full sweep.
fn measure<F: FnMut()>(total_ops: u64, reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        let ns = start.elapsed().as_nanos() as f64 / total_ops as f64;
        if ns < best {
            best = ns;
        }
    }
    best
}

struct SweepKernel {
    program: Program,
    inputs: Vec<Vec<f64>>,
}

fn kernel(src: &str, inputs: Vec<Vec<f64>>) -> SweepKernel {
    let core = fpcore::parse_core(src).expect("kernel parses");
    let program = fpvm::compile_core(&core, Default::default()).expect("kernel compiles");
    SweepKernel { program, inputs }
}

/// Transcendental-heavy kernels whose inputs stay inside the certificate
/// domains (arguments well within the trig reduction range, `exp` inputs
/// far from overflow, `log` arguments bounded away from zero), so the
/// probe certifies nearly every input and the sweep's speedup reflects the
/// dd tier doing the work.
fn sweep_kernels(smoke: bool) -> Vec<SweepKernel> {
    let n = if smoke { 4 } else { 200 };
    vec![
        // sin/cos product with a polynomial correction.
        kernel(
            "(FPCore (x) (+ (* (sin x) (cos x)) (* 0.5 (* x x))))",
            (1..=n).map(|i| vec![i as f64 * 0.011]).collect(),
        ),
        // Exponential decay times a shifted log.
        kernel(
            "(FPCore (x) (* (exp (* x -0.5)) (log (+ x 2))))",
            (1..=n).map(|i| vec![i as f64 * 0.03]).collect(),
        ),
        // Logit on mid-range probabilities.
        kernel(
            "(FPCore (p) (log (/ p (- 1 p))))",
            (1..=n)
                .map(|i| vec![0.2 + 0.55 * (i as f64 / n as f64)])
                .collect(),
        ),
        // Gaussian exponent: square, scale, exp.
        kernel(
            "(FPCore (x m s) (exp (- (/ (* (- x m) (- x m)) (* 2 (* s s))))))",
            (1..=n).map(|i| vec![i as f64 * 0.013, 1.25, 0.8]).collect(),
        ),
        // atan of a quotient in the right half-plane.
        kernel(
            "(FPCore (y x) (atan (/ y x)))",
            (1..=n).map(|i| vec![i as f64 * 0.07, 2.5]).collect(),
        ),
    ]
}

fn main() {
    let smoke = std::env::var_os("BENCH_SMOKE").is_some();
    let reps = if smoke { 1 } else { 9 };
    let prepared = sweep_kernels(smoke);
    // One analysis thread throughout: this bench measures the tiering.
    let config = AnalysisConfig::default().with_threads(1);

    let mut total_ops = 0u64;
    for p in &prepared {
        let machine = Machine::new(&p.program);
        for input in &p.inputs {
            let mut counter = OpCounter::default();
            machine
                .run_traced(input, &mut counter)
                .expect("benchmark runs");
            total_ops += counter.computes;
        }
    }

    // The speedup claim rests on two in-run facts: the tiered report is
    // bit-identical to the full BigFloat report, and the probe actually
    // certifies (almost) the whole sweep onto the dd tier.
    let mut total_inputs = 0usize;
    let mut certified_inputs = 0usize;
    for p in &prepared {
        let full = analyze(&p.program, &p.inputs, &config).expect("full-report");
        let (tiered, stats) =
            analyze_tiered_with_stats(&p.program, &p.inputs, &config).expect("tiered");
        assert_eq!(
            format!("{tiered:?}"),
            format!("{full:?}"),
            "tiered report diverged from the all-BigFloat analysis"
        );
        total_inputs += stats.total_inputs;
        certified_inputs += stats.certified_inputs;
    }
    assert!(
        certified_inputs * 10 >= total_inputs * 8,
        "kernels drifted out of the certificate domains: {certified_inputs}/{total_inputs} certified"
    );

    let mut rows: Vec<Row> = Vec::new();
    let ns = measure(total_ops, reps, || {
        for p in &prepared {
            black_box(analyze(&p.program, &p.inputs, &config).expect("full-report"));
        }
    });
    rows.push(Row {
        mode: "full-report",
        ns_per_op: ns,
    });
    let ns = measure(total_ops, reps, || {
        for p in &prepared {
            black_box(analyze_tiered(&p.program, &p.inputs, &config).expect("tiered"));
        }
    });
    rows.push(Row {
        mode: "tiered",
        ns_per_op: ns,
    });
    let ns = measure(total_ops, reps, || {
        for p in &prepared {
            black_box(
                analyze_with_shadow::<DoubleDouble>(&p.program, &p.inputs, &config)
                    .expect("dd-full"),
            );
        }
    });
    rows.push(Row {
        mode: "dd-full",
        ns_per_op: ns,
    });

    // --- Report -----------------------------------------------------------
    let find = |mode: &str| {
        rows.iter()
            .find(|r| r.mode == mode)
            .expect("row present")
            .ns_per_op
    };
    for row in &rows {
        println!(
            "bench tiered_sweep/{}: {:.1} ns/op  ({:.2e} analyzed ops/s)",
            row.mode,
            row.ns_per_op,
            row.ops_per_sec()
        );
    }
    let tiered_vs_full = find("full-report") / find("tiered");
    let dd_vs_full = find("full-report") / find("dd-full");
    println!(
        "bench tiered_sweep: tiered vs full-report: {tiered_vs_full:.2}x \
         (uncertified all-dd context: {dd_vs_full:.2}x; \
         {certified_inputs}/{total_inputs} inputs certified; \
         {total_ops} analyzed ops per sweep)"
    );

    let mut json = String::from("{\n  \"bench\": \"tiered_sweep\",\n  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"mode\": \"{}\", \"ns_per_op\": {:.2}, \"ops_per_sec\": {:.0}}}{}\n",
            row.mode,
            row.ns_per_op,
            row.ops_per_sec(),
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"analyzed_ops_per_sweep\": {total_ops},\n  \"total_inputs\": {total_inputs},\n  \"certified_inputs\": {certified_inputs},\n  \"speedup\": {{\"tiered_vs_full_report\": {tiered_vs_full:.2}, \"dd_full_vs_full_report\": {dd_vs_full:.2}}}\n}}\n"
    ));
    println!("TIERED_SWEEP_JSON_BEGIN");
    print!("{json}");
    println!("TIERED_SWEEP_JSON_END");
    if let Some(path) = std::env::var_os("TIERED_SWEEP_JSON") {
        std::fs::write(&path, json).expect("write TIERED_SWEEP_JSON file");
    }
}

//! `batch_sweep`: throughput of the batched lane-parallel execution engine
//! against the serial drivers, in analyzed ops per second.
//!
//! Two measurement modes over the same kernels and inputs:
//!
//! * `full-report` — the complete Herbgrind analysis
//!   (`herbgrind::analyze_batched` vs serial `analyze_with_shadow`): every
//!   lane keeps its full record shard (traces, anti-unification, input
//!   characteristics), so the batch amortizes dispatch and vectorizes the
//!   shadow arithmetic and local-error computation but not the per-lane
//!   record keeping. Reports are bit-identical to serial, which is asserted
//!   in-run.
//! * `shadow-error` — the lane-vectorized `DoubleDouble` local-error probe
//!   (`herbgrind::probe_local_error`): struct-of-arrays shadow planes,
//!   vectorized `dd_batch` kernels, integer-ulps error counters per
//!   statement — the FpDebug-style detection layer, showing what the
//!   engine delivers once per-lane bookkeeping is off the per-op path.
//!   Width 1 is the serial-equivalent baseline (same engine, one lane).
//!
//! Both modes run at lane widths 1, 4, and 8 with the `f64` (engine
//! overhead only) and `DoubleDouble` shadows. Two extra `full-report` rows
//! re-run the batched W=8 dd sweep inside a telemetry capture
//! (`telemetry-off` / `telemetry-on` engines): the off row documents the
//! zero-cost-when-off contract (within 2% of the plain row, asserted on
//! the committed baseline), the on row the full recording cost.
//! Output is human-readable rows
//! plus machine-readable JSON between `BATCH_SWEEP_JSON_BEGIN`/`END`
//! markers; `BATCH_SWEEP_JSON=path` also writes the JSON to a file (the
//! committed `BENCH_batch_sweep.json` baseline is produced that way), and
//! `BENCH_SMOKE=1` switches to one short iteration per measurement for CI.

use fpvm::{Addr, Machine, Program, Tracer};
use herbgrind::{
    analyze_batched_with_shadow, analyze_with_shadow, probe_local_error, AnalysisConfig,
};
use shadowreal::{DoubleDouble, RealOp};
use std::hint::black_box;
use std::time::Instant;

/// Counts executed floating-point operations (the denominator of every
/// ops/sec figure; identical across configurations because the analysis
/// follows the client's control flow).
#[derive(Default)]
struct OpCounter {
    computes: u64,
}

impl Tracer for OpCounter {
    fn on_compute(&mut self, _: usize, _: RealOp, _: Addr, _: &[Addr], _: &[f64], _: f64) {
        self.computes += 1;
    }
}

struct Row {
    mode: &'static str,
    shadow: &'static str,
    engine: &'static str,
    width: usize,
    ns_per_op: f64,
}

impl Row {
    fn ops_per_sec(&self) -> f64 {
        1e9 / self.ns_per_op
    }
}

/// Best-of-`reps` ns per analyzed op for one full sweep.
fn measure<F: FnMut()>(total_ops: u64, reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        let ns = start.elapsed().as_nanos() as f64 / total_ops as f64;
        if ns < best {
            best = ns;
        }
    }
    best
}

struct SweepKernel {
    program: Program,
    inputs: Vec<Vec<f64>>,
}

fn kernel(src: &str, inputs: Vec<Vec<f64>>) -> SweepKernel {
    let core = fpcore::parse_core(src).expect("kernel parses");
    let program = fpvm::compile_core(&core, Default::default()).expect("kernel compiles");
    SweepKernel { program, inputs }
}

/// The `analysis_sweep` kernel mix, split by lane-coherence: straight-line
/// cancellation and polynomial kernels (the common full-batch case), a
/// lane-*coherent* loop (every input runs the same trip count, so batches
/// never diverge — the dot-product/stencil shape of the paper's Table 1
/// programs), a lane-*divergent* loop whose trip counts span 16x (the
/// engine's worst case: groups thin out as lanes exit), and one libm call
/// for coverage.
fn sweep_kernels(smoke: bool) -> Vec<SweepKernel> {
    let n = if smoke { 4 } else { 400 };
    let loop_n = if smoke { 2 } else { 40 };
    let divergent_n = if smoke { 2 } else { 16 };
    vec![
        kernel(
            "(FPCore (x y) (- (sqrt (+ (* x x) (* y y))) x))",
            (1..=n).map(|i| vec![0.25 / i as f64, 1e-9 / i as f64]).collect(),
        ),
        kernel(
            "(FPCore (x) (+ (* x (+ (* x (+ (* x (+ (* x (+ (* x (+ (* x 1.0) 2.0)) 3.0)) 4.0)) 5.0)) 6.0)) 7.0))",
            (1..=n).map(|i| vec![i as f64 * 0.017]).collect(),
        ),
        // Coherent loop: geometric-series accumulation, 300 iterations for
        // every input.
        kernel(
            "(FPCore (q) (while (< i 300) ((s 0 (+ (* s q) 1)) (i 0 (+ i 1))) s))",
            (1..=loop_n).map(|i| vec![0.5 + i as f64 * 0.01]).collect(),
        ),
        // Divergent loop: harmonic sum with per-input trip counts 20..320.
        kernel(
            "(FPCore (n) (while (< i n) ((s 0 (+ s (/ 1 i))) (i 1 (+ i 1))) s))",
            (1..=divergent_n).map(|i| vec![(i * 20) as f64]).collect(),
        ),
        kernel(
            "(FPCore (x) (sin x))",
            (1..=loop_n).map(|i| vec![i as f64 * 0.17]).collect(),
        ),
    ]
}

fn probe_at_width(width: usize, program: &Program, inputs: &[Vec<f64>], threshold: f64) {
    let summary = match width {
        1 => probe_local_error::<1>(program, inputs, threshold),
        4 => probe_local_error::<4>(program, inputs, threshold),
        8 => probe_local_error::<8>(program, inputs, threshold),
        _ => unreachable!("bench widths"),
    };
    black_box(summary.expect("probe sweep"));
}

fn main() {
    let smoke = std::env::var_os("BENCH_SMOKE").is_some();
    let reps = if smoke { 1 } else { 9 };
    let prepared = sweep_kernels(smoke);
    let widths = [1usize, 4, 8];

    let mut total_ops = 0u64;
    for p in &prepared {
        let machine = Machine::new(&p.program);
        for input in &p.inputs {
            let mut counter = OpCounter::default();
            machine
                .run_traced(input, &mut counter)
                .expect("benchmark runs");
            total_ops += counter.computes;
        }
    }

    let mut rows: Vec<Row> = Vec::new();

    // --- full-report mode: serial baselines and batched widths ------------
    // One analysis thread throughout: this bench measures the lane engine,
    // not sweep parallelism.
    let base = AnalysisConfig::default().with_threads(1);
    let full_serial_f64 = measure(total_ops, reps, || {
        for p in &prepared {
            black_box(analyze_with_shadow::<f64>(&p.program, &p.inputs, &base).expect("serial"));
        }
    });
    rows.push(Row {
        mode: "full-report",
        shadow: "f64",
        engine: "serial",
        width: 0,
        ns_per_op: full_serial_f64,
    });
    let full_serial_dd = measure(total_ops, reps, || {
        for p in &prepared {
            black_box(
                analyze_with_shadow::<DoubleDouble>(&p.program, &p.inputs, &base).expect("serial"),
            );
        }
    });
    rows.push(Row {
        mode: "full-report",
        shadow: "dd",
        engine: "serial",
        width: 0,
        ns_per_op: full_serial_dd,
    });
    // Fault-isolated serial driver on the same clean sweep: the per-input
    // catch_unwind + quarantine bookkeeping must be almost free when nothing
    // faults (the committed baseline asserts the fast path stays within 2%
    // of the plain driver).
    let full_isolated_dd = measure(total_ops, reps, || {
        for p in &prepared {
            black_box(herbgrind::analyze_isolated_with_shadow::<DoubleDouble>(
                &p.program, &p.inputs, &base,
            ));
        }
    });
    rows.push(Row {
        mode: "full-report",
        shadow: "dd",
        engine: "isolated",
        width: 0,
        ns_per_op: full_isolated_dd,
    });
    for &width in &widths {
        let config = base.clone().with_batch_width(width);
        let ns = measure(total_ops, reps, || {
            for p in &prepared {
                black_box(
                    analyze_batched_with_shadow::<f64>(&p.program, &p.inputs, &config)
                        .expect("batched"),
                );
            }
        });
        rows.push(Row {
            mode: "full-report",
            shadow: "f64",
            engine: "batched",
            width,
            ns_per_op: ns,
        });
        let ns = measure(total_ops, reps, || {
            for p in &prepared {
                black_box(
                    analyze_batched_with_shadow::<DoubleDouble>(&p.program, &p.inputs, &config)
                        .expect("batched"),
                );
            }
        });
        rows.push(Row {
            mode: "full-report",
            shadow: "dd",
            engine: "batched",
            width,
            ns_per_op: ns,
        });
    }

    // --- telemetry capture overhead on the batched dd sweep ---------------
    // Same sweep as the batched w=8 row, run through a telemetry capture:
    // `Off` (the default) must cost nothing measurable — every recording
    // site in the pipeline reduces to one relaxed atomic load — and `On`
    // shows the full-recording cost for reference. The committed baseline
    // asserts the off-mode row stays within 2% of the plain batched row.
    let config_w8 = base.clone().with_batch_width(8);
    for (engine, mode) in [
        ("telemetry-off", herbgrind::TelemetryMode::Off),
        ("telemetry-on", herbgrind::TelemetryMode::On),
    ] {
        let ns = measure(total_ops, reps, || {
            for p in &prepared {
                let capture = herbgrind::SweepCapture::begin(mode);
                black_box(
                    analyze_batched_with_shadow::<DoubleDouble>(&p.program, &p.inputs, &config_w8)
                        .expect("batched"),
                );
                black_box(capture.finish());
            }
        });
        rows.push(Row {
            mode: "full-report",
            shadow: "dd",
            engine,
            width: 8,
            ns_per_op: ns,
        });
    }

    // --- shadow-error mode: the vectorized DoubleDouble probe -------------
    let threshold = base.local_error_threshold;
    for &width in &widths {
        let ns = measure(total_ops, reps, || {
            for p in &prepared {
                probe_at_width(width, &p.program, &p.inputs, threshold);
            }
        });
        rows.push(Row {
            mode: "shadow-error",
            shadow: "dd",
            engine: "batched",
            width,
            ns_per_op: ns,
        });
    }

    // Batched and serial full analyses must agree bit for bit even while
    // being timed.
    for p in &prepared {
        let serial =
            analyze_with_shadow::<DoubleDouble>(&p.program, &p.inputs, &base).expect("serial");
        let batched = analyze_batched_with_shadow::<DoubleDouble>(
            &p.program,
            &p.inputs,
            &base.clone().with_batch_width(8),
        )
        .expect("batched");
        assert_eq!(
            format!("{serial:?}"),
            format!("{batched:?}"),
            "batched report diverged from serial"
        );
        let isolated =
            herbgrind::analyze_isolated_with_shadow::<DoubleDouble>(&p.program, &p.inputs, &base);
        assert!(
            isolated.quarantined.is_empty(),
            "clean benchmark sweep must not quarantine"
        );
        assert_eq!(
            format!("{serial:?}"),
            format!("{isolated:?}"),
            "fault-isolated report diverged from serial"
        );
    }

    // --- Report -----------------------------------------------------------
    let find = |mode: &str, shadow: &str, engine: &str, width: usize| {
        rows.iter()
            .find(|r| {
                r.mode == mode && r.shadow == shadow && r.engine == engine && r.width == width
            })
            .expect("row present")
            .ns_per_op
    };
    for row in &rows {
        println!(
            "bench batch_sweep/{}/{}/{}{}: {:.1} ns/op  ({:.2e} analyzed ops/s)",
            row.mode,
            row.shadow,
            row.engine,
            if row.width == 0 {
                String::new()
            } else {
                format!("/w{}", row.width)
            },
            row.ns_per_op,
            row.ops_per_sec()
        );
    }
    let probe_w8_vs_w1 =
        find("shadow-error", "dd", "batched", 1) / find("shadow-error", "dd", "batched", 8);
    let full_dd_w8_vs_w1 =
        find("full-report", "dd", "batched", 1) / find("full-report", "dd", "batched", 8);
    let full_f64_w8_vs_w1 =
        find("full-report", "f64", "batched", 1) / find("full-report", "f64", "batched", 8);
    let full_dd_w8_vs_serial =
        find("full-report", "dd", "serial", 0) / find("full-report", "dd", "batched", 8);
    let isolated_vs_serial =
        find("full-report", "dd", "serial", 0) / find("full-report", "dd", "isolated", 0);
    let telemetry_off_vs_plain =
        find("full-report", "dd", "batched", 8) / find("full-report", "dd", "telemetry-off", 8);
    let telemetry_on_vs_off = find("full-report", "dd", "telemetry-off", 8)
        / find("full-report", "dd", "telemetry-on", 8);
    println!(
        "bench batch_sweep: DoubleDouble W=8 vs W=1: {probe_w8_vs_w1:.2}x shadow-error, {full_dd_w8_vs_w1:.2}x full-report ({full_dd_w8_vs_serial:.2}x vs serial; f64 full-report {full_f64_w8_vs_w1:.2}x; fault-isolated serial {isolated_vs_serial:.2}x vs plain; telemetry off-wrapper {telemetry_off_vs_plain:.2}x vs plain, on {telemetry_on_vs_off:.2}x vs off; {total_ops} analyzed ops per sweep)"
    );

    let mut json = String::from("{\n  \"bench\": \"batch_sweep\",\n  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"mode\": \"{}\", \"shadow\": \"{}\", \"engine\": \"{}\", \"width\": {}, \"ns_per_op\": {:.2}, \"ops_per_sec\": {:.0}}}{}\n",
            row.mode,
            row.shadow,
            row.engine,
            row.width,
            row.ns_per_op,
            row.ops_per_sec(),
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"analyzed_ops_per_sweep\": {total_ops},\n  \"speedup\": {{\"dd_shadow_error_w8_vs_w1\": {probe_w8_vs_w1:.2}, \"dd_full_report_w8_vs_w1\": {full_dd_w8_vs_w1:.2}, \"f64_full_report_w8_vs_w1\": {full_f64_w8_vs_w1:.2}, \"dd_full_report_w8_vs_serial\": {full_dd_w8_vs_serial:.2}, \"dd_full_report_isolated_vs_serial\": {isolated_vs_serial:.2}, \"dd_full_report_w8_telemetry_off_vs_plain\": {telemetry_off_vs_plain:.2}, \"dd_full_report_w8_telemetry_on_vs_off\": {telemetry_on_vs_off:.2}}}\n}}\n"
    ));
    println!("BATCH_SWEEP_JSON_BEGIN");
    print!("{json}");
    println!("BATCH_SWEEP_JSON_END");
    if let Some(path) = std::env::var_os("BATCH_SWEEP_JSON") {
        std::fs::write(&path, json).expect("write BATCH_SWEEP_JSON file");
    }
}

//! `static_prune`: the tier-0 static error-dataflow pass over the full
//! embedded FPBench suite.
//!
//! Two measurements share one run:
//!
//! * **Survey** — `fpbench::static_prune_survey` over every suite benchmark:
//!   how many compute statements the abstract interpretation certifies
//!   stable, how many land in the prune mask (certified *and* whole forward
//!   cone certified), and how many static lints fire. This is pure static
//!   analysis — no inputs execute.
//! * **Sweep** — `herbgrind::analyze_tiered` over sampled inputs for every
//!   benchmark, once with the default config and once with the benchmark's
//!   declared sampling region armed (`with_input_ranges`), which switches
//!   tier 0 on. The armed report must be bit-identical to the plain one for
//!   every benchmark (asserted in-run), the telemetry must show executions
//!   actually skipping shadow work, and no statement the dynamic analysis
//!   flags as erroneous may carry the `CertifiedStable` verdict (the
//!   suite-wide soundness count, reported as `unsound_certifications`).
//!
//! Output is human-readable rows plus machine-readable JSON between
//! `STATIC_PRUNE_JSON_BEGIN`/`END` markers; `STATIC_PRUNE_JSON=path` also
//! writes the JSON to a file (the committed `BENCH_static_prune.json`
//! baseline is produced that way), and `BENCH_SMOKE=1` switches to a few
//! samples and one short iteration per measurement for CI.

use fpvm::{Addr, Machine, Program, Tracer};
use herbgrind::staticerr::{analyze_program, StaticParams, StaticVerdict};
use herbgrind::{analyze_tiered, AnalysisConfig, SweepCapture, TelemetryMode};
use shadowreal::RealOp;
use std::hint::black_box;
use std::time::Instant;

/// Counts executed floating-point operations (the denominator of every
/// ops/sec figure; identical across modes because the analysis follows the
/// client's control flow).
#[derive(Default)]
struct OpCounter {
    computes: u64,
}

impl Tracer for OpCounter {
    fn on_compute(&mut self, _: usize, _: RealOp, _: Addr, _: &[Addr], _: &[f64], _: f64) {
        self.computes += 1;
    }
}

struct Row {
    mode: &'static str,
    ns_per_op: f64,
}

impl Row {
    fn ops_per_sec(&self) -> f64 {
        1e9 / self.ns_per_op
    }
}

/// Best-of-`reps` ns per analyzed op for one full sweep.
fn measure<F: FnMut()>(total_ops: u64, reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        let ns = start.elapsed().as_nanos() as f64 / total_ops as f64;
        if ns < best {
            best = ns;
        }
    }
    best
}

struct PreparedSweep {
    program: Program,
    inputs: Vec<Vec<f64>>,
    region: Vec<(f64, f64)>,
}

fn main() {
    let smoke = std::env::var_os("BENCH_SMOKE").is_some();
    let reps = if smoke { 1 } else { 7 };
    let samples = if smoke { 4 } else { 24 };
    let suite = fpbench::suite();

    // --- Survey (static only, whole suite) --------------------------------
    let survey = fpbench::static_prune_survey(&suite, &StaticParams::default());
    assert_eq!(survey.skipped, 0, "every suite benchmark must compile");
    assert!(
        survey.prune_rate() > 0.20,
        "suite prune rate fell below the 20% floor: {}",
        survey.to_text()
    );

    // --- Prepare the dynamic sweep ----------------------------------------
    let prepared: Vec<PreparedSweep> = suite
        .iter()
        .filter_map(|core| {
            let p = fpbench::prepare(core, samples, 2024).ok()?;
            Some(PreparedSweep {
                region: fpbench::sampling_region(core),
                program: p.program,
                inputs: p.inputs,
            })
        })
        .collect();
    // One analysis thread throughout: this bench measures the pruning.
    let plain = AnalysisConfig::default().with_threads(1);

    let mut total_ops = 0u64;
    let mut total_inputs = 0usize;
    for p in &prepared {
        let machine = Machine::new(&p.program);
        for input in &p.inputs {
            let mut counter = OpCounter::default();
            machine
                .run_traced(input, &mut counter)
                .expect("benchmark runs");
            total_ops += counter.computes;
        }
        total_inputs += p.inputs.len();
    }

    // The speedup claim rests on three in-run facts: the tier-0-armed report
    // is bit-identical to the plain tiered one on every benchmark, the prune
    // mask actually removes shadow work, and no dynamically-erroneous
    // statement is ever statically certified.
    let capture = SweepCapture::begin(TelemetryMode::On);
    let mut unsound_certifications = 0usize;
    for p in &prepared {
        let armed_config = plain.clone().with_input_ranges(p.region.clone());
        let flat = analyze_tiered(&p.program, &p.inputs, &plain);
        let armed = analyze_tiered(&p.program, &p.inputs, &armed_config);
        match (flat, armed) {
            (Ok(flat), Ok(armed)) => {
                assert_eq!(
                    format!("{armed:?}"),
                    format!("{flat:?}"),
                    "tier-0-armed report diverged from the plain tiered analysis"
                );
                let analysis = analyze_program(&p.program, &p.region, &StaticParams::default());
                for spot in &flat.spots {
                    if spot.erroneous > 0
                        && analysis.verdict(spot.pc) == StaticVerdict::CertifiedStable
                    {
                        unsound_certifications += 1;
                    }
                    for cause in &spot.root_causes {
                        if cause.erroneous_count > 0
                            && analysis.verdict(cause.pc) == StaticVerdict::CertifiedStable
                        {
                            unsound_certifications += 1;
                        }
                    }
                }
            }
            (flat, armed) => {
                assert_eq!(
                    format!("{:?}", flat.err()),
                    format!("{:?}", armed.err()),
                    "errors diverged between plain and tier-0-armed runs"
                );
            }
        }
    }
    let telemetry = capture.finish();
    let pruned_executions = telemetry.counter("tier0.pruned_executions");
    assert!(
        pruned_executions > 0,
        "tier 0 never skipped shadowing across the whole suite"
    );
    assert_eq!(
        unsound_certifications, 0,
        "dynamically erroneous statements were statically certified"
    );

    // --- Measure ----------------------------------------------------------
    let mut rows: Vec<Row> = Vec::new();
    let ns = measure(total_ops, reps, || {
        for p in &prepared {
            black_box(analyze_tiered(&p.program, &p.inputs, &plain).ok());
        }
    });
    rows.push(Row {
        mode: "tiered",
        ns_per_op: ns,
    });
    let armed_configs: Vec<AnalysisConfig> = prepared
        .iter()
        .map(|p| plain.clone().with_input_ranges(p.region.clone()))
        .collect();
    let ns = measure(total_ops, reps, || {
        for (p, config) in prepared.iter().zip(&armed_configs) {
            black_box(analyze_tiered(&p.program, &p.inputs, config).ok());
        }
    });
    rows.push(Row {
        mode: "tiered+tier0",
        ns_per_op: ns,
    });

    // --- Report -----------------------------------------------------------
    for row in &rows {
        println!(
            "bench static_prune/{}: {:.1} ns/op  ({:.2e} analyzed ops/s)",
            row.mode,
            row.ns_per_op,
            row.ops_per_sec()
        );
    }
    let speedup = rows[0].ns_per_op / rows[1].ns_per_op;
    println!(
        "bench static_prune: tier-0-armed vs plain tiered: {speedup:.2}x \
         ({}; {pruned_executions} pruned statement-executions over \
         {total_inputs} inputs; {total_ops} analyzed ops per sweep)",
        survey.to_text()
    );

    let mut json = String::from("{\n  \"bench\": \"static_prune\",\n  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"mode\": \"{}\", \"ns_per_op\": {:.2}, \"ops_per_sec\": {:.0}}}{}\n",
            row.mode,
            row.ns_per_op,
            row.ops_per_sec(),
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"analyzed_ops_per_sweep\": {total_ops},\n  \"total_inputs\": {total_inputs},\n  \"pruned_executions\": {pruned_executions},\n  \"unsound_certifications\": {unsound_certifications},\n  \"speedup\": {{\"tier0_armed_vs_plain\": {speedup:.2}}},\n"
    ));
    // The survey JSON is itself schema-stable (`herbgrind-static-prune` v1);
    // embed it verbatim as the `survey` member.
    json.push_str("  \"survey\": ");
    json.push_str(survey.to_json().trim_end());
    json.push_str("\n}\n");
    println!("STATIC_PRUNE_JSON_BEGIN");
    print!("{json}");
    println!("STATIC_PRUNE_JSON_END");
    if let Some(path) = std::env::var_os("STATIC_PRUNE_JSON") {
        std::fs::write(&path, json).expect("write STATIC_PRUNE_JSON file");
    }
}

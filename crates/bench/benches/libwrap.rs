//! §8.2 library wrapping: report sizes and analysis cost with math-library
//! calls wrapped (single operations) vs lowered into their internals.

use criterion::{criterion_group, criterion_main, Criterion};
use herbgrind::AnalysisConfig;
use herbgrind_bench::prepared_timing_benchmarks;
use std::hint::black_box;

fn libwrap(c: &mut Criterion) {
    let libm_benches: Vec<_> = fpbench::suite()
        .into_iter()
        .filter(|core| {
            let printed = fpcore::core_to_string(core);
            ["exp", "log", "sin", "cos", "tan", "pow"]
                .iter()
                .any(|f| printed.contains(f))
        })
        .collect();
    let cmp = fpbench::wrapping_comparison(&libm_benches, 40, 2024, &AnalysisConfig::default())
        .expect("comparison");
    println!(
        "[section 8.2] wrapped: {} flagged, largest expression {} ops, {} expressions > 9 ops",
        cmp.wrapped_flagged, cmp.wrapped_max_ops, cmp.wrapped_over_9
    );
    println!(
        "[section 8.2] unwrapped: {} flagged, largest expression {} ops, {} expressions > 9 ops",
        cmp.unwrapped_flagged, cmp.unwrapped_max_ops, cmp.unwrapped_over_9
    );

    let prepared = prepared_timing_benchmarks(30);
    let config = AnalysisConfig::default();
    let mut group = c.benchmark_group("libwrap");
    group.sample_size(10);
    group.bench_function("wrapped", |b| {
        b.iter(|| {
            for p in &prepared {
                black_box(p.run_herbgrind(&config).expect("herbgrind"));
            }
        })
    });
    group.bench_function("unwrapped", |b| {
        b.iter(|| {
            for p in &prepared {
                black_box(p.run_herbgrind_unwrapped(&config).expect("herbgrind"));
            }
        })
    });
    group.finish();
}

criterion_group!(benches, libwrap);
criterion_main!(benches);

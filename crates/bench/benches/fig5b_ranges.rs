//! Figure 5b: benchmarks improved under the three input-characteristic
//! configurations (no ranges / single range / sign-split ranges).

use criterion::{criterion_group, criterion_main, Criterion};
use herbgrind::RangeKind;
use herbgrind_bench::quality_benchmarks;
use std::hint::black_box;

fn fig5b(c: &mut Criterion) {
    let suite = quality_benchmarks(30);
    let points = fpbench::range_kind_sweep(&suite, 40, 2024);
    println!("[figure 5b] range kind -> improvable root causes / significant benchmarks");
    for p in &points {
        println!(
            "[figure 5b] {:?}: {} / {}",
            p.kind, p.improvable_root_causes, p.significant
        );
    }

    let small = quality_benchmarks(6);
    let mut group = c.benchmark_group("fig5b_ranges");
    group.sample_size(10);
    for kind in [RangeKind::None, RangeKind::Single, RangeKind::SignSplit] {
        let config = herbgrind::AnalysisConfig::default().with_range_kind(kind);
        group.bench_function(format!("{kind:?}"), |b| {
            b.iter(|| black_box(fpbench::improvability(&small, 20, 2024, &config)))
        });
    }
    group.finish();
}

criterion_group!(benches, fig5b);
criterion_main!(benches);

//! Figure 5c: analysis runtime as a function of the maximum expression
//! depth.

use criterion::{criterion_group, criterion_main, Criterion};
use herbgrind::AnalysisConfig;
use herbgrind_bench::prepared_timing_benchmarks;
use std::hint::black_box;

fn fig5c(c: &mut Criterion) {
    let prepared = prepared_timing_benchmarks(40);
    let mut group = c.benchmark_group("fig5c_depth_runtime");
    group.sample_size(10);
    for depth in [1usize, 2, 3, 5, 10, 16] {
        let config = AnalysisConfig::default().with_max_expression_depth(depth);
        group.bench_function(format!("depth_{depth}"), |b| {
            b.iter(|| {
                for p in &prepared {
                    black_box(p.run_herbgrind(&config).expect("herbgrind"));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, fig5c);
criterion_main!(benches);

//! Figure 5a: number of computations flagged vs the local-error threshold.

use criterion::{criterion_group, criterion_main, Criterion};
use herbgrind_bench::quality_benchmarks;
use std::hint::black_box;

fn fig5a(c: &mut Criterion) {
    let suite = fpbench::suite();
    let thresholds = [1.0, 2.0, 4.0, 8.0, 16.0, 24.0, 32.0, 40.0, 48.0];
    let points = fpbench::threshold_sweep(&suite, 40, 2024, &thresholds);
    println!("[figure 5a] local-error threshold (bits) -> flagged computations");
    for p in &points {
        println!(
            "[figure 5a] {:>5.1} bits -> {:>5} flagged operations ({} erroneous spots)",
            p.threshold_bits, p.flagged_operations, p.erroneous_spots
        );
    }

    let small = quality_benchmarks(8);
    let mut group = c.benchmark_group("fig5a_thresholds");
    group.sample_size(10);
    for threshold in [1.0, 16.0, 40.0] {
        group.bench_function(format!("threshold_{threshold}"), |b| {
            b.iter(|| black_box(fpbench::threshold_sweep(&small, 20, 2024, &[threshold])))
        });
    }
    group.finish();
}

criterion_group!(benches, fig5a);
criterion_main!(benches);

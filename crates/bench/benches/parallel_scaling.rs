//! Parallel analysis scaling: the improvability sweep with 1 analysis thread
//! vs all available cores.
//!
//! The analysis shards the input sweep across threads and merges the
//! per-shard records deterministically (see `crates/core/src/analysis.rs`),
//! so the two configurations below produce bit-identical reports; only the
//! wall clock differs. The printed speedup is the acceptance number for the
//! parallel engine (>1.5x on 4+ cores).

use criterion::{criterion_group, criterion_main, Criterion};
use herbgrind::AnalysisConfig;
use herbgrind_bench::quality_benchmarks;
use std::hint::black_box;
use std::time::Instant;

fn parallel_scaling(c: &mut Criterion) {
    let suite = quality_benchmarks(12);
    let serial = AnalysisConfig::default().with_threads(1);
    let parallel = AnalysisConfig::default().with_threads(0);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    // One timed pass of each configuration for the headline speedup number.
    let start = Instant::now();
    black_box(fpbench::improvability(&suite, 60, 2024, &serial));
    let serial_secs = start.elapsed().as_secs_f64();
    let start = Instant::now();
    black_box(fpbench::improvability(&suite, 60, 2024, &parallel));
    let parallel_secs = start.elapsed().as_secs_f64();
    println!(
        "[parallel scaling] improvability sweep: {serial_secs:.2}s serial, \
         {parallel_secs:.2}s on {cores} threads ({:.2}x speedup)",
        serial_secs / parallel_secs
    );

    let small = quality_benchmarks(8);
    let mut group = c.benchmark_group("parallel_scaling");
    group.sample_size(10);
    group.bench_function("threads_1", |b| {
        b.iter(|| black_box(fpbench::improvability(&small, 40, 2024, &serial)))
    });
    group.bench_function(format!("threads_{cores}"), |b| {
        b.iter(|| black_box(fpbench::improvability(&small, 40, 2024, &parallel)))
    });
    group.finish();
}

criterion_group!(benches, parallel_scaling);
criterion_main!(benches);

//! Shared helpers for the Criterion benches that regenerate the paper's
//! tables and figures.
//!
//! Each bench in `benches/` corresponds to one evaluation artifact (see
//! `DESIGN.md` for the experiment index) and prints the regenerated
//! rows/series alongside Criterion's timing output, so running
//! `cargo bench --workspace` reproduces both the overhead numbers and the
//! analysis-quality numbers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use fpbench::PreparedBenchmark;
use fpcore::FPCore;

/// The benchmarks used by the timing-oriented benches: a slice of the suite
/// that exercises arithmetic, libm calls, and loops, kept small enough for
/// Criterion's repeated measurement.
pub fn timing_benchmarks() -> Vec<FPCore> {
    [
        "NMSE example 3.1",
        "doppler1",
        "verhulst",
        "sine",
        "NMSE problem 3.3.6",
        "harmonic sum loop",
    ]
    .iter()
    .filter_map(|name| fpbench::by_name(name))
    .collect()
}

/// The benchmarks used by the quality-oriented benches (improvability,
/// threshold/depth/range sweeps): a broader slice of the suite with a mix of
/// erroneous and accurate kernels.
pub fn quality_benchmarks(limit: usize) -> Vec<FPCore> {
    fpbench::subset(limit)
}

/// Prepares the timing benchmarks with a fixed sample count and seed.
pub fn prepared_timing_benchmarks(samples: usize) -> Vec<PreparedBenchmark> {
    timing_benchmarks()
        .iter()
        .filter_map(|core| fpbench::prepare(core, samples, 2024).ok())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_benchmarks_are_available() {
        assert_eq!(timing_benchmarks().len(), 6);
        assert!(!prepared_timing_benchmarks(5).is_empty());
    }

    #[test]
    fn quality_benchmarks_respect_the_limit() {
        assert_eq!(quality_benchmarks(10).len(), 10);
    }
}
